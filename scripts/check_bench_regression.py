#!/usr/bin/env python
"""CI bench-regression gate: single-worker batch throughput vs committed JSON.

Re-measures the one number least forgivable to regress — warm
single-worker ``route_batch`` frames/s at the parallel bench's shape
(``n = 1024``, 64-frame batches, numeric payloads) — and fails if it
drops more than ``--threshold`` (default 20 %) below the value recorded
in the committed ``BENCH_fast_engine.json``.

Only the single-worker number is gated: multi-worker scaling is
hardware-bound (the committed JSON records ``cpu_count`` next to its
numbers), so comparing it across machines would gate on the runner's
core count, not on the code.  Warm min-of-k is used for the same
reason the bench uses it — it is the low-noise steady-state estimator,
insensitive to one-off scheduler stalls that p50/p95 exist to surface.

Run from the repository root::

    PYTHONPATH=src python scripts/check_bench_regression.py

``--executor process`` gates the multiprocess executor the same way,
against the committed ``process`` section's 2-worker row (2 workers,
not 4, so the gate prices the shared-memory/envelope machinery rather
than the runner's core count)::

    PYTHONPATH=src python scripts/check_bench_regression.py --executor process

``--cluster`` gates the cluster tier the same way, against the
committed ``cluster`` section's 1-replica row (1 replica, so the gate
prices the per-frame placement and lifecycle overhead the cluster adds
on top of one fabric, not the runner's scheduling of K fabrics)::

    PYTHONPATH=src python scripts/check_bench_regression.py --cluster

A second mode, ``--adaptive-gate``, compares two ``repro chaos
--overload --summary-out`` artifacts (static vs ``--adaptive``) instead
of re-measuring throughput.  It enforces the adaptive control plane's
contract against the static gate it started from:

* ``--mode 1x`` (at capacity): the adaptive campaign keeps at least
  ``1 - --goodput-loss`` (default 95 %) of the static goodput — the
  loop must not tax a healthy system;
* ``--mode 2x`` (overload): the adaptive campaign sheds at least
  ``--shed-improvement`` (default 20 %) fewer high-priority frames —
  the loop must actually protect the privileged class.

::

    PYTHONPATH=src python scripts/check_bench_regression.py \\
        --adaptive-gate --static static.json --adaptive adaptive.json \\
        --mode 2x

Exit status: 0 when within threshold, 1 on regression, 2 when the
committed JSON is missing or lacks the parallel section (regenerate it
with ``pytest benchmarks/bench_fast_engine.py::test_end_to_end_speedup``)
or a summary artifact is missing/malformed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.core.brsmn import BRSMN
from repro.core.config import NetworkConfig
from repro.workloads.random_assignments import random_multicast

REPO = pathlib.Path(__file__).resolve().parent.parent


def committed_frames_per_s(
    path: pathlib.Path,
    section: str = "parallel",
    workers: int = 1,
    rows_key: str = "workers",
    row_field: str = "workers",
) -> float:
    """The committed warm frames/s for one bench row, or exit 2 if absent.

    The default row is the thread path's single-worker number; the
    ``--executor process`` gate reads the ``process`` section's
    2-worker row instead (2, not 4, so the gate measures the executor's
    IPC machinery rather than the runner's core count), and the
    ``--cluster`` gate reads the ``cluster`` section's 1-replica row
    (1, not 4, so the gate prices the placement/lifecycle overhead
    rather than how the runner schedules K fabrics).
    """
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        print(f"bench regression: {path} not found", file=sys.stderr)
        sys.exit(2)
    rows = data.get(section, {}).get(rows_key, [])
    for row in rows:
        if row.get(row_field) == workers:
            return float(row["warm_frames_per_s"])
    print(
        f"bench regression: no {section} {row_field}={workers} row in {path}",
        file=sys.stderr,
    )
    sys.exit(2)


def measure_frames_per_s(
    k: int = 7, warmup: int = 2, workers: int = 1, executor: str = "thread"
) -> float:
    """Warm min-of-k frames/s, same shape as the bench's parallel section."""
    n, frames = 1024, 64
    assignment = random_multicast(n, load=1.0, seed=n)
    matrix = np.arange(frames * n, dtype=np.int64).reshape(frames, n)
    net = BRSMN(
        NetworkConfig(n, engine="fast", workers=workers, executor=executor)
    )
    try:
        for _ in range(warmup):
            net.route_batch(assignment, matrix)
        best = min(
            _timed(net.route_batch, assignment, matrix) for _ in range(k)
        )
    finally:
        net.close()
    return frames / max(best, 1e-9)


def _timed(fn, *args) -> float:
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


def measure_cluster_frames_per_s(k: int = 7, warmup: int = 2) -> float:
    """Warm min-of-k frames/s at the bench's cluster-section shape:
    one replica, n = 256, 64-frame campaigns cycling 8 distinct plans."""
    from repro.cluster import ClusterConfig, FabricCluster

    n, frames, distinct = 256, 64, 8
    pool = [
        random_multicast(n, load=1.0, seed=n + i) for i in range(distinct)
    ]
    sequence = [pool[i % distinct] for i in range(frames)]
    cluster = FabricCluster(
        ClusterConfig(
            replicas=1,
            network=NetworkConfig(n, engine="fast"),
            placement_seed=n,
        )
    )

    def campaign():
        for a in sequence:
            cluster.submit(a)

    try:
        for _ in range(warmup):
            campaign()
        best = min(_timed(campaign) for _ in range(k))
    finally:
        cluster.close()
    return frames / max(best, 1e-9)


def load_summary(path: pathlib.Path) -> dict:
    """A ``--summary-out`` artifact as a dict, or exit 2."""
    try:
        data = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError) as exc:
        print(f"adaptive gate: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    missing = {"goodput", "shed_high"} - set(data)
    if missing:
        print(
            f"adaptive gate: {path} lacks {sorted(missing)} "
            "(regenerate with repro chaos --overload --summary-out)",
            file=sys.stderr,
        )
        sys.exit(2)
    return data


def adaptive_gate(args) -> int:
    """Compare adaptive vs static campaign summaries; 0 pass, 1 fail."""
    static = load_summary(args.static)
    adaptive = load_summary(args.adaptive)
    if args.mode == "1x":
        floor = static["goodput"] * (1.0 - args.goodput_loss)
        ok = adaptive["goodput"] >= floor
        print(
            f"adaptive gate (1x): adaptive goodput {adaptive['goodput']} vs "
            f"static {static['goodput']} (floor {floor:.1f} at "
            f"-{args.goodput_loss:.0%}) -> {'OK' if ok else 'REGRESSION'}"
        )
        return 0 if ok else 1
    ceiling = static["shed_high"] * (1.0 - args.shed_improvement)
    # A static campaign that sheds no high-priority traffic leaves
    # nothing to improve on; the adaptive run just must not regress it.
    ok = adaptive["shed_high"] <= ceiling
    print(
        f"adaptive gate (2x): adaptive shed_high {adaptive['shed_high']} vs "
        f"static {static['shed_high']} (ceiling {ceiling:.1f} at "
        f"-{args.shed_improvement:.0%}) -> {'OK' if ok else 'REGRESSION'}"
    )
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=REPO / "BENCH_fast_engine.json",
        help="committed bench artifact to compare against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum tolerated fractional drop (default 0.20)",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="which executor's committed throughput row to gate: "
        "'thread' gates the single-worker row, 'process' the process "
        "section's 2-worker row",
    )
    parser.add_argument(
        "--cluster",
        action="store_true",
        help="gate the cluster section's 1-replica warm frames/s row "
        "instead of a raw executor row",
    )
    parser.add_argument(
        "--adaptive-gate",
        action="store_true",
        help="compare adaptive vs static overload summaries instead of "
        "re-measuring batch throughput",
    )
    parser.add_argument(
        "--static",
        type=pathlib.Path,
        help="adaptive gate: the static campaign's --summary-out JSON",
    )
    parser.add_argument(
        "--adaptive",
        type=pathlib.Path,
        help="adaptive gate: the --adaptive campaign's --summary-out JSON",
    )
    parser.add_argument(
        "--mode",
        choices=("1x", "2x"),
        default="2x",
        help="adaptive gate: 1x gates goodput, 2x gates high-priority sheds",
    )
    parser.add_argument(
        "--goodput-loss",
        type=float,
        default=0.05,
        help="adaptive gate 1x: tolerated fractional goodput loss",
    )
    parser.add_argument(
        "--shed-improvement",
        type=float,
        default=0.20,
        help="adaptive gate 2x: required fractional high-priority "
        "shed reduction",
    )
    args = parser.parse_args(argv)

    if args.adaptive_gate:
        if args.static is None or args.adaptive is None:
            parser.error("--adaptive-gate requires --static and --adaptive")
        return adaptive_gate(args)

    if args.cluster:
        committed = committed_frames_per_s(
            args.json, section="cluster", workers=1,
            rows_key="replicas", row_field="replicas",
        )
        measured = measure_cluster_frames_per_s()
        label = "cluster (1-replica) warm campaign throughput"
    elif args.executor == "process":
        committed = committed_frames_per_s(
            args.json, section="process", workers=2
        )
        measured = measure_frames_per_s(workers=2, executor="process")
        label = "process-executor (2-worker) batch throughput"
    else:
        committed = committed_frames_per_s(args.json)
        measured = measure_frames_per_s()
        label = "single-worker batch throughput"
    floor = committed * (1.0 - args.threshold)
    verdict = "OK" if measured >= floor else "REGRESSION"
    print(
        f"{label}: measured {measured:,.0f} frames/s "
        f"vs committed {committed:,.0f} (floor {floor:,.0f} at "
        f"-{args.threshold:.0%}) -> {verdict}"
    )
    return 0 if measured >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
