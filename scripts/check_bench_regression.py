#!/usr/bin/env python
"""CI bench-regression gate: single-worker batch throughput vs committed JSON.

Re-measures the one number least forgivable to regress — warm
single-worker ``route_batch`` frames/s at the parallel bench's shape
(``n = 1024``, 64-frame batches, numeric payloads) — and fails if it
drops more than ``--threshold`` (default 20 %) below the value recorded
in the committed ``BENCH_fast_engine.json``.

Only the single-worker number is gated: multi-worker scaling is
hardware-bound (the committed JSON records ``cpu_count`` next to its
numbers), so comparing it across machines would gate on the runner's
core count, not on the code.  Warm min-of-k is used for the same
reason the bench uses it — it is the low-noise steady-state estimator,
insensitive to one-off scheduler stalls that p50/p95 exist to surface.

Run from the repository root::

    PYTHONPATH=src python scripts/check_bench_regression.py

Exit status: 0 when within threshold, 1 on regression, 2 when the
committed JSON is missing or lacks the parallel section (regenerate it
with ``pytest benchmarks/bench_fast_engine.py::test_end_to_end_speedup``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.core.brsmn import BRSMN
from repro.core.config import NetworkConfig
from repro.workloads.random_assignments import random_multicast

REPO = pathlib.Path(__file__).resolve().parent.parent


def committed_frames_per_s(path: pathlib.Path) -> float:
    """The committed warm single-worker frames/s, or exit 2 if absent."""
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        print(f"bench regression: {path} not found", file=sys.stderr)
        sys.exit(2)
    rows = data.get("parallel", {}).get("workers", [])
    for row in rows:
        if row.get("workers") == 1:
            return float(row["warm_frames_per_s"])
    print(f"bench regression: no workers=1 row in {path}", file=sys.stderr)
    sys.exit(2)


def measure_frames_per_s(k: int = 7, warmup: int = 2) -> float:
    """Warm min-of-k frames/s, same shape as the bench's parallel section."""
    n, frames = 1024, 64
    assignment = random_multicast(n, load=1.0, seed=n)
    matrix = np.arange(frames * n, dtype=np.int64).reshape(frames, n)
    net = BRSMN(NetworkConfig(n, engine="fast", workers=1))
    try:
        for _ in range(warmup):
            net.route_batch(assignment, matrix)
        best = min(
            _timed(net.route_batch, assignment, matrix) for _ in range(k)
        )
    finally:
        net.close()
    return frames / max(best, 1e-9)


def _timed(fn, *args) -> float:
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=REPO / "BENCH_fast_engine.json",
        help="committed bench artifact to compare against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum tolerated fractional drop (default 0.20)",
    )
    args = parser.parse_args(argv)

    committed = committed_frames_per_s(args.json)
    measured = measure_frames_per_s()
    floor = committed * (1.0 - args.threshold)
    verdict = "OK" if measured >= floor else "REGRESSION"
    print(
        f"single-worker batch throughput: measured {measured:,.0f} frames/s "
        f"vs committed {committed:,.0f} (floor {floor:,.0f} at "
        f"-{args.threshold:.0%}) -> {verdict}"
    )
    return 0 if measured >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
