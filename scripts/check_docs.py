#!/usr/bin/env python
"""CI docs checks: links resolve, documented examples actually run.

Two independent checks, both over committed markdown:

* ``check_links`` — every relative markdown link in ``docs/*.md`` and
  ``README.md`` points at a file that exists (external ``http(s)`` /
  ``mailto`` links and pure ``#anchor`` self-references are skipped;
  fragments on relative links are stripped before the existence check).
* ``run_examples`` — every fenced ``python`` block of the executable
  pages (``docs/usage.md``, ``docs/performance.md``, ``docs/faq.md``,
  ``docs/executors.md``) is executed in its own namespace, so no page
  can drift from the API it documents.  Requires ``PYTHONPATH=src``
  (or an installed package).

Run from the repository root::

    PYTHONPATH=src python scripts/check_docs.py

Exit status is non-zero on the first category of failure, with every
individual failure listed.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import List

REPO = pathlib.Path(__file__).resolve().parent.parent

# [text](target) — target up to the first closing paren; images and
# reference-style links are out of scope (the docs use inline links).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```python\s*?\n(.*?)^```\s*?$", re.M | re.S)


def _doc_pages() -> List[pathlib.Path]:
    return sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]


def check_links() -> List[str]:
    """Return one message per broken relative link."""
    failures: List[str] = []
    for page in _doc_pages():
        text = page.read_text()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (page.parent / path).resolve()
            if not resolved.exists():
                failures.append(
                    f"{page.relative_to(REPO)}: broken link -> {target}"
                )
    return failures


# Pages whose python blocks are executed verbatim.  A page belongs
# here unless its blocks are deliberately non-runnable (none are
# today); new executable pages must be added or their examples rot.
EXECUTABLE_PAGES = ("usage.md", "performance.md", "faq.md", "executors.md")


def run_examples() -> List[str]:
    """Execute every fenced python block of the executable pages."""
    failures: List[str] = []
    total = 0
    for name in EXECUTABLE_PAGES:
        page = REPO / "docs" / name
        blocks = FENCE_RE.findall(page.read_text())
        if not blocks:
            failures.append(f"docs/{name}: no fenced python blocks found")
            continue
        total += len(blocks)
        for i, block in enumerate(blocks):
            try:
                exec(compile(block, f"docs/{name}[block {i}]", "exec"),
                     {"__name__": "__main__"})
            except Exception as exc:  # noqa: BLE001 — report, don't crash
                failures.append(
                    f"docs/{name} block {i} raised "
                    f"{type(exc).__name__}: {exc}\n{block.rstrip()}"
                )
    return failures


def main() -> int:
    link_failures = check_links()
    for msg in link_failures:
        print(f"LINK  {msg}", file=sys.stderr)
    example_failures = run_examples()
    for msg in example_failures:
        print(f"EXAMPLE  {msg}", file=sys.stderr)
    pages = len(_doc_pages())
    blocks = sum(
        len(FENCE_RE.findall((REPO / "docs" / name).read_text()))
        for name in EXECUTABLE_PAGES
    )
    if link_failures or example_failures:
        return 1
    print(f"docs ok: {pages} pages linked, {blocks} examples ran")
    return 0


if __name__ == "__main__":
    sys.exit(main())
