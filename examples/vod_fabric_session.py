#!/usr/bin/env python
"""Video-on-demand session on a feedback-BRSMN fabric.

Section 1 of the paper names video-on-demand among the services that
demand hardware multicast.  This example drives a 128-port switch built
as the *feedback* BRSMN (the O(n log n) variant a cost-conscious VoD
head-end would pick) through a 60-frame VoD session with Zipf-skewed
channel popularity, using the :class:`~repro.core.fabric.MulticastFabric`
session facade, then prints the aggregate statistics and the frame
timing/throughput picture from the hardware schedule model.

Run:  python examples/vod_fabric_session.py
"""

from repro.core.config import NetworkConfig
from repro.core.fabric import MulticastFabric
from repro.hardware.schedule import build_frame_schedule, pipelined_throughput
from repro.workloads import vod_frames

PORTS = 128
SERVERS = 4
FRAMES = 60


def main() -> None:
    fabric = MulticastFabric(NetworkConfig(PORTS, implementation="feedback"))
    frames = vod_frames(PORTS, servers=SERVERS, frames=FRAMES, zipf_a=1.4, seed=404)
    stats = fabric.run(frames)

    print(
        f"VoD session: {stats.frames} frames on a {PORTS}-port feedback "
        f"BRSMN, {SERVERS} streaming servers"
    )
    print(f"  deliveries: {stats.deliveries} (all verified, no blocking)")
    print(f"  alpha splits: {stats.splits}")
    print(f"  mean multicast fanout: {stats.mean_fanout:.1f} subscribers")
    print("  audience size distribution:")
    for fanout in sorted(fabric.stats.fanout_histogram):
        count = fabric.stats.fanout_histogram[fanout]
        print(f"    {fanout:3d} subscribers x {count} frames")
    print()

    print("hardware picture (gate-delay model):")
    schedule = build_frame_schedule(PORTS)
    tp = pipelined_throughput(PORTS)
    from repro.viz import render_gantt

    print(render_gantt(schedule, width=48))
    print()
    print(f"  frame latency: {schedule.total_time} gate delays")
    print(f"    routing (switch setting): {schedule.routing_time}")
    print(f"    datapath (cell movement): {schedule.datapath_time}")
    print(f"  feedback frame period: {tp.feedback_period} gate delays")
    from repro.core.brsmn import BRSMN

    unrolled = BRSMN(PORTS)
    print(
        f"  (an unrolled BRSMN would sustain one frame per "
        f"{tp.unrolled_period} gate delays — {tp.unrolled_speedup:.1f}x the "
        f"rate — but costs {unrolled.switch_count} switches vs the "
        f"feedback network's {fabric.network.switch_count})"
    )


if __name__ == "__main__":
    main()
