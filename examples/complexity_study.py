#!/usr/bin/env python
"""Reproduce Table 2: complexity comparison of multicast networks.

Evaluates the four Table 2 rows (Nassimi-Sahni, Lee-Oruc, the new
design, the feedback version) — the first two analytically (no
implementation exists; see DESIGN.md), the last two from the measured
gate/switch counts and the instrumented routing-time model — and fits
growth laws to confirm the paper's orders.

Run:  python examples/complexity_study.py
"""

from repro.analysis import best_model, doubling_ratios, format_table
from repro.baselines import PAPER_TABLE2
from repro.hardware import CostModel, TimingModel, measure_phase_counters

SIZES = [2**k for k in range(3, 13)]


def main() -> None:
    print("paper Table 2 (as printed):")
    print(
        format_table(
            ["network", "cost", "depth", "routing time"],
            [[r["network"], r["cost"], r["depth"], r["routing_time"]] for r in PAPER_TABLE2],
        )
    )
    print()

    cm = CostModel()
    tm = TimingModel()
    cost_new = [cm.brsmn_gates(n) for n in SIZES]
    cost_fb = [cm.feedback_gates(n) for n in SIZES]
    depth = [cm.brsmn_depth(n) for n in SIZES]
    rt = [tm.brsmn_routing_time(n) for n in SIZES]

    print("measured sweep (our two implementations):")
    print(
        format_table(
            ["n", "gates (new)", "gates (feedback)", "depth", "routing time"],
            [
                [n, cn, cf, d, t]
                for n, cn, cf, d, t in zip(SIZES, cost_new, cost_fb, depth, rt)
            ],
        )
    )
    print()

    fits = {
        "new design cost": best_model(SIZES, cost_new),
        "feedback cost": best_model(SIZES, cost_fb),
    }
    for label, (name, c, resid) in fits.items():
        print(f"{label:18s}: fits {name:10s} (x{c:.1f}, resid {resid:.3f})")
    print(
        "doubling ratios (new design cost): "
        + ", ".join(f"{r:.3f}" for r in doubling_ratios(SIZES, cost_new))
    )
    print()

    print("routing-time phase structure, measured from the distributed algorithms:")
    for n in (16, 64, 256):
        pc = measure_phase_counters(n, seed=1)
        m = n.bit_length() - 1
        print(
            f"  n={n:4d}: {pc.forward_levels} forward + {pc.backward_levels} "
            f"backward tree levels per BSN (= 2 x 3 x log2 n = {6 * m})"
        )
    print()
    print(
        "conclusion: cost n log^2 n (new) / n log n (feedback), depth log^2 n,\n"
        "routing time log^2 n — matching the paper's Table 2 row for the new\n"
        "design, one log-n factor below the earlier designs' routing time."
    )


if __name__ == "__main__":
    main()
