#!/usr/bin/env python
"""Parallel-computing traffic: FFT butterflies and matrix multiplication.

The paper's introduction names FFT and matrix multiplication among the
parallel algorithms that demand hardware multicast.  This example runs
both communication schedules through a 64-port BRSMN:

* the ``log2 n`` butterfly exchange rounds of an FFT (pure
  permutations — the unicast-regular case), and
* the ``sqrt(n)`` row-broadcast rounds of a SUMMA-style matrix
  multiplication (true multicast, fanout sqrt(n)),

then shows what hardware multicast buys: the row broadcast that takes
one frame here needs ``log2`` of the row size store-and-forward rounds
in software.

Run:  python examples/fft_butterfly.py
"""

from repro import BRSMN, MulticastAssignment, verify_result
from repro.workloads import (
    bit_reversal_permutation,
    fft_butterfly_rounds,
    matrix_multiply_rounds,
    tree_broadcast_rounds,
)

N = 64


def run_schedule(network: BRSMN, name: str, rounds) -> None:
    deliveries = 0
    splits = 0
    for assignment in rounds:
        result = network.route(assignment, mode="selfrouting")
        report = verify_result(result)
        assert report.ok, report.violations
        deliveries += report.deliveries
        splits += result.total_splits
    print(
        f"  {name:28s} {len(rounds):2d} frames, "
        f"{deliveries:4d} deliveries, {splits:3d} alpha splits"
    )


def main() -> None:
    network = BRSMN(N)
    print(f"{N}-port BRSMN, parallel-computing communication schedules:")

    # FFT: bit-reversal reorder + log n butterfly rounds, all unicast.
    run_schedule(network, "FFT bit-reversal", [bit_reversal_permutation(N)])
    run_schedule(network, "FFT butterflies", fft_butterfly_rounds(N))

    # Matrix multiply: one row-broadcast multicast round per grid column.
    run_schedule(network, "matmul row broadcasts", matrix_multiply_rounds(N))

    print()
    print("hardware multicast vs software trees (one-to-all broadcast):")
    hw = MulticastAssignment.broadcast(N)
    result = network.route(hw, mode="selfrouting")
    assert verify_result(result).ok
    sw_rounds = tree_broadcast_rounds(N)
    print(f"  hardware: 1 frame through the BRSMN ({result.total_splits} splits)")
    print(f"  software: {len(sw_rounds)} store-and-forward rounds (binomial tree)")
    print(
        f"  -> a {len(sw_rounds)}x latency advantage at n={N}, growing as log n"
    )


if __name__ == "__main__":
    main()
