#!/usr/bin/env python
"""Recompute and print the full reproduction report.

One command that re-derives every checkable claim of the paper — the
Fig. 2 delivery map, the Fig. 9 SEQ strings, eq. (13), Table 1's
encoding, Table 2's growth shapes, the feedback saving — from the
public API and prints a pass/fail verdict per claim.

Run:  python examples/full_reproduction_report.py
Exit code 0 iff every claim reproduced.
"""

import sys

from repro.analysis import reproduction_report


def main() -> int:
    report = reproduction_report()
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
