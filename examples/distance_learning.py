#!/usr/bin/env python
"""Distance learning: call admission on a contested multicast switch.

The paper's introduction lists distance learning among the services
needing hardware multicast.  This example models a 64-port campus
switch during a busy hour: lecture streams (large multicasts), study
groups (small multicasts) and office-hour calls (unicasts) arrive as a
*request batch* whose destination sets overlap — some students try to
join two sessions on one port.  Admission control
(:mod:`repro.core.admission`) partitions the batch into the fewest
conflict-free frames, each routed and verified through the BRSMN.

Run:  python examples/distance_learning.py
"""

import random

from repro.core.admission import Request, frame_lower_bound, route_requests

N = 64


def build_request_batch(seed: int = 2026) -> list:
    rng = random.Random(seed)
    ports = list(range(N))
    rng.shuffle(ports)
    lecturers = ports[:3]
    students = ports[3:51]
    staff = ports[51:]

    requests = []
    # three concurrent lectures; audiences overlap (double-booked students)
    for i, lecturer in enumerate(lecturers):
        audience = rng.sample(students, 20)
        requests.append(
            Request(lecturer, frozenset(audience), payload=f"lecture-{i}")
        )
    # study groups among students
    for g in range(6):
        members = rng.sample(students, 4)
        requests.append(
            Request(members[0], frozenset(members[1:]), payload=f"group-{g}")
        )
    # office-hour unicasts from staff
    for s, member in zip(staff, rng.sample(students, len(staff))):
        requests.append(Request(s, frozenset({member}), payload=f"office-{s}"))
    return requests


def main() -> None:
    requests = build_request_batch()
    total_fanout = sum(r.fanout for r in requests)
    print(
        f"request batch: {len(requests)} calls, {total_fanout} requested "
        f"deliveries on a {N}-port switch"
    )
    print(f"port-contention lower bound: {frame_lower_bound(requests)} frames")

    for policy in ("first_fit", "largest_first"):
        schedule, deliveries = route_requests(N, requests, policy=policy)
        delivered = sum(len(d) for d in deliveries)
        print(
            f"  {policy:14s}: {schedule.frame_count} frames "
            f"(optimal: {schedule.optimal}), {delivered} deliveries, "
            "all frames verified"
        )

    schedule, deliveries = route_requests(N, requests)
    print("\nframe composition (largest_first):")
    by_frame: dict = {}
    for idx, f in schedule.placement.items():
        by_frame.setdefault(f, []).append(requests[idx])
    for f in sorted(by_frame):
        kinds = [str(r.payload) for r in by_frame[f]]
        fanout = sum(r.fanout for r in by_frame[f])
        print(f"  frame {f}: {len(kinds):2d} calls, fanout {fanout:3d} — {', '.join(sorted(kinds)[:6])}{' ...' if len(kinds) > 6 else ''}")


if __name__ == "__main__":
    main()
