#!/usr/bin/env python
"""Video-conference switching: a telecom session on a 64-port BRSMN.

Section 1 of the paper motivates multicast networks with
"video/teleconference calls".  This example simulates a 64-port switch
hosting six concurrent conferences for 30 frames: each frame, every
conference's current speaker multicasts to the other participants, and
the whole frame is realised as one nonblocking multicast assignment.

The script reports per-frame verification, the fanout distribution,
and the hardware the switch would need, contrasting the BRSMN with a
crossbar of the same size.

Run:  python examples/videoconference.py
"""

from collections import Counter

from repro import BRSMN, verify_result
from repro.baselines import CrossbarMulticast
from repro.workloads import videoconference_frames

PORTS = 64
CONFERENCES = 6
FRAMES = 30


def main() -> None:
    network = BRSMN(PORTS)
    frames = videoconference_frames(
        PORTS, conferences=CONFERENCES, frames=FRAMES, seed=2026
    )

    total_deliveries = 0
    fanouts: Counter = Counter()
    splits = 0
    for t, assignment in enumerate(frames):
        result = network.route(assignment, mode="selfrouting")
        report = verify_result(result)
        assert report.ok, f"frame {t} misrouted: {report.violations}"
        total_deliveries += report.deliveries
        splits += result.total_splits
        for i in assignment.active_inputs:
            fanouts[len(assignment[i])] += 1

    print(f"{FRAMES} frames on a {PORTS}-port switch, {CONFERENCES} conferences")
    print(f"total deliveries: {total_deliveries} (all verified)")
    print(f"alpha splits across the session: {splits}")
    print()
    print("speaker fanout distribution (listeners per multicast):")
    for fanout in sorted(fanouts):
        print(f"  {fanout:3d} listeners: {'#' * fanouts[fanout]} ({fanouts[fanout]})")
    print()

    crossbar = CrossbarMulticast(PORTS)
    print("hardware comparison at this port count:")
    print(f"  BRSMN:    {network.switch_count:6d} switches, depth {network.depth}")
    print(
        f"  crossbar: {crossbar.switch_count:6d} switch-equivalents, depth {crossbar.depth}"
    )
    print(
        "  (the BRSMN's O(n log^2 n) already beats the crossbar's O(n^2) here;"
    )
    print("   see examples/feedback_cost_study.py for the O(n log n) variant)")


if __name__ == "__main__":
    main()
