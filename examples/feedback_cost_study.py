#!/usr/bin/env python
"""Cost study: the feedback implementation (paper Section 7.3, Fig. 13).

Routes the same replicated-database commit workload through the
unrolled BRSMN and the feedback BRSMN, verifies they agree, and prints
the silicon-versus-passes trade-off across sizes — the paper's
``O(n log^2 n)`` -> ``O(n log n)`` headline saving.

Run:  python examples/feedback_cost_study.py
"""

from repro import BRSMN, FeedbackBRSMN, verify_result
from repro.analysis import format_table
from repro.workloads import replicated_db_frames

N = 64


def main() -> None:
    unrolled = BRSMN(N)
    feedback = FeedbackBRSMN(N)
    frames = replicated_db_frames(
        N, shards=6, replicas=4, frames=20, commit_prob=0.8, seed=77
    )

    for t, assignment in enumerate(frames):
        r1 = unrolled.route(assignment, mode="selfrouting")
        r2 = feedback.route(assignment, mode="selfrouting")
        assert verify_result(r1).ok and verify_result(r2).ok
        sig = lambda r: [None if m is None else m.source for m in r.outputs]
        assert sig(r1) == sig(r2), f"frame {t}: implementations disagree!"

    print(
        f"routed {len(frames)} replicated-DB commit frames through both "
        f"implementations at n={N}: identical, verified deliveries"
    )
    last = feedback.route(frames[0], mode="selfrouting")
    print(f"feedback pass schedule ({last.pass_count} passes):")
    for p in last.passes:
        print(
            f"  pass {p.index}: level {p.level} {p.role:9s} "
            f"on {p.slices} x size-{p.slice_size} slices"
        )
    print()

    rows = []
    for m in range(3, 13):
        n = 1 << m
        un = BRSMN(n).switch_count
        fb = FeedbackBRSMN(n).switch_count
        rows.append([n, un, fb, f"{un / fb:.2f}x", 2 * m - 1])
    print("silicon vs passes across sizes:")
    print(
        format_table(
            ["n", "unrolled switches", "feedback switches", "saving", "passes"],
            rows,
        )
    )
    print()
    print(
        "the saving grows ~ log(n)/2: the feedback network re-uses one\n"
        "physical reverse banyan network 2 log2(n) - 1 times per frame."
    )


if __name__ == "__main__":
    main()
