#!/usr/bin/env python
"""Quickstart: route the paper's worked example through an 8x8 BRSMN.

Reproduces Fig. 2 of Yang & Wang's "A New Self-Routing Multicast
Network": the multicast assignment

    { {0,1}, {}, {3,4,7}, {2}, {}, {}, {}, {5,6} }

is self-routed through the binary radix sorting multicast network; the
script prints the assignment, each message's routing-tag sequence, a
stage-by-stage trace, and the verified delivery map.

Run:  python examples/quickstart.py
"""

from repro import (
    BRSMN,
    NetworkConfig,
    TagTree,
    TracingObserver,
    paper_example_assignment,
    verify_result,
)
from repro.core.tags import format_tag_string
from repro.viz import render_assignment, render_delivery, render_trace


def main() -> None:
    assignment = paper_example_assignment()
    print(render_assignment(assignment))
    print()

    # The self-routing tag sequences (Section 7.1) each message carries.
    print("routing tag sequences (SEQ, eq. 12):")
    for i, dests in enumerate(assignment):
        if dests:
            seq = TagTree.from_destinations(assignment.n, dests).to_sequence()
            print(f"  input {i}: {format_tag_string(seq)}")
    print()

    # Build the network from a config object, with an observer attached,
    # and route in self-routing mode with tracing.
    observer = TracingObserver()
    network = BRSMN(NetworkConfig(assignment.n, observer=observer))
    result = network.route(assignment, mode="selfrouting", collect_trace=True)

    print(render_trace(result.trace, max_stages=12))
    print()
    print(render_delivery(result.outputs))
    print()

    report = verify_result(result)
    print(f"verified: {report.ok} ({report.deliveries} deliveries)")
    print(f"alpha splits performed by BSN levels: {result.total_splits}")
    print(f"2x2 switch operations: {result.switch_ops}")
    print(
        f"network: {network.switch_count} switches, depth {network.depth} stages"
    )

    # The observer recorded the frame's lifecycle: per-level spans with
    # wall-clock profiling, straight off the routing pass.
    timeline = observer.timelines()[0]
    print("\nobserved per-level profile:")
    for span in timeline.levels:
        print(
            f"  level {span.level} (size {span.size:2d}, "
            f"{span.blocks} block(s)): {span.splits} splits, "
            f"{span.switch_ops} switch ops, {span.duration_ns / 1e3:.0f} us"
        )
    print(f"end-to-end frame latency: {timeline.duration_ns / 1e3:.0f} us")


if __name__ == "__main__":
    main()
