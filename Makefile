# Canonical targets for the BRSMN reproduction.

.PHONY: install test bench examples report artifacts all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done
	@echo "all examples ran cleanly"

report:
	python -m repro report

# regenerate every table/figure artefact into benchmarks/out/
artifacts: bench
	@ls benchmarks/out/

all: install test bench examples report
