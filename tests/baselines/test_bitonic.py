"""Tests for the Batcher bitonic sorting network substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bitonic import BitonicSorter, bitonic_schedule

from conftest import sizes


class TestSchedule:
    def test_stage_count_formula(self):
        """m(m+1)/2 stages."""
        for m in range(1, 8):
            n = 1 << m
            assert len(bitonic_schedule(n)) == m * (m + 1) // 2

    def test_each_stage_touches_every_lane_once(self):
        for n in (2, 8, 32):
            for stage in bitonic_schedule(n):
                lanes = [x for i, j, _a in stage for x in (i, j)]
                assert sorted(lanes) == list(range(n))

    def test_comparators_per_stage(self):
        for stage in bitonic_schedule(16):
            assert len(stage) == 8


class TestSorterStructure:
    def test_counts(self):
        s = BitonicSorter(16)
        assert s.stage_count == 10
        assert s.comparator_count == 8 * 10
        assert s.depth == s.stage_count

    def test_cost_is_n_log2n(self):
        from repro.analysis.fitting import best_model

        ns = [2**k for k in range(2, 12)]
        name, _c, _r = best_model(
            ns, [BitonicSorter(n).comparator_count for n in ns]
        )
        assert name == "n log^2 n"


class TestSorting:
    @settings(max_examples=300)
    @given(sizes(max_m=7), st.data())
    def test_sorts_random_integers(self, n, data):
        items = data.draw(
            st.lists(
                st.integers(min_value=-100, max_value=100),
                min_size=n,
                max_size=n,
            )
        )
        assert BitonicSorter(n).sort(items, key=lambda x: x) == sorted(items)

    @settings(max_examples=100)
    @given(sizes(max_m=6), st.data())
    def test_zero_one_principle(self, n, data):
        """Sorting networks are correct iff correct on 0/1 inputs."""
        bits = data.draw(
            st.lists(st.integers(min_value=0, max_value=1), min_size=n, max_size=n)
        )
        out = BitonicSorter(n).sort(bits, key=lambda x: x)
        assert out == sorted(bits)

    def test_sorts_by_key_carrying_payload(self):
        items = [("d", 3), ("a", 0), ("c", 2), ("b", 1)]
        out = BitonicSorter(4).sort(items, key=lambda t: t[1])
        assert [x[0] for x in out] == ["a", "b", "c", "d"]

    def test_permutation_preserved(self):
        items = [5, 3, 5, 1]
        out = BitonicSorter(4).sort(items, key=lambda x: x)
        assert sorted(out) == sorted(items)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            BitonicSorter(4).sort([1, 2, 3], key=lambda x: x)
