"""Tests for the crossbar multicast baseline."""

import pytest
from hypothesis import given, settings

from repro.baselines.crossbar import CrossbarMulticast
from repro.core.multicast import MulticastAssignment, paper_example_assignment
from repro.core.verification import verify_result
from repro.errors import InvalidAssignmentError

from conftest import assignments


class TestRouting:
    @settings(max_examples=200)
    @given(assignments(max_m=6))
    def test_all_assignments_realised(self, a):
        res = CrossbarMulticast(a.n).route(a)
        assert verify_result(res).ok

    def test_paper_example(self):
        res = CrossbarMulticast(8).route(paper_example_assignment())
        assert verify_result(res).ok

    def test_payloads(self):
        res = CrossbarMulticast(4).route(
            MulticastAssignment(4, [{1, 2}, None, None, None]),
            payloads=["hi", None, None, None],
        )
        assert res.delivered[1].payload == "hi"

    def test_size_mismatch(self):
        with pytest.raises(InvalidAssignmentError):
            CrossbarMulticast(8).route(MulticastAssignment.identity(4))


class TestCost:
    def test_quadratic_crosspoints(self):
        assert CrossbarMulticast(8).crosspoint_count == 64
        assert CrossbarMulticast(64).crosspoint_count == 4096

    def test_unit_depth(self):
        assert CrossbarMulticast(128).depth == 1

    def test_crossbar_loses_to_brsmn_at_scale(self):
        """The motivating cost comparison: n^2 overtakes n log^2 n."""
        from repro.core.brsmn import BRSMN

        small, large = 8, 1024
        assert CrossbarMulticast(small).switch_count < BRSMN(small).switch_count
        assert CrossbarMulticast(large).switch_count > BRSMN(large).switch_count
