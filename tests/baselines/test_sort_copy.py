"""Tests for the copy + bitonic-sort multicast baseline."""

import pytest
from hypothesis import given, settings

from repro.baselines.sort_copy import CopySortMulticast
from repro.core.brsmn import BRSMN
from repro.core.multicast import MulticastAssignment, paper_example_assignment
from repro.core.verification import verify_result
from repro.errors import InvalidAssignmentError

from conftest import assignments


class TestRouting:
    @settings(max_examples=200, deadline=None)
    @given(assignments(max_m=5))
    def test_all_assignments_realised(self, a):
        res = CopySortMulticast(a.n).route(a)
        assert verify_result(res).ok

    def test_paper_example(self):
        res = CopySortMulticast(8).route(paper_example_assignment())
        assert verify_result(res).ok

    def test_broadcast(self):
        res = CopySortMulticast(16).route(MulticastAssignment.broadcast(16))
        assert len(res.delivered) == 16

    def test_empty(self):
        res = CopySortMulticast(8).route(MulticastAssignment.empty(8))
        assert all(m is None for m in res.outputs)

    @settings(max_examples=60, deadline=None)
    @given(assignments(max_m=5))
    def test_agrees_with_brsmn(self, a):
        """Independent implementations must deliver identical frames."""
        r1 = CopySortMulticast(a.n).route(a)
        r2 = BRSMN(a.n).route(a, mode="selfrouting")
        assert [
            None if m is None else (m.source, m.payload) for m in r1.outputs
        ] == [None if m is None else (m.source, m.payload) for m in r2.outputs]

    def test_size_mismatch(self):
        with pytest.raises(InvalidAssignmentError):
            CopySortMulticast(8).route(MulticastAssignment.identity(4))


class TestCost:
    def test_components(self):
        net = CopySortMulticast(16)
        assert net.switch_count == net.copy_network.switch_count + net.sorter.comparator_count
        assert net.depth == net.copy_network.depth + net.sorter.depth

    def test_same_cost_class_as_brsmn(self):
        """Both are Theta(n log^2 n) — same Table 2 cost column."""
        from repro.analysis.fitting import best_model

        ns = [2**k for k in range(3, 12)]
        name, _c, _r = best_model(
            ns, [CopySortMulticast(n).switch_count for n in ns]
        )
        assert name == "n log^2 n"
