"""Tests for the nonblocking copy network."""

import pytest
from hypothesis import given, settings

from repro.baselines.copy_network import CopyNetwork
from repro.core.brsmn import inject_messages
from repro.core.message import Message
from repro.errors import BlockingError, InvalidAssignmentError

from conftest import assignments


class TestRunningSums:
    def test_prefix_intervals(self):
        cn = CopyNetwork(8)
        fans = [2, 0, 3, 0, 1, 0, 0, 0]
        assert cn.running_sums(fans)[:5] == [
            (0, 2), (2, 2), (2, 5), (5, 5), (5, 6),
        ]

    def test_overflow_detected(self):
        cn = CopyNetwork(4)
        with pytest.raises(BlockingError):
            cn.running_sums([2, 2, 1, 0])

    def test_exact_capacity_ok(self):
        cn = CopyNetwork(4)
        cn.running_sums([2, 2, 0, 0])

    def test_negative_fanout_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            CopyNetwork(4).running_sums([-1, 0, 0, 0])

    def test_wrong_length_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            CopyNetwork(4).running_sums([1, 1])


class TestReplicate:
    @settings(max_examples=200)
    @given(assignments(max_m=5))
    def test_copy_counts_and_destinations(self, a):
        """Each message yields exactly |I_i| copies, collectively
        carrying its destination set."""
        cn = CopyNetwork(a.n)
        frame = inject_messages(a)
        out = cn.replicate(frame)
        by_source = {}
        for cell in out:
            if cell is not None:
                by_source.setdefault(cell.message.source, []).append(cell)
        for i, dests in enumerate(a.destinations):
            if dests:
                copies = by_source.get(i, [])
                assert len(copies) == len(dests)
                assert {c.destination for c in copies} == set(dests)
            else:
                assert i not in by_source

    @settings(max_examples=100)
    @given(assignments(max_m=5))
    def test_copies_contiguous(self, a):
        """A message's copies sit on consecutive copy-network outputs,
        in ascending destination order (the running-sum discipline)."""
        cn = CopyNetwork(a.n)
        out = cn.replicate(inject_messages(a))
        runs = {}
        for pos, cell in enumerate(out):
            if cell is not None:
                runs.setdefault(cell.message.source, []).append((pos, cell))
        for src, entries in runs.items():
            positions = [p for p, _c in entries]
            assert positions == list(range(positions[0], positions[0] + len(positions)))
            dests = [c.destination for _p, c in entries]
            assert dests == sorted(dests)
            indices = [c.copy_index for _p, c in entries]
            assert indices == list(range(len(indices)))

    def test_broadcast_fills_everything(self):
        n = 8
        cn = CopyNetwork(n)
        frame = [Message(source=0, destinations=frozenset(range(n)))] + [None] * (n - 1)
        out = cn.replicate(frame)
        assert all(c is not None and c.message.source == 0 for c in out)

    def test_structure(self):
        cn = CopyNetwork(16)
        assert cn.switch_count == 8 * 4
        assert cn.depth == 8
