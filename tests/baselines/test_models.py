"""Tests for the analytic Table 2 models."""

import math

from repro.baselines.models import PAPER_TABLE2, TABLE2_MODELS, table2_rows


class TestTableShape:
    def test_four_rows(self):
        assert len(TABLE2_MODELS) == 4
        names = [m.name for m in TABLE2_MODELS]
        assert names == [
            "Nassimi and Sahni's",
            "Lee and Oruc's",
            "New design",
            "Feedback version",
        ]

    def test_printed_formulas_match_paper(self):
        assert PAPER_TABLE2[0]["routing_time"] == "log^3 n"
        assert PAPER_TABLE2[2]["routing_time"] == "log^2 n"
        assert PAPER_TABLE2[3]["cost"] == "n log n"
        # depth column identical across all rows
        assert {r["depth"] for r in PAPER_TABLE2} == {"log^2 n"}


class TestModelEvaluation:
    def test_values_at_n(self):
        rows = {r["network"]: r for r in table2_rows(256)}
        lg = 8.0
        assert rows["New design"]["cost"] == 256 * lg**2
        assert rows["Feedback version"]["cost"] == 256 * lg
        assert rows["Lee and Oruc's"]["routing_time"] == lg**3
        assert rows["New design"]["routing_time"] == lg**2

    def test_new_design_strictly_faster_routing(self):
        """The paper's headline comparison: log^2 vs log^3 routing."""
        for n in (8, 64, 1024, 2**16):
            rows = {r["network"]: r for r in table2_rows(n)}
            if n > 2:
                assert (
                    rows["New design"]["routing_time"]
                    < rows["Nassimi and Sahni's"]["routing_time"]
                )

    def test_feedback_cheapest_cost(self):
        for n in (8, 1024):
            rows = {r["network"]: r for r in table2_rows(n)}
            costs = [r["cost"] for r in rows.values()]
            assert rows["Feedback version"]["cost"] == min(costs)

    def test_routing_advantage_grows(self):
        """log^3/log^2 = log n: the gap widens with network size."""
        gaps = []
        for n in (16, 256, 4096):
            rows = {r["network"]: r for r in table2_rows(n)}
            gaps.append(
                rows["Lee and Oruc's"]["routing_time"]
                / rows["New design"]["routing_time"]
            )
        assert gaps == sorted(gaps)
        assert math.isclose(gaps[-1], math.log2(4096))
