"""Tests for the Cheng-Chen permutation network restriction (ref. [14])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cheng_chen import ChengChenPermutationNetwork
from repro.core.multicast import MulticastAssignment
from repro.core.verification import verify_result
from repro.errors import InvalidAssignmentError
from repro.workloads.random_assignments import (
    random_partial_permutation,
    random_permutation,
)

from conftest import sizes


class TestPermutationRouting:
    @settings(max_examples=100, deadline=None)
    @given(sizes(max_m=6), st.integers(min_value=0, max_value=2**31))
    def test_random_full_permutations(self, n, seed):
        a = random_permutation(n, seed=seed)
        net = ChengChenPermutationNetwork(n)
        assert verify_result(net.route(a)).ok

    def test_partial_permutations(self):
        for seed in range(10):
            a = random_partial_permutation(32, load=0.6, seed=seed)
            net = ChengChenPermutationNetwork(32)
            assert verify_result(net.route(a)).ok

    def test_identity_and_reversal(self):
        n = 16
        net = ChengChenPermutationNetwork(n)
        assert verify_result(net.route(MulticastAssignment.identity(n))).ok
        rev = MulticastAssignment.from_permutation(list(reversed(range(n))))
        assert verify_result(net.route(rev)).ok

    def test_no_splits_ever(self):
        net = ChengChenPermutationNetwork(32)
        res = net.route(random_permutation(32, seed=3))
        assert res.total_splits == 0


class TestUnicastOnly:
    def test_multicast_rejected(self):
        net = ChengChenPermutationNetwork(8)
        a = MulticastAssignment(8, [{0, 1}, None, None, None, None, None, None, None])
        with pytest.raises(InvalidAssignmentError):
            net.route(a)


class TestCostClass:
    def test_single_rbn_cost(self):
        """[14]'s O(n log n): one physical RBN."""
        assert ChengChenPermutationNetwork(256).switch_count == 128 * 8

    def test_same_cost_as_feedback_brsmn(self):
        """Paper Section 7.4: the feedback BRSMN matches Cheng-Chen's
        cost order — here they are literally equal switch counts."""
        from repro.core.feedback import FeedbackBRSMN

        for n in (8, 64, 1024):
            assert (
                ChengChenPermutationNetwork(n).switch_count
                == FeedbackBRSMN(n).switch_count
            )
