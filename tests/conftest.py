"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
from typing import List, Optional

import pytest
from hypothesis import strategies as st

from repro.core.multicast import MulticastAssignment
from repro.core.tags import Tag


def make_random_assignment(n: int, rng: random.Random) -> MulticastAssignment:
    """A uniformly random valid multicast assignment (test helper)."""
    outs = list(range(n))
    rng.shuffle(outs)
    k = rng.randrange(0, n + 1)
    used = outs[:k]
    ins = list(range(n))
    rng.shuffle(ins)
    dests: List[Optional[List[int]]] = [None] * n
    i = 0
    while used:
        take = rng.randrange(1, len(used) + 1)
        dests[ins[i]] = used[:take]
        used = used[take:]
        i += 1
    return MulticastAssignment(n, dests)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for non-hypothesis randomized tests."""
    return random.Random(0xBA27)


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------

def sizes(min_m: int = 1, max_m: int = 6) -> st.SearchStrategy[int]:
    """Network sizes 2^min_m .. 2^max_m."""
    return st.integers(min_value=min_m, max_value=max_m).map(lambda m: 1 << m)


@st.composite
def assignments(draw, min_m: int = 1, max_m: int = 5) -> MulticastAssignment:
    """Random valid multicast assignments as a hypothesis strategy."""
    n = draw(sizes(min_m, max_m))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return make_random_assignment(n, random.Random(seed))


@st.composite
def bsn_tag_vectors(draw, min_m: int = 1, max_m: int = 5) -> List[Tag]:
    """Tag vectors satisfying the BSN input constraints (eqs. 1-3)."""
    n = draw(sizes(min_m, max_m))
    half = n // 2
    # Draw alpha count first, then fit 0s and 1s under the constraint.
    na = draw(st.integers(min_value=0, max_value=half))
    n0 = draw(st.integers(min_value=0, max_value=half - na))
    n1 = draw(st.integers(min_value=0, max_value=half - na))
    ne = n - n0 - n1 - na
    if ne < na:  # eq. (3) follows from (1)+(2); keep explicit guard
        n0 = min(n0, half - na)
        ne = n - n0 - n1 - na
    tags = (
        [Tag.ZERO] * n0 + [Tag.ONE] * n1 + [Tag.ALPHA] * na + [Tag.EPS] * ne
    )
    perm = draw(st.permutations(tags))
    return list(perm)


@st.composite
def binary_tag_vectors(draw, min_m: int = 1, max_m: int = 6) -> List[Tag]:
    """Arbitrary 0/1 tag vectors (for bit sorting)."""
    n = draw(sizes(min_m, max_m))
    return draw(
        st.lists(
            st.sampled_from([Tag.ZERO, Tag.ONE]), min_size=n, max_size=n
        )
    )
