"""Public API surface: everything advertised imports and works."""

import importlib

import pytest

import repro

# The supported top-level surface, exactly.  Additions here are API
# commitments: anything reachable only through subpackages (fastplan,
# fast_scatter, per-switch internals) is private and free to change.
STABLE_API = [
    "AdmissionGate",
    "AdmissionPolicy",
    "BRSMN",
    "BinarySplittingNetwork",
    "BreakerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "ClusterConfig",
    "ClusterStats",
    "CompositeObserver",
    "ControlPlane",
    "ControlPolicy",
    "DeadlineBudget",
    "DegradedResult",
    "FabricCluster",
    "FabricReplica",
    "FabricSnapshot",
    "FabricStats",
    "FaultKind",
    "FaultPlan",
    "FeedbackBRSMN",
    "Message",
    "MetricsObserver",
    "MetricsRegistry",
    "MulticastAssignment",
    "MulticastFabric",
    "NetworkConfig",
    "NullSink",
    "Observer",
    "QueueingSimulator",
    "ReplicaState",
    "ResilienceEvent",
    "RetryPolicy",
    "RollingRestart",
    "RoutingResult",
    "ShedFrame",
    "SignalWindow",
    "Tag",
    "TagTree",
    "TracingObserver",
    "build_network",
    "paper_example_assignment",
    "route_multicast",
    "route_resilient",
    "verify_result",
    "__version__",
]


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_is_exactly_the_stable_surface(self):
        assert repro.__all__ == STABLE_API

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_fast_engine_internals_stay_private(self):
        """Compiled-plan internals are reachable via subpackages only."""
        for name in ("compile_frame_plan", "FramePlan", "PlanCache", "fastplan"):
            assert name not in repro.__all__
            assert not hasattr(repro, name), name

    def test_quickstart_snippet(self):
        """The README quickstart, verbatim."""
        from repro import MulticastAssignment, route_multicast

        assignment = MulticastAssignment(
            8, [{0, 1}, None, {3, 4, 7}, {2}, None, None, None, {5, 6}]
        )
        result = route_multicast(8, assignment)
        assert {o: m.source for o, m in result.delivered.items()} == {
            0: 0, 1: 0, 2: 3, 3: 2, 4: 2, 5: 7, 6: 7, 7: 2,
        }


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.obs",
        "repro.faults",
        "repro.resilience",
        "repro.control",
        "repro.cluster",
        "repro.rbn",
        "repro.hardware",
        "repro.baselines",
        "repro.workloads",
        "repro.analysis",
        "repro.viz",
        "repro.cli",
        "repro.errors",
    ],
)
class TestSubpackages:
    def test_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        assert hasattr(mod, "__all__"), module
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"

    def test_module_docstrings(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20


class TestDocstringCoverage:
    def test_every_public_callable_documented(self):
        """Deliverable (e): doc comments on every public item."""
        undocumented = []
        for module_name in (
            "repro.core", "repro.obs", "repro.faults", "repro.resilience",
            "repro.control", "repro.cluster", "repro.rbn", "repro.hardware", "repro.baselines",
            "repro.workloads", "repro.analysis", "repro.viz",
        ):
            mod = importlib.import_module(module_name)
            for name in mod.__all__:
                obj = getattr(mod, name)
                if type(obj).__module__ == "typing":
                    continue  # type aliases carry no docstring of their own
                if callable(obj) and not isinstance(obj, type):
                    if not getattr(obj, "__doc__", None):
                        undocumented.append(f"{module_name}.{name}")
                elif isinstance(obj, type):
                    if not obj.__doc__:
                        undocumented.append(f"{module_name}.{name}")
        assert not undocumented, undocumented

    def test_public_methods_documented(self):
        """Spot-check classes central to the API."""
        from repro import BRSMN, FeedbackBRSMN, MulticastAssignment, TagTree

        for cls in (BRSMN, FeedbackBRSMN, MulticastAssignment, TagTree):
            for name, member in vars(cls).items():
                if name.startswith("_") or not callable(member):
                    continue
                assert member.__doc__, f"{cls.__name__}.{name}"
