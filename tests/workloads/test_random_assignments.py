"""Tests for the random assignment generators."""

import numpy as np
import pytest

from repro.workloads.random_assignments import (
    assignment_suite,
    broadcast_heavy,
    fixed_fanout_multicast,
    geometric_multicast,
    random_multicast,
    random_partial_permutation,
    random_permutation,
)


class TestRandomMulticast:
    def test_load_respected(self):
        for load in (0.0, 0.25, 0.5, 1.0):
            a = random_multicast(64, load=load, seed=1)
            assert a.total_fanout == round(load * 64)

    def test_determinism(self):
        a = random_multicast(32, seed=42)
        b = random_multicast(32, seed=42)
        assert a.destinations == b.destinations

    def test_different_seeds_differ(self):
        a = random_multicast(64, seed=1)
        b = random_multicast(64, seed=2)
        assert a.destinations != b.destinations

    def test_max_fanout_cap(self):
        a = random_multicast(64, load=1.0, seed=3, max_fanout=4)
        assert a.max_fanout <= 4

    def test_load_bounds_checked(self):
        with pytest.raises(ValueError):
            random_multicast(8, load=1.5)

    def test_generator_accepted(self):
        rng = np.random.default_rng(0)
        a = random_multicast(16, seed=rng)
        b = random_multicast(16, seed=rng)  # consumes the stream
        assert a.n == b.n == 16


class TestPermutations:
    def test_full_permutation(self):
        a = random_permutation(32, seed=5)
        assert a.is_permutation
        assert a.total_fanout == 32
        assert a.used_outputs == frozenset(range(32))

    def test_partial_permutation_load(self):
        a = random_partial_permutation(32, load=0.5, seed=5)
        assert a.is_permutation
        assert a.total_fanout == 16


class TestStructuredFanouts:
    def test_fixed_fanout(self):
        a = fixed_fanout_multicast(32, fanout=4, seed=6)
        active = [len(d) for d in a.destinations if d]
        assert all(f == 4 for f in active)
        assert len(active) == 8

    def test_fixed_fanout_bounds(self):
        with pytest.raises(ValueError):
            fixed_fanout_multicast(8, fanout=0)
        with pytest.raises(ValueError):
            fixed_fanout_multicast(8, fanout=9)

    def test_geometric_full_load(self):
        a = geometric_multicast(64, p=0.5, load=1.0, seed=7)
        assert a.total_fanout == 64

    def test_geometric_p_checked(self):
        with pytest.raises(ValueError):
            geometric_multicast(8, p=0.0)

    def test_broadcast_heavy_single(self):
        a = broadcast_heavy(16, broadcasters=1, seed=8)
        assert a.max_fanout == 16
        assert len(a.active_inputs) == 1

    def test_broadcast_heavy_even_split(self):
        a = broadcast_heavy(16, broadcasters=4, seed=8)
        assert sorted(len(d) for d in a.destinations if d) == [4, 4, 4, 4]
        assert a.used_outputs == frozenset(range(16))


class TestSuite:
    def test_suite_is_diverse_and_valid(self):
        suite = assignment_suite(32, seed=9)
        assert len(suite) >= 8
        assert any(a.is_permutation for a in suite)
        assert any(a.max_fanout >= 8 for a in suite)
        # all valid by construction (MulticastAssignment validates)

    def test_suite_deterministic(self):
        s1 = assignment_suite(16, seed=3)
        s2 = assignment_suite(16, seed=3)
        assert [a.destinations for a in s1] == [a.destinations for a in s2]
