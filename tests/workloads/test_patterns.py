"""Tests for the parallel-computing multicast patterns."""

import pytest

from repro.workloads.patterns import (
    barrier_fanout_rounds,
    bit_reversal_permutation,
    fft_butterfly_rounds,
    matrix_multiply_rounds,
    shuffle_permutation,
    transpose_permutation,
)


class TestMatrixMultiply:
    def test_round_count_and_fanout(self):
        rounds = matrix_multiply_rounds(16)
        assert len(rounds) == 4  # sqrt(16) rounds
        for a in rounds:
            fans = [len(d) for d in a.destinations if d]
            assert fans == [4, 4, 4, 4]  # each row broadcast covers a row

    def test_each_round_covers_all_outputs(self):
        for a in matrix_multiply_rounds(16):
            assert a.used_outputs == frozenset(range(16))

    def test_sources_walk_the_columns(self):
        rounds = matrix_multiply_rounds(16)
        # round k's sources are column k: {k, k+4, k+8, k+12}
        for k, a in enumerate(rounds):
            assert set(a.active_inputs) == {k + 4 * i for i in range(4)}

    def test_odd_power_rejected(self):
        with pytest.raises(ValueError):
            matrix_multiply_rounds(8)


class TestFftButterfly:
    def test_round_structure(self):
        rounds = fft_butterfly_rounds(16)
        assert len(rounds) == 4
        for k, a in enumerate(rounds):
            assert a.is_permutation
            for i, d in enumerate(a.destinations):
                assert set(d) == {i ^ (1 << k)}

    def test_all_rounds_full_load(self):
        for a in fft_butterfly_rounds(8):
            assert a.total_fanout == 8


class TestBarrier:
    def test_rounds_cover_everyone_once(self):
        n = 16
        rounds = barrier_fanout_rounds(n)
        assert len(rounds) == 4
        notified = set()
        for a in rounds:
            for d in a.used_outputs:
                assert d not in notified
                notified.add(d)
        assert notified | {0} == set(range(n)) | {0}
        assert len(notified) == n - 1 or len(notified) == n

    def test_doubling_release_wave(self):
        rounds = barrier_fanout_rounds(16)
        assert [a.total_fanout for a in rounds] == [1, 2, 4, 8]

    def test_root_bounds(self):
        with pytest.raises(ValueError):
            barrier_fanout_rounds(8, root=8)


class TestClassicPermutations:
    def test_transpose_involution(self):
        a = transpose_permutation(16)
        perm = {i: next(iter(d)) for i, d in enumerate(a.destinations)}
        for i, j in perm.items():
            assert perm[j] == i

    def test_transpose_needs_square_grid(self):
        with pytest.raises(ValueError):
            transpose_permutation(8)

    def test_shuffle_matches_rbn_shuffle(self):
        from repro.rbn.permutations import shuffle

        a = shuffle_permutation(16)
        for i, d in enumerate(a.destinations):
            assert set(d) == {shuffle(i, 16)}

    def test_bit_reversal_involution(self):
        a = bit_reversal_permutation(32)
        perm = {i: next(iter(d)) for i, d in enumerate(a.destinations)}
        for i, j in perm.items():
            assert perm[j] == i
