"""Tests for hotspot / tenant / incast workloads."""

import pytest

from repro.core.brsmn import BRSMN
from repro.core.verification import verify_result
from repro.workloads.hotspot import (
    hotspot_multicast,
    incast_rounds,
    tenant_partitioned,
)


class TestHotspot:
    def test_hot_outputs_always_used(self):
        for seed in range(5):
            a = hotspot_multicast(32, hot_outputs=4, seed=seed)
            # exactly 4 + used-cold outputs; at least the hot 4 are used
            assert len(a.used_outputs) >= 4

    def test_skew_reduces_load(self):
        light = hotspot_multicast(64, hot_outputs=4, hot_fraction=0.9, seed=1)
        heavy = hotspot_multicast(64, hot_outputs=4, hot_fraction=0.1, seed=1)
        assert light.total_fanout < heavy.total_fanout

    def test_routes_cleanly(self):
        for seed in range(5):
            a = hotspot_multicast(64, hot_outputs=8, seed=seed)
            assert verify_result(BRSMN(64).route(a, mode="selfrouting")).ok

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            hotspot_multicast(8, hot_outputs=0)
        with pytest.raises(ValueError):
            hotspot_multicast(8, hot_fraction=1.5)


class TestTenantPartitioned:
    def test_traffic_stays_in_partition(self):
        a = tenant_partitioned(32, tenants=4, seed=2)
        part = 8
        for i, dests in enumerate(a.destinations):
            if dests:
                tenant = i // part
                assert all(d // part == tenant for d in dests), (i, dests)

    def test_all_tenants_active(self):
        a = tenant_partitioned(32, tenants=4, load=1.0, seed=3)
        active_tenants = {i // 8 for i in a.active_inputs}
        assert active_tenants == {0, 1, 2, 3}

    def test_routes_cleanly(self):
        a = tenant_partitioned(64, tenants=4, seed=4)
        assert verify_result(BRSMN(64).route(a, mode="selfrouting")).ok

    def test_bad_partitioning_rejected(self):
        with pytest.raises(ValueError):
            tenant_partitioned(32, tenants=3)
        with pytest.raises(ValueError):
            tenant_partitioned(8, tenants=8)  # partitions of size 1


class TestIncast:
    def test_sink_hit_every_round(self):
        rounds = incast_rounds(16, sink=5, senders=10, seed=5)
        assert len(rounds) == 10
        for a in rounds:
            inv = a.inverse_map()
            assert 5 in inv

    def test_distinct_senders_cycle(self):
        rounds = incast_rounds(8, sink=0, seed=6)
        senders = [a.inverse_map()[0] for a in rounds]
        assert len(set(senders)) == 7

    def test_background_present(self):
        rounds = incast_rounds(32, sink=0, senders=4, seed=7)
        for a in rounds:
            assert a.total_fanout > 1  # more than just the incast flow

    def test_routes_cleanly(self):
        net = BRSMN(16)
        for a in incast_rounds(16, sink=3, senders=6, seed=8):
            assert verify_result(net.route(a, mode="selfrouting")).ok

    def test_sink_bounds(self):
        with pytest.raises(ValueError):
            incast_rounds(8, sink=8)
