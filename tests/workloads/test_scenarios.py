"""Tests for the telecom scenario generators."""

import pytest

from repro.workloads.scenarios import (
    replicated_db_frames,
    videoconference_frames,
    vod_frames,
)


class TestVideoconference:
    def test_frame_count(self):
        frames = videoconference_frames(32, conferences=4, frames=10, seed=1)
        assert len(frames) == 10

    def test_one_speaker_per_conference(self):
        frames = videoconference_frames(32, conferences=4, frames=20, seed=2)
        for a in frames:
            assert len(a.active_inputs) == 4

    def test_speaker_not_in_audience(self):
        frames = videoconference_frames(16, conferences=2, frames=20, seed=3)
        for a in frames:
            for i in a.active_inputs:
                assert i not in a[i]

    def test_groups_stable_across_frames(self):
        """Conference membership persists; only the speaker rotates."""
        frames = videoconference_frames(16, conferences=2, frames=30, seed=4)
        groups = [frozenset(a[i] | {i}) for a in frames for i in a.active_inputs]
        assert len(set(groups)) == 2

    def test_capacity_checked(self):
        with pytest.raises(ValueError):
            videoconference_frames(8, conferences=5)

    def test_deterministic(self):
        f1 = videoconference_frames(16, 2, 5, seed=7)
        f2 = videoconference_frames(16, 2, 5, seed=7)
        assert [a.destinations for a in f1] == [a.destinations for a in f2]


class TestVod:
    def test_servers_are_the_only_sources(self):
        frames = vod_frames(32, servers=3, frames=10, seed=5)
        sources = set()
        for a in frames:
            sources |= set(a.active_inputs)
        assert len(sources) <= 3

    def test_subscribers_covered(self):
        frames = vod_frames(32, servers=2, frames=5, seed=6)
        for a in frames:
            # every subscriber hears exactly one channel
            assert a.total_fanout == 30

    def test_server_bounds(self):
        with pytest.raises(ValueError):
            vod_frames(8, servers=8)


class TestReplicatedDb:
    def test_commit_trees_match_topology(self):
        frames = replicated_db_frames(
            32, shards=4, replicas=3, frames=20, commit_prob=1.0, seed=7
        )
        for a in frames:
            assert len(a.active_inputs) == 4
            for i in a.active_inputs:
                assert len(a[i]) == 3

    def test_commit_probability_zero(self):
        frames = replicated_db_frames(
            32, shards=4, replicas=3, frames=5, commit_prob=0.0, seed=8
        )
        assert all(not a.active_inputs for a in frames)

    def test_capacity_checked(self):
        with pytest.raises(ValueError):
            replicated_db_frames(8, shards=4, replicas=3)

    def test_groups_disjoint(self):
        frames = replicated_db_frames(
            64, shards=5, replicas=4, frames=10, commit_prob=1.0, seed=9
        )
        for a in frames:
            seen = set()
            for i in a.active_inputs:
                assert not (a[i] & seen)
                seen |= a[i]
