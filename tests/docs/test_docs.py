"""Documentation invariants: links, the index, generated sections.

``scripts/check_docs.py`` runs the heavyweight version in CI (it also
executes every usage example); these tests keep the cheap structural
invariants inside the tier-1 suite so a broken page fails fast locally.
"""

import pathlib
import re

import pytest

from repro.obs.reference import (
    BEGIN_MARK,
    END_MARK,
    metrics_reference_markdown,
    update_generated_section,
)

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
DOCS = REPO / "docs"
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _pages():
    return sorted(DOCS.glob("*.md"))


class TestLinks:
    @pytest.mark.parametrize(
        "page", [p.name for p in sorted(DOCS.glob("*.md"))] + ["README.md"]
    )
    def test_relative_links_resolve(self, page):
        path = (DOCS / page) if page != "README.md" else (REPO / page)
        broken = []
        for match in LINK_RE.finditer(path.read_text()):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if rel and not (path.parent / rel).resolve().exists():
                broken.append(target)
        assert not broken, broken


class TestIndex:
    def test_index_lists_every_page(self):
        text = (DOCS / "index.md").read_text()
        linked = {
            m.group(1).split("#")[0]
            for m in LINK_RE.finditer(text)
            if m.group(1).endswith(".md")
        }
        for page in _pages():
            if page.name == "index.md":
                continue
            assert page.name in linked, f"docs/index.md misses {page.name}"

    def test_index_summarises_each_link(self):
        # every docs bullet carries a summary after the em-dash
        # (summaries may wrap onto indented continuation lines)
        text = (DOCS / "index.md").read_text()
        bullets = re.findall(
            r"^\* \[([^\]]+)\]\([^)]+\) — ((?:.+\n?)(?:  \S.*\n?)*)",
            text,
            re.M,
        )
        assert len(bullets) >= len(_pages()) - 1
        for name, summary in bullets:
            assert len(" ".join(summary.split())) > 10, name


class TestMetricsReference:
    def test_generated_section_matches_registry(self):
        """The committed table equals a fresh rendering — no drift."""
        text = (DOCS / "metrics_reference.md").read_text()
        assert update_generated_section(text) == text, (
            "docs/metrics_reference.md is stale; regenerate with "
            "`python -m repro.obs.reference docs/metrics_reference.md`"
        )

    def test_every_family_has_the_repro_prefix(self):
        for line in metrics_reference_markdown().splitlines()[2:]:
            name = line.split("|")[1].strip()
            assert name.startswith("`repro_"), name

    def test_fault_families_present(self):
        table = metrics_reference_markdown()
        for family in (
            "repro_faults_injected_total",
            "repro_faults_detected_total",
            "repro_faults_retries_total",
            "repro_faults_recovered_terminals_total",
            "repro_faults_lost_terminals_total",
            "repro_faults_quarantines_total",
            "repro_faults_plane_state",
        ):
            assert f"`{family}`" in table, family

    def test_process_families_present(self):
        table = metrics_reference_markdown()
        for family in (
            "repro_parallel_proc_tasks_total",
            "repro_parallel_proc_workers",
            "repro_parallel_proc_busy",
            "repro_parallel_proc_respawns_total",
            "repro_parallel_proc_envelopes_total",
            "repro_parallel_proc_shm_bytes_total",
        ):
            assert f"`{family}`" in table, family

    def test_update_requires_markers(self):
        with pytest.raises(ValueError, match="markers"):
            update_generated_section("# no markers here\n")

    def test_markers_appear_once_in_order(self):
        text = (DOCS / "metrics_reference.md").read_text()
        assert text.count(BEGIN_MARK) == 1
        assert text.count(END_MARK) == 1
        assert text.index(BEGIN_MARK) < text.index(END_MARK)


class TestNoStaleKwargs:
    @pytest.mark.parametrize("page", ["usage.md", "../README.md"])
    def test_no_deprecated_constructor_kwargs(self, page):
        """Construction kwargs belong on NetworkConfig, not calls."""
        text = (DOCS / page).read_text()
        stale = [
            m.group(0)
            for m in re.finditer(
                r"(\w+)\(\s*\d+\s*,\s*(?:implementation|engine)\s*=", text
            )
            if m.group(1) != "NetworkConfig"
        ]
        assert not stale, stale
