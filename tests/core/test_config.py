"""NetworkConfig: validation, construction, and the deprecation path."""

import pytest

from repro.core.brsmn import BRSMN
from repro.core.config import IMPLEMENTATIONS, ENGINES, NetworkConfig
from repro.core.fabric import MulticastFabric
from repro.core.feedback import FeedbackBRSMN
from repro.core.routing import build_network, route_multicast
from repro.errors import ReproDeprecationWarning
from repro.obs import NullSink, TracingObserver

EXAMPLE = {0: [1, 2], 3: [0]}


class TestValidation:
    def test_defaults(self):
        cfg = NetworkConfig(8)
        assert cfg.implementation == "unrolled"
        assert cfg.engine == "reference"
        assert cfg.plan_cache_size == 256
        assert cfg.observer is None

    def test_registered_vocabularies(self):
        assert "unrolled" in IMPLEMENTATIONS and "feedback" in IMPLEMENTATIONS
        assert "reference" in ENGINES and "fast" in ENGINES

    def test_bad_size_rejected(self):
        with pytest.raises(Exception):
            NetworkConfig(7)

    def test_bad_implementation_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(8, implementation="quantum")

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(8, engine="warp")

    def test_feedback_fast_combination_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(8, implementation="feedback", engine="fast")

    def test_bad_cache_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(8, plan_cache_size=0)

    def test_frozen(self):
        cfg = NetworkConfig(8)
        with pytest.raises(Exception):
            cfg.engine = "fast"

    def test_observer_excluded_from_equality(self):
        assert NetworkConfig(8, observer=NullSink()) == NetworkConfig(8)

    def test_with_observer(self):
        obs = NullSink()
        cfg = NetworkConfig(8).with_observer(obs)
        assert cfg.observer is obs
        assert cfg.n == 8 and cfg.engine == "reference"

    def test_build(self):
        assert isinstance(NetworkConfig(8).build(), BRSMN)
        assert isinstance(
            NetworkConfig(8, implementation="feedback").build(), FeedbackBRSMN
        )


class TestConfigAcceptedEverywhere:
    def test_brsmn(self):
        net = BRSMN(NetworkConfig(8, engine="fast"))
        assert net.n == 8 and net.engine == "fast"

    def test_build_network(self):
        assert isinstance(
            build_network(NetworkConfig(8, implementation="feedback")),
            FeedbackBRSMN,
        )

    def test_route_multicast(self):
        res = route_multicast(NetworkConfig(8, engine="fast"), EXAMPLE)
        assert res.engine == "fast"
        assert res.delivered[1].source == 0

    def test_fabric_records_config(self):
        cfg = NetworkConfig(8, engine="fast", plan_cache_size=7)
        fabric = MulticastFabric(cfg)
        assert fabric.config == cfg
        assert fabric.engine == "fast"


class TestDeprecationPath:
    def test_bare_int_is_silent(self, recwarn):
        build_network(8)
        BRSMN(8)
        MulticastFabric(8)
        route_multicast(8, EXAMPLE)
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_legacy_engine_kwarg_warns(self):
        with pytest.warns(ReproDeprecationWarning, match="NetworkConfig"):
            net = BRSMN(8, engine="fast")
        assert net.engine == "fast"  # behaviour preserved

    def test_legacy_implementation_kwarg_warns(self):
        with pytest.warns(ReproDeprecationWarning):
            net = build_network(8, implementation="feedback")
        assert isinstance(net, FeedbackBRSMN)

    def test_legacy_positional_implementation_warns(self):
        with pytest.warns(ReproDeprecationWarning):
            net = build_network(8, "feedback")
        assert isinstance(net, FeedbackBRSMN)

    def test_legacy_route_multicast_kwargs_warn(self):
        with pytest.warns(ReproDeprecationWarning):
            res = route_multicast(8, EXAMPLE, engine="fast")
        assert res.engine == "fast"

    def test_legacy_fabric_kwargs_warn(self):
        with pytest.warns(ReproDeprecationWarning):
            MulticastFabric(8, engine="fast")

    def test_observer_kwarg_never_warns(self, recwarn):
        MulticastFabric(8, observer=TracingObserver())
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_mixing_config_and_legacy_kwargs_rejected(self):
        with pytest.raises(TypeError):
            MulticastFabric(NetworkConfig(8), engine="fast")
        with pytest.raises(TypeError):
            build_network(NetworkConfig(8), implementation="feedback")

    def test_legacy_and_config_results_agree(self):
        with pytest.warns(ReproDeprecationWarning):
            legacy = route_multicast(8, EXAMPLE, engine="fast")
        modern = route_multicast(NetworkConfig(8, engine="fast"), EXAMPLE)
        assert {o: m.source for o, m in legacy.delivered.items()} == {
            o: m.source for o, m in modern.delivered.items()
        }
