"""NetworkConfig: validation, construction, derive(), and the removed
legacy keyword surface."""

import pytest

from repro.core.brsmn import BRSMN
from repro.core.config import EXECUTORS, IMPLEMENTATIONS, ENGINES, NetworkConfig
from repro.core.fabric import MulticastFabric
from repro.core.feedback import FeedbackBRSMN
from repro.core.routing import build_network, route_multicast
from repro.obs import NullSink, TracingObserver

EXAMPLE = {0: [1, 2], 3: [0]}


class TestValidation:
    def test_defaults(self):
        cfg = NetworkConfig(8)
        assert cfg.implementation == "unrolled"
        assert cfg.engine == "reference"
        assert cfg.plan_cache_size == 256
        assert cfg.observer is None

    def test_registered_vocabularies(self):
        assert "unrolled" in IMPLEMENTATIONS and "feedback" in IMPLEMENTATIONS
        assert "reference" in ENGINES and "fast" in ENGINES

    def test_bad_size_rejected(self):
        with pytest.raises(Exception):
            NetworkConfig(7)

    def test_bad_implementation_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(8, implementation="quantum")

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(8, engine="warp")

    def test_feedback_fast_combination_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(8, implementation="feedback", engine="fast")

    def test_bad_cache_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(8, plan_cache_size=0)

    def test_default_executor_is_thread(self):
        assert NetworkConfig(8).executor == "thread"
        assert "thread" in EXECUTORS and "process" in EXECUTORS

    def test_bad_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            NetworkConfig(8, executor="fiber")

    def test_process_executor_requires_fast_engine(self):
        with pytest.raises(ValueError, match="engine='fast'"):
            NetworkConfig(8, engine="reference", executor="process")

    def test_process_executor_accepted_on_fast_engine(self):
        cfg = NetworkConfig(8, engine="fast", workers=2, executor="process")
        assert cfg.executor == "process"

    def test_derive_can_switch_executor(self):
        base = NetworkConfig(8, engine="fast", workers=4)
        tuned = base.derive(executor="process")
        assert tuned.executor == "process" and tuned.workers == 4
        with pytest.raises(ValueError):
            base.derive(engine="reference", executor="process")

    def test_frozen(self):
        cfg = NetworkConfig(8)
        with pytest.raises(Exception):
            cfg.engine = "fast"

    def test_observer_excluded_from_equality(self):
        assert NetworkConfig(8, observer=NullSink()) == NetworkConfig(8)

    def test_with_observer(self):
        obs = NullSink()
        cfg = NetworkConfig(8).with_observer(obs)
        assert cfg.observer is obs
        assert cfg.n == 8 and cfg.engine == "reference"

    def test_build(self):
        assert isinstance(NetworkConfig(8).build(), BRSMN)
        assert isinstance(
            NetworkConfig(8, implementation="feedback").build(), FeedbackBRSMN
        )


class TestConfigAcceptedEverywhere:
    def test_brsmn(self):
        net = BRSMN(NetworkConfig(8, engine="fast"))
        assert net.n == 8 and net.engine == "fast"

    def test_build_network(self):
        assert isinstance(
            build_network(NetworkConfig(8, implementation="feedback")),
            FeedbackBRSMN,
        )

    def test_route_multicast(self):
        res = route_multicast(NetworkConfig(8, engine="fast"), EXAMPLE)
        assert res.engine == "fast"
        assert res.delivered[1].source == 0

    def test_fabric_records_config(self):
        cfg = NetworkConfig(8, engine="fast", plan_cache_size=7)
        fabric = MulticastFabric(cfg)
        assert fabric.config == cfg
        assert fabric.engine == "fast"


class TestLegacyKwargsRemoved:
    """v1 dropped the pre-config keyword surface (docs/migration_v1.md):
    tuning goes through ``NetworkConfig`` only."""

    def test_bare_int_is_silent(self, recwarn):
        build_network(8)
        BRSMN(8)
        MulticastFabric(8)
        route_multicast(8, EXAMPLE)
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_brsmn_rejects_engine_kwarg(self):
        with pytest.raises(TypeError):
            BRSMN(8, engine="fast")

    def test_build_network_rejects_implementation_kwarg(self):
        with pytest.raises(TypeError):
            build_network(8, implementation="feedback")

    def test_build_network_rejects_positional_implementation(self):
        with pytest.raises(TypeError):
            build_network(8, "feedback")

    def test_route_multicast_rejects_engine_kwarg(self):
        with pytest.raises(TypeError):
            route_multicast(8, EXAMPLE, engine="fast")

    def test_fabric_rejects_engine_kwarg(self):
        with pytest.raises(TypeError):
            MulticastFabric(8, engine="fast")

    def test_observer_kwarg_still_accepted(self, recwarn):
        MulticastFabric(8, observer=TracingObserver())
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_config_replaces_legacy_spellings(self):
        modern = route_multicast(NetworkConfig(8, engine="fast"), EXAMPLE)
        reference = route_multicast(8, EXAMPLE)
        assert {o: m.source for o, m in modern.delivered.items()} == {
            o: m.source for o, m in reference.delivered.items()
        }


class TestDerive:
    def test_overrides_fields(self):
        cfg = NetworkConfig(8).derive(engine="fast", workers=2)
        assert cfg.engine == "fast" and cfg.workers == 2
        assert cfg.n == 8

    def test_keeps_unrelated_fields(self):
        base = NetworkConfig(8, plan_cache_size=7)
        assert base.derive(engine="fast").plan_cache_size == 7

    def test_revalidates(self):
        with pytest.raises(ValueError, match="plan_cache_size"):
            NetworkConfig(8).derive(plan_cache_size=0)

    def test_unknown_field_named_in_error(self):
        with pytest.raises(ValueError, match="implemenation"):
            NetworkConfig(8).derive(implemenation="feedback")

    def test_no_overrides_is_identity(self):
        cfg = NetworkConfig(8, engine="fast")
        assert cfg.derive() == cfg
