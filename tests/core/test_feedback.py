"""Tests for the feedback implementation (Section 7.3, Fig. 13)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brsmn import BRSMN
from repro.core.feedback import FeedbackBRSMN
from repro.core.multicast import MulticastAssignment, paper_example_assignment
from repro.core.verification import verify_result
from repro.errors import InvalidAssignmentError

from conftest import assignments


class TestFunctionalEquivalence:
    """The feedback network must deliver exactly like the unrolled one."""

    @settings(max_examples=200, deadline=None)
    @given(assignments(max_m=5), st.sampled_from(["oracle", "selfrouting"]))
    def test_matches_unrolled(self, a, mode):
        unrolled = BRSMN(a.n).route(a, mode=mode)
        feedback = FeedbackBRSMN(a.n).route(a, mode=mode)
        assert verify_result(feedback).ok
        assert [
            None if m is None else (m.source, m.payload) for m in feedback.outputs
        ] == [None if m is None else (m.source, m.payload) for m in unrolled.outputs]

    def test_paper_example(self):
        res = FeedbackBRSMN(8).route(paper_example_assignment(), mode="selfrouting")
        assert verify_result(res).ok
        assert {o: m.source for o, m in res.delivered.items()} == {
            0: 0, 1: 0, 2: 3, 3: 2, 4: 2, 5: 7, 6: 7, 7: 2,
        }


class TestPassSchedule:
    def test_pass_count(self):
        """2 log2 n - 1 passes: scatter+quasisort per level, 1 delivery."""
        for n in (2, 4, 8, 64):
            net = FeedbackBRSMN(n)
            res = net.route(MulticastAssignment.identity(n))
            assert res.pass_count == net.pass_count == 2 * net.m - 1

    def test_schedule_structure(self):
        res = FeedbackBRSMN(16).route(MulticastAssignment.identity(16))
        roles = [(p.level, p.role) for p in res.passes]
        assert roles == [
            (1, "scatter"), (1, "quasisort"),
            (2, "scatter"), (2, "quasisort"),
            (3, "scatter"), (3, "quasisort"),
            (4, "deliver"),
        ]

    def test_slices_shrink_and_multiply(self):
        res = FeedbackBRSMN(16).route(MulticastAssignment.identity(16))
        sizes = [(p.slice_size, p.slices) for p in res.passes]
        assert sizes == [
            (16, 1), (16, 1), (8, 2), (8, 2), (4, 4), (4, 4), (2, 8),
        ]
        # every pass covers the full terminal space
        for p in res.passes:
            assert p.slice_size * p.slices == 16

    def test_pass_indices_sequential(self):
        res = FeedbackBRSMN(8).route(MulticastAssignment.identity(8))
        assert [p.index for p in res.passes] == list(range(1, len(res.passes) + 1))


class TestHardwareSavings:
    def test_physical_switch_count(self):
        """One RBN: (n/2) log2 n switches — the O(n log n) Table 2 row."""
        assert FeedbackBRSMN(1024).switch_count == 512 * 10

    def test_cost_ratio_grows_with_n(self):
        """unrolled/feedback switch ratio grows ~ log n / 2."""
        ratios = []
        for m in (4, 6, 8, 10):
            n = 1 << m
            ratios.append(BRSMN(n).switch_count / FeedbackBRSMN(n).switch_count)
        assert all(b > a for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] > 4  # already >4x cheaper at n=1024

    def test_depth_matches_unrolled(self):
        """Table 2: both rows have log^2 n depth (time-multiplexed)."""
        for n in (8, 64, 256):
            assert FeedbackBRSMN(n).depth == BRSMN(n).depth


class TestValidation:
    def test_size_mismatch(self):
        with pytest.raises(InvalidAssignmentError):
            FeedbackBRSMN(8).route(MulticastAssignment.identity(4))

    def test_trace_collection(self):
        res = FeedbackBRSMN(8).route(
            paper_example_assignment(), collect_trace=True
        )
        assert res.trace is not None
        assert len(res.trace.stages) > 0
