"""PlanCache eviction under interleaved lookups, and golden fingerprints.

The cache is used from a single thread, but fabric sessions interleave
lookups for many assignments in arbitrary orders; these tests pin the
LRU semantics (hit/miss/evict *ordering*, not just counts) through the
observer event stream, and pin the assignment fingerprints that key the
cache so a digest change cannot slip in silently.
"""

import hashlib
import json

from repro.core import MulticastAssignment, PlanCache, compile_frame_plan
from repro.core.serialization import assignment_fingerprint
from repro.obs import Observer


def _asg(n, dests):
    return MulticastAssignment.from_dict(n, dests)


class _CacheRecorder(Observer):
    def __init__(self):
        self.events = []

    def on_cache_event(self, event):
        self.events.append((event.kind, event.key, event.size))


def _trace(cache, rec, assignments):
    """Look up a sequence of assignments; return (kind, key) pairs."""
    start = len(rec.events)
    for a in assignments:
        cache.get(a, compile_fn=compile_frame_plan)
    return [(k, key) for k, key, _ in rec.events[start:]]


class TestEvictionInterleavings:
    def setup_method(self):
        self.rec = _CacheRecorder()
        self.cache = PlanCache(maxsize=2, observer=self.rec)
        self.a = _asg(8, {0: [0, 1]})
        self.b = _asg(8, {1: [2, 3]})
        self.c = _asg(8, {2: [4, 5]})
        self.fa = assignment_fingerprint(self.a)
        self.fb = assignment_fingerprint(self.b)
        self.fc = assignment_fingerprint(self.c)

    def test_fill_hit_evict_ordering(self):
        trace = _trace(
            self.cache, self.rec, [self.a, self.b, self.a, self.c]
        )
        # a,b fill; the a-hit refreshes a; c then evicts b (LRU), not a.
        assert trace == [
            ("miss", self.fa),
            ("miss", self.fb),
            ("hit", self.fa),
            ("miss", self.fc),
            ("evict", self.fb),
        ]

    def test_untouched_entry_is_the_victim(self):
        trace = _trace(
            self.cache, self.rec, [self.a, self.b, self.c]
        )
        assert trace[-1] == ("evict", self.fa)

    def test_evicted_entry_misses_again(self):
        _trace(self.cache, self.rec, [self.a, self.b, self.c])
        trace = _trace(self.cache, self.rec, [self.a])
        assert trace == [("miss", self.fa), ("evict", self.fb)]
        assert self.cache.hits == 0 and self.cache.misses == 4

    def test_alternating_hits_never_evict(self):
        _trace(self.cache, self.rec, [self.a, self.b])
        trace = _trace(
            self.cache, self.rec,
            [self.a, self.b, self.a, self.b, self.a, self.b],
        )
        assert all(kind == "hit" for kind, _ in trace)
        assert len(self.cache) == 2
        assert self.cache.hit_rate == 6 / 8

    def test_event_sizes_track_occupancy(self):
        for a in (self.a, self.b, self.c):
            self.cache.get(a, compile_fn=compile_frame_plan)
        sizes = [size for _, _, size in self.rec.events]
        # miss events fire before insertion; evict after removal.
        assert sizes == [0, 1, 2, 2]

    def test_extra_key_interleaves_without_collision(self):
        plain = _trace(self.cache, self.rec, [self.a])
        self.cache.get(
            self.a, compile_fn=compile_frame_plan, extra_key="variant"
        )
        kinds = [k for k, _ in plain] + [self.rec.events[-1][0]]
        assert kinds == ["miss", "miss"]
        assert self.rec.events[-1][1] == f"{self.fa}@variant"
        # And each key now hits independently.
        self.cache.get(self.a, compile_fn=compile_frame_plan)
        self.cache.get(
            self.a, compile_fn=compile_frame_plan, extra_key="variant"
        )
        assert [k for k, _, _ in self.rec.events[-2:]] == ["hit", "hit"]

    def test_clear_resets_counters_and_emits(self):
        _trace(self.cache, self.rec, [self.a, self.a])
        self.cache.clear()
        assert self.rec.events[-1][0] == "clear"
        assert len(self.cache) == 0
        assert self.cache.hits == 0 and self.cache.misses == 0


class TestFingerprintGoldens:
    """The digests that key the cache, pinned byte-for-byte.

    ``assignment_fingerprint`` hashes canonical JSON with sha256 — both
    stable across Python versions (unlike ``hash()``, which is salted).
    A failure here means every persisted fingerprint just changed:
    bump deliberately, never accidentally.
    """

    GOLDEN = {
        "empty-4": (
            "42141911a7e5dbd47c3d5beed07bf1081f816dd12c14c4906c0142f79b0096f8"
        ),
        "paper-8": (
            "040f6859d4d3003f26b36e8b0c62254b78fa98c7e9ac81a3bf8fe8502e9cd33d"
        ),
        "broadcast-8": (
            "97d0ff3be5a887196ac833a5827e88c66be8ddaf23a8d1e64d8e9094696612ef"
        ),
    }

    def _cases(self):
        return {
            "empty-4": MulticastAssignment(4, [None] * 4),
            "paper-8": MulticastAssignment(
                8, [{0, 1}, None, {3, 4, 7}, {2}, None, None, None, {5, 6}]
            ),
            "broadcast-8": _asg(8, {3: list(range(8))}),
        }

    def test_golden_fingerprints(self):
        actual = {
            name: assignment_fingerprint(a) for name, a in self._cases().items()
        }
        assert actual == self.GOLDEN

    def test_fingerprint_is_sha256_of_canonical_json(self):
        a = self._cases()["paper-8"]
        canonical = json.dumps(
            {
                "n": 8,
                "destinations": {
                    str(i): sorted(ds)
                    for i, ds in enumerate(a.destinations)
                    if ds
                },
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        assert (
            assignment_fingerprint(a)
            == hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        )

    def test_construction_route_does_not_matter(self):
        via_dict = _asg(8, {0: [1, 0], 2: [7, 4, 3], 3: [2], 7: [6, 5]})
        via_list = MulticastAssignment(
            8, [{0, 1}, None, {3, 4, 7}, {2}, None, None, None, {5, 6}]
        )
        assert assignment_fingerprint(via_dict) == assignment_fingerprint(
            via_list
        )
