"""Fast engine vs reference engine: identical deliveries, cached plans.

The acceptance bar for ``engine="fast"`` is *byte-identical deliveries*
— every output receives a message from the same source carrying the
same payload as under the reference engine — on BSNs, full BRSMNs,
batched frames, and through the one-call API and the fabric.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings

from conftest import assignments, bsn_tag_vectors, make_random_assignment
from repro.core.brsmn import BRSMN
from repro.core.config import NetworkConfig
from repro.core.bsn import BinarySplittingNetwork
from repro.core.fabric import MulticastFabric
from repro.core.fastplan import FramePlan, PlanCache, compile_frame_plan
from repro.core.multicast import MulticastAssignment, paper_example_assignment
from repro.core.routing import build_network, route_multicast
from repro.core.serialization import assignment_fingerprint
from repro.core.tags import Tag
from repro.errors import InvalidAssignmentError
from repro.rbn.cells import Cell
from repro.workloads.hotspot import hotspot_session


def _delivery_map(result):
    return {o: (m.source, m.payload) for o, m in result.delivered.items()}


# ---------------------------------------------------------------------------
# BSN level
# ---------------------------------------------------------------------------

@given(bsn_tag_vectors(min_m=2, max_m=6))
@settings(max_examples=80, deadline=None)
def test_bsn_fast_engine_identical_cells(tags):
    n = len(tags)
    cells = [
        Cell(t, data=f"a{i}", branch0=(i, 0), branch1=(i, 1))
        if t is Tag.ALPHA
        else (Cell(t) if t is Tag.EPS else Cell(t, data=i))
        for i, t in enumerate(tags)
    ]
    ref_out, ref_stats = BinarySplittingNetwork(n).route_cells(cells)
    fast_out, fast_stats = BinarySplittingNetwork(n, engine="fast").route_cells(cells)
    assert [(c.tag, c.data) for c in fast_out] == [(c.tag, c.data) for c in ref_out]
    assert fast_stats == ref_stats


def test_bsn_rejects_unknown_engine():
    with pytest.raises(ValueError):
        BinarySplittingNetwork(8, engine="turbo")


# ---------------------------------------------------------------------------
# full BRSMN
# ---------------------------------------------------------------------------

@given(assignments(min_m=1, max_m=6))
@settings(max_examples=100, deadline=None)
def test_brsmn_fast_engine_identical_deliveries(assignment):
    ref = BRSMN(assignment.n).route(assignment)
    fast = BRSMN(NetworkConfig(assignment.n, engine="fast")).route(assignment)
    assert _delivery_map(fast) == _delivery_map(ref)
    assert fast.total_splits == ref.total_splits
    assert fast.switch_ops == ref.switch_ops
    assert fast.final_switches == ref.final_switches
    assert fast.engine == "fast" and ref.engine == "reference"


def test_paper_example_both_engines():
    """Fig. 2's worked 8x8 example routes identically on both engines."""
    a = paper_example_assignment()
    payloads = [f"video{i}" for i in range(8)]
    ref = route_multicast(8, a, payloads=payloads)
    fast = route_multicast(NetworkConfig(8, engine="fast"), a, payloads=payloads)
    assert _delivery_map(fast) == _delivery_map(ref)
    assert _delivery_map(fast) == {
        0: (0, "video0"), 1: (0, "video0"),
        2: (3, "video3"),
        3: (2, "video2"), 4: (2, "video2"), 7: (2, "video2"),
        5: (7, "video7"), 6: (7, "video7"),
    }


def test_n2_edge_case():
    a = MulticastAssignment(2, [{0, 1}, None])
    fast = BRSMN(NetworkConfig(2, engine="fast")).route(a)
    ref = BRSMN(2).route(a)
    assert _delivery_map(fast) == _delivery_map(ref) == {0: (0, "pkt0"), 1: (0, "pkt0")}


def test_fast_engine_rejects_trace():
    a = paper_example_assignment()
    with pytest.raises(ValueError):
        BRSMN(NetworkConfig(8, engine="fast")).route(a, collect_trace=True)


def test_feedback_rejects_fast_engine():
    with pytest.raises(ValueError):
        build_network(NetworkConfig(8, implementation="feedback", engine="fast"))


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        BRSMN(NetworkConfig(8, engine="warp"))


# ---------------------------------------------------------------------------
# batched frames
# ---------------------------------------------------------------------------

def test_batch_matches_sequential(rng):
    for n in (4, 16, 64):
        a = make_random_assignment(n, rng)
        net = BRSMN(NetworkConfig(n, engine="fast"))
        mat = np.array(
            [[f"f{f}.i{i}" for i in range(n)] for f in range(7)], dtype=object
        )
        batch = net.route_batch(a, mat)
        assert batch.frames == 7
        for f in range(7):
            single = net.route(a, payloads=list(mat[f]))
            expect = [None] * n
            for o, m in single.delivered.items():
                expect[o] = m.payload
            assert batch.frame_outputs(f) == expect
        # reference-engine batch agrees too
        ref_batch = BRSMN(n).route_batch(a, mat)
        assert (batch.payloads == ref_batch.payloads).all()
        np.testing.assert_array_equal(batch.delivery_src, ref_batch.delivery_src)
        assert batch.total_splits == ref_batch.total_splits
        assert batch.switch_ops == ref_batch.switch_ops


def test_batch_shape_validation():
    net = BRSMN(NetworkConfig(8, engine="fast"))
    a = paper_example_assignment()
    with pytest.raises(InvalidAssignmentError):
        net.route_batch(a, np.empty((3, 4), dtype=object))


# ---------------------------------------------------------------------------
# plan cache
# ---------------------------------------------------------------------------

def test_plan_cache_hits_and_eviction():
    cache = PlanCache(maxsize=2)
    a1 = MulticastAssignment.from_dict(8, {0: [1, 2]})
    a2 = MulticastAssignment.from_dict(8, {3: [4]})
    a3 = MulticastAssignment.from_dict(8, {5: [6, 7]})
    p1, hit = cache.get(a1)
    assert not hit and isinstance(p1, FramePlan)
    _, hit = cache.get(a1)
    assert hit
    cache.get(a2)
    cache.get(a3)  # evicts a1 (LRU, maxsize 2)
    _, hit = cache.get(a1)
    assert not hit
    assert cache.hits == 1 and cache.misses == 4
    cache.clear()
    assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0


def test_fingerprint_is_structural():
    """Same destination sets => same fingerprint, however constructed."""
    a = MulticastAssignment(4, [{1, 2}, None, {3}, None])
    b = MulticastAssignment.from_dict(4, {2: [3], 0: [2, 1]})
    c = MulticastAssignment.from_dict(4, {0: [1]})
    assert assignment_fingerprint(a) == assignment_fingerprint(b)
    assert assignment_fingerprint(a) != assignment_fingerprint(c)


def test_route_reports_cache_hit():
    net = BRSMN(NetworkConfig(8, engine="fast"))
    a = paper_example_assignment()
    first = net.route(a)
    second = net.route(a)
    assert first.plan_cache_hit is False
    assert second.plan_cache_hit is True
    assert BRSMN(8).route(a).plan_cache_hit is None  # reference engine


def test_hotspot_session_cache_hit_rate():
    """The recurring-assignment workload drives a nonzero hit rate."""
    frames = hotspot_session(16, frames=50, distinct=5, seed=11)
    fab = MulticastFabric(NetworkConfig(16, engine="fast"), mode="oracle")
    stats = fab.run(frames)
    assert stats.frames == 50
    assert stats.plan_cache_misses <= 5
    assert stats.plan_cache_hits >= 45
    assert stats.plan_cache_hit_rate > 0.8
    # reference fabric reports no cache activity
    ref = MulticastFabric(16, mode="oracle").run(frames[:3])
    assert ref.plan_cache_hits == 0 and ref.plan_cache_misses == 0
    assert ref.plan_cache_hit_rate == 0.0


def test_shared_plan_cache():
    cache = PlanCache()
    a = paper_example_assignment()
    BRSMN(NetworkConfig(8, engine="fast"), plan_cache=cache).route(a)
    result = BRSMN(NetworkConfig(8, engine="fast"), plan_cache=cache).route(a)
    assert result.plan_cache_hit is True
    assert cache.hits == 1 and cache.misses == 1


# ---------------------------------------------------------------------------
# plan internals
# ---------------------------------------------------------------------------

def test_compiled_plan_matches_inverse_map(rng):
    for _ in range(20):
        a = make_random_assignment(32, rng)
        plan = compile_frame_plan(a)
        inverse = a.inverse_map()
        for o in range(32):
            assert plan.delivery_src[o] == inverse.get(o, -1)


def test_plan_payload_length_validated():
    plan = compile_frame_plan(paper_example_assignment())
    with pytest.raises(InvalidAssignmentError):
        plan.apply(["x"] * 4)
