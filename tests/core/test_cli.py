"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestRouteCommand:
    def test_example_route(self, capsys):
        assert main(["route", "--n", "8", "--example"]) == 0
        out = capsys.readouterr().out
        assert "verified: 8 deliveries" in out
        assert "output 7 <- input 2" in out

    def test_json_assignment(self, capsys):
        assign = json.dumps({"0": [1, 2], "3": [0]})
        assert main(["route", "--n", "4", "--assign", assign]) == 0
        out = capsys.readouterr().out
        assert "verified: 3 deliveries" in out

    def test_feedback_and_oracle(self, capsys):
        assign = json.dumps({"0": [0, 1, 2, 3]})
        rc = main(
            [
                "route", "--n", "4", "--assign", assign,
                "--implementation", "feedback", "--mode", "oracle",
            ]
        )
        assert rc == 0
        assert "4 deliveries" in capsys.readouterr().out

    def test_trace_flag(self, capsys):
        assert main(["route", "--n", "8", "--example", "--trace"]) == 0
        assert "merge n=8" in capsys.readouterr().out

    def test_example_requires_n8(self, capsys):
        assert main(["route", "--n", "4", "--example"]) == 2

    def test_missing_assignment(self):
        assert main(["route", "--n", "4"]) == 2

    def test_bad_json(self):
        assert main(["route", "--n", "4", "--assign", "{not json"]) == 2

    def test_invalid_assignment_rejected(self, capsys):
        assign = json.dumps({"0": [0], "1": [0]})  # duplicate output
        assert main(["route", "--n", "4", "--assign", assign]) == 2
        assert "bad --assign" in capsys.readouterr().err


class TestTagsCommand:
    def test_fig9b_sequence(self, capsys):
        assert main(["tags", "--n", "8", "--dests", "3,4,7"]) == 0
        assert "a1ae011" in capsys.readouterr().out

    def test_singleton(self, capsys):
        assert main(["tags", "--n", "4", "--dests", "2"]) == 0
        out = capsys.readouterr().out
        assert "SEQ" in out and "3 tags" in out


class TestStructureCommand:
    def test_structure_output(self, capsys):
        assert main(["structure", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "1 x BSN(16)" in out
        assert "8 x 2x2 switch" in out
        assert "feedback" in out


class TestTable2Command:
    def test_table2_output(self, capsys):
        assert main(["table2", "--sizes", "8,64"]) == 0
        out = capsys.readouterr().out
        assert "Nassimi and Sahni's" in out
        assert "n log^2 n" in out
        assert "measured" in out


class TestScheduleCommand:
    def test_schedule_output(self, capsys):
        assert main(["schedule", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "frame schedule" in out
        assert "delivery pass" in out


class TestReportCommand:
    def test_report_passes(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "ALL CLAIMS REPRODUCED" in out


class TestChaosCommand:
    def test_campaign_output(self, capsys):
        rc = main(
            ["chaos", "--n", "16", "--frames", "40",
             "--faults", "2", "--seed", "3"]
        )
        # This seeded campaign ends with lost terminals: the exit-code
        # contract (see repro.cli) reports that as 3, not 0.
        assert rc == 3
        out = capsys.readouterr().out
        assert "chaos campaign: n=16 frames=40 faults=2 seed=3" in out
        assert "fault plan:" in out
        # The seeded plan is deterministic, so the table rows are too.
        assert "dead_switch" in out and "flaky_link" in out
        assert "frames: 40 routed" in out
        assert "terminals:" in out and "lost" in out
        assert "plane:" in out and "quarantines" in out

    def test_deterministic_across_runs(self, capsys):
        args = ["chaos", "--n", "8", "--frames", "10",
                "--faults", "1", "--seed", "1"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_metrics_export(self, tmp_path, capsys):
        out_path = tmp_path / "sub" / "metrics.json"  # parent not created
        rc = main(
            ["chaos", "--n", "8", "--frames", "5", "--faults", "1",
             "--seed", "1", "--metrics-out", str(out_path)]
        )
        assert rc == 0
        assert f"metrics JSON written to {out_path}" in capsys.readouterr().out
        doc = json.loads(out_path.read_text())
        names = {m["name"] for m in doc["metrics"]}
        assert "repro_faults_injected_total" in names
        assert "repro_faults_recovered_terminals_total" in names


class TestMetricsOutPaths:
    def test_stats_creates_parent_directories(self, tmp_path, capsys):
        out_path = tmp_path / "a" / "b" / "metrics.json"
        rc = main(
            ["stats", "--n", "8", "--frames", "3",
             "--metrics-out", str(out_path)]
        )
        assert rc == 0
        assert json.loads(out_path.read_text())["metrics"]

    def test_stats_unwritable_path_is_a_clean_error(self, capsys):
        rc = main(
            ["stats", "--n", "8", "--frames", "3",
             "--metrics-out", "/dev/null/nope/metrics.json"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("cannot write /dev/null/nope/metrics.json")
        assert "Traceback" not in err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])
