"""Tests for tag values and the Table 1 encoding."""

import pytest

from repro.core.tags import (
    Tag,
    decode_tag,
    encode_tag,
    format_tag_string,
    is_alpha_bit,
    is_eps_bit,
    is_one_bit,
    parse_tag_string,
)
from repro.errors import InvalidTagError


class TestTable1Encoding:
    def test_paper_codes(self):
        """The exact Table 1 rows."""
        assert encode_tag(Tag.ZERO) == (0, 0, 0)
        assert encode_tag(Tag.ONE) == (0, 0, 1)
        assert encode_tag(Tag.ALPHA) == (1, 0, 0)
        assert encode_tag(Tag.EPS0) == (1, 1, 0)
        assert encode_tag(Tag.EPS1) == (1, 1, 1)

    def test_eps_dont_care_canonicalised(self):
        assert encode_tag(Tag.EPS) == (1, 1, 0)

    def test_decode_roundtrip(self):
        for tag in (Tag.ZERO, Tag.ONE, Tag.ALPHA):
            assert decode_tag(encode_tag(tag)) is tag
        for tag in (Tag.EPS0, Tag.EPS1):
            assert decode_tag(encode_tag(tag), dummies=True) is tag

    def test_decode_eps_dont_care(self):
        """11X decodes to EPS regardless of b2 (outside the quasisorter)."""
        assert decode_tag((1, 1, 0)) is Tag.EPS
        assert decode_tag((1, 1, 1)) is Tag.EPS

    def test_unused_code_rejected(self):
        with pytest.raises(InvalidTagError):
            decode_tag((1, 0, 1))

    def test_malformed_bits_rejected(self):
        with pytest.raises(InvalidTagError):
            decode_tag((2, 0, 0))

    def test_encode_rejects_non_tag(self):
        with pytest.raises(InvalidTagError):
            encode_tag("alpha")  # type: ignore[arg-type]


class TestHardwarePredicates:
    """Section 7.2's single-gate counting predicates."""

    def test_alpha_predicate(self):
        assert is_alpha_bit(Tag.ALPHA) == 1
        for t in (Tag.ZERO, Tag.ONE, Tag.EPS, Tag.EPS0, Tag.EPS1):
            assert is_alpha_bit(t) == 0

    def test_eps_predicate(self):
        for t in (Tag.EPS, Tag.EPS0, Tag.EPS1):
            assert is_eps_bit(t) == 1
        for t in (Tag.ZERO, Tag.ONE, Tag.ALPHA):
            assert is_eps_bit(t) == 0

    def test_one_predicate_in_quasisorter(self):
        """b2 counts (real + dummy) ones over {0,1,eps0,eps1}."""
        assert is_one_bit(Tag.ONE) == 1
        assert is_one_bit(Tag.EPS1) == 1
        assert is_one_bit(Tag.ZERO) == 0
        assert is_one_bit(Tag.EPS0) == 0


class TestTagProperties:
    def test_eps_like(self):
        assert Tag.EPS.is_eps_like
        assert Tag.EPS0.is_eps_like
        assert Tag.EPS1.is_eps_like
        assert not Tag.ALPHA.is_eps_like

    def test_chi(self):
        assert Tag.ZERO.is_chi and Tag.ONE.is_chi
        assert not Tag.ALPHA.is_chi and not Tag.EPS.is_chi


class TestTagStrings:
    def test_parse_basic(self):
        assert parse_tag_string("01ae") == [Tag.ZERO, Tag.ONE, Tag.ALPHA, Tag.EPS]

    def test_parse_dummies(self):
        assert parse_tag_string("zw") == [Tag.EPS0, Tag.EPS1]

    def test_parse_ignores_spaces(self):
        assert parse_tag_string("0 1  a") == [Tag.ZERO, Tag.ONE, Tag.ALPHA]

    def test_parse_rejects_unknown(self):
        with pytest.raises(InvalidTagError):
            parse_tag_string("0x1")

    def test_format_roundtrip(self):
        s = "00eaeee"
        assert format_tag_string(parse_tag_string(s)) == s
