"""Tests for the binary splitting network (Section 3, Fig. 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bsn import BinarySplittingNetwork, make_bsn_cells
from repro.core.message import Message
from repro.core.tags import Tag
from repro.core.tagtree import TagTree
from repro.errors import InvalidAssignmentError, RoutingInvariantError
from repro.rbn.cells import cells_from_tags

from conftest import assignments, bsn_tag_vectors


def _messages_from_assignment(a):
    frame = []
    for i, dests in enumerate(a.destinations):
        frame.append(
            None if not dests else Message(source=i, destinations=dests)
        )
    return frame


class TestMakeBsnCells:
    def test_oracle_tags(self):
        msgs = [
            Message(source=0, destinations={0}),       # upper only -> 0
            Message(source=1, destinations={2, 3}),    # lower only -> 1
            Message(source=2, destinations={1, 2}),    # both -> alpha
            None,                                       # idle -> eps
        ]
        cells = make_bsn_cells(msgs, 0, 4, "oracle")
        assert [c.tag for c in cells] == [Tag.ZERO, Tag.ONE, Tag.ALPHA, Tag.EPS]

    def test_alpha_branches_split_destinations(self):
        msgs = [Message(source=0, destinations={1, 3}), None, None, None]
        cells = make_bsn_cells(msgs, 0, 4, "oracle")
        assert cells[0].branch0.destinations == {1}
        assert cells[0].branch1.destinations == {3}

    def test_rebased_midpoint_tags(self):
        msgs = [
            Message(source=0, destinations={4, 5}),  # all < 6 -> ZERO
            Message(source=1, destinations={6, 7}),  # all >= 6 -> ONE
            Message(source=2, destinations={5, 7}),  # straddles -> ALPHA
            None,
        ]
        cells = make_bsn_cells(msgs, 4, 4, "oracle")
        assert [c.tag for c in cells] == [Tag.ZERO, Tag.ONE, Tag.ALPHA, Tag.EPS]

    def test_out_of_window_destination_rejected(self):
        msgs = [Message(source=0, destinations={5}), None, None, None]
        with pytest.raises(InvalidAssignmentError):
            make_bsn_cells(msgs, 0, 4, "oracle")

    def test_selfrouting_uses_stream_head(self):
        msg = Message(source=0, destinations={1, 3}).with_stream(
            TagTree.from_destinations(4, {1, 3}).to_sequence()
        )
        cells = make_bsn_cells([msg, None, None, None], 0, 4, "selfrouting")
        assert cells[0].tag is Tag.ALPHA
        # branches carry the split streams
        assert cells[0].branch0.tag_stream == TagTree.from_destinations(
            2, {1}
        ).to_sequence()

    def test_selfrouting_requires_stream(self):
        msg = Message(source=0, destinations={1})
        with pytest.raises(InvalidAssignmentError):
            make_bsn_cells([msg, None, None, None], 0, 4, "selfrouting")

    def test_selfrouting_detects_corrupt_stream(self):
        """A head tag contradicting the destinations is caught."""
        good = TagTree.from_destinations(4, {3}).to_sequence()
        msg = Message(source=0, destinations={0}).with_stream(good)
        with pytest.raises(RoutingInvariantError):
            make_bsn_cells([msg, None, None, None], 0, 4, "selfrouting")

    def test_unknown_mode_rejected(self):
        msgs = [Message(source=0, destinations={1}), None, None, None]
        with pytest.raises(ValueError):
            make_bsn_cells(msgs, 0, 4, "psychic")


class TestRouteCells:
    @settings(max_examples=200)
    @given(bsn_tag_vectors(max_m=5))
    def test_output_halves_clean(self, tags):
        n = len(tags)
        bsn = BinarySplittingNetwork(n)
        out, stats = bsn.route_cells(cells_from_tags(tags))
        half = n // 2
        assert all(c.tag in (Tag.ZERO, Tag.EPS) for c in out[:half])
        assert all(c.tag in (Tag.ONE, Tag.EPS) for c in out[half:])
        assert stats.splits == tags.count(Tag.ALPHA)

    def test_eq2_violation_rejected(self):
        bsn = BinarySplittingNetwork(4)
        tags = [Tag.ZERO, Tag.ZERO, Tag.ZERO, Tag.EPS]  # n0 = 3 > 2
        with pytest.raises(RoutingInvariantError):
            bsn.route_cells(cells_from_tags(tags))

    def test_wrong_cell_count_rejected(self):
        bsn = BinarySplittingNetwork(4)
        with pytest.raises(InvalidAssignmentError):
            bsn.route_cells(cells_from_tags([Tag.EPS] * 8))


class TestRouteMessages:
    @settings(max_examples=150)
    @given(assignments(min_m=2, max_m=5))
    def test_split_destination_windows(self, a):
        """Every upper message's destinations < mid; lower's >= mid."""
        n = a.n
        bsn = BinarySplittingNetwork(n)
        frame = _messages_from_assignment(a)
        upper, lower, _stats = bsn.route_messages(frame, 0, "oracle")
        mid = n // 2
        for msg in upper:
            if msg is not None:
                assert all(d < mid for d in msg.destinations)
        for msg in lower:
            if msg is not None:
                assert all(d >= mid for d in msg.destinations)

    @settings(max_examples=150)
    @given(assignments(min_m=2, max_m=5))
    def test_no_destination_lost(self, a):
        n = a.n
        bsn = BinarySplittingNetwork(n)
        upper, lower, _ = bsn.route_messages(
            _messages_from_assignment(a), 0, "oracle"
        )
        delivered = set()
        for msg in upper + lower:
            if msg is not None:
                delivered |= msg.destinations
        assert delivered == set(a.used_outputs)

    def test_structure_properties(self):
        bsn = BinarySplittingNetwork(16)
        assert bsn.switch_count == 2 * 8 * 4
        assert bsn.depth == 8
