"""Tests for the arrival process and queueing simulation."""

import pytest

from repro.core.admission import Request
from repro.core.config import NetworkConfig
from repro.core.arrivals import (
    Arrival,
    QueueingSimulator,
    poisson_arrivals,
)


class TestPoissonArrivals:
    def test_deterministic(self):
        a = poisson_arrivals(16, rate=2.0, slots=20, seed=1)
        b = poisson_arrivals(16, rate=2.0, slots=20, seed=1)
        assert [(x.slot, x.request) for x in a] == [
            (x.slot, x.request) for x in b
        ]

    def test_rate_roughly_respected(self):
        arrivals = poisson_arrivals(16, rate=3.0, slots=200, seed=2)
        assert 2.0 < len(arrivals) / 200 < 4.0

    def test_slots_in_range(self):
        arrivals = poisson_arrivals(16, rate=1.0, slots=10, seed=3)
        assert all(0 <= a.slot < 10 for a in arrivals)

    def test_payloads_unique(self):
        arrivals = poisson_arrivals(16, rate=2.0, slots=30, seed=4)
        payloads = [a.request.payload for a in arrivals]
        assert len(payloads) == len(set(payloads))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(16, rate=-1, slots=5)
        with pytest.raises(ValueError):
            poisson_arrivals(16, rate=1, slots=5, mean_fanout=0.5)


class TestQueueingSimulator:
    def test_everything_served_exactly_once(self):
        arrivals = poisson_arrivals(16, rate=1.5, slots=30, seed=5)
        report = QueueingSimulator(16).run(arrivals)
        assert report.served == len(arrivals)
        assert report.deliveries == sum(a.request.fanout for a in arrivals)
        assert len(report.waits) == len(arrivals)

    def test_no_contention_no_waiting(self):
        """Conflict-free single arrivals per slot are served instantly."""
        arrivals = [
            Arrival(slot, Request(slot % 4, {(slot % 4) + 4}, payload=slot))
            for slot in range(8)
        ]
        report = QueueingSimulator(8).run(arrivals)
        assert report.mean_wait == 0.0

    def test_hot_output_queues(self):
        """Five calls to one output at slot 0 serialise: waits 0..4."""
        arrivals = [
            Arrival(0, Request(i, {7}, payload=i)) for i in range(5)
        ]
        report = QueueingSimulator(8).run(arrivals)
        assert sorted(report.waits) == [0, 1, 2, 3, 4]
        assert report.slots_run == 5

    def test_backlog_drains(self):
        arrivals = poisson_arrivals(16, rate=2.0, slots=25, seed=6)
        report = QueueingSimulator(16).run(arrivals)
        assert report.backlog_per_slot[-1] == 0

    def test_fifo_policy(self):
        arrivals = poisson_arrivals(16, rate=1.0, slots=20, seed=7)
        report = QueueingSimulator(16, policy="fifo").run(arrivals)
        assert report.served == len(arrivals)

    def test_feedback_implementation(self):
        arrivals = poisson_arrivals(8, rate=1.0, slots=10, seed=8)
        report = QueueingSimulator(NetworkConfig(8, implementation="feedback")).run(arrivals)
        assert report.served == len(arrivals)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            QueueingSimulator(8, policy="random")

    def test_overload_guard(self):
        """Persistent overload trips the safety bound, not an endless loop."""
        arrivals = [
            Arrival(0, Request(i % 8, {3}, payload=i)) for i in range(30)
        ]
        with pytest.raises(RuntimeError):
            QueueingSimulator(8, max_slots=10).run(arrivals)

    def test_wait_grows_with_load(self):
        light = QueueingSimulator(16).run(
            poisson_arrivals(16, rate=0.5, slots=60, seed=9)
        )
        heavy = QueueingSimulator(16).run(
            poisson_arrivals(16, rate=4.0, slots=60, seed=9)
        )
        assert heavy.mean_wait >= light.mean_wait
