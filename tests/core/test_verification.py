"""Tests for delivery and edge-disjointness verification."""

from repro.core.brsmn import BRSMN
from repro.core.message import Message
from repro.core.multicast import MulticastAssignment, paper_example_assignment
from repro.core.verification import (
    VerificationReport,
    verify_delivery,
    verify_edge_disjoint,
    verify_result,
)


class TestVerifyDelivery:
    def test_correct_delivery_passes(self):
        a = MulticastAssignment(4, [{0, 1}, None, {3}, None])
        msg0 = Message(source=0, destinations={0, 1})
        msg2 = Message(source=2, destinations={3})
        report = verify_delivery(a, [msg0, msg0, None, msg2])
        assert report.ok and report.deliveries == 3

    def test_wrong_length(self):
        a = MulticastAssignment(4, [None] * 4)
        assert not verify_delivery(a, [None] * 3).ok

    def test_wrong_source(self):
        a = MulticastAssignment(4, [{0}, {1}, None, None])
        m0 = Message(source=0, destinations={0})
        report = verify_delivery(a, [m0, m0, None, None])
        assert not report.ok
        assert any("expected 1" in v for v in report.violations)

    def test_report_bool(self):
        assert bool(VerificationReport(True))
        assert not bool(VerificationReport(False, ["x"]))


class TestVerifyEdgeDisjoint:
    def test_real_trace_passes(self):
        res = BRSMN(8).route(paper_example_assignment(), collect_trace=True)
        assert verify_edge_disjoint(res.trace).ok

    def test_message_conservation_violation_detected(self):
        """A stage record with a vanished message is flagged."""
        from repro.core.tags import Tag
        from repro.rbn.cells import Cell
        from repro.rbn.switches import SwitchSetting
        from repro.rbn.trace import Trace

        trace = Trace()
        trace.record_stage(
            size=2,
            offset=0,
            settings=(SwitchSetting.PARALLEL,),
            inputs=(Cell(Tag.ZERO, data="m"), Cell(Tag.EPS)),
            outputs=(Cell(Tag.EPS), Cell(Tag.EPS)),  # message vanished!
        )
        assert not verify_edge_disjoint(trace).ok


class TestVerifyResult:
    def test_combined(self):
        res = BRSMN(8).route(paper_example_assignment(), collect_trace=True)
        report = verify_result(res)
        assert report.ok
        assert report.deliveries == 8
