"""Tests for JSON serialisation and CLI file I/O."""

import json

import pytest
from hypothesis import given, settings

from repro.cli import main
from repro.core.admission import Request
from repro.core.brsmn import BRSMN
from repro.core.multicast import MulticastAssignment, paper_example_assignment
from repro.core.serialization import (
    assignment_from_json,
    assignment_to_json,
    requests_from_json,
    requests_to_json,
    result_to_json,
)
from repro.errors import InvalidAssignmentError

from conftest import assignments


class TestAssignmentRoundTrip:
    @settings(max_examples=100)
    @given(assignments(max_m=5))
    def test_roundtrip(self, a):
        parsed = assignment_from_json(assignment_to_json(a))
        assert parsed.n == a.n
        assert parsed.destinations == a.destinations

    def test_document_shape(self):
        doc = json.loads(assignment_to_json(paper_example_assignment()))
        assert doc["kind"] == "assignment"
        assert doc["n"] == 8
        assert doc["destinations"]["2"] == [3, 4, 7]
        assert "1" not in doc["destinations"]  # idle inputs omitted

    def test_invalid_json_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            assignment_from_json("{nope")

    def test_wrong_kind_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            assignment_from_json('{"kind": "banana", "n": 4}')

    def test_malformed_destinations_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            assignment_from_json(
                '{"kind": "assignment", "n": 4, "destinations": "zero"}'
            )

    def test_invalid_assignment_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            assignment_from_json(
                '{"kind": "assignment", "n": 4, '
                '"destinations": {"0": [1], "2": [1]}}'
            )


class TestRequestsRoundTrip:
    def test_roundtrip(self):
        reqs = [
            Request(0, {1, 2}, "a"),
            Request(3, {0}, None),
        ]
        n, parsed = requests_from_json(requests_to_json(8, reqs))
        assert n == 8
        assert parsed == reqs

    def test_wrong_kind_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            requests_from_json('{"kind": "assignment", "n": 4}')


class TestResultSerialisation:
    def test_result_document(self):
        res = BRSMN(8).route(paper_example_assignment())
        doc = json.loads(result_to_json(res))
        assert doc["kind"] == "result"
        assert doc["deliveries"]["0"]["source"] == 0
        assert doc["deliveries"]["7"]["source"] == 2
        assert doc["stats"]["splits"] == 3
        assert doc["stats"]["final_switches"] == 4


class TestCliFileIO:
    def test_route_from_file_and_save(self, tmp_path, capsys):
        a = MulticastAssignment(4, [{1, 2}, None, {0}, None])
        infile = tmp_path / "assign.json"
        outfile = tmp_path / "result.json"
        infile.write_text(assignment_to_json(a))
        rc = main(
            ["route", "--n", "4", "--file", str(infile), "--save", str(outfile)]
        )
        assert rc == 0
        doc = json.loads(outfile.read_text())
        assert doc["deliveries"]["0"]["source"] == 2
        assert doc["deliveries"]["1"]["source"] == 0

    def test_size_mismatch_detected(self, tmp_path, capsys):
        infile = tmp_path / "assign.json"
        infile.write_text(assignment_to_json(MulticastAssignment.identity(4)))
        assert main(["route", "--n", "8", "--file", str(infile)]) == 2
        assert "n=4" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["route", "--n", "4", "--file", "/nonexistent.json"]) == 2
        assert "bad --file" in capsys.readouterr().err
