"""Tests: the discrete-event stream simulation vs the throughput arithmetic."""

import pytest

from repro.core.pipeline_sim import find_min_period, simulate_stream
from repro.hardware.schedule import build_frame_schedule, pipelined_throughput


class TestSimulateStream:
    def test_single_frame_latency_matches_schedule(self):
        for n in (8, 64):
            report = simulate_stream(n, frames=1, period=10**9)
            assert report.completions == [build_frame_schedule(n).total_time]

    def test_slow_injection_is_hazard_free(self):
        n = 32
        latency = build_frame_schedule(n).total_time
        report = simulate_stream(n, frames=5, period=latency)
        assert report.hazard_free
        assert report.completions == [
            latency + k * latency for k in range(5)
        ]

    def test_fast_injection_hazards_detected(self):
        n = 32
        report = simulate_stream(n, frames=5, period=1)
        assert not report.hazard_free

    def test_hazards_delay_but_never_corrupt(self):
        """With hazards, frames queue: completions stay monotonic and
        spaced by at least the bottleneck service time."""
        n = 32
        report = simulate_stream(n, frames=6, period=1)
        gaps = [
            b - a for a, b in zip(report.completions, report.completions[1:])
        ]
        bottleneck = max(s.service_time for s in report.segments)
        assert all(g >= bottleneck for g in gaps)

    def test_feedback_is_single_segment(self):
        report = simulate_stream(16, frames=3, period=10**6, implementation="feedback")
        assert len(report.segments) == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            simulate_stream(8, frames=0, period=10)
        with pytest.raises(ValueError):
            simulate_stream(8, frames=1, period=0)
        with pytest.raises(ValueError):
            simulate_stream(8, frames=1, period=1, implementation="warp")


class TestMinPeriod:
    @pytest.mark.parametrize("n", [8, 64, 256])
    def test_unrolled_min_period_is_slowest_segment(self, n):
        """The simulation-derived minimum period equals the arithmetic
        prediction (slowest level's busy time)."""
        assert find_min_period(n) == pipelined_throughput(n).unrolled_period

    @pytest.mark.parametrize("n", [8, 64])
    def test_feedback_min_period_is_latency(self, n):
        assert (
            find_min_period(n, implementation="feedback")
            == pipelined_throughput(n).feedback_period
        )

    def test_min_period_saturates_bottleneck(self):
        """At the minimum period the bottleneck approaches full
        utilisation as the stream lengthens."""
        n = 64
        period = find_min_period(n)
        report = simulate_stream(n, frames=64, period=period)
        assert report.hazard_free
        assert report.bottleneck_utilisation > 0.9

    def test_below_min_period_hazards(self):
        n = 64
        period = find_min_period(n)
        assert not simulate_stream(n, frames=8, period=period - 1).hazard_free
