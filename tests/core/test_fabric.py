"""Tests for the session-level MulticastFabric facade."""

import pytest

from repro.core.config import NetworkConfig
from repro.core.fabric import MulticastFabric
from repro.core.multicast import MulticastAssignment
from repro.errors import RoutingInvariantError
from repro.workloads.random_assignments import assignment_suite
from repro.workloads.scenarios import videoconference_frames


class TestSessions:
    def test_run_aggregates(self):
        fabric = MulticastFabric(16)
        frames = assignment_suite(16, seed=1)
        stats = fabric.run(frames)
        assert stats.frames == len(frames)
        assert stats.deliveries == sum(a.total_fanout for a in frames)
        assert not stats.failures

    def test_fanout_histogram(self):
        fabric = MulticastFabric(8)
        fabric.submit(MulticastAssignment(8, [{0, 1, 2}, None, {3}, None, None, None, None, None]))
        assert fabric.stats.fanout_histogram == {3: 1, 1: 1}
        assert fabric.stats.mean_fanout == 2.0

    def test_mean_fanout_empty_session(self):
        assert MulticastFabric(8).stats.mean_fanout == 0.0

    def test_reset(self):
        fabric = MulticastFabric(8)
        fabric.submit(MulticastAssignment.identity(8))
        fabric.reset()
        assert fabric.stats.frames == 0

    def test_feedback_implementation(self):
        fabric = MulticastFabric(NetworkConfig(16, implementation="feedback"))
        frames = videoconference_frames(16, conferences=2, frames=5, seed=2)
        stats = fabric.run(frames)
        assert stats.frames == 5
        assert not stats.failures

    def test_oracle_mode(self):
        fabric = MulticastFabric(8, mode="oracle")
        res = fabric.submit(MulticastAssignment.broadcast(8))
        assert len(res.delivered) == 8

    def test_splits_and_switch_ops_accumulate(self):
        fabric = MulticastFabric(8)
        fabric.submit(MulticastAssignment.broadcast(8))
        fabric.submit(MulticastAssignment.identity(8))
        assert fabric.stats.splits == 3  # broadcast: n/2 - 1; identity: 0
        assert fabric.stats.switch_ops > 0


class TestStrictness:
    def test_strict_default(self):
        fabric = MulticastFabric(8)
        assert fabric.strict

    def test_non_strict_records_instead_of_raising(self):
        """Verification failures can be recorded; exercised by feeding a
        network wrapper that sabotages its own deliveries."""
        fabric = MulticastFabric(8, strict=False)

        class Saboteur:
            def route(self, assignment, mode=None, payloads=None, **kw):
                res = fabric_net.route(assignment, mode=mode)
                res.outputs[0], res.outputs[1] = res.outputs[1], res.outputs[0]
                return res

        fabric_net = fabric.network
        fabric.network = Saboteur()
        a = MulticastAssignment(8, [{0}, {1}, None, None, None, None, None, None])
        fabric.submit(a)
        assert len(fabric.stats.failures) == 1

    def test_strict_raises(self):
        fabric = MulticastFabric(8, strict=True)

        class Saboteur:
            def route(self, assignment, mode=None, payloads=None, **kw):
                res = inner.route(assignment, mode=mode)
                res.outputs[0] = None
                return res

        inner = fabric.network
        fabric.network = Saboteur()
        a = MulticastAssignment(8, [{0}, None, None, None, None, None, None, None])
        with pytest.raises(RoutingInvariantError):
            fabric.submit(a)
