"""Tests for the multicast assignment model (Section 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multicast import MulticastAssignment, paper_example_assignment
from repro.errors import InvalidAssignmentError

from conftest import assignments


class TestConstruction:
    def test_paper_example(self):
        a = paper_example_assignment()
        assert a.n == 8
        assert a[0] == {0, 1}
        assert a[2] == {3, 4, 7}
        assert a[3] == {2}
        assert a[7] == {5, 6}
        assert a[1] == frozenset()

    def test_overlapping_destinations_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            MulticastAssignment(4, [{0, 1}, {1}, None, None])

    def test_out_of_range_destination_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            MulticastAssignment(4, [{4}, None, None, None])
        with pytest.raises(InvalidAssignmentError):
            MulticastAssignment(4, [{-1}, None, None, None])

    def test_wrong_length_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            MulticastAssignment(4, [None, None])

    def test_non_power_of_two_rejected(self):
        from repro.errors import NetworkSizeError

        with pytest.raises(NetworkSizeError):
            MulticastAssignment(6, [None] * 6)

    def test_from_dict(self):
        a = MulticastAssignment.from_dict(8, {2: [3, 4], 0: [1]})
        assert a[2] == {3, 4} and a[0] == {1}
        assert a[1] == frozenset()

    def test_from_dict_bad_input_index(self):
        with pytest.raises(InvalidAssignmentError):
            MulticastAssignment.from_dict(8, {9: [1]})

    def test_from_permutation(self):
        a = MulticastAssignment.from_permutation([2, None, 0, 1])
        assert a[0] == {2} and a[1] == frozenset() and a[2] == {0}
        assert a.is_permutation

    def test_broadcast(self):
        a = MulticastAssignment.broadcast(8, source=3)
        assert a[3] == frozenset(range(8))
        assert a.max_fanout == 8

    def test_identity_and_empty(self):
        assert MulticastAssignment.identity(4)[2] == {2}
        assert MulticastAssignment.empty(4).active_inputs == []


class TestQueries:
    def test_statistics(self):
        a = paper_example_assignment()
        assert a.active_inputs == [0, 2, 3, 7]
        assert a.used_outputs == frozenset(range(8))
        assert a.total_fanout == 8
        assert a.max_fanout == 3
        assert a.load == 1.0
        assert not a.is_permutation

    def test_inverse_map(self):
        a = paper_example_assignment()
        inv = a.inverse_map()
        assert inv[0] == 0 and inv[1] == 0
        assert inv[3] == 2 and inv[4] == 2 and inv[7] == 2
        assert inv[2] == 3
        assert inv[5] == 7 and inv[6] == 7

    def test_binary_strings(self):
        a = paper_example_assignment()
        bs = a.to_binary_strings()
        assert bs[2] == ["011", "100", "111"]

    def test_str(self):
        a = MulticastAssignment(4, [{0}, None, {2, 3}, None])
        s = str(a)
        assert "{0}" in s and "{2,3}" in s

    @settings(max_examples=100)
    @given(assignments(max_m=5))
    def test_inverse_map_consistency(self, a):
        inv = a.inverse_map()
        assert len(inv) == a.total_fanout
        for out, src in inv.items():
            assert out in a[src]


class TestRestrict:
    def test_restrict_window(self):
        a = MulticastAssignment(8, [{0, 5}, None, {1}, None, None, {6}, None, None])
        upper = a.restrict(0, 4)
        assert upper.n == 4
        # {0} from input 0's clipped set, {1} from input 2's
        all_dests = [set(d) for d in upper.destinations if d]
        assert {0} in all_dests and {1} in all_dests

    def test_restrict_rebased(self):
        a = MulticastAssignment(8, [None, None, None, None, {5, 6}, None, None, None])
        lower = a.restrict(4, 8)
        assert any(set(d) == {1, 2} for d in lower.destinations if d)


class TestImmutability:
    def test_destinations_are_frozen(self):
        a = paper_example_assignment()
        assert isinstance(a[0], frozenset)

    def test_hashable_components(self):
        a = paper_example_assignment()
        assert isinstance(hash(a.destinations), int)
