"""Tests for multicast tag trees and the SEQ wire format (Section 7.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tags import Tag, format_tag_string, parse_tag_string
from repro.core.tagtree import (
    TagTree,
    merge_sequences,
    order_sequence,
    split_stream,
    tag_of_destinations,
)
from repro.errors import InvalidTagError

from conftest import sizes


class TestTagOfDestinations:
    def test_four_cases(self):
        assert tag_of_destinations([0, 1], 4) is Tag.ZERO
        assert tag_of_destinations([5, 6], 4) is Tag.ONE
        assert tag_of_destinations([1, 6], 4) is Tag.ALPHA
        assert tag_of_destinations([], 4) is Tag.EPS


class TestOrderFunction:
    def test_eq10_merge(self):
        assert merge_sequences("abc", "xyz") == list("axbycz")

    def test_merge_rejects_unequal(self):
        with pytest.raises(InvalidTagError):
            merge_sequences("ab", "xyz")

    def test_eq11_order_len2(self):
        assert order_sequence(["b1", "b2"]) == ["b1", "b2"]

    def test_eq11_order_len4(self):
        assert order_sequence(["b1", "b2", "b3", "b4"]) == ["b1", "b3", "b2", "b4"]

    def test_eq11_order_len8_matches_fig11(self):
        """Fig. 11 / eq. (13): order(SEQ_4) = t41 t45 t43 t47 t42 t46 t44 t48."""
        level4 = [f"t4{i}" for i in range(1, 9)]
        assert order_sequence(level4) == [
            "t41", "t45", "t43", "t47", "t42", "t46", "t44", "t48",
        ]

    def test_order_rejects_odd(self):
        with pytest.raises(InvalidTagError):
            order_sequence(["a", "b", "c"])


class TestFig11SequenceOrder:
    def test_full_n16_concatenation(self):
        """The complete eq. (13) ordering for n = 16 from symbolic tags."""
        seq = (
            order_sequence(["t11"])
            + order_sequence(["t21", "t22"])
            + order_sequence(["t31", "t32", "t33", "t34"])
            + order_sequence([f"t4{i}" for i in range(1, 9)])
        )
        assert seq == [
            "t11",
            "t21", "t22",
            "t31", "t33", "t32", "t34",
            "t41", "t45", "t43", "t47", "t42", "t46", "t44", "t48",
        ]


class TestFromDestinations:
    def test_fig9a_sequence(self):
        """Fig. 9a: multicast {000, 001} -> SEQ '00eaeee'."""
        tree = TagTree.from_destinations(8, {0, 1})
        assert format_tag_string(tree.to_sequence()) == "00eaeee"

    def test_fig9b_sequence(self):
        """Fig. 9b: multicast {011, 100, 111} -> SEQ 'a1ae011'."""
        tree = TagTree.from_destinations(8, {3, 4, 7})
        assert format_tag_string(tree.to_sequence()) == "a1ae011"

    def test_empty_multicast_all_eps(self):
        tree = TagTree.from_destinations(8, set())
        assert all(t is Tag.EPS for t in tree.to_sequence())

    def test_broadcast_all_alpha(self):
        tree = TagTree.from_destinations(8, range(8))
        assert all(t is Tag.ALPHA for t in tree.to_sequence())

    def test_sequence_length(self):
        """n - 1 tags (the paper's Fig. 11, not its 2n-2 prose index)."""
        for n in (2, 4, 8, 16, 64):
            tree = TagTree.from_destinations(n, {0})
            assert len(tree.to_sequence()) == n - 1

    def test_destination_out_of_range(self):
        with pytest.raises(InvalidTagError):
            TagTree.from_destinations(8, {8})


class TestRoundTrip:
    @settings(max_examples=300)
    @given(sizes(max_m=6), st.data())
    def test_destinations_roundtrip(self, n, data):
        dests = data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1))
        )
        tree = TagTree.from_destinations(n, dests)
        tree.validate()
        parsed = TagTree.from_sequence(n, tree.to_sequence())
        assert parsed.destinations() == frozenset(dests)
        assert parsed == tree

    @settings(max_examples=200)
    @given(sizes(min_m=2, max_m=6), st.data())
    def test_split_stream_matches_subtrees(self, n, data):
        """Fig. 10: odd remainder = left subtree SEQ, even = right."""
        dests = data.draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
        tree = TagTree.from_destinations(n, dests)
        head, up, lo = split_stream(tree.to_sequence())
        assert head is tree.root.tag
        assert up == TagTree(n // 2, tree.root.left).to_sequence()
        assert lo == TagTree(n // 2, tree.root.right).to_sequence()

    def test_from_sequence_length_checked(self):
        with pytest.raises(InvalidTagError):
            TagTree.from_sequence(8, parse_tag_string("00e"))

    def test_split_empty_stream_rejected(self):
        with pytest.raises(InvalidTagError):
            split_stream(())


class TestValidate:
    def test_valid_trees_pass(self):
        for dests in (set(), {0}, {7}, {0, 7}, {1, 2, 3}, set(range(8))):
            TagTree.from_destinations(8, dests).validate()

    def test_corrupted_tree_detected(self):
        """A zero node whose right child is non-eps violates Sec 7.1."""
        seq = parse_tag_string("00eaeee")
        bad = list(seq)
        bad[2] = Tag.ONE  # right child of the zero root must be eps
        tree = TagTree.from_sequence(8, bad)
        with pytest.raises(InvalidTagError):
            tree.validate()

    def test_alpha_with_eps_child_detected(self):
        seq = parse_tag_string("a1ae011")
        bad = list(seq)
        bad[1] = Tag.EPS  # alpha root's left child
        tree = TagTree.from_sequence(8, bad)
        with pytest.raises(InvalidTagError):
            tree.validate()


class TestDunder:
    def test_equality_and_hash(self):
        a = TagTree.from_destinations(8, {1, 2})
        b = TagTree.from_destinations(8, {1, 2})
        c = TagTree.from_destinations(8, {1, 3})
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_str_contains_seq(self):
        t = TagTree.from_destinations(8, {0, 1})
        assert "00eaeee" in str(t)
