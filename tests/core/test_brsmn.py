"""Tests for the full BRSMN (Section 2, Figs. 1-2) — the headline result."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brsmn import BRSMN, deliver_final_switch, inject_messages
from repro.core.message import Message
from repro.core.multicast import MulticastAssignment, paper_example_assignment
from repro.core.tags import Tag
from repro.core.verification import verify_delivery, verify_result
from repro.errors import InvalidAssignmentError, RoutingInvariantError
from repro.rbn.switches import SwitchSetting

from conftest import assignments


class TestPaperExample:
    """The worked 8x8 example of Section 2 / Fig. 2."""

    def test_oracle_mode(self):
        res = BRSMN(8).route(paper_example_assignment(), mode="oracle")
        assert verify_result(res).ok

    def test_selfrouting_mode(self):
        res = BRSMN(8).route(paper_example_assignment(), mode="selfrouting")
        assert verify_result(res).ok

    def test_exact_deliveries(self):
        res = BRSMN(8).route(paper_example_assignment())
        by_output = {o: m.source for o, m in res.delivered.items()}
        assert by_output == {0: 0, 1: 0, 2: 3, 3: 2, 4: 2, 5: 7, 6: 7, 7: 2}

    def test_split_count(self):
        """Total replications = copies - active inputs = 8 - 4 = 4, of
        which one happens at a final 2x2 switch (input 0's {0,1}); the
        BSN levels perform the other 3 alpha splits (visible in Fig. 2)."""
        res = BRSMN(8).route(paper_example_assignment())
        assert res.total_splits == 3


class TestNonblockingProperty:
    """The paper's main theorem: every multicast assignment is realised."""

    @settings(max_examples=300, deadline=None)
    @given(assignments(max_m=5), st.sampled_from(["oracle", "selfrouting"]))
    def test_arbitrary_assignments(self, a, mode):
        res = BRSMN(a.n).route(a, mode=mode)
        report = verify_result(res)
        assert report.ok, report.violations

    @settings(max_examples=60, deadline=None)
    @given(assignments(min_m=6, max_m=7))
    def test_larger_networks(self, a):
        res = BRSMN(a.n).route(a, mode="selfrouting")
        assert verify_result(res).ok

    @settings(max_examples=150, deadline=None)
    @given(assignments(max_m=5))
    def test_modes_agree(self, a):
        """Oracle and self-routing produce identical deliveries."""
        net = BRSMN(a.n)
        r1 = net.route(a, mode="oracle")
        r2 = net.route(a, mode="selfrouting")
        assert [
            None if m is None else (m.source, m.payload) for m in r1.outputs
        ] == [None if m is None else (m.source, m.payload) for m in r2.outputs]

    def test_full_broadcast(self):
        for n in (2, 4, 8, 16, 32):
            a = MulticastAssignment.broadcast(n, source=n // 3)
            res = BRSMN(n).route(a, mode="selfrouting")
            assert verify_result(res).ok
            # Copies double per BSN level: 1 + 2 + ... + n/4 = n/2 - 1
            # alpha splits; the remaining n/2 replications happen in the
            # final delivery switches.
            assert res.total_splits == n // 2 - 1

    def test_identity_permutation(self):
        for n in (2, 8, 32):
            res = BRSMN(n).route(MulticastAssignment.identity(n))
            assert verify_result(res).ok
            assert res.total_splits == 0

    def test_empty_assignment(self):
        res = BRSMN(8).route(MulticastAssignment.empty(8))
        assert all(m is None for m in res.outputs)
        assert verify_result(res).ok

    def test_payloads_carried(self):
        a = paper_example_assignment()
        res = BRSMN(8).route(a, payloads=[f"P{i}" for i in range(8)])
        for o, m in res.delivered.items():
            assert m.payload == f"P{m.source}"


class TestStructuralProperties:
    def test_switch_count_recursion(self):
        """C(n) = n log n (BSN) summed over levels + n/2 final switches."""
        net = BRSMN(8)
        # level 1: BSN(8) = 2*4*3 = 24; level 2: 2 x BSN(4) = 2*2*2*2=16;
        # final: 4 switches
        assert net.switch_count == 24 + 16 + 4

    def test_depth_recursion(self):
        net = BRSMN(8)
        # 2*3 (BSN 8) + 2*2 (BSN 4) + 1 (final switch)
        assert net.depth == 6 + 4 + 1

    def test_n2_base_case(self):
        net = BRSMN(2)
        assert net.switch_count == 1
        assert net.depth == 1
        res = net.route(MulticastAssignment(2, [{0, 1}, None]))
        assert verify_result(res).ok

    def test_assignment_size_mismatch(self):
        with pytest.raises(InvalidAssignmentError):
            BRSMN(8).route(MulticastAssignment.identity(4))


class TestInjectMessages:
    def test_oracle_frame(self):
        frame = inject_messages(paper_example_assignment(), "oracle")
        assert frame[1] is None
        assert frame[0].destinations == {0, 1}
        assert frame[0].tag_stream is None

    def test_selfrouting_frame_has_streams(self):
        frame = inject_messages(paper_example_assignment(), "selfrouting")
        assert frame[2].tag_stream is not None
        assert len(frame[2].tag_stream) == 7


class TestFinalSwitch:
    def test_parallel_delivery(self):
        msgs = [
            Message(source=0, destinations={4}),
            Message(source=1, destinations={5}),
        ]
        out, setting = deliver_final_switch(msgs, 4)
        assert out[0].source == 0 and out[1].source == 1
        assert setting is SwitchSetting.PARALLEL

    def test_cross_delivery(self):
        msgs = [
            Message(source=0, destinations={5}),
            Message(source=1, destinations={4}),
        ]
        out, setting = deliver_final_switch(msgs, 4)
        assert out[0].source == 1 and out[1].source == 0
        assert setting is SwitchSetting.CROSS

    def test_broadcast_delivery(self):
        msgs = [None, Message(source=1, destinations={4, 5})]
        out, setting = deliver_final_switch(msgs, 4)
        assert out[0].source == out[1].source == 1
        assert setting is SwitchSetting.LOWER_BCAST

    def test_conflict_detected(self):
        msgs = [
            Message(source=0, destinations={4}),
            Message(source=1, destinations={4}),
        ]
        with pytest.raises(RoutingInvariantError):
            deliver_final_switch(msgs, 4)

    def test_selfrouting_residual_stream(self):
        msg = Message(source=0, destinations={5}).with_stream((Tag.ONE,))
        out, _ = deliver_final_switch([msg, None], 4, "selfrouting")
        assert out[1] is msg

    def test_selfrouting_malformed_stream(self):
        msg = Message(source=0, destinations={5}).with_stream(
            (Tag.ONE, Tag.ZERO)
        )
        with pytest.raises(RoutingInvariantError):
            deliver_final_switch([msg, None], 4, "selfrouting")


class TestVerificationCatchesErrors:
    def test_misdelivery_detected(self):
        a = MulticastAssignment(4, [{0}, {1}, None, None])
        res = BRSMN(4).route(a)
        # sabotage: swap two outputs
        res.outputs[0], res.outputs[1] = res.outputs[1], res.outputs[0]
        assert not verify_delivery(a, res.outputs).ok

    def test_missing_delivery_detected(self):
        a = MulticastAssignment(4, [{0}, None, None, None])
        res = BRSMN(4).route(a)
        res.outputs[0] = None
        report = verify_delivery(a, res.outputs)
        assert not report.ok
        assert any("missing" in v for v in report.violations)

    def test_spurious_delivery_detected(self):
        a = MulticastAssignment(4, [{0}, None, None, None])
        res = BRSMN(4).route(a)
        res.outputs[3] = res.outputs[0]
        report = verify_delivery(a, res.outputs)
        assert not report.ok
        assert any("spurious" in v for v in report.violations)
