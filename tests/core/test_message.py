"""Tests for the Message model."""

import pytest

from repro.core.message import Message
from repro.core.tags import Tag
from repro.errors import InvalidAssignmentError


class TestConstruction:
    def test_basic(self):
        m = Message(source=1, destinations={2, 3}, payload="x")
        assert m.source == 1
        assert m.destinations == frozenset({2, 3})
        assert m.payload == "x"
        assert m.tag_stream is None

    def test_empty_destinations_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            Message(source=0, destinations=set())

    def test_frozen(self):
        m = Message(source=0, destinations={1})
        with pytest.raises(AttributeError):
            m.source = 2  # type: ignore[misc]


class TestSplit:
    def test_split_both_halves(self):
        m = Message(source=0, destinations={1, 5}, payload="p")
        up, lo = m.split_at(4)
        assert up.destinations == {1} and lo.destinations == {5}
        assert up.payload == lo.payload == "p"
        assert up.source == lo.source == 0

    def test_split_one_sided(self):
        m = Message(source=0, destinations={1, 2})
        up, lo = m.split_at(4)
        assert up.destinations == {1, 2}
        assert lo is None

    def test_split_other_side(self):
        m = Message(source=0, destinations={6})
        up, lo = m.split_at(4)
        assert up is None and lo.destinations == {6}


class TestStream:
    def test_with_stream(self):
        m = Message(source=0, destinations={1})
        m2 = m.with_stream((Tag.ZERO, Tag.ONE))
        assert m2.tag_stream == (Tag.ZERO, Tag.ONE)
        assert m.tag_stream is None  # original untouched

    def test_with_stream_none_clears(self):
        m = Message(source=0, destinations={1}, tag_stream=(Tag.ZERO,))
        assert m.with_stream(None).tag_stream is None


class TestSingleDestination:
    def test_resolved(self):
        assert Message(source=0, destinations={3}).single_destination() == 3

    def test_unresolved_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            Message(source=0, destinations={1, 2}).single_destination()
