"""Tests for call admission and frame scheduling."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import (
    Request,
    ScheduleOutcome,
    conflicts,
    frame_lower_bound,
    route_requests,
    schedule_frames,
)
from repro.errors import InvalidAssignmentError

from conftest import sizes


@st.composite
def request_batches(draw, min_m=2, max_m=5, max_requests=24):
    n = draw(sizes(min_m, max_m))
    count = draw(st.integers(min_value=1, max_value=max_requests))
    reqs = []
    for i in range(count):
        src = draw(st.integers(min_value=0, max_value=n - 1))
        dests = draw(
            st.sets(
                st.integers(min_value=0, max_value=n - 1),
                min_size=1,
                max_size=min(n, 6),
            )
        )
        reqs.append(Request(source=src, destinations=dests, payload=f"req{i}"))
    return n, reqs


class TestConflicts:
    def test_shared_source(self):
        a = Request(0, {1})
        b = Request(0, {2})
        assert conflicts(a, b)

    def test_shared_destination(self):
        assert conflicts(Request(0, {3}), Request(1, {3, 4}))

    def test_disjoint(self):
        assert not conflicts(Request(0, {1}), Request(2, {3}))

    def test_empty_request_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            Request(0, set())


class TestLowerBound:
    def test_output_multiplicity(self):
        reqs = [Request(i, {7}) for i in range(5)]
        assert frame_lower_bound(reqs) == 5

    def test_input_multiplicity(self):
        reqs = [Request(3, {i}) for i in range(4)]
        assert frame_lower_bound(reqs) == 4

    def test_empty_batch(self):
        assert frame_lower_bound([]) == 0


class TestScheduleFrames:
    @settings(max_examples=150, deadline=None)
    @given(request_batches())
    def test_every_request_placed_once(self, batch):
        n, reqs = batch
        outcome = schedule_frames(n, reqs)
        assert sorted(outcome.placement) == list(range(len(reqs)))
        # each frame is a valid assignment with exactly its members
        for idx, f in outcome.placement.items():
            assert outcome.frames[f][reqs[idx].source] == reqs[idx].destinations

    @settings(max_examples=100, deadline=None)
    @given(request_batches())
    def test_no_intra_frame_conflicts(self, batch):
        n, reqs = batch
        outcome = schedule_frames(n, reqs)
        by_frame = {}
        for idx, f in outcome.placement.items():
            by_frame.setdefault(f, []).append(reqs[idx])
        for members in by_frame.values():
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    assert not conflicts(members[i], members[j])

    @settings(max_examples=100, deadline=None)
    @given(request_batches())
    def test_frame_count_at_least_lower_bound(self, batch):
        n, reqs = batch
        outcome = schedule_frames(n, reqs)
        assert outcome.frame_count >= outcome.lower_bound
        assert outcome.frame_count <= len(reqs)

    def test_conflict_free_batch_single_frame(self):
        reqs = [Request(0, {1}), Request(2, {3}), Request(4, {5, 6})]
        outcome = schedule_frames(8, reqs)
        assert outcome.frame_count == 1
        assert outcome.optimal

    def test_hot_output_serialised(self):
        reqs = [Request(i, {0}) for i in range(4)]
        outcome = schedule_frames(8, reqs)
        assert outcome.frame_count == 4
        assert outcome.optimal

    def test_policies_differ_on_skew(self):
        """largest_first packs a big tree with small ones; first_fit in
        adversarial arrival order can need more frames."""
        reqs = [
            Request(0, {1}),
            Request(1, {2}),
            Request(2, {1, 2, 3, 4}),
        ]
        ff = schedule_frames(8, reqs, policy="first_fit")
        lf = schedule_frames(8, reqs, policy="largest_first")
        assert lf.frame_count <= ff.frame_count

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            schedule_frames(8, [Request(0, {1})], policy="random")

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            schedule_frames(8, [Request(8, {1})])
        with pytest.raises(InvalidAssignmentError):
            schedule_frames(8, [Request(0, {8})])


class TestRouteRequests:
    @settings(max_examples=40, deadline=None)
    @given(request_batches(max_m=4, max_requests=12))
    def test_all_payloads_delivered(self, batch):
        n, reqs = batch
        schedule, deliveries = route_requests(n, reqs)
        for idx, r in enumerate(reqs):
            frame = schedule.placement[idx]
            for d in r.destinations:
                assert deliveries[frame][d] == r.payload

    def test_feedback_implementation(self):
        reqs = [Request(0, {1, 2}, "a"), Request(1, {1, 3}, "b")]
        schedule, deliveries = route_requests(
            8, reqs, implementation="feedback"
        )
        assert schedule.frame_count == 2  # output 1 contested
        assert deliveries[schedule.placement[0]][2] == "a"
        assert deliveries[schedule.placement[1]][3] == "b"
