"""Tests for the high-level routing API."""

import pytest

from repro.core.brsmn import BRSMN
from repro.core.config import NetworkConfig
from repro.core.feedback import FeedbackBRSMN
from repro.core.multicast import MulticastAssignment
from repro.core.routing import build_network, route_multicast
from repro.errors import RoutingInvariantError


class TestBuildNetwork:
    def test_unrolled_default(self):
        assert isinstance(build_network(8), BRSMN)

    def test_feedback(self):
        assert isinstance(build_network(NetworkConfig(8, implementation="feedback")), FeedbackBRSMN)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            build_network(NetworkConfig(8, implementation="quantum"))


class TestRouteMulticast:
    def test_assignment_object(self):
        a = MulticastAssignment(4, [{1}, {0}, None, {2, 3}])
        res = route_multicast(4, a)
        assert res.delivered[1].source == 0
        assert res.delivered[2].source == 3

    def test_list_coercion(self):
        res = route_multicast(4, [{1}, {0}, None, {2, 3}])
        assert res.delivered[0].source == 1

    def test_dict_coercion(self):
        res = route_multicast(8, {0: [3, 4], 5: [0]})
        assert res.delivered[3].source == 0
        assert res.delivered[0].source == 5

    def test_payloads(self):
        res = route_multicast(4, {0: [1, 2]}, payloads=["hello", None, None, None])
        assert res.delivered[1].payload == "hello"

    def test_feedback_implementation(self):
        res = route_multicast(
            NetworkConfig(8, implementation="feedback"), {0: list(range(8))}
        )
        assert len(res.delivered) == 8

    def test_both_modes(self):
        for mode in ("oracle", "selfrouting"):
            res = route_multicast(8, {1: [0, 7]}, mode=mode)
            assert res.delivered[0].source == 1
            assert res.delivered[7].source == 1

    def test_trace_collection(self):
        res = route_multicast(4, {0: [1]}, collect_trace=True)
        assert res.trace is not None


class TestLegacySurfaceGone:
    def test_route_and_report_removed(self):
        # v1 removed the tuple-returning wrapper; the verification
        # report now rides on the result (docs/migration_v1.md).
        import repro.core.routing as routing

        assert not hasattr(routing, "route_and_report")

    def test_build_network_rejects_legacy_kwargs(self):
        with pytest.raises(TypeError):
            build_network(8, implementation="feedback")
        with pytest.raises(TypeError):
            build_network(8, engine="fast")

    def test_route_multicast_rejects_legacy_kwargs(self):
        with pytest.raises(TypeError):
            route_multicast(4, {0: [1]}, implementation="unrolled")
        with pytest.raises(TypeError):
            route_multicast(4, {0: [1]}, engine="fast")

    def test_route_multicast_attaches_verification(self):
        res = route_multicast(4, {0: [1, 2]})
        assert res.verification is not None and res.verification.ok
