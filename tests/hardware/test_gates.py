"""Tests for the gate-level netlist substrate."""

import pytest

from repro.hardware.gates import GATE_OPS, Circuit


class TestGateOps:
    def test_truth_tables(self):
        cases = {
            "NOT": {(0,): 1, (1,): 0},
            "AND": {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1},
            "OR": {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1},
            "XOR": {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0},
            "NAND": {(0, 0): 1, (1, 1): 0},
            "NOR": {(0, 0): 1, (0, 1): 0},
            "XNOR": {(0, 0): 1, (0, 1): 0, (1, 1): 1},
        }
        for op, table in cases.items():
            _arity, fn = GATE_OPS[op]
            for ins, want in table.items():
                assert fn(*ins) == want, (op, ins)


class TestCircuit:
    def test_alpha_predicate_circuit(self):
        """Section 7.2: is_alpha = b0 AND NOT b1."""
        c = Circuit()
        b0 = c.add_input("b0")
        b1 = c.add_input("b1")
        nb1 = c.add_gate("NOT", b1)
        c.add_output("is_alpha", c.add_gate("AND", b0, nb1))
        from repro.core.tags import Tag, encode_tag

        for tag in (Tag.ZERO, Tag.ONE, Tag.ALPHA, Tag.EPS):
            bits = encode_tag(tag)
            values, _t = c.evaluate({"b0": bits[0], "b1": bits[1]})
            assert values["is_alpha"] == (1 if tag is Tag.ALPHA else 0)

    def test_arrival_times(self):
        c = Circuit()
        a = c.add_input("a")
        b = c.add_input("b")
        x = c.add_gate("AND", a, b)        # t = 1
        y = c.add_gate("OR", x, a)         # t = 2
        c.add_output("y", y)
        _v, t = c.evaluate({"a": 1, "b": 0})
        assert t == 2
        assert c.critical_path() == 2

    def test_custom_delay(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_output("o", c.add_gate("BUF", a, delay=5))
        assert c.critical_path() == 5

    def test_gate_count(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_output("o", c.add_gate("NOT", c.add_gate("NOT", a)))
        assert c.gate_count == 2

    def test_unknown_op_rejected(self):
        c = Circuit()
        a = c.add_input("a")
        with pytest.raises(ValueError):
            c.add_gate("MAJ", a)

    def test_wrong_arity_rejected(self):
        c = Circuit()
        a = c.add_input("a")
        with pytest.raises(ValueError):
            c.add_gate("AND", a)

    def test_duplicate_names_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(ValueError):
            c.add_input("a")

    def test_non_binary_input_rejected(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_output("o", c.add_gate("BUF", a))
        with pytest.raises(ValueError):
            c.evaluate({"a": 2})

    def test_missing_input_rejected(self):
        c = Circuit()
        a = c.add_input("a")
        c.add_output("o", c.add_gate("BUF", a))
        with pytest.raises(KeyError):
            c.evaluate({})
