"""Tests for the gate-level population counter (Section 7.2 hardware)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tags import Tag
from repro.hardware.counting_circuit import PopulationCounter, build_predicate_bank
from repro.rbn.cells import cells_from_tags
from repro.rbn.scatter import count_tags

from conftest import sizes


class TestPredicateBank:
    def test_four_gates_per_input(self):
        assert build_predicate_bank(8).gate_count == 4 * 8

    def test_predicates_for_each_tag(self):
        bank = build_predicate_bank(1)
        from repro.core.tags import encode_tag

        expected = {
            Tag.ZERO: (0, 0, 0),
            Tag.ONE: (0, 0, 1),
            Tag.ALPHA: (1, 0, 0),
            Tag.EPS: (0, 1, 0),
            Tag.EPS1: (0, 1, 1),
        }
        for tag, (a, e, o) in expected.items():
            b0, b1, b2 = encode_tag(tag)
            values, _t = bank.evaluate({"b0_0": b0, "b1_0": b1, "b2_0": b2})
            assert (values["alpha_0"], values["eps_0"], values["one_0"]) == (a, e, o)


class TestPopulationCounter:
    @settings(max_examples=60, deadline=None)
    @given(sizes(max_m=5), st.data())
    def test_matches_behavioural_counts(self, n, data):
        """Gate-level counts equal the algorithm-level count_tags()."""
        tags = data.draw(
            st.lists(
                st.sampled_from([Tag.ZERO, Tag.ONE, Tag.ALPHA, Tag.EPS]),
                min_size=n,
                max_size=n,
            )
        )
        counter = PopulationCounter(n)
        report = counter.count(tags)
        behavioural = count_tags(cells_from_tags(tags))
        assert report.n_alpha == behavioural["na"]
        assert report.n_eps == behavioural["ne"]
        assert report.n_one == behavioural["n1"]

    def test_latency_logarithmic(self):
        """Adder-tree latency grows by a constant per doubling."""
        lat = []
        for m in (2, 4, 6):
            counter = PopulationCounter(1 << m)
            rep = counter.count([Tag.EPS] * (1 << m))
            lat.append(rep.adder_latency)
        assert lat[1] - lat[0] == lat[2] - lat[1] == 4

    def test_predicate_delay_constant(self):
        """Predicates are one gate level deep regardless of n."""
        for n in (4, 64):
            rep = PopulationCounter(n).count([Tag.ALPHA] * 0 + [Tag.EPS] * n)
            assert rep.predicate_delay == 2  # NOT + AND

    def test_gate_count_linear(self):
        g16 = PopulationCounter(16).gate_count
        g32 = PopulationCounter(32).gate_count
        g64 = PopulationCounter(64).gate_count
        # predicates 3n + three adder trees 3*5*(n-1): linear in n
        assert g32 - g16 == (g64 - g32) / 2

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            PopulationCounter(8).count([Tag.EPS] * 4)
