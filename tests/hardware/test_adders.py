"""Tests for the adder circuits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.adders import (
    FULL_ADDER_DEPTH,
    FULL_ADDER_GATES,
    add_with_circuit,
    build_full_adder,
    build_ripple_adder,
)


class TestFullAdder:
    def test_exhaustive_truth_table(self):
        fa = build_full_adder()
        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    values, _t = fa.evaluate({"a": a, "b": b, "cin": cin})
                    total = a + b + cin
                    assert values["sum"] == total & 1
                    assert values["cout"] == total >> 1

    def test_declared_constants(self):
        fa = build_full_adder()
        assert fa.gate_count == FULL_ADDER_GATES
        assert fa.critical_path() == FULL_ADDER_DEPTH


class TestRippleAdder:
    @given(
        st.integers(min_value=1, max_value=10),
        st.data(),
    )
    def test_correct_for_random_operands(self, width, data):
        x = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        y = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        adder = build_ripple_adder(width)
        total, _t = add_with_circuit(adder, x, y, width)
        assert total == x + y

    def test_gate_count_linear(self):
        assert build_ripple_adder(4).gate_count == 4 * FULL_ADDER_GATES
        assert build_ripple_adder(10).gate_count == 10 * FULL_ADDER_GATES

    def test_critical_path_grows_linearly(self):
        """The carry chain makes the unpipelined adder O(width) deep —
        the cost Fig. 12's bit-serial scheme avoids.  Exactly 2w + 1
        gate delays (2 per carry hop, plus the first XOR)."""
        for w in (1, 2, 4, 8, 16):
            assert build_ripple_adder(w).critical_path() == 2 * w + 1

    def test_operand_range_checked(self):
        adder = build_ripple_adder(4)
        with pytest.raises(ValueError):
            add_with_circuit(adder, 16, 0, 4)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            build_ripple_adder(0)
