"""Tests for the feedback-frame timing schedule."""

import pytest

from repro.hardware.schedule import build_frame_schedule
from repro.hardware.timing import TimingModel, TimingParameters


class TestScheduleStructure:
    def test_pass_count(self):
        for n in (4, 16, 256):
            s = build_frame_schedule(n)
            m = n.bit_length() - 1
            assert s.pass_count == 2 * m - 1

    def test_entries_contiguous_and_ordered(self):
        s = build_frame_schedule(64)
        now = 0
        for e in s.entries:
            assert e.start == now
            assert e.end > e.start or e.kind == "routing"
            now = e.end
        assert s.total_time == now

    def test_levels_monotonic(self):
        s = build_frame_schedule(32)
        levels = [e.level for e in s.entries]
        assert levels == sorted(levels)

    def test_alternating_kinds_within_levels(self):
        s = build_frame_schedule(16)
        kinds = [e.kind for e in s.entries]
        # routing, datapath, routing, datapath ... per level, ending with
        # the delivery pair
        assert kinds[0::2] == ["routing"] * (len(kinds) // 2)
        assert kinds[1::2] == ["datapath"] * (len(kinds) // 2)


class TestScheduleTimes:
    def test_total_is_routing_plus_datapath(self):
        s = build_frame_schedule(128)
        assert s.total_time == s.routing_time + s.datapath_time

    def test_routing_time_reconciles_with_model(self):
        """Schedule routing = model routing + one extra setting_delay
        per level (the schedule charges the parallel setting step per
        pass-group, the model once per BSN)."""
        p = TimingParameters()
        tm = TimingModel(p)
        for n in (8, 64, 512):
            s = build_frame_schedule(n, p)
            levels = n.bit_length() - 2  # BSN levels above the final switch
            assert s.routing_time == tm.brsmn_routing_time(n) + levels * p.setting_delay

    def test_datapath_time_is_stage_crossings(self):
        from repro.hardware.cost import DEFAULT_COST

        n = 16
        s = build_frame_schedule(n)
        # 2*(4+3) stages of the BSN levels (sizes 16, 8, 4) + 1 delivery
        expected_stages = 2 * (4 + 3 + 2) + 1
        assert s.datapath_time == expected_stages * DEFAULT_COST.switch_delay

    def test_grows_as_log_squared(self):
        from repro.analysis.fitting import GROWTH_MODELS, best_model

        ns = [2**k for k in range(3, 13)]
        totals = [build_frame_schedule(n).total_time for n in ns]
        sub = {k: v for k, v in GROWTH_MODELS.items() if k.startswith("log")}
        name, _c, _r = best_model(ns, totals, sub)
        assert name == "log^2 n"


class TestRender:
    def test_render_mentions_every_level(self):
        s = build_frame_schedule(16)
        text = s.render()
        for level in (1, 2, 3, 4):
            assert f"level {level}" in text
        assert "total" in text


class TestPipelinedThroughput:
    def test_feedback_period_is_latency(self):
        from repro.hardware.schedule import pipelined_throughput

        for n in (8, 128):
            r = pipelined_throughput(n)
            assert r.feedback_period == r.latency
            assert r.unrolled_period < r.feedback_period

    def test_unrolled_period_is_slowest_level(self):
        from repro.hardware.schedule import build_frame_schedule, pipelined_throughput

        n = 64
        r = pipelined_throughput(n)
        s = build_frame_schedule(n)
        level1 = sum(e.duration for e in s.entries if e.level == 1)
        assert r.unrolled_period == level1  # the widest level dominates

    def test_speedup_grows_with_n(self):
        from repro.hardware.schedule import pipelined_throughput

        speedups = [pipelined_throughput(1 << m).unrolled_speedup for m in (3, 6, 10)]
        assert speedups == sorted(speedups)

    def test_unrolled_period_is_order_log_n(self):
        from repro.analysis.fitting import GROWTH_MODELS, best_model
        from repro.hardware.schedule import pipelined_throughput

        ns = [2**k for k in range(3, 13)]
        periods = [pipelined_throughput(n).unrolled_period for n in ns]
        sub = {k: v for k, v in GROWTH_MODELS.items() if k.startswith("log")}
        name, _c, _r = best_model(ns, periods, sub)
        assert name == "log n"
