"""Tests: gate-level pass replay agrees with the behavioural simulator."""

import random

import pytest

from repro.core.tags import Tag, encode_tag
from repro.hardware.datapath_sim import gate_level_pass
from repro.rbn.cells import cells_from_tags
from repro.rbn.quasisort import quasisort
from repro.rbn.scatter import scatter
from repro.rbn.trace import Trace
from repro.viz.ascii import split_rbn_passes


def _bsn_passes(n, seed):
    """Record a scatter + quasisort frame; return passes and the
    behavioural intermediate/final tag vectors."""
    rng = random.Random(seed)
    half = n // 2
    na = rng.randint(0, half // 2)
    n0 = rng.randint(0, half - na)
    n1 = rng.randint(0, half - na)
    tags = (
        [Tag.ZERO] * n0
        + [Tag.ONE] * n1
        + [Tag.ALPHA] * na
        + [Tag.EPS] * (n - n0 - n1 - na)
    )
    rng.shuffle(tags)
    trace = Trace()
    mid = scatter(cells_from_tags(tags), 0, trace=trace)
    out = quasisort(mid, trace=trace, keep_dummies=True)
    return split_rbn_passes(trace, n), mid, out


class TestGateLevelAgreement:
    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_scatter_pass_tags_identical(self, n):
        """Netlist muxes + rewrites reproduce the scatter tag plane,
        including the alpha -> (0, 1) broadcast transformations."""
        passes, mid, _out = _bsn_passes(n, seed=n)
        g = gate_level_pass(passes[0], n)
        assert [encode_tag(t) for t in g.tags] == [
            encode_tag(c.tag) for c in mid
        ]

    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_quasisort_pass_tags_identical(self, n):
        passes, _mid, out = _bsn_passes(n, seed=n + 1)
        g = gate_level_pass(passes[1], n)
        assert [encode_tag(t) for t in g.tags] == [
            encode_tag(c.tag) for c in out
        ]

    def test_many_seeds(self):
        for seed in range(15):
            passes, mid, out = _bsn_passes(8, seed=seed)
            assert [encode_tag(t) for t in gate_level_pass(passes[0], 8).tags] == [
                encode_tag(c.tag) for c in mid
            ]
            assert [encode_tag(t) for t in gate_level_pass(passes[1], 8).tags] == [
                encode_tag(c.tag) for c in out
            ]


class TestDelayAccounting:
    def test_critical_path_linear_in_stages(self):
        """Per-stage delay is constant, so the pass critical path is
        proportional to log2 n."""
        paths = {}
        for n in (4, 16, 64):
            passes, _m, _o = _bsn_passes(n, seed=3)
            paths[n] = gate_level_pass(passes[0], n).critical_path
        per_stage_4 = paths[4] / 2
        per_stage_16 = paths[16] / 4
        per_stage_64 = paths[64] / 6
        assert per_stage_4 == per_stage_16 == per_stage_64

    def test_every_switch_evaluated_once(self):
        n = 16
        passes, _m, _o = _bsn_passes(n, seed=4)
        g = gate_level_pass(passes[0], n)
        assert g.switch_evaluations == (n // 2) * 4  # (n/2) log2 n


class TestValidation:
    def test_incomplete_pass_rejected(self):
        passes, _m, _o = _bsn_passes(8, seed=5)
        with pytest.raises(ValueError):
            gate_level_pass(passes[0][:2], 8)
