"""Tests for the cost model (Section 7.4 / Table 2 cost and depth)."""

import pytest

from repro.analysis.fitting import best_model, fit_constant
from repro.core.brsmn import BRSMN
from repro.core.feedback import FeedbackBRSMN
from repro.hardware.cost import DEFAULT_COST, CostModel, CostParameters


class TestSwitchCounts:
    def test_rbn(self):
        cm = CostModel()
        assert cm.rbn_switches(8) == 12
        assert cm.rbn_switches(1024) == 5120

    def test_bsn_is_two_rbns(self):
        cm = CostModel()
        for n in (2, 16, 256):
            assert cm.bsn_switches(n) == 2 * cm.rbn_switches(n)

    def test_brsmn_matches_network_object(self):
        """Model and the actual recursive network must agree exactly."""
        cm = CostModel()
        for n in (2, 4, 8, 32, 128):
            assert cm.brsmn_switches(n) == BRSMN(n).switch_count

    def test_feedback_matches_network_object(self):
        cm = CostModel()
        for n in (2, 8, 64):
            assert cm.feedback_switches(n) == FeedbackBRSMN(n).switch_count

    def test_brsmn_closed_form(self):
        """C(n) = sum_j 2^{j-1} n_j log n_j + n/2 with n_j = n/2^{j-1}."""
        cm = CostModel()
        n = 64
        expected = 0
        size, blocks = n, 1
        while size > 2:
            m = size.bit_length() - 1
            expected += blocks * size * m  # BSN(size) has size*log(size)
            blocks *= 2
            size //= 2
        expected += blocks
        assert cm.brsmn_switches(n) == expected


class TestGateCounts:
    def test_gates_scale_with_switches(self):
        cm = CostModel()
        g = DEFAULT_COST.gates_per_switch
        assert cm.rbn_gates(16) == cm.rbn_switches(16) * g
        assert cm.brsmn_gates(16) == cm.brsmn_switches(16) * g

    def test_custom_parameters(self):
        params = CostParameters(datapath_gates=2, routing_adders=0, routing_misc_gates=0)
        cm = CostModel(params)
        assert cm.rbn_gates(8) == 12 * 2


class TestGrowthShapes:
    """The Table 2 cost column, verified on measured counts."""

    def test_brsmn_is_n_log2n(self):
        cm = CostModel()
        ns = [2**k for k in range(3, 13)]
        name, _c, resid = best_model(ns, [cm.brsmn_gates(n) for n in ns])
        assert name == "n log^2 n"
        assert resid < 0.15

    def test_feedback_is_n_logn(self):
        cm = CostModel()
        ns = [2**k for k in range(3, 13)]
        name, _c, resid = best_model(ns, [cm.feedback_gates(n) for n in ns])
        assert name == "n log n"
        assert resid < 1e-9  # exact

    def test_rbn_is_n_logn_exact(self):
        cm = CostModel()
        ns = [2**k for k in range(1, 14)]
        c, resid = fit_constant(
            ns, [cm.rbn_switches(n) for n in ns], lambda n: n * (n.bit_length() - 1)
        )
        assert abs(c - 0.5) < 1e-12 and resid < 1e-12


class TestDepths:
    def test_rbn_depth(self):
        cm = CostModel()
        assert cm.rbn_depth(8) == 3 * DEFAULT_COST.switch_delay

    def test_brsmn_depth_matches_network(self):
        cm = CostModel(CostParameters(switch_delay=1))
        for n in (2, 8, 64):
            assert cm.brsmn_depth(n) == BRSMN(n).depth

    def test_feedback_depth_equals_unrolled(self):
        cm = CostModel()
        for n in (4, 32):
            assert cm.feedback_depth(n) == cm.brsmn_depth(n)

    def test_depth_is_log2_squared(self):
        from repro.analysis.fitting import GROWTH_MODELS

        cm = CostModel()
        ns = [2**k for k in range(3, 13)]
        sublinear = {
            k: v for k, v in GROWTH_MODELS.items() if k.startswith("log") or k == "1"
        }
        name, _c, _resid = best_model(
            ns, [cm.brsmn_depth(n) for n in ns], sublinear
        )
        assert name == "log^2 n"


class TestSummary:
    def test_summary_keys(self):
        s = CostModel().summary(16)
        assert set(s) == {"rbn", "bsn", "brsmn", "feedback"}
        for row in s.values():
            assert set(row) == {"switches", "gates", "depth"}
