"""Tests for the routing-time model (Table 2's third column)."""

from repro.analysis.fitting import GROWTH_MODELS, best_model
from repro.hardware.timing import (
    TimingModel,
    TimingParameters,
    measure_phase_counters,
)


class TestPhaseTime:
    def test_phase_is_linear_in_log_n(self):
        tm = TimingModel(TimingParameters(cycle_delay=1))
        # (2m + 1) cycles
        assert tm.phase_time(2) == 3
        assert tm.phase_time(8) == 7
        assert tm.phase_time(1024) == 21

    def test_cycle_delay_scales(self):
        a = TimingModel(TimingParameters(cycle_delay=1)).phase_time(64)
        b = TimingModel(TimingParameters(cycle_delay=3)).phase_time(64)
        assert b == 3 * a


class TestBsnRoutingTime:
    def test_composition(self):
        p = TimingParameters(cycle_delay=1, phases_per_bsn=3, setting_delay=0)
        tm = TimingModel(p)
        assert tm.bsn_routing_time(8) == 3 * 2 * 7

    def test_log_growth(self):
        tm = TimingModel()
        ns = [2**k for k in range(3, 14)]
        sub = {k: v for k, v in GROWTH_MODELS.items() if k.startswith("log")}
        name, _c, _r = best_model(ns, [tm.bsn_routing_time(n) for n in ns], sub)
        assert name == "log n"


class TestBrsmnRoutingTime:
    def test_recurrence(self):
        """T(n) = bsn(n) + T(n/2)."""
        tm = TimingModel()
        for n in (8, 64, 512):
            assert tm.brsmn_routing_time(n) == tm.bsn_routing_time(
                n
            ) + tm.brsmn_routing_time(n // 2)

    def test_log_squared_growth(self):
        """Table 2: the new design's routing time is log^2 n — strictly
        below the log^3 n of Nassimi-Sahni and Lee-Oruc."""
        tm = TimingModel()
        ns = [2**k for k in range(3, 14)]
        sub = {k: v for k, v in GROWTH_MODELS.items() if k.startswith("log")}
        name, _c, _r = best_model(
            ns, [tm.brsmn_routing_time(n) for n in ns], sub
        )
        assert name == "log^2 n"

    def test_feedback_same_latency(self):
        tm = TimingModel()
        for n in (8, 256):
            assert tm.feedback_routing_time(n) == tm.brsmn_routing_time(n)

    def test_summary(self):
        s = TimingModel().summary(64)
        assert set(s) == {"phase", "bsn", "brsmn", "feedback"}
        assert s["brsmn"] > s["bsn"] > s["phase"]


class TestMeasuredCounters:
    def test_three_phase_pairs_per_bsn(self):
        """Empirically: one BSN frame runs exactly 3 forward and 3
        backward tree traversals (scatter, eps-divide, sort) — the
        phases_per_bsn constant is measured, not assumed."""
        for n, m in ((8, 3), (32, 5), (128, 7)):
            pc = measure_phase_counters(n, seed=1)
            assert pc.forward_levels == 3 * m
            assert pc.backward_levels == 3 * m
            assert pc.phases == 3

    def test_every_switch_set_twice(self):
        """Scatter RBN + sort RBN each set all (n/2) log n switches."""
        n, m = 64, 6
        pc = measure_phase_counters(n, seed=2)
        assert pc.switch_settings == 2 * (n // 2) * m

    def test_deterministic_given_seed(self):
        a = measure_phase_counters(32, seed=9)
        b = measure_phase_counters(32, seed=9)
        assert a.forward_ops == b.forward_ops
        assert a.backward_ops == b.backward_ops
