"""Tests for the pipelined bit-serial adder (Fig. 12)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.adders import FULL_ADDER_GATES
from repro.hardware.pipeline import BitSerialAdder, PipelinedAdderTree, pipelined_add


class TestBitSerialAdder:
    def test_single_bits(self):
        a = BitSerialAdder()
        assert a.step(1, 1) == 0 and a.carry == 1
        assert a.step(0, 0) == 1 and a.carry == 0

    def test_carry_persists_across_cycles(self):
        a = BitSerialAdder()
        # 3 + 1 = 4, LSB first: (1,1)->0 c1, (1,0)->0 c1, (0,0)->1
        assert [a.step(1, 1), a.step(1, 0), a.step(0, 0)] == [0, 0, 1]

    def test_reset(self):
        a = BitSerialAdder()
        a.step(1, 1)
        a.reset()
        assert a.carry == 0

    def test_bit_validation(self):
        with pytest.raises(ValueError):
            BitSerialAdder().step(2, 0)

    def test_gate_count_constant(self):
        assert BitSerialAdder().gate_count == FULL_ADDER_GATES


class TestPipelinedAdd:
    @given(
        st.integers(min_value=1, max_value=16),
        st.data(),
    )
    def test_exact_sums(self, width, data):
        x = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        y = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        total, cycles = pipelined_add(x, y, width)
        assert total == x + y
        assert cycles == width + 1


class TestPipelinedAdderTree:
    @given(st.integers(min_value=1, max_value=5), st.data())
    def test_reduction_correct(self, m, data):
        n = 1 << m
        width = 4
        ops = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=(1 << width) - 1),
                min_size=n,
                max_size=n,
            )
        )
        tree = PipelinedAdderTree(n)
        total, _lat = tree.reduce(ops, width)
        assert total == sum(ops)

    def test_structure(self):
        tree = PipelinedAdderTree(16)
        assert tree.depth == 4
        assert tree.node_count == 15
        assert tree.gate_count == 15 * FULL_ADDER_GATES

    def test_latency_is_fill_plus_drain(self):
        """Latency = log n (fill) + result bits (drain) — O(log n), not
        O(log n * bits): the Section 7.2 pipelining claim."""
        width = 4
        for m in (1, 2, 3, 4):
            n = 1 << m
            tree = PipelinedAdderTree(n)
            _total, lat = tree.reduce([1] * n, width)
            assert lat == m + (width + m)

    def test_latency_grows_logarithmically(self):
        width = 8
        lat = []
        for m in (2, 4, 6):
            tree = PipelinedAdderTree(1 << m)
            lat.append(tree.reduce([0] * (1 << m), width)[1])
        # doubling m adds a constant, not a multiple
        assert lat[1] - lat[0] == lat[2] - lat[1] == 4

    def test_operand_count_checked(self):
        tree = PipelinedAdderTree(4)
        with pytest.raises(ValueError):
            tree.reduce([1, 2, 3], 4)

    def test_operand_range_checked(self):
        tree = PipelinedAdderTree(4)
        with pytest.raises(ValueError):
            tree.reduce([16, 0, 0, 0], 4)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            PipelinedAdderTree(6)
