"""Tests for the gate-level 2x2 switch netlist."""

import itertools

import pytest

from repro.core.tags import Tag
from repro.hardware.switch_circuit import (
    build_switch_datapath,
    build_tag_rewrite,
    simulate_switch_bit,
    simulate_tag_rewrite,
    switch_datapath_gates,
)
from repro.rbn.switches import SwitchSetting


class TestDatapath:
    def test_all_settings_all_bits(self):
        """Gate-level datapath realises the full setting table."""
        expected = {
            SwitchSetting.PARALLEL: lambda u, l: (u, l),
            SwitchSetting.CROSS: lambda u, l: (l, u),
            SwitchSetting.UPPER_BCAST: lambda u, l: (u, u),
            SwitchSetting.LOWER_BCAST: lambda u, l: (l, l),
        }
        for setting, fn in expected.items():
            for u, l in itertools.product((0, 1), repeat=2):
                assert simulate_switch_bit(setting, u, l) == fn(u, l), (
                    setting, u, l,
                )

    def test_gate_count_constant(self):
        counts = switch_datapath_gates()
        assert counts["datapath"] == build_switch_datapath().gate_count
        assert counts["total"] == counts["datapath"] + 2 * counts["tag_rewrite"]

    def test_netlist_within_cost_model_budget(self):
        """The cost model's per-switch datapath constant must cover the
        actual netlist (datapath + both ports' tag rewrite)."""
        from repro.hardware.cost import DEFAULT_COST

        assert switch_datapath_gates()["total"] <= DEFAULT_COST.datapath_gates + 10
        # and the netlist isn't trivially over-budgeted either
        assert switch_datapath_gates()["total"] >= DEFAULT_COST.datapath_gates - 10

    def test_critical_path_small(self):
        """A serial bit crosses the switch in a handful of gate delays."""
        assert build_switch_datapath().critical_path() <= 4


class TestTagRewrite:
    def test_broadcast_rewrites_alpha(self):
        assert simulate_tag_rewrite(Tag.ALPHA, bcast=True, lower=False) is Tag.ZERO
        assert simulate_tag_rewrite(Tag.ALPHA, bcast=True, lower=True) is Tag.ONE

    def test_passthrough_preserves_tags(self):
        for tag in (Tag.ZERO, Tag.ONE, Tag.ALPHA, Tag.EPS):
            for lower in (False, True):
                assert simulate_tag_rewrite(tag, bcast=False, lower=lower) is tag

    def test_gate_count(self):
        assert build_tag_rewrite().gate_count == 6

    def test_matches_behavioural_broadcast(self):
        """Gate-level rewrite agrees with Cell.split()'s tag outcome."""
        from repro.rbn.cells import Cell

        cell = Cell(Tag.ALPHA, data="m", branch0="a", branch1="b")
        up, lo = cell.split()
        assert simulate_tag_rewrite(Tag.ALPHA, bcast=True, lower=False) is up.tag
        assert simulate_tag_rewrite(Tag.ALPHA, bcast=True, lower=True) is lo.tag
