"""The process executor: bit-identity, envelopes, crash recovery.

Everything here pins the ``executor="process"`` contract from
``docs/executors.md``: a :class:`ProcessShardRouter` batch is
bit-identical to the sequential ``FramePlan.apply_batch`` for numeric
and object dtypes, with and without an active fault plan, and no
worker-process crash, envelope cache miss or pool respawn may change
the routed bytes — only the resilience/process counters.
"""

from __future__ import annotations

import multiprocessing
import os
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import assignments, make_random_assignment
from repro import BRSMN, FaultPlan, NetworkConfig
from repro.core.fastplan import compile_frame_plan
from repro.obs import MetricsObserver
from repro.obs.events import Observer
from repro.parallel import PlanEnvelope, ProcessShardRouter, ProcessWorkerPool

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

fork_only = pytest.mark.skipif(
    not HAS_FORK,
    reason="crash-hook tests need the fork start method (hook must be "
    "inherited by worker processes, not re-imported away)",
)


class RecordingObserver(Observer):
    """Collects resilience actions and process (action, kind) pairs."""

    def __init__(self):
        self.resilience = []
        self.process = []

    def on_resilience(self, event):
        self.resilience.append(event.action)

    def on_process(self, event):
        self.process.append((event.action, event.kind))


@pytest.fixture(scope="module")
def pool():
    with ProcessWorkerPool(2) as shared_pool:
        yield shared_pool


def _numeric_matrix(n, batch, seed, dtype=np.int64):
    rng = np.random.default_rng(seed)
    if np.issubdtype(np.dtype(dtype), np.floating):
        return rng.standard_normal((batch, n)).astype(dtype)
    return rng.integers(0, 1 << 30, size=(batch, n), dtype=dtype)


def _object_matrix(n, batch, seed):
    rng = random.Random(seed)
    return np.array(
        [[f"p{rng.randrange(1 << 16)}" for _ in range(n)] for _ in range(batch)],
        dtype=object,
    )


# -- PlanEnvelope ------------------------------------------------------


def test_envelope_roundtrip_routes_identically():
    plan = compile_frame_plan(make_random_assignment(16, random.Random(1)))
    env = PlanEnvelope.from_plan(plan)
    mat = _numeric_matrix(16, 6, seed=1)
    assert np.array_equal(env.materialise().apply_batch(mat, 0), plan.apply_batch(mat))


def test_envelope_key_folds_in_casualties():
    plan = compile_frame_plan(
        make_random_assignment(16, random.Random(2)),
        fault_plan=FaultPlan.random(16, faults=3, seed=7, drop_rate=1.0),
    )
    clean = compile_frame_plan(make_random_assignment(16, random.Random(2)))
    assert PlanEnvelope.from_plan(clean).key != PlanEnvelope.from_plan(plan).key


def test_slim_envelope_cannot_materialise():
    plan = compile_frame_plan(make_random_assignment(8, random.Random(3)))
    thin = PlanEnvelope.from_plan(plan).thin()
    assert thin.slim
    with pytest.raises(ValueError):
        thin.materialise()


# -- bit-identity (satellite: property tests) --------------------------


@settings(max_examples=10, deadline=None)
@given(
    a=assignments(min_m=2, max_m=5),
    seed=st.integers(0, 2**32 - 1),
    batch=st.integers(3, 16),
)
def test_process_shm_matches_sequential_numeric(pool, a, seed, batch):
    plan = compile_frame_plan(a)
    router = ProcessShardRouter(pool)
    mat = _numeric_matrix(plan.n, batch, seed)
    assert np.array_equal(router.apply(plan, mat), plan.apply_batch(mat))


@settings(max_examples=10, deadline=None)
@given(
    a=assignments(min_m=2, max_m=4),
    seed=st.integers(0, 2**32 - 1),
    batch=st.integers(3, 10),
)
def test_process_pickled_matches_sequential_object(pool, a, seed, batch):
    plan = compile_frame_plan(a)
    router = ProcessShardRouter(pool)
    mat = _object_matrix(plan.n, batch, seed)
    assert np.array_equal(router.apply(plan, mat), plan.apply_batch(mat))


@settings(max_examples=10, deadline=None)
@given(
    a=assignments(min_m=3, max_m=5),
    seed=st.integers(0, 2**32 - 1),
    attempt=st.integers(0, 3),
)
def test_process_matches_sequential_under_faults(pool, a, seed, attempt):
    """With an active FaultPlan the attempt's casualties are pre-sampled
    into the envelope — workers must deliver the exact bytes (and
    fills) the sequential faulted gather does, attempt by attempt."""
    fault_plan = FaultPlan.random(a.n, faults=2, seed=seed % 1000)
    plan = compile_frame_plan(a, fault_plan=fault_plan)
    router = ProcessShardRouter(pool)
    mat = _numeric_matrix(plan.n, 9, seed)
    assert np.array_equal(
        router.apply(plan, mat, attempt=attempt), plan.apply_batch(mat, attempt)
    )


def test_float_dtype_survives_shared_memory(pool):
    plan = compile_frame_plan(make_random_assignment(16, random.Random(4)))
    router = ProcessShardRouter(pool)
    mat = _numeric_matrix(16, 8, seed=4, dtype=np.float32)
    out = router.apply(plan, mat)
    assert out.dtype == np.float32
    assert np.array_equal(out, plan.apply_batch(mat))


def test_small_batch_routes_inline_without_pool(pool):
    plan = compile_frame_plan(make_random_assignment(8, random.Random(5)))
    router = ProcessShardRouter(pool)
    mat = _numeric_matrix(8, 1, seed=5)
    assert np.array_equal(router.apply(plan, mat), plan.apply_batch(mat))


# -- envelope shipping protocol ----------------------------------------


def test_warm_plan_ships_slim_envelopes(pool):
    plan = compile_frame_plan(make_random_assignment(16, random.Random(6)))
    rec = RecordingObserver()
    router = ProcessShardRouter(pool, observer=rec)
    mat = _numeric_matrix(16, 8, seed=6)
    expect = plan.apply_batch(mat)
    for _ in range(pool.workers + 3):
        assert np.array_equal(router.apply(plan, mat), expect)
    kinds = [kind for action, kind in rec.process if action == "envelope"]
    assert kinds.count("full") >= pool.workers
    assert "slim" in kinds


def test_slim_miss_is_reshipped_not_requeued(pool):
    """Lie to the router that every worker is warm: the cold workers
    answer the slim envelope with a miss, the router re-ships the full
    arrays, and the batch is still bit-identical — with zero requeues
    (a miss is protocol, not a failure)."""
    plan = compile_frame_plan(make_random_assignment(16, random.Random(7)))
    rec = RecordingObserver()
    router = ProcessShardRouter(pool, observer=rec)
    env = PlanEnvelope.from_plan(plan)
    router._envelope_sends[env.key] = pool.workers
    mat = _numeric_matrix(16, 8, seed=7)
    assert np.array_equal(router.apply(plan, mat), plan.apply_batch(mat))
    kinds = [kind for action, kind in rec.process if action == "envelope"]
    assert "miss" in kinds
    assert "full" in kinds  # the re-shipment after the miss
    assert router.requeues == 0
    assert rec.resilience == []


# -- crash recovery ----------------------------------------------------


def _crash_once_hook(marker_path, hard):
    """Build a crash hook that fires exactly once across all workers
    (an O_EXCL marker file is the cross-process 'already crashed' bit —
    it survives pool respawns, unlike worker memory)."""

    def hook(lo, hi):
        try:
            fd = os.open(str(marker_path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
        if hard:
            os._exit(1)
        raise ValueError("poisoned shard (soft crash)")

    return hook


@fork_only
def test_worker_process_death_requeues_and_respawns(tmp_path):
    """A worker dying mid-shard breaks the whole executor
    (BrokenProcessPool): the router must respawn the pool, resubmit the
    shard exactly once, and deliver bit-identical bytes."""
    from repro.parallel import process as proc_mod

    plan = compile_frame_plan(make_random_assignment(32, random.Random(8)))
    mat = _numeric_matrix(32, 12, seed=8)
    rec = RecordingObserver()
    pool = ProcessWorkerPool(2, observer=rec)
    proc_mod._CRASH_HOOK = _crash_once_hook(tmp_path / "crashed", hard=True)
    try:
        router = ProcessShardRouter(pool, observer=rec)
        out = router.apply(plan, mat)
    finally:
        proc_mod._CRASH_HOOK = None
        pool.shutdown()
    assert np.array_equal(out, plan.apply_batch(mat))
    assert router.requeues == 1
    assert router.inline_fallbacks == 0
    assert pool.respawns == 1
    assert rec.resilience.count("shard_requeued") == 1
    assert ("respawn", "") in rec.process


@fork_only
def test_soft_worker_failure_requeues_without_respawn(tmp_path):
    """An exception *inside* the worker function (process survives)
    must take the requeue path without poisoning the pool."""
    from repro.parallel import process as proc_mod

    plan = compile_frame_plan(make_random_assignment(32, random.Random(9)))
    mat = _numeric_matrix(32, 12, seed=9)
    rec = RecordingObserver()
    pool = ProcessWorkerPool(2, observer=rec)
    proc_mod._CRASH_HOOK = _crash_once_hook(tmp_path / "crashed", hard=False)
    try:
        router = ProcessShardRouter(pool, observer=rec)
        out = router.apply(plan, mat)
    finally:
        proc_mod._CRASH_HOOK = None
        pool.shutdown()
    assert np.array_equal(out, plan.apply_batch(mat))
    assert router.requeues == 1
    assert pool.respawns == 0
    assert rec.resilience.count("shard_requeued") == 1


@fork_only
def test_double_crash_falls_back_inline(tmp_path):
    """A shard that crashes its requeue too is routed inline on the
    submitting thread — the batch still completes bit-identically."""
    from repro.parallel import process as proc_mod

    plan = compile_frame_plan(make_random_assignment(32, random.Random(10)))
    mat = _numeric_matrix(32, 12, seed=10)
    rec = RecordingObserver()
    pool = ProcessWorkerPool(2, observer=rec)

    def always_crash(lo, hi):
        os._exit(1)

    proc_mod._CRASH_HOOK = always_crash
    try:
        router = ProcessShardRouter(pool, observer=rec)
        out = router.apply(plan, mat)
    finally:
        proc_mod._CRASH_HOOK = None
        pool.shutdown()
    assert np.array_equal(out, plan.apply_batch(mat))
    assert router.requeues == 1
    assert router.inline_fallbacks == 1
    assert rec.resilience.count("shard_requeued") == 1
    assert rec.resilience.count("shard_inline") == 1


@fork_only
def test_object_dtype_crash_recovery_is_bit_identical(tmp_path):
    from repro.parallel import process as proc_mod

    plan = compile_frame_plan(make_random_assignment(16, random.Random(11)))
    mat = _object_matrix(16, 10, seed=11)
    pool = ProcessWorkerPool(2)
    proc_mod._CRASH_HOOK = _crash_once_hook(tmp_path / "crashed", hard=True)
    try:
        router = ProcessShardRouter(pool)
        out = router.apply(plan, mat)
    finally:
        proc_mod._CRASH_HOOK = None
        pool.shutdown()
    assert np.array_equal(out, plan.apply_batch(mat))
    assert router.requeues == 1


# -- pool lifecycle / control plane ------------------------------------


def test_worker_target_caps_fan_out(pool):
    router = ProcessShardRouter(pool)
    assert router.effective_workers == pool.workers
    router.set_worker_target(1)
    assert router.effective_workers == 1
    plan = compile_frame_plan(make_random_assignment(16, random.Random(12)))
    mat = _numeric_matrix(16, 8, seed=12)
    # One effective worker -> single shard, routed inline, still exact.
    assert np.array_equal(router.apply(plan, mat), plan.apply_batch(mat))
    router.set_worker_target(None)
    assert router.effective_workers == pool.workers
    with pytest.raises(ValueError):
        router.set_worker_target(0)


def test_close_tears_down_without_leaking_processes():
    cfg = NetworkConfig(16, engine="fast", workers=2, executor="process")
    net = BRSMN(cfg)
    a = make_random_assignment(16, random.Random(13))
    mat = _numeric_matrix(16, 8, seed=13)
    result = net.route_batch(a, mat)
    assert np.array_equal(
        result.payloads, BRSMN(NetworkConfig(16, engine="fast")).route_batch(a, mat).payloads
    )
    procs = list(net._proc_pool._executor._processes.values())
    assert procs, "the batch should have started the process pool"
    net.close()
    assert net._proc_pool._executor is None
    for proc in procs:
        assert not proc.is_alive()
    net.close()  # idempotent


def test_end_to_end_process_network_matches_sequential_with_faults():
    fault_plan = FaultPlan.random(16, faults=2, seed=21)
    a = make_random_assignment(16, random.Random(14))
    numeric = _numeric_matrix(16, 12, seed=14)
    objects = _object_matrix(16, 12, seed=14)
    seq = BRSMN(NetworkConfig(16, engine="fast", fault_plan=fault_plan))
    proc = BRSMN(
        NetworkConfig(
            16, engine="fast", workers=2, executor="process", fault_plan=fault_plan
        )
    )
    try:
        for mat in (numeric, objects):
            assert np.array_equal(
                proc.route_batch(a, mat).payloads,
                seq.route_batch(a, mat).payloads,
            )
    finally:
        proc.close()
        seq.close()


def test_process_metrics_families_populate():
    metrics = MetricsObserver()
    cfg = NetworkConfig(
        16, engine="fast", workers=2, executor="process", observer=metrics
    )
    net = BRSMN(cfg)
    a = make_random_assignment(16, random.Random(15))
    mat = _numeric_matrix(16, 8, seed=15)
    try:
        net.route_batch(a, mat)
        net.route_batch(a, _object_matrix(16, 8, seed=15))
    finally:
        net.close()
    text = metrics.registry.to_prometheus_text()
    assert 'repro_parallel_proc_tasks_total{kind="shard_shm"}' in text
    assert 'repro_parallel_proc_tasks_total{kind="shard_pickled"}' in text
    assert 'repro_parallel_proc_envelopes_total{kind="full"}' in text
    assert "repro_parallel_proc_workers 2" in text
    assert "repro_parallel_proc_shm_bytes_total" in text
