"""Concurrency stress + fault-batch property tests (ISSUE 6 satellite).

Two pins:

* ``route_batch`` under a ``FaultPlan`` is bit-identical to routing the
  same payload rows through sequential faulted ``route`` calls — the
  "fault-aware batch routing" gap named at the end of CHANGES PR 3 —
  and stays bit-identical when the batch is sharded across workers;
* eight concurrent fast routers sharing one
  :class:`~repro.parallel.plan_cache.ConcurrentPlanCache` deliver
  exactly what the reference engine delivers, frame for frame.
"""

from __future__ import annotations

import random
import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import assignments, make_random_assignment
from repro.core.brsmn import BRSMN
from repro.core.config import NetworkConfig
from repro.faults import FaultPlan
from repro.parallel import ConcurrentPlanCache


@settings(max_examples=20, deadline=None)
@given(
    a=assignments(min_m=2, max_m=4),
    fault_seed=st.integers(0, 2**16),
    faults=st.integers(1, 3),
)
def test_faulted_route_batch_matches_sequential_routes(a, fault_seed, faults):
    plan = FaultPlan.random(a.n, faults=faults, seed=fault_seed)
    net = BRSMN(NetworkConfig(a.n, engine="fast", fault_plan=plan))
    rng = np.random.default_rng(fault_seed)
    mat = rng.integers(1, 2**31, size=(7, a.n))

    batch = net.route_batch(a, mat)
    for f in range(mat.shape[0]):
        single = net.route(a, payloads=list(mat[f]))
        expect = np.zeros(a.n, dtype=mat.dtype)
        for o, msg in enumerate(single.outputs):
            if msg is not None:
                expect[o] = msg.payload
        assert np.array_equal(batch.payloads[f], expect)
        # delivery_src agrees with the per-frame outputs (casualties
        # are idle in both views).
        for o in range(a.n):
            src = batch.delivery_src[o]
            if single.outputs[o] is None:
                assert src == -1
            else:
                assert src == single.outputs[o].source


@settings(max_examples=10, deadline=None)
@given(a=assignments(min_m=2, max_m=4), fault_seed=st.integers(0, 2**16))
def test_faulted_batch_identical_across_worker_counts(a, fault_seed):
    plan = FaultPlan.random(a.n, faults=2, seed=fault_seed)
    rng = np.random.default_rng(fault_seed + 1)
    mat = rng.integers(1, 2**31, size=(23, a.n))
    results = []
    for workers in (1, 4):
        net = BRSMN(
            NetworkConfig(a.n, engine="fast", fault_plan=plan, workers=workers)
        )
        results.append(net.route_batch(a, mat))
        net.close()
    one, four = results
    assert np.array_equal(one.payloads, four.payloads)
    assert np.array_equal(one.delivery_src, four.delivery_src)
    assert one.payloads.dtype == four.payloads.dtype


def test_eight_routers_sharing_one_cache_match_reference():
    n = 32
    frames = [
        make_random_assignment(n, random.Random(seed)) for seed in range(24)
    ]
    reference = BRSMN(NetworkConfig(n))
    expected = []
    for a in frames:
        outputs = reference.route(a).outputs
        expected.append(
            [(m.source, m.payload) if m is not None else None for m in outputs]
        )

    cache = ConcurrentPlanCache(maxsize=64)
    errors = []
    start = threading.Barrier(8)

    def router(tid):
        # Each thread owns a network but they all share one cache, so
        # plan compilation is a cross-thread rendezvous on every frame.
        net = BRSMN(NetworkConfig(n, engine="fast"), plan_cache=cache)
        start.wait(timeout=10)
        for k, a in enumerate(frames):
            got = [
                (m.source, m.payload) if m is not None else None
                for m in net.route(a).outputs
            ]
            if got != expected[k]:
                errors.append((tid, k))
                return

    threads = [threading.Thread(target=router, args=(t,)) for t in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert errors == []
    # Single-flight: 8 threads x 24 frames but at most one compile per
    # distinct assignment; every other lookup hit or coalesced.
    assert cache.misses <= len(frames)
    assert cache.hits + cache.coalesced == 8 * len(frames) - cache.misses


def test_concurrent_batch_routers_share_a_cache():
    n = 16
    a = make_random_assignment(n, random.Random(99))
    cache = ConcurrentPlanCache(maxsize=8)
    rng = np.random.default_rng(0)
    mat = rng.integers(0, 2**31, size=(50, n))
    baseline = BRSMN(NetworkConfig(n, engine="fast")).route_batch(a, mat)
    outcomes = []

    def worker():
        net = BRSMN(
            NetworkConfig(n, engine="fast", workers=2), plan_cache=cache
        )
        outcomes.append(net.route_batch(a, mat))
        net.close()

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert len(outcomes) == 8
    for result in outcomes:
        assert np.array_equal(result.payloads, baseline.payloads)
    assert cache.misses == 1  # one shared plan, compiled exactly once
