"""Requeue accounting: ``shard_requeued`` means *actually* resubmitted.

Regression tests for an accounting slip in
:class:`~repro.parallel.shard.ShardedBatchRouter`: a crashed shard
bumped ``requeues`` and emitted ``shard_requeued`` *before* attempting
the resubmission — so when the executor had been shut down under the
router (resubmission impossible, shard routed inline), the books
claimed a requeue that never happened, contradicting the documented
semantics ("crashed shard tasks resubmitted to the pool").  These tests
pin the fixed contract:

* a crash whose resubmission fails counts only as an inline fallback;
* a crash whose resubmission lands counts as exactly one requeue;
* the last shard — routed inline on the submitting thread *by design* —
  never emits any resilience event at all.
"""

from __future__ import annotations

import random
import threading

import numpy as np

from conftest import make_random_assignment
from repro.core.fastplan import compile_frame_plan
from repro.obs import CompositeObserver, MetricsObserver
from repro.obs.events import Observer
from repro.parallel import ShardedBatchRouter, WorkerPool


class RecordingObserver(Observer):
    def __init__(self):
        self.actions = []

    def on_resilience(self, event):
        self.actions.append(event.action)


class CrashOnWorkerPlan:
    """Crashes every time it runs on a pool thread; fine inline."""

    def __init__(self, plan):
        self.plan = plan
        self.delivery_src = plan.delivery_src

    def apply_batch(self, mat, attempt=0):
        if threading.current_thread().name.startswith("repro-worker"):
            raise RuntimeError("worker crashed")
        return self.plan.apply_batch(mat, attempt)


class CrashOncePerShardPlan:
    """Each shard's first pool-thread attempt crashes; retries succeed."""

    def __init__(self, plan):
        self.plan = plan
        self.delivery_src = plan.delivery_src
        self._seen = set()
        self._lock = threading.Lock()

    def apply_batch(self, mat, attempt=0):
        if threading.current_thread().name.startswith("repro-worker"):
            key = int(mat[0, 0])  # first cell identifies the shard's rows
            with self._lock:
                first = key not in self._seen
                self._seen.add(key)
            if first:
                raise RuntimeError("worker crashed (once)")
        return self.plan.apply_batch(mat, attempt)


def _routed(router, plan_like, n, batch=12):
    mat = np.arange(batch * n, dtype=np.int64).reshape(batch, n)
    return mat, router.apply(plan_like, mat)


def test_failed_resubmission_is_inline_not_requeue():
    """Crash + dead executor on resubmit: zero requeues, only inlines."""
    a = make_random_assignment(32, random.Random(3))
    plan = compile_frame_plan(a)
    pool = WorkerPool(4)
    metrics = MetricsObserver()
    rec = RecordingObserver()
    router = ShardedBatchRouter(pool, observer=CompositeObserver(metrics, rec))
    # Let the 3 initial shard submissions through, then kill the
    # executor's door: every resubmission raises like a shut-down pool.
    real_submit = pool.submit
    calls = {"n": 0}

    def submit(kind, fn, *args, **kwargs):
        calls["n"] += 1
        if calls["n"] > 3:
            raise RuntimeError("cannot schedule new futures after shutdown")
        return real_submit(kind, fn, *args, **kwargs)

    pool.submit = submit
    try:
        mat, out = _routed(router, CrashOnWorkerPlan(plan), 32)
    finally:
        pool.submit = real_submit
        pool.shutdown()
    assert np.array_equal(out, plan.apply_batch(mat))
    assert router.requeues == 0
    assert router.inline_fallbacks == 3
    assert rec.actions.count("shard_requeued") == 0
    assert rec.actions.count("shard_inline") == 3
    text = metrics.registry.to_prometheus_text()
    assert "repro_resilience_shard_requeues_total" not in text.replace(
        "# HELP repro_resilience_shard_requeues_total", ""
    ).replace("# TYPE repro_resilience_shard_requeues_total", "")
    assert "repro_resilience_shard_inline_total 3" in text


def test_successful_resubmission_still_counts_one_requeue():
    """The fix must not under-count: a landed requeue is still a requeue."""
    a = make_random_assignment(32, random.Random(5))
    plan = compile_frame_plan(a)
    pool = WorkerPool(4)
    rec = RecordingObserver()
    router = ShardedBatchRouter(pool, observer=rec)
    try:
        mat, out = _routed(router, CrashOncePerShardPlan(plan), 32)
    finally:
        pool.shutdown()
    assert np.array_equal(out, plan.apply_batch(mat))
    assert router.requeues == 3
    assert router.inline_fallbacks == 0
    assert rec.actions.count("shard_requeued") == 3
    assert rec.actions.count("shard_inline") == 0


def test_designed_inline_last_shard_emits_nothing():
    """The submitting thread always routes the last shard inline — that
    is the design, not a recovery, so a healthy batch emits no
    resilience events and bumps no counters."""
    a = make_random_assignment(16, random.Random(9))
    plan = compile_frame_plan(a)
    pool = WorkerPool(4)
    rec = RecordingObserver()
    router = ShardedBatchRouter(pool, observer=rec)
    try:
        mat, out = _routed(router, plan, 16)
    finally:
        pool.shutdown()
    assert np.array_equal(out, plan.apply_batch(mat))
    assert router.requeues == 0
    assert router.inline_fallbacks == 0
    assert rec.actions == []
