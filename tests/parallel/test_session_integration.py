"""Parallel config through the session facades: same answers, off-thread work."""

from __future__ import annotations

import pytest

from repro.core.arrivals import QueueingSimulator, poisson_arrivals
from repro.core.config import NetworkConfig
from repro.core.fabric import MulticastFabric
from repro.workloads.hotspot import hotspot_session


def test_config_validates_parallel_fields():
    cfg = NetworkConfig(16, engine="fast", workers=4, compile_ahead=2)
    assert (cfg.workers, cfg.compile_ahead) == (4, 2)
    with pytest.raises(ValueError):
        NetworkConfig(16, engine="fast", workers=0)
    with pytest.raises(ValueError):
        NetworkConfig(16, engine="fast", compile_ahead=-1)
    with pytest.raises(ValueError):
        NetworkConfig(16, workers=2)  # reference engine
    with pytest.raises(ValueError):
        NetworkConfig(16, compile_ahead=1)  # reference engine


def test_fabric_lookahead_session_matches_sequential():
    frames = hotspot_session(32, frames=30, seed=11)
    sequential = MulticastFabric(NetworkConfig(32, engine="fast")).run(frames)
    fabric = MulticastFabric(
        NetworkConfig(32, engine="fast", workers=2, compile_ahead=2)
    )
    try:
        parallel = fabric.run(frames)
    finally:
        fabric.close()
    assert parallel.frames == sequential.frames
    assert parallel.deliveries == sequential.deliveries
    assert parallel.splits == sequential.splits
    assert parallel.fanout_histogram == sequential.fanout_histogram
    # Lookahead moved compiles off-thread; the cache still converged to
    # one plan per distinct assignment (prefetch + route coalesce).
    cache = fabric.network.plan_cache
    assert cache.misses <= sequential.plan_cache_misses
    assert fabric.network.pipeline.prefetches > 0


def test_fabric_run_accepts_generators_with_lookahead():
    fabric = MulticastFabric(
        NetworkConfig(16, engine="fast", compile_ahead=3)
    )
    try:
        stats = fabric.run(a for a in hotspot_session(16, frames=10, seed=3))
    finally:
        fabric.close()
    assert stats.frames == 10


def test_queueing_simulator_prefetch_is_invisible_in_results():
    arrivals = poisson_arrivals(16, rate=1.5, slots=20, seed=13)
    plain = QueueingSimulator(NetworkConfig(16, engine="fast")).run(arrivals)
    sim = QueueingSimulator(
        NetworkConfig(16, engine="fast", workers=2, compile_ahead=2)
    )
    try:
        prefetched = sim.run(arrivals)
    finally:
        sim.close()
    assert prefetched.served == plain.served
    assert prefetched.waits == plain.waits
    assert prefetched.deliveries == plain.deliveries
    assert prefetched.backlog_per_slot == plain.backlog_per_slot


def test_close_is_idempotent_and_restartable():
    fabric = MulticastFabric(NetworkConfig(16, engine="fast", workers=2))
    frames = hotspot_session(16, frames=4, seed=1)
    fabric.run(frames)
    fabric.close()
    fabric.close()
    fabric.run(frames)  # pool restarts transparently
    fabric.close()
    assert fabric.stats.frames == 8
