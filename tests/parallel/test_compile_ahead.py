"""Compile-ahead pipeline: enqueue, drop, drain, coalescing."""

from __future__ import annotations

import random
import threading
import time

import pytest

from conftest import make_random_assignment
from repro.core.fastplan import compile_frame_plan
from repro.obs.events import Observer
from repro.parallel import CompileAheadPipeline, ConcurrentPlanCache, WorkerPool


class ParallelRecorder(Observer):
    def __init__(self):
        self.parallel = []
        self._lock = threading.Lock()

    def on_parallel(self, event):
        with self._lock:
            self.parallel.append(event)


def assignment(seed, n=16):
    return make_random_assignment(n, random.Random(seed))


def test_prefetch_warms_the_cache():
    cache = ConcurrentPlanCache(maxsize=8)
    with WorkerPool(2) as pool:
        pipe = CompileAheadPipeline(cache, pool, depth=2)
        a = assignment(1)
        assert pipe.prefetch(a) is True
        pipe.drain()
        assert cache.contains(a)
        assert pipe.queue_depth == 0
        # Routing now hits without compiling.
        _, hit = cache.get(a)
        assert hit is True
        # A warm assignment is not re-enqueued.
        assert pipe.prefetch(a) is False
        assert pipe.prefetches == 1


def test_full_queue_drops_instead_of_blocking():
    cache = ConcurrentPlanCache(maxsize=16)
    release = threading.Event()

    def slow_compile(asg):
        assert release.wait(timeout=10)
        return compile_frame_plan(asg)

    obs = ParallelRecorder()
    with WorkerPool(1, observer=obs) as pool:
        pipe = CompileAheadPipeline(
            cache, pool, depth=2, compile_fn=slow_compile, observer=obs
        )
        assert pipe.prefetch(assignment(2)) is True
        assert pipe.prefetch(assignment(3)) is True
        assert pipe.queue_depth == 2
        # Queue full: further prefetches are dropped, not queued.
        assert pipe.prefetch(assignment(4)) is False
        assert pipe.drops == 1
        release.set()
        pipe.drain()
        assert pipe.queue_depth == 0
        assert not cache.contains(assignment(4))
        actions = [e.action for e in obs.parallel if e.kind == "compile"]
        assert actions.count("enqueue") == 2
        assert actions.count("drop") == 1
        # The pipeline registered itself as the pool's depth source.
        starts = [e for e in obs.parallel if e.action == "start"]
        assert starts and all(e.workers == 1 for e in starts)


def test_routing_thread_coalesces_onto_prefetch():
    cache = ConcurrentPlanCache(maxsize=8)
    entered = threading.Event()
    release = threading.Event()

    def slow_compile(asg):
        entered.set()
        assert release.wait(timeout=10)
        return compile_frame_plan(asg)

    with WorkerPool(1) as pool:
        pipe = CompileAheadPipeline(cache, pool, depth=2, compile_fn=slow_compile)
        a = assignment(5)
        assert pipe.prefetch(a) is True
        assert entered.wait(timeout=10)
        # The "routing thread" looks the plan up mid-prefetch: it must
        # wait on the in-flight compile (hit=True), not compile again.
        got = []
        t = threading.Thread(target=lambda: got.append(cache.get(a)))
        t.start()
        deadline = time.monotonic() + 10
        while cache.coalesced < 1 and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        t.join(timeout=10)
        pipe.drain()
        assert got[0][1] is True
        assert cache.misses == 1
        assert cache.coalesced == 1


def test_failed_prefetch_never_sinks_the_run():
    cache = ConcurrentPlanCache(maxsize=8)

    def failing_compile(asg):
        raise RuntimeError("bad assignment")

    with WorkerPool(1) as pool:
        pipe = CompileAheadPipeline(
            cache, pool, depth=2, compile_fn=failing_compile
        )
        a = assignment(6)
        assert pipe.prefetch(a) is True
        pipe.drain()  # swallows the failure
        assert pipe.queue_depth == 0
        assert not cache.contains(a)
        # The routing thread's own lookup surfaces the real error.
        with pytest.raises(RuntimeError, match="bad assignment"):
            cache.get(a, failing_compile)


def test_depth_validation():
    cache = ConcurrentPlanCache(maxsize=8)
    with WorkerPool(1) as pool:
        with pytest.raises(ValueError):
            CompileAheadPipeline(cache, pool, depth=0)
