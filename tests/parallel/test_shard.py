"""Sharded batch routing: bounds, parity, merge determinism."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import assignments, make_random_assignment
from repro.core.fastplan import compile_frame_plan
from repro.parallel import ShardedBatchRouter, WorkerPool, shard_bounds


@given(
    batch=st.integers(min_value=0, max_value=500),
    workers=st.integers(min_value=1, max_value=16),
)
def test_shard_bounds_partition_the_batch(batch, workers):
    bounds = shard_bounds(batch, workers)
    assert len(bounds) == min(workers, batch)
    # Contiguous, ordered, covering [0, batch) exactly.
    expect = 0
    for lo, hi in bounds:
        assert lo == expect
        assert hi > lo
        expect = hi
    assert expect == batch
    # Balanced: shard sizes differ by at most one row.
    if bounds:
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1


def test_shard_bounds_are_deterministic_and_validated():
    assert shard_bounds(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]
    assert shard_bounds(2, 8) == [(0, 1), (1, 2)]
    with pytest.raises(ValueError):
        shard_bounds(-1, 4)
    with pytest.raises(ValueError):
        shard_bounds(10, 0)


@pytest.fixture(scope="module")
def pool():
    p = WorkerPool(4)
    yield p
    p.shutdown()


@settings(max_examples=25, deadline=None)
@given(a=assignments(min_m=2, max_m=5), seed=st.integers(0, 2**16))
def test_sharded_matches_sequential_numeric(a, seed, pool):
    plan = compile_frame_plan(a)
    rng = np.random.default_rng(seed)
    batch = int(rng.integers(1, 40))
    mat = rng.integers(0, 2**31, size=(batch, a.n))
    sequential = plan.apply_batch(mat)
    sharded = ShardedBatchRouter(pool).apply(plan, mat)
    assert sharded.dtype == sequential.dtype
    assert np.array_equal(sharded, sequential)


def test_sharded_matches_sequential_object(pool):
    a = make_random_assignment(32, random.Random(7))
    plan = compile_frame_plan(a)
    mat = np.asarray(
        [[f"m{r}.{c}" for c in range(32)] for r in range(13)], dtype=object
    )
    sequential = plan.apply_batch(mat)
    sharded = ShardedBatchRouter(pool).apply(plan, mat)
    assert sharded.dtype == object
    assert np.array_equal(sharded, sequential)


def test_small_batches_route_inline(pool):
    a = make_random_assignment(8, random.Random(8))
    plan = compile_frame_plan(a)
    one = np.arange(8).reshape(1, 8)
    assert np.array_equal(
        ShardedBatchRouter(pool).apply(plan, one), plan.apply_batch(one)
    )
    empty = np.empty((0, 8), dtype=np.int64)
    assert ShardedBatchRouter(pool).apply(plan, empty).shape == (0, 8)


def test_shard_failure_propagates(pool):
    class ExplodingPlan:
        delivery_src = np.arange(16)

        def apply_batch(self, mat, attempt=0):
            raise RuntimeError("shard blew up")

    mat = np.zeros((64, 16))
    with pytest.raises(RuntimeError, match="shard blew up"):
        ShardedBatchRouter(pool).apply(ExplodingPlan(), mat)
