"""ConcurrentPlanCache: striping, single-flight, events, fault keys."""

from __future__ import annotations

import random
import threading

import pytest

import time

from conftest import make_random_assignment
from repro.core.fastplan import PlanCache, compile_frame_plan
from repro.obs.events import Observer
from repro.parallel import ConcurrentPlanCache


class Recorder(Observer):
    """Collects cache events (thread-safely) for assertions."""

    def __init__(self):
        self.events = []
        self._lock = threading.Lock()

    def on_cache_event(self, event):
        with self._lock:
            self.events.append(event)

    def kinds(self):
        return [e.kind for e in self.events]


def assignment(n=16, seed=0):
    return make_random_assignment(n, random.Random(seed))


class TestSingleFlight:
    def test_concurrent_misses_compile_exactly_once(self):
        cache = ConcurrentPlanCache(maxsize=8)
        a = assignment(seed=1)
        entered = threading.Event()
        release = threading.Event()
        compiles = []

        def slow_compile(asg):
            entered.set()
            assert release.wait(timeout=10)
            compiles.append(threading.get_ident())
            return compile_frame_plan(asg)

        results = []

        def worker():
            results.append(cache.get(a, slow_compile))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        # The leader is parked inside slow_compile; hold it there until
        # the other 7 lookups have coalesced onto its in-flight future
        # (the coalesced counter is bumped before a waiter parks).
        assert entered.wait(timeout=10)
        deadline = time.monotonic() + 10
        while cache.coalesced < 7 and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        for t in threads:
            t.join(timeout=10)

        assert len(compiles) == 1
        assert cache.misses == 1
        assert cache.coalesced == 7
        plans = {id(plan) for plan, _ in results}
        assert len(plans) == 1
        # The one leader reports a miss, every waiter reports a hit.
        assert sorted(hit for _, hit in results) == [False] + [True] * 7

    def test_coalesced_waiters_reraise_leader_failure_then_retry(self):
        cache = ConcurrentPlanCache(maxsize=8)
        a = assignment(seed=2)
        entered = threading.Event()
        release = threading.Event()

        def failing_compile(asg):
            entered.set()
            assert release.wait(timeout=5)
            raise RuntimeError("compile exploded")

        errors = []

        def leader():
            try:
                cache.get(a, failing_compile)
            except RuntimeError as exc:
                errors.append(str(exc))

        def waiter():
            assert entered.wait(timeout=5)
            try:
                cache.get(a, failing_compile)
            except RuntimeError as exc:
                errors.append(str(exc))

        t1 = threading.Thread(target=leader)
        t2 = threading.Thread(target=waiter)
        t1.start()
        t2.start()
        assert entered.wait(timeout=5)
        # Let the waiter coalesce onto the in-flight future, then fail.
        deadline = time.monotonic() + 10
        while cache.coalesced < 1 and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        t1.join(timeout=5)
        t2.join(timeout=5)

        assert errors == ["compile exploded", "compile exploded"]
        assert not cache.contains(a)
        # The key was left uncached: a later lookup retries the compile.
        plan, hit = cache.get(a)
        assert hit is False
        assert cache.contains(a)

    def test_contains_counts_inflight_compiles(self):
        cache = ConcurrentPlanCache(maxsize=8)
        a = assignment(seed=3)
        started = threading.Event()
        release = threading.Event()

        def slow_compile(asg):
            started.set()
            assert release.wait(timeout=5)
            return compile_frame_plan(asg)

        t = threading.Thread(target=lambda: cache.get(a, slow_compile))
        t.start()
        assert started.wait(timeout=5)
        assert cache.contains(a)  # in flight, not yet inserted
        assert len(cache) == 0
        release.set()
        t.join(timeout=5)
        assert cache.contains(a)
        assert len(cache) == 1


class TestCacheSemantics:
    def test_hit_miss_counters_and_event_order(self):
        obs = Recorder()
        # stripes=1: with multiple stripes the per-stripe quota is
        # ceil(8/stripes), and whether two keys share a stripe depends
        # on randomised string hashing — a single stripe makes the
        # event stream deterministic.
        cache = ConcurrentPlanCache(maxsize=8, observer=obs, stripes=1)
        a, b = assignment(seed=4), assignment(seed=5)
        _, hit = cache.get(a)
        assert hit is False
        _, hit = cache.get(a)
        assert hit is True
        cache.get(b)
        assert (cache.hits, cache.misses, cache.coalesced) == (1, 2, 0)
        assert cache.hit_rate == pytest.approx(1 / 3)
        assert obs.kinds() == ["miss", "hit", "miss"]
        # Miss events snapshot the pre-insert size, hits the current.
        assert [e.size for e in obs.events] == [0, 1, 1]

    def test_lru_eviction_within_stripe(self):
        obs = Recorder()
        cache = ConcurrentPlanCache(maxsize=2, observer=obs, stripes=1)
        a, b, c = (assignment(seed=s) for s in (6, 7, 8))
        cache.get(a)
        cache.get(b)
        cache.get(a)  # refresh a; b is now LRU
        cache.get(c)  # evicts b
        assert len(cache) == 2
        assert cache.contains(a) and cache.contains(c)
        assert not cache.contains(b)
        assert obs.kinds() == ["miss", "miss", "hit", "miss", "evict"]
        assert obs.events[-1].key == PlanCache.make_key(b)

    def test_total_capacity_is_bounded(self):
        cache = ConcurrentPlanCache(maxsize=8, stripes=4)
        for seed in range(40):
            cache.get(assignment(seed=seed))
        # Per-stripe quota is ceil(8/4) = 2; total never exceeds
        # quota * stripes even under a skewed key distribution.
        assert len(cache) <= 8

    def test_clear_resets_everything(self):
        obs = Recorder()
        cache = ConcurrentPlanCache(maxsize=8, observer=obs)
        cache.get(assignment(seed=9))
        cache.get(assignment(seed=9))
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses, cache.coalesced) == (0, 0, 0)
        assert obs.kinds()[-1] == "clear"

    def test_validation(self):
        with pytest.raises(ValueError):
            ConcurrentPlanCache(maxsize=0)
        with pytest.raises(ValueError):
            ConcurrentPlanCache(maxsize=4, stripes=0)

    def test_share_keys_with_sequential_cache(self):
        a = assignment(seed=10)
        assert ConcurrentPlanCache.make_key(a) == PlanCache.make_key(a)
        assert ConcurrentPlanCache.make_key(a, "fp") == PlanCache.make_key(
            a, "fp"
        )


class TestFaultKeysUnderEviction:
    """`fingerprint@plan` keys stay correct under concurrent eviction."""

    def test_healthy_and_faulted_plans_never_collide(self):
        cache = ConcurrentPlanCache(maxsize=4, stripes=2)
        a = assignment(seed=11)
        stop = threading.Event()
        errors = []

        def churn(tid):
            # Keep the tiny cache constantly evicting.
            k = 0
            while not stop.is_set():
                cache.get(assignment(seed=100 + tid * 1000 + (k % 17)))
                k += 1

        def lookup():
            # Alternate healthy / faulted lookups of one assignment;
            # whatever evictions happen concurrently, each key must
            # always come back with its own plan.
            while not stop.is_set():
                healthy, _ = cache.get(a, lambda _: ("healthy", "plan"))
                faulted, _ = cache.get(
                    a, lambda _: ("faulted", "plan"), extra_key="deadbeef@1"
                )
                if healthy[0] != "healthy" or faulted[0] != "faulted":
                    errors.append((healthy, faulted))
                    return

        threads = [
            threading.Thread(target=churn, args=(t,)) for t in range(3)
        ] + [threading.Thread(target=lookup) for _ in range(2)]
        for t in threads:
            t.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for t in threads:
            t.join(timeout=10)
        timer.cancel()
        stop.set()
        assert errors == []
        assert len(cache) <= 4
