"""The pure control laws: identical inputs, identical decisions."""

import pytest

from repro.control import (
    AdmissionState,
    BackoffState,
    CompileAheadState,
    ControlPolicy,
    SignalWindow,
    WorkerState,
    admission_step,
    backoff_step,
    compile_ahead_step,
    worker_step,
)

POLICY = ControlPolicy(
    rate_floor=0.5,
    rate_ceiling=4.0,
    rate_increase=0.25,
    rate_decrease=0.5,
    reserve_step=0.5,
    reserve_max=2.0,
    backlog_high=16.0,
    backlog_low=2.0,
)


def window(**kwargs) -> SignalWindow:
    kwargs.setdefault("ticks", 4)
    return SignalWindow(**kwargs)


class TestAdmissionStep:
    def test_steady_state_no_action(self):
        state = AdmissionState(rate=1.5, reserve=0.0)
        new, actions = admission_step(POLICY, window(queue_depth=8), state)
        assert new == state and actions == []

    def test_backlog_multiplicative_decrease(self):
        state = AdmissionState(rate=2.0, reserve=0.0)
        new, actions = admission_step(POLICY, window(queue_depth=16), state)
        assert new.rate == 1.0
        assert [a.reason for a in actions] == ["backlog"]
        assert actions[0].parameter == "rate"
        assert (actions[0].old, actions[0].new) == (2.0, 1.0)

    def test_decrease_floored(self):
        state = AdmissionState(rate=0.6, reserve=0.0)
        new, _ = admission_step(POLICY, window(queue_depth=99), state)
        assert new.rate == POLICY.rate_floor

    def test_floor_reached_is_quiescent(self):
        state = AdmissionState(rate=POLICY.rate_floor, reserve=0.0)
        new, actions = admission_step(POLICY, window(queue_depth=99), state)
        assert new == state and actions == []

    def test_high_priority_shed_raises_rate_and_reserve(self):
        state = AdmissionState(rate=1.5, reserve=0.0)
        new, actions = admission_step(POLICY, window(shed_high=2), state)
        assert new.rate == 1.75 and new.reserve == 0.5
        assert [(a.parameter, a.reason) for a in actions] == [
            ("rate", "high_priority_shed"),
            ("reserve", "high_priority_shed"),
        ]

    def test_backlog_beats_shed(self):
        # Back-off wins over probing: first matching rule decides.
        state = AdmissionState(rate=2.0, reserve=0.0)
        new, actions = admission_step(
            POLICY, window(queue_depth=20, shed_high=3), state
        )
        assert new.rate == 1.0 and new.reserve == 0.0
        assert [a.reason for a in actions] == ["backlog"]

    def test_rate_capped_at_ceiling(self):
        state = AdmissionState(rate=POLICY.rate_ceiling, reserve=2.0)
        new, actions = admission_step(POLICY, window(shed_high=1), state)
        assert new.rate == POLICY.rate_ceiling
        assert all(a.parameter != "rate" for a in actions)

    def test_reserve_capped_by_policy_max(self):
        state = AdmissionState(rate=1.0, reserve=POLICY.reserve_max)
        new, actions = admission_step(POLICY, window(shed_high=1), state)
        assert new.reserve == POLICY.reserve_max
        assert all(a.parameter != "reserve" for a in actions)

    def test_reserve_capped_by_gate_burst(self):
        # reserve_cap mirrors the bound gate's burst - 1: an
        # AdmissionPolicy rejects reserve >= burst, so the controller
        # must never decide a value the actuator would refuse.
        state = AdmissionState(rate=1.0, reserve=1.0, reserve_cap=1.0)
        new, actions = admission_step(POLICY, window(shed_high=1), state)
        assert new.reserve == 1.0
        assert new.reserve_cap == 1.0  # cap survives the step
        assert all(a.parameter != "reserve" for a in actions)

    def test_spare_capacity_probes_up(self):
        state = AdmissionState(rate=1.0, reserve=0.0)
        new, actions = admission_step(
            POLICY, window(shed_low=4, queue_depth=1), state
        )
        assert new.rate == 1.25
        assert [a.reason for a in actions] == ["spare_capacity"]

    def test_best_effort_shed_with_backlog_holds(self):
        # Shedding best-effort while the queue is non-trivial is the
        # gate working as intended, not a reason to probe up.
        state = AdmissionState(rate=1.0, reserve=0.0)
        new, actions = admission_step(
            POLICY, window(shed_low=4, queue_depth=8), state
        )
        assert new == state and actions == []

    def test_pure_and_repeatable(self):
        state = AdmissionState(rate=1.5, reserve=0.0)
        w = window(shed_high=1, queue_depth=3)
        assert admission_step(POLICY, w, state) == admission_step(
            POLICY, w, state
        )


class TestCompileAheadStep:
    def test_drop_rate_grows_depth(self):
        state = CompileAheadState(depth=2)
        new, actions = compile_ahead_step(
            POLICY, window(prefetches=1, prefetch_drops=1), state
        )
        assert new.depth == 3
        assert [a.reason for a in actions] == ["drop_rate"]

    def test_depth_capped_at_max(self):
        state = CompileAheadState(depth=POLICY.depth_max)
        new, actions = compile_ahead_step(
            POLICY, window(prefetch_drops=5), state
        )
        assert new.depth == POLICY.depth_max and actions == []

    def test_low_drop_rate_holds(self):
        state = CompileAheadState(depth=2)
        new, actions = compile_ahead_step(
            POLICY, window(prefetches=9, prefetch_drops=1), state
        )
        assert new.depth == 2 and actions == []

    def test_idle_window_shrinks_depth(self):
        state = CompileAheadState(depth=3)
        new, actions = compile_ahead_step(POLICY, window(), state)
        assert new.depth == 2
        assert [a.reason for a in actions] == ["idle"]

    def test_idle_never_below_min(self):
        state = CompileAheadState(depth=POLICY.depth_min)
        new, actions = compile_ahead_step(POLICY, window(), state)
        assert new.depth == POLICY.depth_min and actions == []


class TestWorkerStep:
    def test_backlog_raises_target(self):
        state = WorkerState(target=2, maximum=4)
        new, actions = worker_step(POLICY, window(queue_depth=16), state)
        assert new.target == 3
        assert [a.reason for a in actions] == ["backlog"]

    def test_target_capped_at_pool_size(self):
        state = WorkerState(target=4, maximum=4)
        new, actions = worker_step(POLICY, window(queue_depth=99), state)
        assert new.target == 4 and actions == []

    def test_drained_parks_a_worker(self):
        state = WorkerState(target=3, maximum=4)
        new, actions = worker_step(POLICY, window(queue_depth=0), state)
        assert new.target == 2
        assert [a.reason for a in actions] == ["drained"]

    def test_never_below_worker_min(self):
        state = WorkerState(target=1, maximum=4)
        new, actions = worker_step(POLICY, window(queue_depth=0), state)
        assert new.target == 1 and actions == []

    def test_midband_holds(self):
        state = WorkerState(target=2, maximum=4)
        new, actions = worker_step(POLICY, window(queue_depth=8), state)
        assert new == state and actions == []


class TestBackoffStep:
    def test_half_open_scales_up(self):
        new, actions = backoff_step(
            POLICY, window(breaker_half_open=True), BackoffState(scale=1.0)
        )
        assert new.scale == POLICY.half_open_backoff_scale
        assert [a.reason for a in actions] == ["breaker_half_open"]

    def test_recovery_restores_unity(self):
        new, actions = backoff_step(
            POLICY, window(), BackoffState(scale=2.0)
        )
        assert new.scale == 1.0
        assert [a.reason for a in actions] == ["breaker_recovered"]

    def test_stable_states_are_silent(self):
        for half_open, scale in ((False, 1.0), (True, 2.0)):
            new, actions = backoff_step(
                POLICY,
                window(breaker_half_open=half_open),
                BackoffState(scale=scale),
            )
            assert new.scale == scale and actions == []


class TestAdvisorySignalsIgnored:
    """Wall-clock and pool-thread fields must never steer a decision."""

    @pytest.mark.parametrize(
        "advisory",
        [
            {"serve_ns": 10**12},
            {"cache_hits": 500},
            {"cache_misses": 500},
        ],
    )
    def test_decisions_blind_to_advisory_fields(self, advisory):
        base = window(queue_depth=8)
        noisy = window(queue_depth=8, **advisory)
        a_state = AdmissionState(rate=1.5, reserve=0.5)
        c_state = CompileAheadState(depth=2)
        w_state = WorkerState(target=2, maximum=4)
        b_state = BackoffState(scale=1.0)
        assert admission_step(POLICY, base, a_state) == admission_step(
            POLICY, noisy, a_state
        )
        assert compile_ahead_step(POLICY, base, c_state) == compile_ahead_step(
            POLICY, noisy, c_state
        )
        assert worker_step(POLICY, base, w_state) == worker_step(
            POLICY, noisy, w_state
        )
        assert backoff_step(POLICY, base, b_state) == backoff_step(
            POLICY, noisy, b_state
        )
