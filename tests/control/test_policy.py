"""ControlPolicy: the envelope validates every bound by name."""

import pytest

from repro.control import ControlPolicy


class TestDefaults:
    def test_defaults_construct(self):
        p = ControlPolicy()
        assert p.tick_frames == 1
        assert p.window_ticks == 4
        assert p.rate_floor <= p.rate_ceiling
        assert p.depth_min <= p.depth_max
        assert p.backlog_low <= p.backlog_high

    def test_frozen(self):
        with pytest.raises(Exception):
            ControlPolicy().tick_frames = 2


class TestValidationNamesTheField:
    """Every rejection names the offending field and its range —
    satellite (2): actionable config errors."""

    @pytest.mark.parametrize(
        "kwargs, field",
        [
            ({"tick_frames": 0}, "tick_frames"),
            ({"window_ticks": 0}, "window_ticks"),
            ({"rate_floor": 0.0}, "rate_floor"),
            ({"rate_floor": 4.0, "rate_ceiling": 2.0}, "rate_ceiling"),
            ({"rate_increase": -0.1}, "rate_increase"),
            ({"rate_decrease": 0.0}, "rate_decrease"),
            ({"rate_decrease": 1.5}, "rate_decrease"),
            ({"reserve_step": -1.0}, "reserve_step"),
            ({"reserve_max": -1.0}, "reserve_max"),
            ({"backlog_high": -1.0}, "backlog_high"),
            ({"backlog_low": -1.0}, "backlog_low"),
            ({"backlog_high": 1.0, "backlog_low": 2.0}, "backlog_high"),
            ({"depth_min": 0}, "depth_min"),
            ({"depth_min": 4, "depth_max": 2}, "depth_max"),
            ({"drop_threshold": -0.1}, "drop_threshold"),
            ({"drop_threshold": 1.1}, "drop_threshold"),
            ({"worker_min": 0}, "worker_min"),
            ({"half_open_backoff_scale": 0.5}, "half_open_backoff_scale"),
        ],
    )
    def test_bad_value_rejected_by_name(self, kwargs, field):
        with pytest.raises(ValueError, match=field):
            ControlPolicy(**kwargs)

    def test_error_carries_the_offending_value(self):
        with pytest.raises(ValueError, match="-3"):
            ControlPolicy(reserve_max=-3.0)
