"""The replay guarantee: seeded campaigns decide bit-identically.

The decision log is a pure function of the seed and the arrival trace
— across repeated runs, across export files, and even with worker
crashes injected on the pool threads (crashes perturb scheduling and
wall-clock, never the decision signals).
"""

from __future__ import annotations

import random
import threading

import numpy as np
import pytest

from conftest import make_random_assignment
from repro import (
    AdmissionPolicy,
    ControlPolicy,
    FaultPlan,
    NetworkConfig,
    QueueingSimulator,
    RetryPolicy,
)
from repro.control import ControlPlane
from repro.core.arrivals import poisson_arrivals
from repro.core.fastplan import compile_frame_plan
from repro.parallel import ShardedBatchRouter, WorkerPool
from repro.resilience import AdmissionGate


def run_campaign(seed=7, adaptive=True, workers=2, rate=2.0, n=32):
    """One seeded overload campaign (~2x capacity at rate=2.0)."""
    admission = AdmissionPolicy(
        rate=1.0, burst=6.0, soft_watermark=12.0, hard_watermark=24.0
    )
    control = (
        ControlPolicy(
            rate_floor=0.5,
            rate_ceiling=2.0,
            reserve_max=5.0,
            backlog_high=12.0,
            backlog_low=3.0,
        )
        if adaptive
        else None
    )
    cfg = NetworkConfig(
        n,
        engine="fast",
        workers=workers,
        fault_plan=FaultPlan.random(n, faults=2, seed=seed),
        admission=admission,
        control=control,
    )
    sim = QueueingSimulator(cfg, retry_policy=RetryPolicy(max_retries=2))
    arrivals = poisson_arrivals(
        n, rate=rate, slots=40, seed=seed + 1, high_priority_fraction=0.25
    )
    try:
        report = sim.run(arrivals)
    finally:
        sim.close()
    shed_high = sum(
        c for p, c in sim.gate.shed_by_priority.items() if p > 0
    )
    return sim, report, shed_high


class TestDecisionLogReplay:
    def test_three_runs_identical_logs(self):
        logs = [run_campaign()[0].control.decision_log() for _ in range(3)]
        assert logs[0], "campaign produced no decisions — not a real test"
        assert logs[0] == logs[1] == logs[2]

    def test_exports_byte_identical(self, tmp_path):
        texts = []
        for i in range(3):
            sim, _, _ = run_campaign()
            path = tmp_path / f"run{i}.json"
            sim.control.export_decision_log(str(path))
            texts.append(path.read_bytes())
        assert texts[0] == texts[1] == texts[2]

    def test_different_seed_different_log(self):
        a = run_campaign(seed=7)[0].control.decision_log()
        b = run_campaign(seed=8)[0].control.decision_log()
        assert a != b  # the log really is seed-driven, not constant

    def test_log_carries_no_wall_clock_fields(self):
        log = run_campaign()[0].control.decision_log()
        for entry in log:
            assert "t_ns" not in entry and "serve_ns" not in entry


class TestAdaptiveBeatsStatic:
    """Acceptance: at ~2x capacity the adaptive gate sheds strictly
    fewer high-priority frames than the static policy it started from,
    without losing requests."""

    def test_fewer_high_priority_sheds_at_overload(self):
        sim_a, rep_a, shed_high_a = run_campaign(adaptive=True)
        sim_s, rep_s, shed_high_s = run_campaign(adaptive=False)
        assert sim_s.control is None
        assert shed_high_a < shed_high_s
        assert rep_a.abandoned == 0 and rep_s.abandoned == 0

    def test_goodput_not_sacrificed(self):
        _, rep_a, _ = run_campaign(adaptive=True)
        _, rep_s, _ = run_campaign(adaptive=False)
        assert rep_a.served >= rep_s.served


# -- worker-crash injection -------------------------------------------------

def _on_pool_thread() -> bool:
    return threading.current_thread().name.startswith("repro-worker")


class CrashingPlan:
    """Wraps a real plan; the first ``crashes`` pool-thread calls die
    (the crash-safe router requeues / inlines the slice)."""

    def __init__(self, plan, crashes: int):
        self._plan = plan
        self._budget = crashes
        self._lock = threading.Lock()

    def apply_batch(self, mat, attempt=0):
        if _on_pool_thread():
            with self._lock:
                if self._budget > 0:
                    self._budget -= 1
                    raise RuntimeError("injected worker crash")
        return self._plan.apply_batch(mat, attempt)


def drive_plane_over_batches(crashes: int):
    """A deterministic tick script over a crash-injected shard router.

    The queue-depth schedule and shed events are fixed; only the
    pool-thread crashes vary.  The decision log must not notice them.
    """
    a = make_random_assignment(32, random.Random(5))
    plan = CrashingPlan(compile_frame_plan(a), crashes)
    mat = np.random.default_rng(5).integers(0, 2**31, size=(12, 32))
    pool = WorkerPool(2)
    try:
        router = ShardedBatchRouter(pool)
        gate = AdmissionGate(AdmissionPolicy(rate=1.0, burst=6.0))
        plane = ControlPlane(
            ControlPolicy(backlog_high=8.0, backlog_low=1.0)
        )
        plane.bind(gate=gate, router=router)
        for tick, depth in enumerate((10, 9, 0, 10, 0, 0)):
            router.apply(plan, mat)
            if tick % 2 == 0:
                gate.admit(priority=1, queue_depth=depth)
            plane.maybe_tick(queue_depth=depth)
        return plane.decision_log()
    finally:
        pool.shutdown()


class TestCrashInjectionInvariance:
    def test_crashes_do_not_perturb_decisions(self):
        baseline = drive_plane_over_batches(crashes=0)
        assert baseline, "script produced no decisions — not a real test"
        for _ in range(3):
            assert drive_plane_over_batches(crashes=3) == baseline


class TestAdaptiveCampaignWithCrashes:
    def test_simulator_replay_survives_worker_count(self):
        # The same campaign on 1 and 2 workers: scheduling differs,
        # decisions must not (workers only matter through the bound
        # router's pool size, which caps the worker controller).
        one = run_campaign(workers=1)[0].control.decision_log()
        two = run_campaign(workers=2)[0].control.decision_log()
        non_worker = lambda log: [
            d for d in log if d["controller"] != "workers"
        ]
        assert non_worker(one) == non_worker(two)
