"""ControlPlane: signal windows, binding, actuation, events, export."""

import json

import pytest

from repro.control import ControlPlane, ControlPolicy, SignalAggregator
from repro.obs import MetricsObserver, Observer
from repro.obs.events import FaultEvent, FrameDone, ResilienceEvent
from repro.parallel import (
    CompileAheadPipeline,
    ConcurrentPlanCache,
    ShardedBatchRouter,
    WorkerPool,
)
from repro.resilience import AdmissionGate, AdmissionPolicy
from repro.faults import RetryPolicy


class RecordingObserver(Observer):
    """Collects every ControlEvent it receives."""

    def __init__(self):
        self.events = []

    def on_control(self, event):
        self.events.append(event)


def shed_high(aggregator, count=1):
    for _ in range(count):
        aggregator.on_resilience(ResilienceEvent(action="shed", priority=1))


class TestSignalAggregator:
    def test_empty_window(self):
        agg = SignalAggregator(4)
        w = agg.window()
        assert w.ticks == 0 and w.frames == 0

    def test_counts_fold_into_current_bucket(self):
        agg = SignalAggregator(4)
        agg.on_frame_done(FrameDone(frame_id=1, deliveries=3, frames=2))
        agg.on_resilience(ResilienceEvent(action="admitted", priority=1))
        agg.on_resilience(ResilienceEvent(action="shed", priority=0))
        agg.on_fault(FaultEvent(action="retry"))
        agg.on_fault(FaultEvent(action="lost", terminals=(3, 5)))
        agg.close_tick(queue_depth=7)
        w = agg.window()
        assert w.ticks == 1 and w.frames == 2
        assert w.admitted_high == 1 and w.shed_low == 1
        assert w.retries == 1 and w.lost_terminals == 2
        assert w.queue_depth == 7

    def test_window_slides(self):
        agg = SignalAggregator(2)
        for depth in (1, 2, 3):
            agg.on_resilience(ResilienceEvent(action="shed", priority=1))
            agg.close_tick(queue_depth=depth)
        w = agg.window()
        assert w.ticks == 2        # oldest bucket evicted
        assert w.shed_high == 2    # flows sum over the window
        assert w.queue_depth == 3  # levels come from the latest tick

    def test_levels_not_summed(self):
        agg = SignalAggregator(4)
        agg.close_tick(queue_depth=10, breaker_half_open=True)
        agg.close_tick(queue_depth=0, breaker_half_open=False)
        w = agg.window()
        assert w.queue_depth == 0 and not w.breaker_half_open

    def test_bad_window_rejected_by_name(self):
        with pytest.raises(ValueError, match="window_ticks"):
            SignalAggregator(0)


class TestTickCadence:
    def test_tick_frames_batches_events(self):
        plane = ControlPlane(ControlPolicy(tick_frames=3))
        assert not plane.maybe_tick()
        assert not plane.maybe_tick()
        assert plane.maybe_tick()
        assert plane.tick_count == 1

    def test_tick_events_reach_the_owner_observer(self):
        rec = RecordingObserver()
        plane = ControlPlane(ControlPolicy(), observer=rec)
        plane.tick()
        assert [e.action for e in rec.events] == ["tick"]
        assert rec.events[0].tick == 1
        assert rec.events[0].t_ns > 0


class TestGateActuation:
    def test_shed_high_raises_gate_rate_and_reserve(self):
        gate = AdmissionGate(AdmissionPolicy(rate=1.0, burst=8.0))
        plane = ControlPlane(ControlPolicy(rate_increase=0.5))
        plane.bind(gate=gate)
        shed_high(plane.signals)
        plane.tick(queue_depth=0)
        assert gate.policy.rate == 1.5
        assert gate.policy.reserve == 0.5

    def test_backlog_cuts_gate_rate(self):
        gate = AdmissionGate(AdmissionPolicy(rate=4.0, burst=8.0))
        plane = ControlPlane(ControlPolicy(backlog_high=10.0))
        plane.bind(gate=gate)
        plane.tick(queue_depth=50)
        assert gate.policy.rate == 2.0

    def test_reserve_never_reaches_gate_burst(self):
        # The gate would raise on reserve >= burst; the plane's
        # reserve_cap keeps every decided value applicable.
        gate = AdmissionGate(AdmissionPolicy(rate=1.0, burst=2.0))
        plane = ControlPlane(
            ControlPolicy(reserve_step=5.0, reserve_max=100.0)
        )
        plane.bind(gate=gate)
        for _ in range(4):
            shed_high(plane.signals)
            plane.tick(queue_depth=0)
        assert gate.policy.reserve == 1.0  # burst - 1, not reserve_max

    def test_unbound_plane_ticks_without_actuating(self):
        plane = ControlPlane(ControlPolicy())
        shed_high(plane.signals)
        plane.tick(queue_depth=99)
        assert plane.decision_log() == []


class TestPipelineAndWorkerActuation:
    @pytest.fixture()
    def pool(self):
        p = WorkerPool(3)
        yield p
        p.shutdown()

    def test_idle_window_shrinks_pipeline_depth(self, pool):
        pipeline = CompileAheadPipeline(
            ConcurrentPlanCache(maxsize=8), pool, depth=3
        )
        plane = ControlPlane(ControlPolicy())
        plane.bind(pipeline=pipeline)
        plane.tick()
        assert pipeline.depth == 2

    def test_drained_queue_parks_workers(self, pool):
        router = ShardedBatchRouter(pool)
        plane = ControlPlane(ControlPolicy(backlog_low=2.0))
        plane.bind(router=router)
        assert router.effective_workers == 3
        plane.tick(queue_depth=0)
        assert router.effective_workers == 2
        plane.tick(queue_depth=0)
        assert router.effective_workers == 1

    def test_backlog_raises_worker_target_up_to_pool(self, pool):
        router = ShardedBatchRouter(pool)
        router.set_worker_target(1)
        plane = ControlPlane(ControlPolicy(backlog_high=5.0))
        plane.bind(router=router)
        for _ in range(5):
            plane.tick(queue_depth=10)
        assert router.effective_workers == 3  # capped at pool size


class TestBackoffActuation:
    def test_half_open_breaker_scales_retry_policy(self):
        class HalfOpenBreaker:
            state = "half_open"

        applied = []
        base = RetryPolicy(base_delay_s=0.1, max_delay_s=1.0)
        plane = ControlPlane(ControlPolicy(half_open_backoff_scale=2.0))
        plane.bind(
            breaker=HalfOpenBreaker(),
            retry_policy=base,
            retry_setter=applied.append,
        )
        plane.tick()
        assert applied[-1].base_delay_s == pytest.approx(0.2)
        assert applied[-1].max_delay_s == pytest.approx(2.0)

        HalfOpenBreaker.state = "closed"
        plane.tick()
        assert applied[-1] is base  # scale 1.0 returns the base policy


class TestDecisionLog:
    def make_logged_plane(self):
        gate = AdmissionGate(AdmissionPolicy(rate=1.0, burst=8.0))
        plane = ControlPlane(ControlPolicy())
        plane.bind(gate=gate)
        shed_high(plane.signals)
        plane.tick(queue_depth=0)
        return plane

    def test_entries_carry_no_wall_clock(self):
        log = self.make_logged_plane().decision_log()
        assert log, "expected at least one decision"
        for entry in log:
            assert set(entry) == {
                "tick", "controller", "parameter", "old", "new", "reason"
            }

    def test_log_is_a_copy(self):
        plane = self.make_logged_plane()
        plane.decision_log().clear()
        assert plane.decision_log()

    def test_export_round_trips(self, tmp_path):
        plane = self.make_logged_plane()
        path = tmp_path / "nested" / "decisions.json"
        plane.export_decision_log(str(path))
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        assert doc["ticks"] == plane.tick_count
        assert doc["decisions"] == plane.decision_log()

    def test_adjust_events_mirror_the_log(self):
        rec = RecordingObserver()
        gate = AdmissionGate(AdmissionPolicy(rate=1.0, burst=8.0))
        plane = ControlPlane(ControlPolicy(), observer=rec)
        plane.bind(gate=gate)
        shed_high(plane.signals)
        plane.tick(queue_depth=0)
        adjusts = [e for e in rec.events if e.action == "adjust"]
        log = plane.decision_log()
        assert len(adjusts) == len(log)
        for event, entry in zip(adjusts, log):
            assert event.controller == entry["controller"]
            assert event.parameter == entry["parameter"]
            assert event.new == entry["new"]
            assert event.t_ns > 0  # events do carry wall-clock


class TestControlMetrics:
    def test_metric_families_populated(self):
        metrics = MetricsObserver()
        gate = AdmissionGate(AdmissionPolicy(rate=1.0, burst=8.0))
        plane = ControlPlane(ControlPolicy(), observer=metrics)
        plane.bind(gate=gate)
        shed_high(plane.signals)
        plane.tick(queue_depth=0)
        doc = json.loads(metrics.registry.to_json())
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["repro_control_ticks_total"]["samples"][0]["value"] == 1
        decisions = by_name["repro_control_decisions_total"]["samples"]
        assert sum(s["value"] for s in decisions) == len(plane.decision_log())
        assert (
            by_name["repro_control_admission_rate"]["samples"][0]["value"]
            == gate.policy.rate
        )
