"""Export formats: JSON schema golden and Prometheus text round-trip."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import parse_prometheus_text, render_prometheus_text


def _small_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    frames = reg.counter("frames_total", "frames routed", ("engine",))
    frames.inc(3, engine="fast")
    frames.inc(engine="reference")
    depth = reg.gauge("queue_depth", "backlog size")
    depth.set(4)
    ns = reg.histogram("frame_ns", "frame latency", buckets=(100, 200, 400))
    for v in (50, 150, 150, 300, 999):
        ns.observe(v)
    return reg


GOLDEN_DICT = {
    "version": 1,
    "metrics": [
        {
            "name": "frames_total",
            "type": "counter",
            "help": "frames routed",
            "labelnames": ["engine"],
            "samples": [
                {"labels": {"engine": "fast"}, "value": 3.0},
                {"labels": {"engine": "reference"}, "value": 1.0},
            ],
        },
        {
            "name": "queue_depth",
            "type": "gauge",
            "help": "backlog size",
            "labelnames": [],
            "samples": [{"labels": {}, "value": 4.0}],
        },
        {
            "name": "frame_ns",
            "type": "histogram",
            "help": "frame latency",
            "labelnames": [],
            "samples": [
                {
                    "labels": {},
                    "count": 5,
                    "sum": 1649.0,
                    "buckets": {"100": 1, "200": 3, "400": 4, "+Inf": 5},
                }
            ],
        },
    ],
}

GOLDEN_PROM = """\
# HELP frames_total frames routed
# TYPE frames_total counter
frames_total{engine="fast"} 3
frames_total{engine="reference"} 1
# HELP queue_depth backlog size
# TYPE queue_depth gauge
queue_depth 4
# HELP frame_ns frame latency
# TYPE frame_ns histogram
frame_ns_bucket{le="100"} 1
frame_ns_bucket{le="200"} 3
frame_ns_bucket{le="400"} 4
frame_ns_bucket{le="+Inf"} 5
frame_ns_sum 1649
frame_ns_count 5
"""


class TestJsonExport:
    def test_golden_dict(self):
        assert _small_registry().as_dict() == GOLDEN_DICT

    def test_to_json_round_trips(self):
        reg = _small_registry()
        assert json.loads(reg.to_json()) == GOLDEN_DICT

    def test_schema_is_versioned(self):
        assert MetricsRegistry().as_dict() == {"version": 1, "metrics": []}


class TestPrometheusExport:
    def test_golden_text(self):
        assert render_prometheus_text(_small_registry()) == GOLDEN_PROM

    def test_round_trip(self):
        reg = _small_registry()
        families = parse_prometheus_text(reg.to_prometheus_text())
        assert set(families) == {"frames_total", "queue_depth", "frame_ns"}
        ft = families["frames_total"]
        assert ft["type"] == "counter"
        assert ft["help"] == "frames routed"
        assert ("frames_total", {"engine": "fast"}, 3.0) in ft["samples"]
        fn = families["frame_ns"]
        assert fn["type"] == "histogram"
        buckets = {
            labels["le"]: v
            for name, labels, v in fn["samples"]
            if name == "frame_ns_bucket"
        }
        assert buckets == {"100": 1.0, "200": 3.0, "400": 4.0, "+Inf": 5.0}
        assert ("frame_ns_sum", {}, 1649.0) in fn["samples"]
        assert ("frame_ns_count", {}, 5.0) in fn["samples"]

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        c = reg.counter("odd_total", 'with "quotes" and \\slashes', ("k",))
        c.inc(k='va"lue\\with\nnasties')
        families = parse_prometheus_text(render_prometheus_text(reg))
        fam = families["odd_total"]
        assert fam["help"] == 'with "quotes" and \\slashes'
        name, labels, value = fam["samples"][0]
        assert labels == {"k": 'va"lue\\with\nnasties'}
        assert value == 1.0

    def test_float_values_survive(self):
        reg = MetricsRegistry()
        reg.gauge("ratio").set(0.8125)
        families = parse_prometheus_text(render_prometheus_text(reg))
        assert families["ratio"]["samples"][0][2] == 0.8125

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("metric_without_value\n")
