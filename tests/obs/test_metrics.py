"""Unit tests for the zero-dependency metrics registry."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log2_buckets,
)

INF = float("inf")


class TestLog2Buckets:
    def test_default_range(self):
        b = log2_buckets()
        assert b[0] == 1.0 and b[-1] == 2.0**32
        assert len(b) == 33

    def test_custom_range(self):
        assert log2_buckets(3, 6) == (8.0, 16.0, 32.0, 64.0)

    def test_single_bucket(self):
        assert log2_buckets(4, 4) == (16.0,)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            log2_buckets(5, 4)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("x_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_rejects_negative(self):
        c = Counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_series_independent(self):
        c = Counter("x_total", labelnames=("engine",))
        c.inc(engine="fast")
        c.inc(3, engine="reference")
        assert c.value(engine="fast") == 1.0
        assert c.value(engine="reference") == 3.0
        assert c.value(engine="never") == 0.0

    def test_label_mismatch_rejected(self):
        c = Counter("x_total", labelnames=("engine",))
        with pytest.raises(ValueError):
            c.inc(mode="oracle")
        with pytest.raises(ValueError):
            c.inc()


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("depth")
        g.set(7)
        assert g.value() == 7.0
        g.inc(-3)
        assert g.value() == 4.0


class TestHistogramBucketing:
    def test_boundaries_are_inclusive_upper(self):
        """Prometheus semantics: bucket ``le=b`` includes value == b."""
        h = Histogram("ns", buckets=(1, 2, 4, 8))
        for v in (1, 2, 4, 8):
            h.observe(v)
        assert h.bucket_counts() == {1.0: 1, 2.0: 1, 4.0: 1, 8.0: 1, INF: 0}

    def test_between_boundaries_rounds_up(self):
        h = Histogram("ns", buckets=(1, 2, 4, 8))
        h.observe(3)
        assert h.bucket_counts()[4.0] == 1

    def test_overflow_lands_in_inf(self):
        h = Histogram("ns", buckets=(1, 2))
        h.observe(100)
        assert h.bucket_counts()[INF] == 1

    def test_underflow_lands_in_first(self):
        h = Histogram("ns", buckets=(8, 16))
        h.observe(0)
        assert h.bucket_counts()[8.0] == 1

    def test_every_log2_bucket_addressable(self):
        """The binary search places 2**e and 2**e + 1 correctly."""
        h = Histogram("ns", buckets=log2_buckets(0, 16))
        for e in range(17):
            h.observe(2**e)        # exactly on boundary e
            h.observe(2**e + 1)    # first value past it
        counts = h.bucket_counts()
        assert counts[1.0] == 1
        for e in range(1, 17):
            # boundary 2**e catches its own value plus 2**(e-1)+1
            # (except e=1, where 2**0+1 == 2 sits exactly on the bound)
            assert counts[float(2**e)] == 2
        assert counts[INF] == 1  # 2**16 + 1

    def test_count_and_sum(self):
        h = Histogram("ns", buckets=(10,))
        h.observe(3)
        h.observe(4)
        assert h.count() == 2
        assert math.isclose(h.sum(), 7.0)

    def test_labelled_series(self):
        h = Histogram("ns", labelnames=("level",), buckets=(10,))
        h.observe(1, level="1")
        h.observe(2, level="2")
        assert h.count(level="1") == 1
        assert h.count(level="3") == 0

    def test_rejects_bad_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("ns", buckets=())
        with pytest.raises(ValueError):
            Histogram("ns", buckets=(1, 1))
        with pytest.raises(ValueError):
            Histogram("ns", buckets=(4, 2))


class TestRegistry:
    def test_idempotent_registration(self):
        reg = MetricsRegistry()
        a = reg.counter("frames_total", "frames")
        b = reg.counter("frames_total")
        assert a is b
        assert len(reg) == 1

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_get_and_iter(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        g = reg.gauge("b")
        assert reg.get("a") is c and reg.get("missing") is None
        assert list(reg) == [c, g]
