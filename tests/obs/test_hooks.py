"""Lifecycle hooks: emission order, both engines, cache and queue events.

The contract under test: per routed frame the stack emits exactly one
``FrameStart``, then the frame's level spans (and, on the fast engine,
plan-cache events), then exactly one ``FrameDone`` — in that order —
and nothing at all when the attached observer is disabled.
"""

import numpy as np
import pytest

from repro.core.arrivals import QueueingSimulator, poisson_arrivals
from repro.core.brsmn import BRSMN
from repro.core.config import NetworkConfig
from repro.core.fabric import MulticastFabric
from repro.core.multicast import MulticastAssignment, paper_example_assignment
from repro.obs import (
    CompositeObserver,
    MetricsObserver,
    NullSink,
    Observer,
    TracingObserver,
)
from repro.obs.events import CacheEvent, FrameDone, FrameStart, LevelSpan


def _traced_net(n, engine):
    tr = TracingObserver()
    net = BRSMN(NetworkConfig(n, engine=engine, observer=tr))
    return net, tr


class TestEmissionOrder:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_frame_start_levels_done(self, engine):
        net, tr = _traced_net(8, engine)
        net.route(paper_example_assignment())
        kinds = [type(e) for e in tr.events]
        assert kinds[0] is FrameStart
        assert kinds[-1] is FrameDone
        assert kinds.count(FrameStart) == 1 and kinds.count(FrameDone) == 1
        assert LevelSpan in kinds[1:-1]
        # timestamps agree with the ordering
        start, done = tr.events[0], tr.events[-1]
        assert start.t_ns <= done.t_ns
        assert done.duration_ns == done.t_ns - start.t_ns

    def test_frame_ids_increase(self):
        net, tr = _traced_net(8, "fast")
        a = paper_example_assignment()
        net.route(a)
        net.route(a)
        ids = [e.frame_id for e in tr.events if isinstance(e, FrameStart)]
        assert ids == sorted(ids) and len(set(ids)) == 2

    def test_frame_start_payload(self):
        net, tr = _traced_net(8, "reference")
        net.route(paper_example_assignment(), mode="oracle")
        start = tr.events[0]
        assert start.n == 8
        assert start.engine == "reference"
        assert start.mode == "oracle"
        assert start.frames == 1
        assert start.active_inputs == 4
        assert start.fanout == 8


class TestLevelSpans:
    def test_reference_levels_cover_the_recursion(self):
        net, tr = _traced_net(16, "reference")
        net.route(MulticastAssignment.from_dict(16, {0: list(range(16))}))
        tl = tr.timelines()[0]
        assert [s.level for s in tl.levels] == [1, 2, 3, 4]
        assert [s.size for s in tl.levels] == [16, 8, 4, 2]
        assert [s.blocks for s in tl.levels] == [1, 2, 4, 8]
        assert all(s.engine == "reference" for s in tl.levels)
        # level m is the delivery layer, everything above is BSN work
        assert set(tl.levels[-1].stage_ns) == {"deliver"}
        for span in tl.levels[:-1]:
            assert set(span.stage_ns) == {"bsn"}
            assert span.duration_ns > 0

    def test_fast_levels_carry_compile_stages(self):
        net, tr = _traced_net(16, "fast")
        net.route(MulticastAssignment.from_dict(16, {0: list(range(16))}))
        tl = tr.timelines()[0]
        assert [s.level for s in tl.levels] == [1, 2, 3]
        assert [s.size for s in tl.levels] == [16, 8, 4]
        assert all(s.engine == "fast" for s in tl.levels)
        for span in tl.levels:
            assert set(span.stage_ns) == {"tag", "scatter", "quasisort", "gather"}
            assert span.duration_ns >= max(span.stage_ns.values())
        # the broadcast splits once per level on its way to 16 outputs
        assert sum(s.splits for s in tl.levels) > 0
        assert tl.stage_ns().keys() == {"tag", "scatter", "quasisort", "gather"}

    def test_split_totals_match_result(self):
        net, tr = _traced_net(8, "reference")
        res = net.route(paper_example_assignment())
        tl = tr.timelines()[0]
        assert sum(s.splits for s in tl.levels) == res.total_splits
        assert sum(s.switch_ops for s in tl.levels) == res.switch_ops


class TestCacheEvents:
    def test_miss_then_hit(self):
        net, tr = _traced_net(8, "fast")
        a = paper_example_assignment()
        net.route(a)
        net.route(a)
        first, second = tr.timelines()
        assert [e.kind for e in first.cache_events] == ["miss"]
        assert [e.kind for e in second.cache_events] == ["hit"]
        assert first.done.cache_hit is False
        assert second.done.cache_hit is True
        # cache events land between the frame markers
        kinds = [
            (type(e), getattr(e, "kind", None)) for e in tr.events
        ]
        assert kinds.index((CacheEvent, "miss")) > kinds.index((FrameStart, None))

    def test_eviction_emitted(self):
        tr = TracingObserver()
        net = BRSMN(NetworkConfig(8, engine="fast", plan_cache_size=1, observer=tr))
        net.route(MulticastAssignment.from_dict(8, {0: [1]}))
        net.route(MulticastAssignment.from_dict(8, {2: [3]}))
        kinds = [e.kind for e in tr.events if isinstance(e, CacheEvent)]
        assert kinds == ["miss", "miss", "evict"] or kinds == ["miss", "evict", "miss"]

    def test_reference_engine_emits_no_cache_events(self):
        net, tr = _traced_net(8, "reference")
        net.route(paper_example_assignment())
        assert not [e for e in tr.events if isinstance(e, CacheEvent)]
        assert tr.timelines()[0].done.cache_hit is None


class TestBatchRouting:
    def test_fast_batch_is_one_submission(self):
        net, tr = _traced_net(8, "fast")
        mat = np.arange(5 * 8).reshape(5, 8).astype(object)
        net.route_batch(paper_example_assignment(), mat)
        starts = [e for e in tr.events if isinstance(e, FrameStart)]
        dones = [e for e in tr.events if isinstance(e, FrameDone)]
        assert len(starts) == len(dones) == 1
        assert starts[0].frames == 5 and dones[0].frames == 5
        assert dones[0].deliveries == 8  # per-frame deliveries

    def test_metrics_scale_by_batch_size(self):
        mo = MetricsObserver()
        net = BRSMN(NetworkConfig(8, engine="fast", observer=mo))
        mat = np.arange(5 * 8).reshape(5, 8).astype(object)
        net.route_batch(paper_example_assignment(), mat)
        frames = mo.registry.get("repro_frames_total")
        assert frames.value(engine="fast", mode="oracle") == 5.0
        assert mo.registry.get("repro_deliveries_total").value() == 40.0


class TestFabricAndComposite:
    def test_fabric_wires_config_observer(self):
        tr = TracingObserver()
        mo = MetricsObserver()
        fabric = MulticastFabric(
            NetworkConfig(8, observer=CompositeObserver(tr, mo))
        )
        fabric.submit(paper_example_assignment())
        assert len(tr.timelines()) == 1
        assert (
            mo.registry.get("repro_frames_total").value(
                engine="reference", mode="selfrouting"
            )
            == 1.0
        )

    def test_observer_kwarg_overrides_config(self):
        tr_cfg, tr_kw = TracingObserver(), TracingObserver()
        fabric = MulticastFabric(
            NetworkConfig(8, observer=tr_cfg), observer=tr_kw
        )
        fabric.submit(paper_example_assignment())
        assert not tr_cfg.events
        assert tr_kw.events

    def test_composite_drops_disabled_members(self):
        tr = TracingObserver()
        comp = CompositeObserver(NullSink(), tr, None)
        assert comp.observers == (tr,)
        assert comp.enabled
        assert not CompositeObserver(NullSink()).enabled
        assert not CompositeObserver().enabled

    def test_nullsink_keeps_sites_dormant(self):
        sink = NullSink()
        net = BRSMN(NetworkConfig(8, observer=sink))
        res = net.route(paper_example_assignment())
        assert res.delivered  # routing itself unaffected
        assert sink.enabled is False

    def test_base_observer_hooks_are_noops(self):
        obs = Observer()
        net = BRSMN(NetworkConfig(8, observer=obs))
        assert net.route(paper_example_assignment()).delivered


class TestQueueDepth:
    def test_simulator_samples_every_slot(self):
        tr = TracingObserver()
        sim = QueueingSimulator(
            NetworkConfig(8, engine="fast"), observer=tr
        )
        arrivals = poisson_arrivals(8, rate=1.0, slots=6, seed=3)
        report = sim.run(arrivals)
        assert len(tr.queue_samples) == report.slots_run
        assert [q.slot for q in tr.queue_samples] == list(range(report.slots_run))
        assert [q.depth for q in tr.queue_samples] == report.backlog_per_slot
        assert sum(q.served for q in tr.queue_samples) == report.served

    def test_metrics_observer_gauges(self):
        mo = MetricsObserver()
        sim = QueueingSimulator(NetworkConfig(8), observer=mo)
        arrivals = poisson_arrivals(8, rate=1.0, slots=6, seed=3)
        report = sim.run(arrivals)
        assert (
            mo.registry.get("repro_queue_served_total").value()
            == float(report.served)
        )
        assert (
            mo.registry.get("repro_queue_depth").value()
            == float(report.backlog_per_slot[-1])
        )
