"""Pay-for-what-you-use: a NullSink must not slow the fast engine down.

The strict 5% acceptance bar lives in ``benchmarks/bench_fast_engine.py``
where min-of-k timing on a large batch keeps noise down; this unit test
asserts the same property with a generous margin so it stays reliable
on loaded CI machines, plus the structural facts that make the bar
achievable (the gate short-circuits before any event is built).
"""

import time

import numpy as np

from repro.core.brsmn import BRSMN
from repro.core.config import NetworkConfig
from repro.obs import NullSink, Observer
from repro.workloads.random_assignments import random_multicast


def _min_of_k(fn, k=7, warmup=2):
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(k):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestNullSinkOverhead:
    def test_batch_routing_overhead_bounded(self):
        n, frames = 128, 32
        a = random_multicast(n, load=1.0, seed=9)
        mat = np.arange(frames * n).reshape(frames, n).astype(object)
        bare = BRSMN(NetworkConfig(n, engine="fast"))
        sunk = BRSMN(NetworkConfig(n, engine="fast", observer=NullSink()))
        bare_s = _min_of_k(lambda: bare.route_batch(a, mat))
        sunk_s = _min_of_k(lambda: sunk.route_batch(a, mat))
        # 50% margin: the benchmark owns the 5% bar; here we only guard
        # against accidentally emitting events through a disabled sink.
        assert sunk_s < bare_s * 1.5, (
            f"NullSink batch routing {sunk_s / bare_s - 1:.0%} slower"
        )

    def test_disabled_observer_sees_no_events(self):
        class Recording(NullSink):
            """Disabled observer that would notice any emission."""

            def __init__(self):
                self.called = False

            def on_frame_start(self, event):
                self.called = True

            def on_level(self, event):
                self.called = True

            def on_frame_done(self, event):
                self.called = True

            def on_cache_event(self, event):
                self.called = True

        rec = Recording()
        net = BRSMN(NetworkConfig(16, engine="fast", observer=rec))
        a = random_multicast(16, load=1.0, seed=1)
        net.route(a)
        net.route_batch(a, np.arange(3 * 16).reshape(3, 16).astype(object))
        assert rec.called is False

    def test_enabled_base_observer_costs_only_dispatch(self):
        """An enabled no-op Observer routes correctly (sanity, not perf)."""
        net = BRSMN(NetworkConfig(16, engine="fast", observer=Observer()))
        a = random_multicast(16, load=1.0, seed=2)
        assert net.route(a).delivered
