"""Tests for circular compact sequences C and compact settings W (eq. 5, Table 5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RoutingInvariantError
from repro.rbn.compact import (
    binary_compact_setting,
    compact_of_predicate,
    compact_positions,
    compact_sequence,
    find_compact,
    is_compact,
    trinary_compact_setting,
)
from repro.rbn.switches import SwitchSetting


class TestCompactSequence:
    def test_eq5_first_case(self):
        """s + l <= n: beta^s gamma^l beta^(n-s-l)."""
        assert compact_sequence(8, 2, 3, "b", "g") == list("bbgggbbb")

    def test_eq5_wraparound_case(self):
        """s + l > n: gamma^(l-n+s) beta^(n-l) gamma^(n-s)."""
        assert compact_sequence(8, 6, 5, "b", "g") == list("gggbbbgg")

    def test_zero_length_block(self):
        assert compact_sequence(4, 1, 0, 0, 1) == [0, 0, 0, 0]

    def test_full_block(self):
        assert compact_sequence(4, 3, 4, 0, 1) == [1, 1, 1, 1]

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            compact_sequence(4, 4, 1, 0, 1)
        with pytest.raises(ValueError):
            compact_sequence(4, 0, 5, 0, 1)

    def test_sorted_target_shape(self):
        """C^n_{n/2, n/2; 0, 1} = 0^(n/2) 1^(n/2) — the sort target."""
        assert compact_sequence(8, 4, 4, 0, 1) == [0, 0, 0, 0, 1, 1, 1, 1]

    @given(
        st.integers(min_value=1, max_value=64),
        st.data(),
    )
    def test_positions_match_sequence(self, n, data):
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        l = data.draw(st.integers(min_value=0, max_value=n))
        seq = compact_sequence(n, s, l, "b", "g")
        pos = set(compact_positions(n, s, l))
        assert all((seq[i] == "g") == (i in pos) for i in range(n))


class TestFindCompact:
    @given(st.integers(min_value=1, max_value=64), st.data())
    def test_roundtrip(self, n, data):
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        l = data.draw(st.integers(min_value=0, max_value=n))
        seq = compact_sequence(n, s, l, "b", "g")
        found = find_compact(seq, "g")
        assert found is not None
        fs, fl = found
        assert fl == l
        if 0 < l < n:
            assert fs == s

    def test_non_compact_detected(self):
        assert find_compact(list("gbgb"), "g") is None
        assert find_compact(list("gbbgbb"), "g") is None

    def test_is_compact_checks_start(self):
        seq = compact_sequence(8, 3, 2, "b", "g")
        assert is_compact(seq, "g", 3, 2)
        assert not is_compact(seq, "g", 4, 2)
        assert not is_compact(seq, "g", 3, 3)

    def test_is_compact_degenerate_any_start(self):
        assert is_compact(list("bbbb"), "g", 2, 0)
        assert is_compact(list("gggg"), "g", 1, 4)

    def test_predicate_variant(self):
        seq = ["x", "e0", "e1", "x"]
        found = compact_of_predicate(seq, lambda v: v.startswith("e"))
        assert found == (1, 2)


class TestBinaryCompactSetting:
    def test_no_wrap(self):
        out = binary_compact_setting(8, 1, 2, 0, 1)
        assert [int(s) for s in out] == [0, 1, 1, 0]

    def test_wrap(self):
        out = binary_compact_setting(8, 3, 2, 0, 1)
        assert [int(s) for s in out] == [1, 0, 0, 1]

    def test_zero_block(self):
        out = binary_compact_setting(8, 2, 0, 1, 2)
        assert all(int(s) == 1 for s in out)

    def test_full_block(self):
        out = binary_compact_setting(8, 2, 4, 0, 3)
        assert all(s is SwitchSetting.LOWER_BCAST for s in out)

    def test_start_position_modular(self):
        assert binary_compact_setting(8, 5, 2, 0, 1) == binary_compact_setting(
            8, 1, 2, 0, 1
        )

    def test_length_out_of_range(self):
        with pytest.raises(RoutingInvariantError):
            binary_compact_setting(8, 0, 5, 0, 1)

    @given(st.integers(min_value=1, max_value=6), st.data())
    def test_matches_compact_sequence(self, m, data):
        """W^{n/2}_{s,l;b1,b2} is C^{n/2}_{s,l} over settings."""
        n = 1 << m
        half = n // 2
        s = data.draw(st.integers(min_value=0, max_value=half - 1))
        l = data.draw(st.integers(min_value=0, max_value=half))
        out = binary_compact_setting(n, s, l, 0, 1)
        assert [int(x) for x in out] == compact_sequence(half, s, l, 0, 1)


class TestTrinaryCompactSetting:
    def test_three_blocks(self):
        # half=4: s=1, l=2 -> [b1, b2, b2, b3]
        out = trinary_compact_setting(8, 1, 2, 0, 2, 1)
        assert [int(s) for s in out] == [0, 2, 2, 1]

    def test_empty_middle_block(self):
        out = trinary_compact_setting(8, 2, 0, 0, 2, 1)
        assert [int(s) for s in out] == [0, 0, 1, 1]

    def test_overflow_rejected(self):
        with pytest.raises(RoutingInvariantError):
            trinary_compact_setting(8, 3, 2, 0, 2, 1)

    def test_degenerate_to_binary(self):
        """With s = 0 the trinary setting is binary (no setting1 block)."""
        tri = trinary_compact_setting(8, 0, 2, 1, 2, 1)
        binary = binary_compact_setting(8, 0, 2, 1, 2)
        assert tri == binary
