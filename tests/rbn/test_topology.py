"""Tests for the static RBN topology (Fig. 5 structure)."""

import pytest

from repro.errors import NetworkSizeError
from repro.rbn.topology import RBNTopology, rbn_stage_count, rbn_switch_count


class TestCounts:
    def test_switch_count_formula(self):
        """(n/2) log2 n switches (Section 7.4)."""
        assert rbn_switch_count(2) == 1
        assert rbn_switch_count(8) == 12
        assert rbn_switch_count(1024) == 512 * 10

    def test_stage_count(self):
        assert rbn_stage_count(2) == 1
        assert rbn_stage_count(64) == 6

    def test_invalid_sizes(self):
        with pytest.raises(NetworkSizeError):
            rbn_switch_count(6)
        with pytest.raises(NetworkSizeError):
            RBNTopology(1)


class TestStageStructure:
    def test_blocks_and_sizes(self):
        topo = RBNTopology(16)
        # stage k: n/2^k merging networks of size 2^k
        assert [topo.merging_blocks(k) for k in (1, 2, 3, 4)] == [8, 4, 2, 1]
        assert [topo.merging_size(k) for k in (1, 2, 3, 4)] == [2, 4, 8, 16]

    def test_switches_per_stage_constant(self):
        topo = RBNTopology(32)
        for k in range(1, topo.stage_count + 1):
            assert sum(1 for _ in topo.switches_in_stage(k)) == 16

    def test_total_switch_enumeration(self):
        topo = RBNTopology(16)
        assert sum(1 for _ in topo.all_switches()) == topo.switch_count == 32

    def test_terminal_pairs_within_blocks(self):
        topo = RBNTopology(16)
        for sw in topo.all_switches():
            q = topo.merging_size(sw.stage)
            base = sw.block * q
            assert base <= sw.upper_terminal < base + q // 2
            assert sw.lower_terminal == sw.upper_terminal + q // 2

    def test_each_stage_touches_all_terminals(self):
        topo = RBNTopology(32)
        for k in range(1, topo.stage_count + 1):
            touched = set()
            for sw in topo.switches_in_stage(k):
                touched.add(sw.upper_terminal)
                touched.add(sw.lower_terminal)
            assert touched == set(range(32))

    def test_stage_permutation_pairs(self):
        topo = RBNTopology(8)
        # Stage 3 = one size-8 merging network: pairs (i, i+4).
        assert topo.stage_permutation(3) == [(0, 4), (1, 5), (2, 6), (3, 7)]

    def test_stage_bounds_checked(self):
        topo = RBNTopology(8)
        with pytest.raises(ValueError):
            topo.merging_blocks(0)
        with pytest.raises(ValueError):
            topo.merging_size(4)


class TestSubRBNRanges:
    def test_sub_rbn_terminals(self):
        topo = RBNTopology(16)
        assert list(topo.sub_rbn_terminals(3, 0)) == list(range(0, 8))
        assert list(topo.sub_rbn_terminals(3, 1)) == list(range(8, 16))
        assert list(topo.sub_rbn_terminals(2, 3)) == list(range(12, 16))

    def test_block_bounds_checked(self):
        topo = RBNTopology(16)
        with pytest.raises(ValueError):
            topo.sub_rbn_terminals(3, 2)

    def test_feedback_reuse_decomposition(self):
        """Level-j slices of one RBN tile the terminal space (Sec 7.3)."""
        topo = RBNTopology(32)
        for stage in range(1, topo.stage_count + 1):
            covered = []
            for block in range(topo.merging_blocks(stage)):
                covered.extend(topo.sub_rbn_terminals(stage, block))
            assert sorted(covered) == list(range(32))
