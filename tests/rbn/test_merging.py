"""Tests for the single-stage merging network (Figs. 5-7)."""

import pytest

from repro.core.tags import Tag
from repro.errors import RoutingInvariantError
from repro.rbn.cells import Cell, cells_from_tags
from repro.rbn.merging import apply_merging, merging_switch_count
from repro.rbn.switches import SwitchSetting


def _msg_cells(*names):
    return [Cell(Tag.ZERO, data=nm) if nm else Cell(Tag.EPS) for nm in names]


class TestStructure:
    def test_switch_count(self):
        assert merging_switch_count(2) == 1
        assert merging_switch_count(8) == 4
        assert merging_switch_count(1024) == 512

    def test_odd_size_rejected(self):
        with pytest.raises(ValueError):
            merging_switch_count(7)


class TestWiring:
    def test_parallel_identity(self):
        """Fig. 7a: parallel maps terminal j -> j, j+n/2 -> j+n/2."""
        upper = _msg_cells("u0", "u1")
        lower = _msg_cells("l0", "l1")
        out = apply_merging(upper, lower, [SwitchSetting.PARALLEL] * 2)
        assert [c.data for c in out] == ["u0", "u1", "l0", "l1"]

    def test_cross_swaps_halves(self):
        """Fig. 7b: crossing maps terminal j -> j+n/2 and back."""
        upper = _msg_cells("u0", "u1")
        lower = _msg_cells("l0", "l1")
        out = apply_merging(upper, lower, [SwitchSetting.CROSS] * 2)
        assert [c.data for c in out] == ["l0", "l1", "u0", "u1"]

    def test_mixed_settings_independent(self):
        upper = _msg_cells("u0", "u1", "u2", "u3")
        lower = _msg_cells("l0", "l1", "l2", "l3")
        settings = [
            SwitchSetting.PARALLEL,
            SwitchSetting.CROSS,
            SwitchSetting.PARALLEL,
            SwitchSetting.CROSS,
        ]
        out = apply_merging(upper, lower, settings)
        assert [c.data for c in out] == [
            "u0", "l1", "u2", "l3", "l0", "u1", "l2", "u3",
        ]

    def test_broadcast_places_copies_across_halves(self):
        """Fig. 7c: the two copies land n/2 apart (tag 0 up, tag 1 down)."""
        upper = cells_from_tags([Tag.ALPHA, Tag.ZERO])
        lower = cells_from_tags([Tag.EPS, Tag.ZERO])
        out = apply_merging(
            upper, lower, [SwitchSetting.UPPER_BCAST, SwitchSetting.PARALLEL]
        )
        assert out[0].tag is Tag.ZERO and out[0].data == "m0.0"
        assert out[2].tag is Tag.ONE and out[2].data == "m0.1"


class TestValidation:
    def test_halves_must_match(self):
        with pytest.raises(RoutingInvariantError):
            apply_merging(_msg_cells("a"), _msg_cells("b", "c"), [SwitchSetting.PARALLEL])

    def test_setting_count_must_match(self):
        with pytest.raises(RoutingInvariantError):
            apply_merging(
                _msg_cells("a", "b"),
                _msg_cells("c", "d"),
                [SwitchSetting.PARALLEL],
            )

    def test_bad_broadcast_pair_rejected(self):
        upper = _msg_cells("a")
        lower = _msg_cells("b")
        with pytest.raises(RoutingInvariantError):
            apply_merging(upper, lower, [SwitchSetting.UPPER_BCAST])


class TestTracing:
    def test_trace_records_stage(self):
        from repro.rbn.trace import Trace

        trace = Trace()
        upper = _msg_cells("u0")
        lower = _msg_cells("l0")
        apply_merging(upper, lower, [SwitchSetting.CROSS], trace=trace, offset=4)
        assert len(trace.stages) == 1
        rec = trace.stages[0]
        assert rec.size == 2 and rec.offset == 4
        assert rec.settings == (SwitchSetting.CROSS,)
        assert [c.data for c in rec.inputs] == ["u0", "l0"]
        assert [c.data for c in rec.outputs] == ["l0", "u0"]
