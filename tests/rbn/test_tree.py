"""Tests for the binary-tree distributed computation engine (Fig. 8)."""

import pytest

from repro.core.tags import Tag
from repro.errors import NetworkSizeError
from repro.rbn.cells import Cell, cells_from_tags
from repro.rbn.compact import binary_compact_setting
from repro.rbn.switches import SwitchSetting
from repro.rbn.trace import Trace
from repro.rbn.tree import RBNAlgorithm, RBNEngine, run_rbn, tree_node_count


class _CountOnes(RBNAlgorithm):
    """Minimal algorithm: forward counts ONE tags, all-parallel settings."""

    def leaf_forward(self, cell):
        return 1 if cell.tag is Tag.ONE else 0

    def combine(self, f0, f1):
        return f0 + f1

    def backward(self, size, f0, f1, s):
        half = size // 2
        return s % half, (s + f0) % half

    def settings(self, size, f0, f1, s):
        return [SwitchSetting.PARALLEL] * (size // 2)


class TestNodeCount:
    def test_formula(self):
        assert tree_node_count(2) == 1
        assert tree_node_count(16) == 15

    def test_rejects_bad_size(self):
        with pytest.raises(NetworkSizeError):
            tree_node_count(3)


class TestEngineExecution:
    def test_all_parallel_is_identity(self):
        cells = cells_from_tags([Tag.ONE, Tag.ZERO, Tag.ONE, Tag.EPS])
        out = run_rbn(cells, 0, _CountOnes())
        assert [c.data for c in out] == [c.data for c in cells]

    def test_rejects_non_power_of_two(self):
        cells = cells_from_tags([Tag.ONE] * 3)
        with pytest.raises(NetworkSizeError):
            run_rbn(cells, 0, _CountOnes())

    def test_engine_reusable_across_frames(self):
        eng = RBNEngine(_CountOnes())
        a = cells_from_tags([Tag.ONE, Tag.ZERO])
        b = cells_from_tags([Tag.ZERO, Tag.ZERO])
        assert [c.tag for c in eng.run(a, 0)] == [Tag.ONE, Tag.ZERO]
        assert [c.tag for c in eng.run(b, 0)] == [Tag.ZERO, Tag.ZERO]


class TestInstrumentation:
    def test_phase_level_counts(self):
        """One engine run = one forward + one backward tree traversal."""
        n = 32
        trace = Trace()
        cells = cells_from_tags([Tag.ZERO] * n)
        run_rbn(cells, 0, _CountOnes(), trace=trace)
        m = 5
        assert trace.counters.forward_levels == m
        assert trace.counters.backward_levels == m
        assert trace.counters.phases == 1

    def test_op_counts(self):
        """n-1 combines forward; 2 per internal node backward."""
        n = 16
        trace = Trace()
        run_rbn(cells_from_tags([Tag.ZERO] * n), 0, _CountOnes(), trace=trace)
        assert trace.counters.forward_ops == n - 1
        assert trace.counters.backward_ops == 2 * (n - 1)
        # every switch of the (n/2) log n switches is set exactly once
        assert trace.counters.switch_settings == (n // 2) * 4

    def test_stage_records_cover_physical_stages(self):
        """Trace holds one record per merging network: n-1 of them,
        collectively (n/2) log n switches."""
        n = 16
        trace = Trace()
        run_rbn(cells_from_tags([Tag.ZERO] * n), 0, _CountOnes(), trace=trace)
        assert len(trace.stages) == n - 1
        assert trace.switch_count == (n // 2) * 4
        sizes = sorted(set(st.size for st in trace.stages))
        assert sizes == [2, 4, 8, 16]
        # stage of size 2^k appears n/2^k times
        for k, size in enumerate(sizes, start=1):
            assert sum(1 for st in trace.stages if st.size == size) == n >> k


class TestBackwardValues:
    def test_backward_passes_derived_positions(self):
        """The engine must hand each child the (s0, s1) the algorithm
        derived from the parent's s — checked via a spy algorithm."""
        seen = {}

        class Spy(_CountOnes):
            def settings(self, size, f0, f1, s):
                seen.setdefault(size, []).append(s)
                return [SwitchSetting.PARALLEL] * (size // 2)

        cells = cells_from_tags(
            [Tag.ONE, Tag.ZERO, Tag.ONE, Tag.ZERO, Tag.ONE, Tag.ZERO, Tag.ONE, Tag.ZERO]
        )
        run_rbn(cells, 5, Spy())
        assert seen[8] == [5]
        # children of root: s0 = 5 mod 4 = 1, s1 = (5 + l0) mod 4 with l0=2
        assert sorted(seen[4]) == sorted([1, 3])
