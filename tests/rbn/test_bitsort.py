"""Tests for the RBN as a bit-sorting network (Theorem 1, Table 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tags import Tag
from repro.rbn.bitsort import BitSortAlgorithm, route_to_compact, sort_by_tags
from repro.rbn.cells import cells_from_tags
from repro.rbn.compact import is_compact

from conftest import binary_tag_vectors


class TestTheorem1:
    """Any 0/1 marking can reach any circular compact output position."""

    def test_exhaustive_n4(self):
        for bits in range(16):
            tags = [Tag.ONE if (bits >> i) & 1 else Tag.ZERO for i in range(4)]
            l = sum(1 for t in tags if t is Tag.ONE)
            for s in range(4):
                out = route_to_compact(
                    cells_from_tags(tags), s, lambda t: t is Tag.ONE
                )
                assert is_compact([c.tag for c in out], Tag.ONE, s, l)

    def test_exhaustive_n8_all_positions(self):
        for bits in range(256):
            tags = [Tag.ONE if (bits >> i) & 1 else Tag.ZERO for i in range(8)]
            l = sum(1 for t in tags if t is Tag.ONE)
            for s in (0, 3, 7):
                out = route_to_compact(
                    cells_from_tags(tags), s, lambda t: t is Tag.ONE
                )
                assert is_compact([c.tag for c in out], Tag.ONE, s, l)

    @settings(max_examples=300)
    @given(binary_tag_vectors(max_m=7), st.data())
    def test_property_any_size_any_start(self, tags, data):
        n = len(tags)
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        out = route_to_compact(cells_from_tags(tags), s, lambda t: t is Tag.ONE)
        l = sum(1 for t in tags if t is Tag.ONE)
        assert is_compact([c.tag for c in out], Tag.ONE, s, l)

    @settings(max_examples=200)
    @given(binary_tag_vectors(max_m=6), st.data())
    def test_payloads_are_permuted_not_lost(self, tags, data):
        """Bit sorting is a permutation: every payload survives."""
        n = len(tags)
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        cells = cells_from_tags(tags)
        out = route_to_compact(cells, s, lambda t: t is Tag.ONE)
        assert sorted(c.data for c in out) == sorted(c.data for c in cells)

    @settings(max_examples=100)
    @given(binary_tag_vectors(max_m=6), st.data())
    def test_tags_travel_with_payloads(self, tags, data):
        """A cell's tag is not separated from its payload."""
        n = len(tags)
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        cells = cells_from_tags(tags)
        by_payload = {c.data: c.tag for c in cells}
        out = route_to_compact(cells, s, lambda t: t is Tag.ONE)
        for c in out:
            assert by_payload[c.data] is c.tag


class TestSortByTags:
    def test_ascending_sort(self):
        tags = [Tag.ONE, Tag.ZERO, Tag.ONE, Tag.ZERO]
        out = sort_by_tags(cells_from_tags(tags), one_tags=(Tag.ONE,))
        assert [c.tag for c in out] == [Tag.ZERO, Tag.ZERO, Tag.ONE, Tag.ONE]

    def test_dummy_ones_counted(self):
        tags = [Tag.EPS1, Tag.ZERO, Tag.ONE, Tag.ZERO]
        out = sort_by_tags(cells_from_tags(tags))
        assert [c.tag for c in out[:2]] == [Tag.ZERO, Tag.ZERO]
        assert sorted(c.tag.name for c in out[2:]) == ["EPS1", "ONE"]

    def test_all_zeros(self):
        tags = [Tag.ZERO] * 8
        out = sort_by_tags(cells_from_tags(tags))
        assert [c.tag for c in out] == tags

    def test_all_ones(self):
        tags = [Tag.ONE] * 8
        out = sort_by_tags(cells_from_tags(tags))
        assert [c.tag for c in out] == tags


class TestValidation:
    def test_s_out_of_range(self):
        cells = cells_from_tags([Tag.ZERO, Tag.ONE])
        with pytest.raises(ValueError):
            route_to_compact(cells, 2, lambda t: t is Tag.ONE)
        with pytest.raises(ValueError):
            route_to_compact(cells, -1, lambda t: t is Tag.ONE)


class TestAlgorithmPhases:
    def test_backward_matches_lemma1(self):
        """Table 3's backward outputs are Lemma 1's (s0, s1)."""
        algo = BitSortAlgorithm(lambda t: t is Tag.ONE)
        # size 8 node, l0 = 3, s = 5: s0 = 5 mod 4 = 1, s1 = (5+3) mod 4 = 0
        assert algo.backward(8, 3, 2, 5) == (1, 0)

    def test_settings_match_lemma1(self):
        from repro.rbn.lemmas import lemma1

        algo = BitSortAlgorithm(lambda t: t is Tag.ONE)
        for size in (2, 4, 8, 16):
            for l0 in range(size // 2 + 1):
                for l1 in range(size // 2 + 1):
                    for s in range(size):
                        got = tuple(algo.settings(size, l0, l1, s))
                        assert got == lemma1(size, s, l0, l1).settings
