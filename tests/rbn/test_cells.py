"""Unit tests for the Cell traffic model."""

import pytest

from repro.core.tags import Tag
from repro.errors import InvalidTagError
from repro.rbn.cells import EMPTY_CELL, Cell, cells_from_tags, empty_cell, tags_of


class TestCellConstruction:
    def test_message_cell(self):
        c = Cell(Tag.ZERO, data="m")
        assert not c.is_empty
        assert c.data == "m"

    def test_eps_cell_is_empty(self):
        assert Cell(Tag.EPS).is_empty
        assert Cell(Tag.EPS0).is_empty
        assert Cell(Tag.EPS1).is_empty

    def test_eps_cell_rejects_payload(self):
        with pytest.raises(InvalidTagError):
            Cell(Tag.EPS, data="x")

    def test_non_alpha_rejects_branches(self):
        with pytest.raises(InvalidTagError):
            Cell(Tag.ZERO, data="m", branch0="a")

    def test_tag_type_checked(self):
        with pytest.raises(InvalidTagError):
            Cell("0")  # type: ignore[arg-type]

    def test_empty_cell_singleton(self):
        assert empty_cell() is EMPTY_CELL


class TestSplit:
    def test_alpha_split(self):
        c = Cell(Tag.ALPHA, data="m", branch0="m.up", branch1="m.lo")
        up, lo = c.split()
        assert up.tag is Tag.ZERO and up.data == "m.up"
        assert lo.tag is Tag.ONE and lo.data == "m.lo"

    def test_split_non_alpha_rejected(self):
        with pytest.raises(InvalidTagError):
            Cell(Tag.ONE, data="m").split()
        with pytest.raises(InvalidTagError):
            Cell(Tag.EPS).split()


class TestWithTag:
    def test_relabel_eps_to_dummy(self):
        c = Cell(Tag.EPS)
        assert c.with_tag(Tag.EPS0).tag is Tag.EPS0
        assert c.with_tag(Tag.EPS1).tag is Tag.EPS1

    def test_relabel_dummy_back(self):
        c = Cell(Tag.EPS1)
        assert c.with_tag(Tag.EPS).tag is Tag.EPS

    def test_cannot_erase_message(self):
        with pytest.raises(InvalidTagError):
            Cell(Tag.ONE, data="m").with_tag(Tag.EPS)

    def test_message_relabel_keeps_payload(self):
        c = Cell(Tag.ONE, data="m")
        assert c.with_tag(Tag.ZERO).data == "m"


class TestHelpers:
    def test_tags_of(self):
        cells = [Cell(Tag.ZERO, data="a"), Cell(Tag.EPS)]
        assert tags_of(cells) == [Tag.ZERO, Tag.EPS]

    def test_cells_from_tags_auto_payloads(self):
        cells = cells_from_tags([Tag.ONE, Tag.EPS, Tag.ALPHA])
        assert cells[0].data == "m0"
        assert cells[1].data is None
        assert cells[2].branch0 == "m2.0" and cells[2].branch1 == "m2.1"

    def test_cells_from_tags_no_payloads(self):
        cells = cells_from_tags([Tag.ONE, Tag.ALPHA], payload=None)
        assert cells[0].data is None
        assert cells[1].branch0 is None
