"""Exhaustive and property-based verification of merge Lemmas 1-5.

Each lemma claims: given target parameters (s, l), the prescribed half
starting positions (s0, s1) and switch settings merge the two half-size
circular compact sequences into the full-size one.  We verify by
actually building the half sequences as cells, applying the real
merging network, and recognising the output — for every valid
parameter combination at small n (exhaustive) and random combinations
at larger n (hypothesis).

This mechanically checks the constructions of Appendices A and B
(Figs. 14 and 15).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tags import Tag
from repro.rbn.cells import Cell, cells_from_tags
from repro.rbn.compact import compact_of_predicate, compact_sequence, is_compact
from repro.rbn.lemmas import lemma1, lemma2, lemma3, lemma4, lemma5
from repro.rbn.merging import apply_merging


def _merge_binary(n, s, l0, l1):
    """Build halves per lemma1's (s0, s1) and merge; return output tags."""
    plan = lemma1(n, s, l0, l1)
    half = n // 2
    upper = cells_from_tags(
        compact_sequence(half, plan.s0, l0, Tag.ZERO, Tag.ONE)
    )
    lower = cells_from_tags(
        compact_sequence(half, plan.s1, l1, Tag.ZERO, Tag.ONE)
    )
    out = apply_merging(upper, lower, plan.settings)
    return [c.tag for c in out]


def _merge_elimination(n, s, l0, l1, lemma, upper_sym, lower_sym, result_sym):
    """Generic harness for lemmas 2-5.

    upper_sym/lower_sym/result_sym are the non-chi tags of the upper
    input, lower input and expected output compact sequences.
    """
    plan = lemma(n, s, l0, l1)
    half = n // 2
    upper = cells_from_tags(
        compact_sequence(half, plan.s0, l0, Tag.ZERO, upper_sym)
    )
    lower = cells_from_tags(
        compact_sequence(half, plan.s1, l1, Tag.ZERO, lower_sym)
    )
    out = apply_merging(upper, lower, plan.settings)
    tags = [c.tag for c in out]
    l = abs(l0 - l1)
    # Surviving non-chi block compact at s with length l:
    marks = compact_of_predicate(tags, lambda t: t is result_sym)
    assert marks is not None, (n, s, l0, l1, tags)
    ms, ml = marks
    assert ml == l, (n, s, l0, l1, tags)
    if 0 < l < n:
        assert ms == s, (n, s, l0, l1, tags)
    # Everything else must be chi (no residue of the eliminated type).
    other = {Tag.ALPHA, Tag.EPS} - {result_sym}
    assert not any(t in other for t in tags), (n, s, l0, l1, tags)
    return out


def _valid_lemma1_params():
    for n in (2, 4, 8, 16):
        half = n // 2
        for l0 in range(half + 1):
            for l1 in range(half + 1):
                for s in range(n):
                    yield n, s, l0, l1


class TestLemma1Exhaustive:
    def test_all_small_parameters(self):
        """Question 1 answered for every (n, s, l0, l1), n <= 16."""
        count = 0
        for n, s, l0, l1 in _valid_lemma1_params():
            tags = _merge_binary(n, s, l0, l1)
            assert is_compact(tags, Tag.ONE, s, l0 + l1), (n, s, l0, l1, tags)
            count += 1
        assert count > 500  # exhaustiveness sanity

    def test_sorting_special_case(self):
        """s = l = n/2 gives the ascending bit-sort target (Section 4)."""
        n = 16
        tags = _merge_binary(n, n // 2, 4, 4)
        assert tags == [Tag.ZERO] * 8 + [Tag.ONE] * 8


class TestLemma1Random:
    @settings(max_examples=200)
    @given(st.integers(min_value=5, max_value=8), st.data())
    def test_random_large(self, m, data):
        n = 1 << m
        half = n // 2
        l0 = data.draw(st.integers(min_value=0, max_value=half))
        l1 = data.draw(st.integers(min_value=0, max_value=half))
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        tags = _merge_binary(n, s, l0, l1)
        assert is_compact(tags, Tag.ONE, s, l0 + l1)


_ELIMINATION_CASES = [
    # (lemma, upper tag, lower tag, result tag, upper_dominates)
    (lemma2, Tag.ALPHA, Tag.EPS, Tag.ALPHA, True),
    (lemma3, Tag.ALPHA, Tag.EPS, Tag.EPS, False),
    (lemma4, Tag.EPS, Tag.ALPHA, Tag.EPS, True),
    (lemma5, Tag.EPS, Tag.ALPHA, Tag.ALPHA, False),
]


class TestEliminationLemmasExhaustive:
    @pytest.mark.parametrize(
        "lemma,upper_sym,lower_sym,result_sym,upper_dominates",
        _ELIMINATION_CASES,
        ids=["lemma2", "lemma3", "lemma4", "lemma5"],
    )
    def test_all_small_parameters(
        self, lemma, upper_sym, lower_sym, result_sym, upper_dominates
    ):
        count = 0
        for n in (2, 4, 8, 16):
            half = n // 2
            for big in range(half + 1):
                for small in range(big + 1):
                    l0, l1 = (big, small) if upper_dominates else (small, big)
                    for s in range(n):
                        _merge_elimination(
                            n, s, l0, l1, lemma, upper_sym, lower_sym, result_sym
                        )
                        count += 1
        assert count > 300

    @pytest.mark.parametrize(
        "lemma,upper_sym,lower_sym,result_sym,upper_dominates",
        _ELIMINATION_CASES,
        ids=["lemma2", "lemma3", "lemma4", "lemma5"],
    )
    def test_broadcast_count_equals_min(self, lemma, upper_sym, lower_sym, result_sym, upper_dominates):
        """Exactly min(l0, l1) broadcasts fire: one per neutralised pair."""
        n = 16
        l0, l1 = (6, 2) if upper_dominates else (2, 6)
        plan = lemma(n, 3, l0, l1)
        bcasts = sum(1 for st_ in plan.settings if int(st_) >= 2)
        assert bcasts == min(l0, l1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            lemma2(8, 0, 1, 3)  # l1 > l0
        with pytest.raises(ValueError):
            lemma3(8, 0, 3, 1)  # l0 > l1
        with pytest.raises(ValueError):
            lemma1(8, 8, 1, 1)  # s out of range


class TestEliminationLemmasRandom:
    @settings(max_examples=150)
    @given(
        st.integers(min_value=5, max_value=7),
        st.sampled_from(list(range(4))),
        st.data(),
    )
    def test_random_large(self, m, case_idx, data):
        n = 1 << m
        half = n // 2
        lemma, upper_sym, lower_sym, result_sym, upper_dom = _ELIMINATION_CASES[
            case_idx
        ]
        big = data.draw(st.integers(min_value=0, max_value=half))
        small = data.draw(st.integers(min_value=0, max_value=big))
        l0, l1 = (big, small) if upper_dom else (small, big)
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        _merge_elimination(n, s, l0, l1, lemma, upper_sym, lower_sym, result_sym)


class TestPayloadConservation:
    def test_broadcast_copies_carry_branches(self):
        """After elimination, every alpha's two copies exist as chi cells."""
        n = 8
        plan = lemma2(n, 0, 3, 3)  # all alphas neutralised
        half = n // 2
        upper = cells_from_tags(
            compact_sequence(half, plan.s0, 3, Tag.ZERO, Tag.ALPHA)
        )
        lower = cells_from_tags(
            compact_sequence(half, plan.s1, 3, Tag.ZERO, Tag.EPS)
        )
        out = apply_merging(upper, lower, plan.settings)
        payloads = sorted(c.data for c in out if c.data is not None)
        alpha_sources = [c.data for c in upper if c.tag is Tag.ALPHA]
        expected = sorted(
            [f"{p}.0" for p in alpha_sources]
            + [f"{p}.1" for p in alpha_sources]
            + [c.data for c in upper + lower if c.tag is Tag.ZERO]
        )
        assert payloads == expected
