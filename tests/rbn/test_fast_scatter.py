"""Fast scatter gather-kernel vs the reference scatter network.

The vectorised kernel (:mod:`repro.rbn.fast_scatter`) must reproduce
the reference :func:`repro.rbn.scatter.scatter` cell-for-cell —
including broadcast duplication, where a split alpha's two copies carry
``branch0``/``branch1`` payloads at the positions the hardware would
put them.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import bsn_tag_vectors
from repro.core.tags import Tag
from repro.errors import RoutingInvariantError
from repro.rbn.cells import Cell
from repro.rbn.fast_scatter import (
    CODE_ALPHA,
    CODE_EPS,
    CODE_ONE,
    CODE_ZERO,
    fast_scatter_cells,
    fast_scatter_gather,
    fast_scatter_gather_batch,
    scatter_codes_of_cells,
)
from repro.rbn.scatter import scatter


def _random_cells(n: int, rng: random.Random):
    """A BSN-valid random cell frame with distinguishable payloads."""
    half = n // 2
    na = rng.randrange(0, half + 1)
    n0 = rng.randrange(0, half - na + 1)
    n1 = rng.randrange(0, half - na + 1)
    ne = n - n0 - n1 - na
    if ne < na:
        return None
    tags = [Tag.ZERO] * n0 + [Tag.ONE] * n1 + [Tag.ALPHA] * na + [Tag.EPS] * ne
    rng.shuffle(tags)
    cells = []
    for i, t in enumerate(tags):
        if t is Tag.ALPHA:
            cells.append(Cell(t, data=f"a{i}", branch0=f"a{i}.0", branch1=f"a{i}.1"))
        elif t is Tag.EPS:
            cells.append(Cell(t))
        else:
            cells.append(Cell(t, data=f"d{i}"))
    return cells


def _assert_identical(fast_cells, ref_cells):
    assert len(fast_cells) == len(ref_cells)
    for f, r in zip(fast_cells, ref_cells):
        assert f.tag is r.tag
        assert f.data == r.data
        assert f.branch0 == r.branch0
        assert f.branch1 == r.branch1


@pytest.mark.parametrize("n", [4, 8, 16, 32, 64, 128, 256])
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_fast_scatter_cells_matches_reference(n, seed):
    rng = random.Random(1000 * n + seed)
    done = 0
    while done < 10:
        cells = _random_cells(n, rng)
        if cells is None:
            continue
        done += 1
        _assert_identical(fast_scatter_cells(cells, 0), scatter(cells, 0))


@given(bsn_tag_vectors(min_m=2, max_m=8), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=120, deadline=None)
def test_fast_scatter_property(tags, seed):
    """Randomized n in {4..256}: byte-identical to the reference pass."""
    n = len(tags)
    if n < 4:
        return
    rng = random.Random(seed)
    cells = []
    for i, t in enumerate(tags):
        if t is Tag.ALPHA:
            cells.append(Cell(t, data=f"a{i}", branch0=(i, 0), branch1=(i, 1)))
        elif t is Tag.EPS:
            cells.append(Cell(t))
        else:
            cells.append(Cell(t, data=i))
    s = rng.randrange(n)
    _assert_identical(fast_scatter_cells(cells, s), scatter(cells, s))


def test_broadcast_duplication_positions():
    """A split alpha appears twice in the gather: once per branch."""
    cells = [
        Cell(Tag.ALPHA, data="A", branch0="A.up", branch1="A.lo"),
        Cell(Tag.EPS),
        Cell(Tag.ZERO, data="z"),
        Cell(Tag.EPS),
    ]
    out = fast_scatter_cells(cells, 0)
    ref = scatter(cells, 0)
    _assert_identical(out, ref)
    # both branch payloads of the alpha must survive, as tag 0 then tag 1
    payloads = [(c.tag, c.data) for c in out if c.data is not None]
    assert (Tag.ZERO, "A.up") in payloads
    assert (Tag.ONE, "A.lo") in payloads
    # and the gather index repeats the alpha's source position
    codes = scatter_codes_of_cells(cells)
    g = fast_scatter_gather(codes, 0)
    src_of_bcast = g.src[g.role != 0]
    assert len(src_of_bcast) == 2
    assert set(src_of_bcast.tolist()) == {0}


def test_gather_output_codes():
    codes = np.array([CODE_ALPHA, CODE_EPS, CODE_ZERO, CODE_ONE])
    g = fast_scatter_gather(codes, 0)
    out = g.output_codes(codes)
    assert sorted(out.tolist()) == sorted([CODE_ZERO, CODE_ONE, CODE_ZERO, CODE_ONE])
    assert CODE_ALPHA not in out  # Theorem 2: all alphas eliminated


def test_batch_rows_match_single_rows():
    rng = random.Random(7)
    rows = []
    while len(rows) < 8:
        cells = _random_cells(16, rng)
        if cells is not None:
            rows.append(scatter_codes_of_cells(cells))
    batch = fast_scatter_gather_batch(np.stack(rows), 0)
    for b, row in enumerate(rows):
        single = fast_scatter_gather(row, 0)
        lo, hi = 16 * b, 16 * (b + 1)
        np.testing.assert_array_equal(batch.src[lo:hi] - 16 * b, single.src)
        np.testing.assert_array_equal(batch.role[lo:hi], single.role)


def test_precondition_violation_raises():
    # 3 alphas + 1 zero in n=4: n0 + na = 4 > n/2
    codes = np.array([CODE_ALPHA, CODE_ALPHA, CODE_ALPHA, CODE_ZERO])
    with pytest.raises(RoutingInvariantError):
        fast_scatter_gather(codes, 0)


def test_broadcast_requires_alpha_source():
    """ScatterGather.apply rejects a broadcast from a non-alpha cell."""
    codes = np.array([CODE_ALPHA, CODE_EPS, CODE_EPS, CODE_EPS])
    g = fast_scatter_gather(codes, 0)
    bad = [Cell(Tag.ZERO, data="z"), Cell(Tag.EPS), Cell(Tag.EPS), Cell(Tag.EPS)]
    with pytest.raises(RoutingInvariantError):
        g.apply(bad)
