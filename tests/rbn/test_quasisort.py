"""Tests for epsilon-dividing (Table 6) and the quasisorting network."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tags import Tag
from repro.errors import RoutingInvariantError
from repro.rbn.cells import cells_from_tags
from repro.rbn.quasisort import divide_epsilons, quasisort
from repro.rbn.trace import Trace

from conftest import sizes


@st.composite
def quasisort_inputs(draw, min_m=1, max_m=6):
    """Tag vectors over {0,1,eps} with n0 <= n/2 and n1 <= n/2."""
    n = draw(sizes(min_m, max_m))
    half = n // 2
    n0 = draw(st.integers(min_value=0, max_value=half))
    n1 = draw(st.integers(min_value=0, max_value=half))
    tags = [Tag.ZERO] * n0 + [Tag.ONE] * n1 + [Tag.EPS] * (n - n0 - n1)
    return list(draw(st.permutations(tags)))


class TestDivideEpsilons:
    @settings(max_examples=300)
    @given(quasisort_inputs())
    def test_balanced_populations(self, tags):
        """After dividing, #(0|eps0) = #(1|eps1) = n/2 (Section 5.2)."""
        n = len(tags)
        out = divide_epsilons(cells_from_tags(tags))
        zeros = sum(1 for c in out if c.tag in (Tag.ZERO, Tag.EPS0))
        ones = sum(1 for c in out if c.tag in (Tag.ONE, Tag.EPS1))
        assert zeros == ones == n // 2

    @settings(max_examples=200)
    @given(quasisort_inputs())
    def test_only_epsilons_relabelled(self, tags):
        out = divide_epsilons(cells_from_tags(tags))
        for before, after in zip(tags, out):
            if before is Tag.EPS:
                assert after.tag in (Tag.EPS0, Tag.EPS1)
            else:
                assert after.tag is before

    def test_rejects_alpha(self):
        with pytest.raises(RoutingInvariantError):
            divide_epsilons(cells_from_tags([Tag.ALPHA, Tag.EPS]))

    def test_rejects_overfull_population(self):
        tags = [Tag.ONE, Tag.ONE, Tag.ONE, Tag.EPS]
        with pytest.raises(RoutingInvariantError):
            divide_epsilons(cells_from_tags(tags))

    def test_invariants_at_every_node(self):
        """eqs. (6)-(9): recompute the tree sums from the leaf labels."""
        rng = random.Random(7)
        for _ in range(50):
            n = rng.choice([4, 8, 16, 32])
            half = n // 2
            n0 = rng.randrange(half + 1)
            n1 = rng.randrange(half + 1)
            tags = [Tag.ZERO] * n0 + [Tag.ONE] * n1 + [Tag.EPS] * (n - n0 - n1)
            rng.shuffle(tags)
            out = divide_epsilons(cells_from_tags(tags))

            def check(lo, hi):
                e0 = sum(1 for c in out[lo:hi] if c.tag is Tag.EPS0)
                e1 = sum(1 for c in out[lo:hi] if c.tag is Tag.EPS1)
                ne = sum(1 for t in tags[lo:hi] if t is Tag.EPS)
                assert e0 + e1 == ne  # eq. (7) per node
                if hi - lo > 1:
                    mid = (lo + hi) // 2
                    check(lo, mid)
                    check(mid, hi)

            check(0, n)

    def test_counters_recorded(self):
        trace = Trace()
        divide_epsilons(cells_from_tags([Tag.EPS] * 16), trace=trace)
        assert trace.counters.forward_levels == 4
        assert trace.counters.backward_levels == 4


class TestQuasisort:
    @settings(max_examples=300)
    @given(quasisort_inputs())
    def test_halves(self, tags):
        """All 0s to the upper half, all 1s to the lower half."""
        n = len(tags)
        out = quasisort(cells_from_tags(tags))
        assert all(c.tag in (Tag.ZERO, Tag.EPS) for c in out[: n // 2])
        assert all(c.tag in (Tag.ONE, Tag.EPS) for c in out[n // 2 :])

    @settings(max_examples=200)
    @given(quasisort_inputs())
    def test_payload_conservation(self, tags):
        cells = cells_from_tags(tags)
        out = quasisort(cells)
        assert sorted(c.data for c in out if c.data is not None) == sorted(
            c.data for c in cells if c.data is not None
        )

    @settings(max_examples=100)
    @given(quasisort_inputs())
    def test_population_conservation(self, tags):
        out = quasisort(cells_from_tags(tags))
        got = [c.tag for c in out]
        assert got.count(Tag.ZERO) == tags.count(Tag.ZERO)
        assert got.count(Tag.ONE) == tags.count(Tag.ONE)
        assert got.count(Tag.EPS) == tags.count(Tag.EPS)

    def test_keep_dummies_exposes_division(self):
        tags = [Tag.EPS, Tag.ZERO, Tag.ONE, Tag.EPS]
        out = quasisort(cells_from_tags(tags), keep_dummies=True)
        assert [c.tag for c in out[:2]] == [Tag.ZERO, Tag.EPS0]
        assert sorted(c.tag.name for c in out[2:]) == ["EPS1", "ONE"]

    def test_full_permutation_degenerates_to_sort(self):
        tags = [Tag.ONE, Tag.ZERO, Tag.ONE, Tag.ZERO]
        out = quasisort(cells_from_tags(tags))
        assert [c.tag for c in out] == [Tag.ZERO, Tag.ZERO, Tag.ONE, Tag.ONE]

    def test_all_eps(self):
        out = quasisort(cells_from_tags([Tag.EPS] * 8))
        assert all(c.tag is Tag.EPS for c in out)
