"""Differential test: Table 4 transcribed literally vs the lemma plans.

`repro.rbn.scatter.scatter_plan` implements each tree node's plan by
delegating to the applicable Lemma (1-5).  The paper's Table 4 instead
spells out one combined backward/switch-setting procedure.  This module
transcribes Table 4 *verbatim* (including its case structure and the
ucast/bcast temporaries) and checks that both formulations produce
identical (s0, s1) and identical switch vectors over the full parameter
space — the strongest evidence that our lemma delegation is exactly the
paper's algorithm.

(The only deliberate deviation: Table 4's same-type branch computes
``b <- ((s+l0) div n'/2) mod n'/2`` where Lemma 1 — and any sane binary
setting — needs ``mod 2``; see EXPERIMENTS.md errata.)
"""

import pytest

from repro.core.tags import Tag
from repro.rbn.compact import binary_compact_setting, trinary_compact_setting
from repro.rbn.scatter import scatter_plan
from repro.rbn.switches import SwitchSetting


def table4_backward(size, l0, type0, l1, type1, s):
    """Verbatim transcription of Table 4's backward phase."""
    half = size // 2
    if type0 is type1:
        return s % half, (s + l0) % half
    if l0 >= l1:
        l = l0 - l1
        return s % half, (s + l) % half
    l = l1 - l0
    return (s + l) % half, s % half


def table4_settings(size, l0, type0, l1, type1, s):
    """Verbatim transcription of Table 4's switch-setting phase."""
    half = size // 2
    s0, s1 = table4_backward(size, l0, type0, l1, type1, s)
    if type0 is type1:
        b = ((s + l0) // half) % 2  # paper erratum: 'mod n/2' -> mod 2
        return binary_compact_setting(size, 0, s1, 1 - b, b)
    if type0 is Tag.ALPHA and type1 is Tag.EPS:
        bcast = SwitchSetting.UPPER_BCAST
    else:  # type0 eps, type1 alpha
        bcast = SwitchSetting.LOWER_BCAST
    if l0 >= l1:
        s_tmp, l_tmp, ucast = s1, l1, 0  # parallel block
        l = l0 - l1
    else:
        s_tmp, l_tmp, ucast = s0, l0, 1  # crossing block
        l = l1 - l0
    u = SwitchSetting(ucast)
    u_bar = SwitchSetting(1 - ucast)
    if s + l < half:
        return binary_compact_setting(size, s_tmp, l_tmp, u, bcast)
    if s < half and s + l >= half:
        return trinary_compact_setting(size, s_tmp, l_tmp, u_bar, bcast, u)
    if s >= half and s + l < size:
        return binary_compact_setting(size, s_tmp, l_tmp, u_bar, bcast)
    return trinary_compact_setting(size, s_tmp, l_tmp, u, bcast, u_bar)


def _all_params(sizes):
    for size in sizes:
        half = size // 2
        for type0 in (Tag.ALPHA, Tag.EPS):
            for type1 in (Tag.ALPHA, Tag.EPS):
                for l0 in range(half + 1):
                    for l1 in range(half + 1):
                        for s in range(size):
                            yield size, l0, type0, l1, type1, s


class TestTable4MatchesLemmas:
    @pytest.mark.parametrize("size", [2, 4, 8, 16])
    def test_backward_phase_identical(self, size):
        for sz, l0, t0, l1, t1, s in _all_params([size]):
            plan = scatter_plan(sz, s, l0, t0, l1, t1)
            assert (plan.s0, plan.s1) == table4_backward(sz, l0, t0, l1, t1, s), (
                sz, l0, t0, l1, t1, s,
            )

    @pytest.mark.parametrize("size", [2, 4, 8, 16])
    def test_settings_phase_identical(self, size):
        for sz, l0, t0, l1, t1, s in _all_params([size]):
            plan = scatter_plan(sz, s, l0, t0, l1, t1)
            literal = tuple(table4_settings(sz, l0, t0, l1, t1, s))
            assert plan.settings == literal, (sz, l0, t0, l1, t1, s)

    def test_spot_check_large(self):
        import random

        rng = random.Random(4)
        for _ in range(300):
            size = rng.choice([32, 64, 128])
            half = size // 2
            t0 = rng.choice([Tag.ALPHA, Tag.EPS])
            t1 = rng.choice([Tag.ALPHA, Tag.EPS])
            l0 = rng.randint(0, half)
            l1 = rng.randint(0, half)
            s = rng.randrange(size)
            plan = scatter_plan(size, s, l0, t0, l1, t1)
            assert plan.settings == tuple(table4_settings(size, l0, t0, l1, t1, s))
