"""Tests for trace recording and phase counters."""

from repro.core.tags import Tag
from repro.rbn.bitsort import route_to_compact
from repro.rbn.cells import Cell, cells_from_tags
from repro.rbn.scatter import scatter
from repro.rbn.switches import SwitchSetting
from repro.rbn.trace import PhaseCounters, StageRecord, Trace


class TestStageRecord:
    def test_tag_views(self):
        rec = StageRecord(
            size=2,
            offset=0,
            settings=(SwitchSetting.UPPER_BCAST,),
            inputs=(
                Cell(Tag.ALPHA, data="m", branch0="a", branch1="b"),
                Cell(Tag.EPS),
            ),
            outputs=(Cell(Tag.ZERO, data="a"), Cell(Tag.ONE, data="b")),
        )
        assert rec.input_tags == [Tag.ALPHA, Tag.EPS]
        assert rec.output_tags == [Tag.ZERO, Tag.ONE]
        assert rec.broadcast_count == 1


class TestPhaseCounters:
    def test_merge(self):
        a = PhaseCounters(forward_ops=3, forward_levels=2, phases=1)
        b = PhaseCounters(forward_ops=4, backward_levels=5, phases=2)
        a.merge(b)
        assert a.forward_ops == 7
        assert a.forward_levels == 2
        assert a.backward_levels == 5
        assert a.phases == 3
        assert a.total_levels == 7


class TestTraceAggregation:
    def test_bitsort_trace_shape(self):
        n = 8
        trace = Trace(label="sort")
        cells = cells_from_tags([Tag.ONE, Tag.ZERO] * 4)
        route_to_compact(cells, 4, lambda t: t is Tag.ONE, trace=trace)
        assert trace.label == "sort"
        assert len(trace.stages) == n - 1
        assert trace.switch_count == (n // 2) * 3
        assert trace.total_broadcasts == 0  # sorting never broadcasts
        assert len(trace.stages_of_size(8)) == 1
        assert len(trace.stages_of_size(2)) == 4

    def test_scatter_broadcast_accounting(self):
        """Total broadcasts recorded = number of alphas eliminated."""
        tags = [Tag.ALPHA, Tag.EPS, Tag.ALPHA, Tag.EPS, Tag.ZERO, Tag.ONE, Tag.EPS, Tag.EPS]
        trace = Trace()
        scatter(cells_from_tags(tags), 0, trace=trace)
        assert trace.total_broadcasts == 2

    def test_offsets_propagate(self):
        trace = Trace()
        cells = cells_from_tags([Tag.ZERO] * 4)
        route_to_compact(cells, 0, lambda t: t is Tag.ONE, trace=trace, offset=12)
        assert {st.offset for st in trace.stages} == {12, 14}
