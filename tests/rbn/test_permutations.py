"""Unit tests for shuffle/exchange address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetworkSizeError
from repro.rbn.permutations import (
    bit_of,
    bit_reverse,
    check_network_size,
    exchange,
    is_power_of_two,
    log2_int,
    shuffle,
    switch_of_terminal,
    terminal_pair_of_switch,
    unshuffle,
)


class TestPowerOfTwo:
    def test_powers_accepted(self):
        for m in range(11):
            assert is_power_of_two(1 << m)

    def test_non_powers_rejected(self):
        for n in (0, 3, 5, 6, 7, 9, 12, 100, -2, -4):
            assert not is_power_of_two(n)

    def test_log2_int(self):
        assert log2_int(1) == 0
        assert log2_int(2) == 1
        assert log2_int(1024) == 10

    def test_log2_int_rejects(self):
        with pytest.raises(NetworkSizeError):
            log2_int(12)

    def test_check_network_size_minimum(self):
        with pytest.raises(NetworkSizeError):
            check_network_size(1)
        assert check_network_size(2) == 1
        with pytest.raises(NetworkSizeError):
            check_network_size(2, minimum=4)


class TestShuffle:
    def test_shuffle_n8_explicit(self):
        # left rotation of 3-bit addresses
        expected = {0: 0, 1: 2, 2: 4, 3: 6, 4: 1, 5: 3, 6: 5, 7: 7}
        for a, want in expected.items():
            assert shuffle(a, 8) == want

    def test_unshuffle_n8_explicit(self):
        expected = {0: 0, 1: 4, 2: 1, 3: 5, 4: 2, 5: 6, 6: 3, 7: 7}
        for a, want in expected.items():
            assert unshuffle(a, 8) == want

    @given(st.integers(min_value=1, max_value=10), st.data())
    def test_shuffle_unshuffle_inverse(self, m, data):
        n = 1 << m
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        assert unshuffle(shuffle(a, n), n) == a
        assert shuffle(unshuffle(a, n), n) == a

    @given(st.integers(min_value=2, max_value=10), st.data())
    def test_paper_shuffle_pair_distance(self, m, data):
        """|paper-shuffle(a) - paper-shuffle(a-bar)| = n/2 (Section 4).

        The paper's shuffle is the right rotation (our unshuffle): the
        two ports of one switch map to terminals exactly n/2 apart.
        """
        n = 1 << m
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        assert abs(unshuffle(a, n) - unshuffle(exchange(a), n)) == n // 2

    def test_shuffle_fixed_points(self):
        # 0 and n-1 are fixed points of any rotation
        for n in (2, 4, 16, 256):
            assert shuffle(0, n) == 0
            assert shuffle(n - 1, n) == n - 1


class TestExchange:
    def test_exchange_flips_lsb(self):
        assert exchange(6) == 7
        assert exchange(7) == 6

    def test_exchange_involution(self):
        for a in range(32):
            assert exchange(exchange(a)) == a


class TestBitHelpers:
    def test_bit_reverse_n8(self):
        assert bit_reverse(1, 8) == 4
        assert bit_reverse(3, 8) == 6
        assert bit_reverse(7, 8) == 7

    @given(st.integers(min_value=1, max_value=10), st.data())
    def test_bit_reverse_involution(self, m, data):
        n = 1 << m
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        assert bit_reverse(bit_reverse(a, n), n) == a

    def test_bit_of_msb_first(self):
        # address 0b011 in a 3-bit space
        assert bit_of(0b011, 1, 3) == 0
        assert bit_of(0b011, 2, 3) == 1
        assert bit_of(0b011, 3, 3) == 1

    def test_bit_of_range_check(self):
        with pytest.raises(ValueError):
            bit_of(0, 0, 3)
        with pytest.raises(ValueError):
            bit_of(0, 4, 3)


class TestTerminalSwitchMaps:
    @given(st.integers(min_value=1, max_value=8), st.data())
    def test_pair_roundtrip(self, m, data):
        n = 1 << m
        i = data.draw(st.integers(min_value=0, max_value=n // 2 - 1))
        up, lo = terminal_pair_of_switch(i, n)
        assert up == i and lo == i + n // 2
        assert switch_of_terminal(up, n) == i
        assert switch_of_terminal(lo, n) == i

    def test_every_terminal_has_one_switch(self):
        n = 16
        seen = {}
        for i in range(n // 2):
            up, lo = terminal_pair_of_switch(i, n)
            for t in (up, lo):
                assert t not in seen
                seen[t] = i
        assert sorted(seen) == list(range(n))
