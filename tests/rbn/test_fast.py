"""Equivalence tests: the NumPy fast path vs the reference algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tags import Tag
from repro.errors import RoutingInvariantError
from repro.rbn.bitsort import route_to_compact
from repro.rbn.cells import cells_from_tags
from repro.rbn.compact import is_compact
from repro.rbn.fast import (
    fast_divide_epsilons,
    fast_quasisort,
    fast_sort_cells,
    fast_sort_permutation,
)
from repro.rbn.quasisort import divide_epsilons, quasisort

from conftest import binary_tag_vectors, sizes


@st.composite
def quasisort_vectors(draw, min_m=1, max_m=6):
    n = draw(sizes(min_m, max_m))
    half = n // 2
    n0 = draw(st.integers(min_value=0, max_value=half))
    n1 = draw(st.integers(min_value=0, max_value=half))
    tags = [Tag.ZERO] * n0 + [Tag.ONE] * n1 + [Tag.EPS] * (n - n0 - n1)
    return list(draw(st.permutations(tags)))


class TestFastSortPermutation:
    @settings(max_examples=300)
    @given(binary_tag_vectors(max_m=7), st.data())
    def test_identical_to_reference(self, tags, data):
        """Same cells at same positions as the distributed algorithm."""
        n = len(tags)
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        cells = cells_from_tags(tags)
        ref = route_to_compact(cells, s, lambda t: t is Tag.ONE)
        fast = fast_sort_cells(cells, s, one_tags=(Tag.ONE,))
        assert [c.data for c in fast] == [c.data for c in ref]

    @settings(max_examples=100)
    @given(binary_tag_vectors(max_m=7), st.data())
    def test_is_a_permutation(self, tags, data):
        n = len(tags)
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        gamma = np.array([t is Tag.ONE for t in tags], dtype=np.int64)
        perm = fast_sort_permutation(gamma, s)
        assert sorted(perm.tolist()) == list(range(n))

    @settings(max_examples=100)
    @given(binary_tag_vectors(max_m=8), st.data())
    def test_achieves_compact_target(self, tags, data):
        n = len(tags)
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        out = fast_sort_cells(cells_from_tags(tags), s, one_tags=(Tag.ONE,))
        l = sum(1 for t in tags if t is Tag.ONE)
        assert is_compact([c.tag for c in out], Tag.ONE, s, l)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fast_sort_permutation(np.zeros(4, dtype=np.int64), 4)


class TestFastDivideEpsilons:
    @settings(max_examples=300)
    @given(quasisort_vectors())
    def test_identical_to_reference(self, tags):
        codes = np.array(
            [{Tag.ZERO: 0, Tag.ONE: 1, Tag.EPS: 2}[t] for t in tags],
            dtype=np.int64,
        )
        fast = fast_divide_epsilons(codes)
        ref = divide_epsilons(cells_from_tags(tags))
        ref_codes = [
            {Tag.ZERO: 0, Tag.ONE: 1, Tag.EPS0: 3, Tag.EPS1: 4}[c.tag]
            for c in ref
        ]
        assert fast.tolist() == ref_codes

    def test_precondition_enforced(self):
        codes = np.array([1, 1, 1, 2], dtype=np.int64)
        with pytest.raises(RoutingInvariantError):
            fast_divide_epsilons(codes)


class TestFastQuasisort:
    @settings(max_examples=300)
    @given(quasisort_vectors())
    def test_identical_to_reference(self, tags):
        cells = cells_from_tags(tags)
        ref = quasisort(cells, keep_dummies=True)
        fast = fast_quasisort(cells, keep_dummies=True)
        assert [(c.tag, c.data) for c in fast] == [(c.tag, c.data) for c in ref]

    @settings(max_examples=100)
    @given(quasisort_vectors())
    def test_dummy_stripping_matches(self, tags):
        cells = cells_from_tags(tags)
        ref = quasisort(cells)
        fast = fast_quasisort(cells)
        assert [(c.tag, c.data) for c in fast] == [(c.tag, c.data) for c in ref]

    def test_rejects_alpha(self):
        with pytest.raises(RoutingInvariantError):
            fast_quasisort(cells_from_tags([Tag.ALPHA, Tag.EPS]))
