"""Tests for the RBN link graph and its banyan properties."""

import networkx as nx
import pytest

from repro.rbn.graph import count_paths, rbn_link_graph, unique_path_property


class TestGraphStructure:
    def test_node_and_edge_counts(self):
        """log n + 1 layers of n nodes; 4 edges per switch."""
        for n in (4, 16):
            m = n.bit_length() - 1
            g = rbn_link_graph(n)
            assert g.number_of_nodes() == (m + 1) * n
            assert g.number_of_edges() == 4 * (n // 2) * m

    def test_is_dag(self):
        assert nx.is_directed_acyclic_graph(rbn_link_graph(16))

    def test_degrees(self):
        """Inputs have out-degree 2, outputs in-degree 2, internal both."""
        g = rbn_link_graph(8)
        for node in g:
            kind = node[0]
            if kind == "in":
                assert g.out_degree(node) == 2 and g.in_degree(node) == 0
            elif kind == "out":
                assert g.in_degree(node) == 2 and g.out_degree(node) == 0
            else:
                assert g.in_degree(node) == 2 and g.out_degree(node) == 2


class TestBanyanProperties:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32, 64])
    def test_unique_path(self, n):
        """Exactly one path per (input, output) pair — the property that
        makes self-routing deterministic."""
        assert unique_path_property(n)

    def test_full_access(self):
        """Every input reaches every output."""
        n = 16
        g = rbn_link_graph(n)
        for src in range(n):
            reachable = nx.descendants(g, ("in", src))
            outs = {t for kind, *rest in reachable if kind == "out" for t in rest}
            assert outs == set(range(n))

    def test_count_paths_explicit(self):
        g = rbn_link_graph(8)
        assert count_paths(g, 8, 3, 5) == 1
        assert count_paths(g, 8, 0, 0) == 1
