"""Unit tests for 2x2 switch semantics (paper Fig. 3 / Fig. 7)."""

import pytest

from repro.core.tags import Tag
from repro.errors import RoutingInvariantError
from repro.rbn.cells import Cell
from repro.rbn.switches import (
    SwitchSetting,
    apply_switch,
    is_broadcast,
    is_unicast,
    legal_tag_operations,
)


def _cells(tag_u, tag_l):
    def mk(t, name):
        if t is Tag.EPS:
            return Cell(Tag.EPS)
        if t is Tag.ALPHA:
            return Cell(Tag.ALPHA, data=name, branch0=f"{name}.0", branch1=f"{name}.1")
        return Cell(t, data=name)

    return mk(tag_u, "u"), mk(tag_l, "l")


class TestUnicastSettings:
    def test_parallel_passthrough(self):
        u, l = _cells(Tag.ZERO, Tag.ONE)
        out_u, out_l = apply_switch(SwitchSetting.PARALLEL, u, l)
        assert out_u is u and out_l is l

    def test_cross_swaps(self):
        u, l = _cells(Tag.ZERO, Tag.ONE)
        out_u, out_l = apply_switch(SwitchSetting.CROSS, u, l)
        assert out_u is l and out_l is u

    def test_unicast_never_changes_values(self):
        """Figs. 3a/3b: unicast with no value changed."""
        for tu in Tag:
            for tl in Tag:
                if tu in (Tag.EPS0, Tag.EPS1) or tl in (Tag.EPS0, Tag.EPS1):
                    continue
                u, l = _cells(tu, tl)
                for setting in (SwitchSetting.PARALLEL, SwitchSetting.CROSS):
                    out = apply_switch(setting, u, l)
                    assert sorted(c.tag.name for c in out) == sorted(
                        [tu.name, tl.name]
                    )


class TestBroadcastSettings:
    def test_upper_broadcast(self):
        u, l = _cells(Tag.ALPHA, Tag.EPS)
        out_u, out_l = apply_switch(SwitchSetting.UPPER_BCAST, u, l)
        assert out_u.tag is Tag.ZERO and out_u.data == "u.0"
        assert out_l.tag is Tag.ONE and out_l.data == "u.1"

    def test_lower_broadcast(self):
        u, l = _cells(Tag.EPS, Tag.ALPHA)
        out_u, out_l = apply_switch(SwitchSetting.LOWER_BCAST, u, l)
        assert out_u.tag is Tag.ZERO and out_u.data == "l.0"
        assert out_l.tag is Tag.ONE and out_l.data == "l.1"

    @pytest.mark.parametrize(
        "setting,tu,tl",
        [
            (SwitchSetting.UPPER_BCAST, Tag.ZERO, Tag.EPS),
            (SwitchSetting.UPPER_BCAST, Tag.ALPHA, Tag.ONE),
            (SwitchSetting.UPPER_BCAST, Tag.EPS, Tag.ALPHA),
            (SwitchSetting.LOWER_BCAST, Tag.EPS, Tag.ONE),
            (SwitchSetting.LOWER_BCAST, Tag.ALPHA, Tag.EPS),
            (SwitchSetting.LOWER_BCAST, Tag.EPS, Tag.EPS),
        ],
    )
    def test_illegal_broadcast_inputs_raise(self, setting, tu, tl):
        """Theorem 2's proof: broadcasts only ever see (alpha, eps)."""
        u, l = _cells(tu, tl)
        with pytest.raises(RoutingInvariantError):
            apply_switch(setting, u, l)


class TestPredicates:
    def test_unicast_predicate(self):
        assert is_unicast(SwitchSetting.PARALLEL)
        assert is_unicast(SwitchSetting.CROSS)
        assert not is_unicast(SwitchSetting.UPPER_BCAST)

    def test_broadcast_predicate(self):
        assert is_broadcast(SwitchSetting.UPPER_BCAST)
        assert is_broadcast(SwitchSetting.LOWER_BCAST)
        assert not is_broadcast(SwitchSetting.CROSS)

    def test_integer_values_match_paper(self):
        """Section 4 assigns r_i = 0/1/2/3."""
        assert SwitchSetting.PARALLEL == 0
        assert SwitchSetting.CROSS == 1
        assert SwitchSetting.UPPER_BCAST == 2
        assert SwitchSetting.LOWER_BCAST == 3


class TestLegalOperationEnumeration:
    def test_count(self):
        """Fig. 3: 16 parallel + 16 crossing + 2 broadcast transitions."""
        ops = legal_tag_operations()
        assert len(ops) == 34

    def test_every_enumerated_op_realizable(self):
        for setting, (tu, tl), (ou, ol) in legal_tag_operations():
            u, l = _cells(tu, tl)
            out_u, out_l = apply_switch(setting, u, l)
            assert out_u.tag is ou and out_l.tag is ol

    def test_broadcast_outputs_are_0_1(self):
        for setting, _ins, outs in legal_tag_operations():
            if is_broadcast(setting):
                assert outs == (Tag.ZERO, Tag.ONE)
