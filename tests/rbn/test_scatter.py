"""Tests for the RBN as a scatter network (Theorems 2-3, Table 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tags import Tag
from repro.errors import RoutingInvariantError
from repro.rbn.cells import cells_from_tags
from repro.rbn.compact import compact_of_predicate
from repro.rbn.lemmas import lemma1, lemma2, lemma3, lemma4, lemma5
from repro.rbn.scatter import ScatterAlgorithm, count_tags, scatter, scatter_plan

from conftest import bsn_tag_vectors


class TestCountTags:
    def test_counts(self):
        tags = [Tag.ZERO, Tag.ONE, Tag.ONE, Tag.ALPHA, Tag.EPS, Tag.EPS0]
        cells = cells_from_tags(tags)
        c = count_tags(cells)
        assert c == {"n0": 1, "n1": 2, "na": 1, "ne": 2}


class TestTheorem2:
    """Scatter eliminates all alphas with the eq. (4) output counts."""

    @settings(max_examples=400)
    @given(bsn_tag_vectors(max_m=6), st.data())
    def test_output_populations(self, tags, data):
        n = len(tags)
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        counts = count_tags(cells_from_tags(tags))
        out = scatter(cells_from_tags(tags), s)
        oc = count_tags(out)
        assert oc["na"] == 0
        assert oc["n0"] == counts["n0"] + counts["na"]
        assert oc["n1"] == counts["n1"] + counts["na"]
        assert oc["ne"] == counts["ne"] - counts["na"]

    @settings(max_examples=200)
    @given(bsn_tag_vectors(max_m=6), st.data())
    def test_residual_eps_block_compact_at_s(self, tags, data):
        """Theorem 3 case 1: C^n_{s, ne-na; chi, eps} at the outputs."""
        n = len(tags)
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        counts = count_tags(cells_from_tags(tags))
        out = scatter(cells_from_tags(tags), s)
        found = compact_of_predicate(
            [c.tag for c in out], lambda t: t.is_eps_like
        )
        assert found is not None
        fs, fl = found
        l = counts["ne"] - counts["na"]
        assert fl == l
        if 0 < l < n:
            assert fs == s

    @settings(max_examples=200)
    @given(bsn_tag_vectors(max_m=5))
    def test_all_branch_payloads_delivered(self, tags):
        """Every alpha's two branch payloads appear on the outputs; every
        chi payload survives; epsilon contributes nothing."""
        cells = cells_from_tags(tags)
        out = scatter(cells, 0)
        got = sorted(c.data for c in out if c.data is not None)
        expected = []
        for c in cells:
            if c.tag is Tag.ALPHA:
                expected += [c.branch0, c.branch1]
            elif not c.is_empty:
                expected.append(c.data)
        assert got == sorted(expected)

    def test_precondition_enforced(self):
        """eq. (3): na <= ne required when acting as a BSN scatter."""
        tags = [Tag.ALPHA, Tag.ZERO, Tag.ONE, Tag.ZERO]
        with pytest.raises(RoutingInvariantError):
            scatter(cells_from_tags(tags), 0)

    def test_general_mode_allows_alpha_domination(self):
        """Theorem 3 case 2: with na > ne, epsilons are eliminated and an
        alpha block survives."""
        tags = [Tag.ALPHA, Tag.ALPHA, Tag.EPS, Tag.ZERO]
        out = scatter(
            cells_from_tags(tags), 1, require_bsn_precondition=False
        )
        out_tags = [c.tag for c in out]
        assert out_tags.count(Tag.ALPHA) == 1
        assert out_tags.count(Tag.EPS) == 0
        found = compact_of_predicate(out_tags, lambda t: t is Tag.ALPHA)
        assert found == (1, 1)


@st.composite
def general_tag_vectors(draw, min_m=1, max_m=5):
    """Arbitrary 0/1/alpha/eps vectors — no BSN constraint (Theorem 3)."""
    from conftest import sizes as _sizes

    n = draw(_sizes(min_m, max_m))
    na = draw(st.integers(min_value=0, max_value=n))
    ne = draw(st.integers(min_value=0, max_value=n - na))
    rest = n - na - ne
    n0 = draw(st.integers(min_value=0, max_value=rest))
    tags = (
        [Tag.ALPHA] * na
        + [Tag.EPS] * ne
        + [Tag.ZERO] * n0
        + [Tag.ONE] * (rest - n0)
    )
    return list(draw(st.permutations(tags)))


class TestTheorem3General:
    """Theorem 3 with no precondition: the dominating type's surplus
    forms a compact block at any requested position."""

    @settings(max_examples=300)
    @given(general_tag_vectors(), st.data())
    def test_dominant_surplus_compact(self, tags, data):
        n = len(tags)
        s = data.draw(st.integers(min_value=0, max_value=n - 1))
        na = tags.count(Tag.ALPHA)
        ne = tags.count(Tag.EPS)
        out = scatter(
            cells_from_tags(tags), s, require_bsn_precondition=False
        )
        out_tags = [c.tag for c in out]
        dominant = Tag.EPS if ne >= na else Tag.ALPHA
        eliminated = Tag.ALPHA if ne >= na else Tag.EPS
        l = abs(ne - na)
        assert out_tags.count(eliminated) == 0
        found = compact_of_predicate(out_tags, lambda t: t is dominant)
        assert found is not None
        fs, fl = found
        assert fl == l
        if 0 < l < n:
            assert fs == s

    @settings(max_examples=150)
    @given(general_tag_vectors())
    def test_min_na_ne_pairs_eliminated(self, tags):
        """Exactly min(na, ne) alpha/eps pairs are transformed to 0/1."""
        na = tags.count(Tag.ALPHA)
        ne = tags.count(Tag.EPS)
        n0 = tags.count(Tag.ZERO)
        n1 = tags.count(Tag.ONE)
        out = scatter(cells_from_tags(tags), 0, require_bsn_precondition=False)
        oc = count_tags(out)
        k = min(na, ne)
        assert oc["n0"] == n0 + k
        assert oc["n1"] == n1 + k


class TestScatterEdgeCases:
    def test_all_eps(self):
        out = scatter(cells_from_tags([Tag.EPS] * 8), 3)
        assert all(c.tag is Tag.EPS for c in out)

    def test_no_alpha_is_pure_compaction(self):
        tags = [Tag.ZERO, Tag.EPS, Tag.ONE, Tag.EPS]
        out = scatter(cells_from_tags(tags), 2)
        out_tags = [c.tag for c in out]
        assert compact_of_predicate(out_tags, lambda t: t is Tag.EPS) == (2, 2)

    def test_n2_alpha_eps(self):
        out = scatter(cells_from_tags([Tag.ALPHA, Tag.EPS]), 0)
        assert [c.tag for c in out] == [Tag.ZERO, Tag.ONE]

    def test_s_out_of_range(self):
        with pytest.raises(ValueError):
            scatter(cells_from_tags([Tag.EPS, Tag.EPS]), 2)


class TestScatterPlanDelegation:
    """Table 4's node plan must coincide with Lemmas 1-5 exactly."""

    def test_same_types_use_lemma1(self):
        plan = scatter_plan(8, 3, 2, Tag.EPS, 1, Tag.EPS)
        assert plan == lemma1(8, 3, 2, 1)

    def test_alpha_upper_dominant_lemma2(self):
        plan = scatter_plan(8, 1, 3, Tag.ALPHA, 2, Tag.EPS)
        assert plan == lemma2(8, 1, 3, 2)

    def test_alpha_upper_dominated_lemma3(self):
        plan = scatter_plan(8, 1, 2, Tag.ALPHA, 3, Tag.EPS)
        assert plan == lemma3(8, 1, 2, 3)

    def test_eps_upper_dominant_lemma4(self):
        plan = scatter_plan(8, 6, 3, Tag.EPS, 2, Tag.ALPHA)
        assert plan == lemma4(8, 6, 3, 2)

    def test_eps_upper_dominated_lemma5(self):
        plan = scatter_plan(8, 6, 1, Tag.EPS, 3, Tag.ALPHA)
        assert plan == lemma5(8, 6, 1, 3)

    def test_invalid_types_rejected(self):
        with pytest.raises(RoutingInvariantError):
            scatter_plan(8, 0, 1, Tag.ZERO, 1, Tag.EPS)


class TestForwardCombine:
    def test_addition_same_types(self):
        algo = ScatterAlgorithm()
        assert algo.combine((2, Tag.EPS), (3, Tag.EPS)) == (5, Tag.EPS)
        assert algo.combine((1, Tag.ALPHA), (2, Tag.ALPHA)) == (3, Tag.ALPHA)

    def test_elimination_different_types(self):
        algo = ScatterAlgorithm()
        assert algo.combine((3, Tag.ALPHA), (1, Tag.EPS)) == (2, Tag.ALPHA)
        assert algo.combine((1, Tag.ALPHA), (3, Tag.EPS)) == (2, Tag.EPS)
        assert algo.combine((2, Tag.EPS), (2, Tag.ALPHA)) == (0, Tag.EPS)

    def test_leaf_values(self):
        algo = ScatterAlgorithm()
        mk = lambda t: cells_from_tags([t])[0]
        assert algo.leaf_forward(mk(Tag.ALPHA)) == (1, Tag.ALPHA)
        assert algo.leaf_forward(mk(Tag.EPS)) == (1, Tag.EPS)
        assert algo.leaf_forward(mk(Tag.ZERO)) == (0, Tag.EPS)
        assert algo.leaf_forward(mk(Tag.ONE)) == (0, Tag.EPS)
