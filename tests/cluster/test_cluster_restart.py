"""RollingRestart: zero loss, warm restore, persistence, scheduling."""

import json
import os
import random

import pytest

from repro import ClusterConfig, FabricCluster, MulticastFabric, NetworkConfig
from repro.cluster import ReplicaState

from conftest import make_random_assignment


def build(replicas=3, n=16, **cluster_kw):
    return FabricCluster(
        ClusterConfig(
            replicas=replicas,
            network=NetworkConfig(n, engine="fast"),
            placement_seed=2,
            **cluster_kw,
        )
    )


def frames(count, n=16, seed=1, distinct=5):
    rng = random.Random(seed)
    pool = [make_random_assignment(n, rng) for _ in range(distinct)]
    return [pool[i % distinct] for i in range(count)]


class TestZeroLoss:
    def test_full_campaign_loses_nothing(self):
        """Every replica restarts mid-traffic; accounting stays exact
        and results stay bit-identical to a single fabric."""
        c = build()
        single = MulticastFabric(NetworkConfig(16, engine="fast"))
        fs = frames(60)
        restart = c.rolling_restart(drain_frames=4)
        restart.plan_campaign(len(fs))
        try:
            for a in fs:
                assert c.submit(a).outputs == single.submit(a).outputs
            restart.flush()
        finally:
            c.close()
            single.close()
        assert c.stats.frames == len(fs)
        assert c.stats.shed_frames == 0
        assert c.stats.restarts == 3
        assert restart.pending == 0
        assert [r.generation for r in c.replicas] == [1, 1, 1]

    def test_restart_with_kill_at_2x_load(self):
        """The acceptance campaign: rolling restart plus a replica kill
        under a 2x-overload admission gate — zero *admitted* frames
        lost, shed accounting exact."""
        from repro.resilience import AdmissionPolicy

        c = FabricCluster(
            ClusterConfig(
                replicas=3,
                network=NetworkConfig(
                    16,
                    engine="fast",
                    admission=AdmissionPolicy(rate=0.5, burst=4.0),
                ),
                placement_seed=4,
            )
        )
        fs = frames(64)
        c.kill_replica(1, at_frame=20)
        restart = c.rolling_restart(drain_frames=4)
        restart.plan_campaign(len(fs))
        try:
            for a in fs:
                c.submit(a)
            restart.flush()
        finally:
            c.close()
        s = c.stats
        assert s.lost_frames == 0
        assert s.frames + s.shed_frames == len(fs)
        assert s.shed_frames > 0  # the gate is genuinely overloaded
        assert s.kills == 1
        assert s.restarts == 3


class TestWarmRestore:
    def test_restart_preserves_plan_cache(self):
        """After the restart the successor fabric answers the recurring
        assignments from its warm-restored cache: no new compiles.

        ``drain_frames=0`` swaps each replica between two frames, so no
        frame is re-homed during a drain window — any new miss could
        only come from a cold successor cache.
        """
        c = build(replicas=2)
        fs = frames(20, distinct=4)
        try:
            for a in fs:
                c.submit(a)
            misses_before = c.stats.plan_cache_misses
            restart = c.rolling_restart(drain_frames=0)
            restart.schedule(0, at_frame=c.frame_index)
            restart.schedule(1, at_frame=c.frame_index + 4)
            for a in frames(20, distinct=4):
                c.submit(a)
            restart.flush()
            assert c.stats.restarts == 2
            assert c.stats.plan_cache_misses == misses_before
        finally:
            c.close()

    def test_snapshot_dir_persistence(self, tmp_path):
        c = build(replicas=2, snapshot_dir=str(tmp_path))
        try:
            for a in frames(10):
                c.submit(a)
            restart = c.rolling_restart(drain_frames=1)
            restart.schedule(0, at_frame=c.frame_index)
            for a in frames(4):
                c.submit(a)
            restart.flush()
        finally:
            c.close()
        path = tmp_path / "replica-0.json"
        assert path.exists()
        doc = json.loads(path.read_text())
        assert doc["kind"] == "fabric_snapshot"
        assert doc["assignments"]


class TestScheduling:
    def test_draining_replica_takes_no_new_placements(self):
        c = build()
        restart = c.rolling_restart(drain_frames=6)
        restart.schedule(0, at_frame=2)
        fs = frames(8)
        try:
            served_before = c.replicas[0].frames_served
            for a in fs[:2]:
                c.submit(a)
            for a in fs[2:]:
                c.submit(a)
                if c.replicas[0].state is ReplicaState.DRAINING:
                    assert (
                        c.replicas[0].frames_served
                        <= served_before + 2
                    )
            restart.flush()
        finally:
            c.close()

    def test_schedule_validation(self):
        c = build()
        restart = c.rolling_restart()
        with pytest.raises(ValueError, match="out of range"):
            restart.schedule(5, at_frame=0)
        c.submit(frames(1)[0])
        with pytest.raises(ValueError, match="already at frame"):
            restart.schedule(0, at_frame=0)
        c.close()

    def test_killed_replica_restarts_cold(self):
        """A replica killed before its restart slot still cycles — as a
        cold restart (nothing left to snapshot)."""
        c = build(replicas=2)
        restart = c.rolling_restart(drain_frames=2)
        c.kill_replica(0, at_frame=3)
        restart.schedule(0, at_frame=6)
        try:
            for a in frames(12):
                c.submit(a)
            restart.flush()
        finally:
            c.close()
        assert c.stats.kills == 1
        assert c.stats.restarts == 1
        assert c.replicas[0].generation == 1

    def test_single_replica_rolling_restart(self):
        """K=1: the lone replica drains (the cluster falls back to the
        draining replica rather than refusing) and swaps with zero
        loss."""
        c = build(replicas=1)
        restart = c.rolling_restart(drain_frames=3)
        restart.plan_campaign(12)
        fs = frames(12)
        try:
            for a in fs:
                c.submit(a)
            restart.flush()
        finally:
            c.close()
        assert c.stats.frames == len(fs)
        assert c.stats.restarts == 1

    def test_negative_drain_frames_rejected(self):
        c = build()
        with pytest.raises(ValueError, match="drain_frames"):
            c.rolling_restart(drain_frames=-1)
        c.close()
