"""The ``repro cluster`` subcommand: exit codes, replay determinism."""

import json

import pytest

from repro.cli import main

BASE = ["cluster", "--n", "16", "--replicas", "3", "--frames", "24",
        "--seed", "7"]


class TestExitCodes:
    def test_clean_campaign(self, capsys):
        assert main(BASE) == 0
        out = capsys.readouterr().out
        assert "accounting: 24/24 frames accounted (complete)" in out
        assert "3/3 replicas up" in out

    def test_kill_and_restart(self, capsys):
        assert main(BASE + ["--kill-replica", "1@10",
                            "--rolling-restart"]) == 0
        out = capsys.readouterr().out
        assert "1 kills, 3 restarts" in out
        assert "accounting: 24/24 frames accounted (complete)" in out

    def test_bad_kill_spec_is_usage_error(self, capsys):
        assert main(BASE + ["--kill-replica", "nope"]) == 2
        assert "expected I@FRAME" in capsys.readouterr().err

    def test_kill_out_of_range_is_usage_error(self, capsys):
        assert main(BASE + ["--kill-replica", "7@3"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_bad_replicas_is_usage_error(self, capsys):
        assert main(["cluster", "--n", "16", "--replicas", "0"]) == 2
        assert "replicas" in capsys.readouterr().err

    def test_lossy_fault_campaign_returns_3(self, capsys):
        # Deterministic stuck-at faults at n=16 with a small retry
        # budget lose terminals for seed 3 (pinned by the seeded plan).
        rc = main(["cluster", "--n", "64", "--replicas", "2", "--frames",
                   "32", "--seed", "3", "--faults", "2"])
        out = capsys.readouterr().out
        if rc == 3:
            assert "lost" in out
        else:  # a seed shift would make the plan benign, never invalid
            assert rc == 0
        assert "accounted (complete)" in out

    def test_sheds_alone_do_not_fail(self, capsys):
        rc = main(BASE + ["--admit-rate", "0.5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "accounted (complete)" in out


class TestReplayDeterminism:
    def test_summary_bytes_identical(self, tmp_path, capsys):
        """Two identically-seeded campaigns write byte-identical
        summaries — the acceptance criterion, verbatim."""
        args = BASE + ["--kill-replica", "1@10", "--rolling-restart",
                       "--admit-rate", "0.5"]
        p1, p2 = tmp_path / "one.json", tmp_path / "two.json"
        assert main(args + ["--summary-out", str(p1)]) == 0
        assert main(args + ["--summary-out", str(p2)]) == 0
        capsys.readouterr()
        assert p1.read_bytes() == p2.read_bytes()
        doc = json.loads(p1.read_text())
        assert doc["generated"] == 24
        assert doc["frames"] + doc["shed"] == doc["generated"]
        assert doc["kills"] == 1
        assert doc["restarts"] == 3

    def test_metrics_out(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(BASE + ["--metrics-out", str(path)]) == 0
        capsys.readouterr()
        doc = json.loads(path.read_text())
        names = {m["name"] for m in doc["metrics"]}
        assert "repro_cluster_frames_total" in names
        assert "repro_cluster_replicas_up" in names
