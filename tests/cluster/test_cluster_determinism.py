"""Acceptance property: cluster routing == single-fabric routing.

K replicas built from one NetworkConfig must deliver bit-identically
to a single fabric routing the same frame sequence — healthy, under
deterministic fault plans, and across a mid-campaign replica kill.
Fault campaigns use the attempt-independent kinds (stuck_at,
dead_switch): flaky_link drop masks are attempt-indexed per-plane
state, so they are exempt from the *cross-replica-count* contract (see
docs/cluster.md).
"""

import random

import pytest

from repro import ClusterConfig, FabricCluster, MulticastFabric, NetworkConfig
from repro.faults import FaultKind, FaultPlan

from conftest import make_random_assignment

SIZES = [8, 16, 64]


def frame_pool(n, seed, distinct=6, count=40):
    rng = random.Random(seed)
    pool = [make_random_assignment(n, rng) for _ in range(distinct)]
    return [pool[i % distinct] for i in range(count)]


def deterministic_plan(n, seed):
    return FaultPlan.random(
        n,
        faults=2,
        seed=seed,
        kinds=[FaultKind.STUCK_AT, FaultKind.DEAD_SWITCH],
    )


def assert_same_result(a, b, context):
    if hasattr(a, "outcomes") or hasattr(b, "outcomes"):
        assert hasattr(a, "outcomes") and hasattr(b, "outcomes"), context
        assert a.lost == b.lost, context
        assert a.recovered == b.recovered, context
    assert a.outputs == b.outputs, context


class TestBitIdentical:
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("replicas", [1, 2, 3])
    def test_healthy(self, n, replicas):
        frames = frame_pool(n, seed=n)
        cluster = FabricCluster(
            ClusterConfig(
                replicas=replicas,
                network=NetworkConfig(n, engine="fast"),
                placement_seed=7,
            )
        )
        single = MulticastFabric(NetworkConfig(n, engine="fast"))
        try:
            for i, a in enumerate(frames):
                assert_same_result(
                    cluster.submit(a), single.submit(a), f"frame {i}"
                )
        finally:
            cluster.close()
            single.close()
        assert cluster.stats.frames == single.stats.frames
        assert cluster.stats.deliveries == single.stats.deliveries

    @pytest.mark.parametrize("n", SIZES)
    def test_with_fault_plan(self, n):
        """Health thresholds are pinned sky-high (``health_factory`` /
        ``health=``) so no plane quarantines: quarantine transitions
        are per-plane *session* state — they depend on which frames a
        plane saw, which is exactly what placement changes."""
        from repro.faults.health import HealthTracker

        plan = deterministic_plan(n, seed=n + 1)
        frames = frame_pool(n, seed=n + 2)
        never = 10**9
        cluster = FabricCluster(
            ClusterConfig(
                replicas=3,
                network=NetworkConfig(n, engine="fast", fault_plan=plan),
                placement_seed=3,
            ),
            health_factory=lambda: HealthTracker(fail_threshold=never),
        )
        single = MulticastFabric(
            NetworkConfig(n, engine="fast", fault_plan=plan),
            health=HealthTracker(fail_threshold=never),
        )
        try:
            for i, a in enumerate(frames):
                assert_same_result(
                    cluster.submit(a), single.submit(a), f"frame {i}"
                )
        finally:
            cluster.close()
            single.close()
        assert cluster.stats.lost_terminals == single.stats.lost_terminals

    @pytest.mark.parametrize("n", SIZES)
    def test_with_mid_campaign_kill(self, n):
        """Killing a replica mid-campaign changes *where* frames run,
        never *what* they deliver — including the requeued frame."""
        frames = frame_pool(n, seed=n + 3)
        cluster = FabricCluster(
            ClusterConfig(
                replicas=3,
                network=NetworkConfig(n, engine="fast"),
                placement_seed=1,
            )
        )
        single = MulticastFabric(NetworkConfig(n, engine="fast"))
        kill_at = len(frames) // 2
        # Kill the *home* of the mid-campaign frame so the requeue path
        # actually runs.
        from repro.core.serialization import assignment_fingerprint

        victim = cluster.router.order(
            assignment_fingerprint(frames[kill_at]), cluster.replicas
        )[0].index
        cluster.kill_replica(victim, at_frame=kill_at)
        try:
            for i, a in enumerate(frames):
                assert_same_result(
                    cluster.submit(a), single.submit(a), f"frame {i}"
                )
        finally:
            cluster.close()
            single.close()
        assert cluster.stats.kills == 1
        assert cluster.stats.requeues == 1
        assert cluster.stats.frames == len(frames)
        assert cluster.stats.deliveries == single.stats.deliveries


class TestReplayDeterminism:
    def test_identical_campaigns_identical_summaries(self):
        def campaign():
            cluster = FabricCluster(
                ClusterConfig(
                    replicas=3,
                    network=NetworkConfig(16, engine="fast"),
                    placement_seed=11,
                )
            )
            cluster.kill_replica(2, at_frame=10)
            restart = cluster.rolling_restart(drain_frames=3)
            restart.plan_campaign(30)
            try:
                for a in frame_pool(16, seed=42, count=30):
                    cluster.submit(a)
                restart.flush()
                return cluster.summary()
            finally:
                cluster.close()

        assert campaign() == campaign()
