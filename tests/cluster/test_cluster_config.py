"""ClusterConfig: validation, composition with NetworkConfig."""

import pytest

from repro import ClusterConfig, NetworkConfig


def net(**kw):
    return NetworkConfig(16, engine="fast", **kw)


class TestValidation:
    def test_minimal(self):
        cfg = ClusterConfig(replicas=2, network=net())
        assert cfg.replicas == 2
        assert cfg.placement_seed == 0
        assert cfg.spill_over is True
        assert cfg.drain_frames == 4
        assert cfg.snapshot_dir is None

    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_replicas_must_be_positive(self, bad):
        with pytest.raises(ValueError, match="replicas"):
            ClusterConfig(replicas=bad, network=net())

    @pytest.mark.parametrize("bad", [2.0, "2", True, None])
    def test_replicas_must_be_int(self, bad):
        with pytest.raises(TypeError, match="replicas"):
            ClusterConfig(replicas=bad, network=net())

    def test_network_must_be_config(self):
        with pytest.raises(TypeError, match="network"):
            ClusterConfig(replicas=2, network=16)

    def test_network_snapshot_path_rejected(self):
        """The cluster manages snapshots; K replicas must not share a
        single auto-persist path."""
        with pytest.raises(ValueError, match="snapshot_path"):
            ClusterConfig(
                replicas=2, network=net(snapshot_path="/tmp/one.json")
            )

    @pytest.mark.parametrize("bad", [1.5, "0", True])
    def test_placement_seed_must_be_int(self, bad):
        with pytest.raises(TypeError, match="placement_seed"):
            ClusterConfig(replicas=2, network=net(), placement_seed=bad)

    def test_drain_frames_validated(self):
        with pytest.raises(ValueError, match="drain_frames"):
            ClusterConfig(replicas=2, network=net(), drain_frames=-1)
        with pytest.raises(TypeError, match="drain_frames"):
            ClusterConfig(replicas=2, network=net(), drain_frames=1.0)

    def test_frozen(self):
        cfg = ClusterConfig(replicas=2, network=net())
        with pytest.raises(Exception):
            cfg.replicas = 3


class TestDerive:
    def test_derive_overrides_and_revalidates(self):
        cfg = ClusterConfig(replicas=2, network=net(), placement_seed=5)
        out = cfg.derive(replicas=4)
        assert out.replicas == 4
        assert out.placement_seed == 5
        assert cfg.replicas == 2
        with pytest.raises(ValueError):
            cfg.derive(replicas=0)

    def test_derive_network(self):
        cfg = ClusterConfig(replicas=2, network=net())
        out = cfg.derive(network=cfg.network.derive(workers=2))
        assert out.network.workers == 2
