"""Replica lifecycle: kills, requeue-once, spill-over, events."""

import random

import pytest

from repro import ClusterConfig, FabricCluster, NetworkConfig
from repro.cluster import ClusterUnavailableError, ReplicaState
from repro.cluster.replica import FabricReplica, ReplicaDownError
from repro.core.serialization import assignment_fingerprint
from repro.obs import MetricsObserver
from repro.resilience import AdmissionPolicy, ShedFrame

from conftest import make_random_assignment


def build(replicas=3, seed=0, observer=None, **net_kw):
    return FabricCluster(
        ClusterConfig(
            replicas=replicas,
            network=NetworkConfig(16, engine="fast", observer=observer, **net_kw),
            placement_seed=seed,
        )
    )


def frames(count, seed=1, distinct=5):
    rng = random.Random(seed)
    pool = [make_random_assignment(16, rng) for _ in range(distinct)]
    return [pool[i % distinct] for i in range(count)]


class TestReplica:
    def test_down_replica_refuses(self):
        r = FabricReplica(0, NetworkConfig(16, engine="fast"))
        r.kill()
        with pytest.raises(ReplicaDownError):
            r.submit(frames(1)[0])
        r.kill()  # idempotent
        assert r.state is ReplicaState.DOWN

    def test_restart_bumps_generation(self):
        r = FabricReplica(0, NetworkConfig(16, engine="fast"))
        for a in frames(10):
            r.submit(a)
        snap = r.snapshot()
        r.kill()
        warmed = r.restart(snap)
        assert r.state is ReplicaState.UP
        assert r.generation == 1
        assert warmed == len(snap.assignments) > 0
        r.close()

    def test_drain_is_one_way_from_up(self):
        r = FabricReplica(0, NetworkConfig(16, engine="fast"))
        r.drain()
        assert r.state is ReplicaState.DRAINING
        assert r.alive and not r.serving
        r.close()
        assert r.state is ReplicaState.DOWN


class TestKillAndRequeue:
    def test_scheduled_kill_requeues_exactly_once(self):
        c = build()
        fs = frames(20)
        kill_at = 8
        victim = c.router.order(
            assignment_fingerprint(fs[kill_at]), c.replicas
        )[0].index
        c.kill_replica(victim, at_frame=kill_at)
        try:
            for a in fs:
                c.submit(a)
        finally:
            c.close()
        assert c.stats.kills == 1
        assert c.stats.requeues == 1
        assert c.stats.frames == len(fs)
        assert c.stats.shed_frames == 0
        assert c.stats.per_replica[victim] <= kill_at

    def test_kill_non_home_requeues_nothing(self):
        c = build()
        fs = frames(20)
        kill_at = 8
        order = c.router.order(
            assignment_fingerprint(fs[kill_at]), c.replicas
        )
        victim = order[-1].index if len(order) > 1 else order[0].index
        if victim == order[0].index:
            pytest.skip("needs >= 2 replicas")
        c.kill_replica(victim, at_frame=kill_at)
        try:
            for a in fs:
                c.submit(a)
        finally:
            c.close()
        assert c.stats.kills == 1
        assert c.stats.requeues == 0
        assert c.stats.frames == len(fs)

    def test_all_replicas_dead_raises(self):
        c = build(replicas=2)
        c.kill_replica(0)
        c.kill_replica(1)
        with pytest.raises(ClusterUnavailableError):
            c.submit(frames(1)[0])
        c.close()

    def test_scheduled_kill_validation(self):
        c = build()
        with pytest.raises(ValueError, match="out of range"):
            c.kill_replica(9)
        c.submit(frames(1)[0])
        with pytest.raises(ValueError, match="already at frame"):
            c.kill_replica(0, at_frame=0)
        c.close()

    def test_immediate_kill_is_idempotent(self):
        c = build()
        c.kill_replica(1)
        c.kill_replica(1)
        assert c.stats.kills == 1
        assert c.up_count == 2
        c.close()


class TestSpillOver:
    def test_home_shed_spills_to_sibling(self):
        """A hard-gated home replica sheds; the frame spills over and
        is served — shed accounting stays exact."""
        # rate=0 with tiny burst: each replica admits its first burst
        # then sheds everything.
        c = build(
            replicas=3,
            admission=AdmissionPolicy(rate=0.0, burst=2.0),
        )
        fs = frames(30)
        try:
            for a in fs:
                c.submit(a)
        finally:
            c.close()
        s = c.stats
        assert s.spillovers > 0
        assert s.shed_frames > 0
        assert s.frames + s.shed_frames == len(fs)
        # Every replica's burst was drained before anything was shed
        # cluster-wide: 3 replicas x burst 2.
        assert s.frames == 6

    def test_spill_over_disabled(self):
        c = FabricCluster(
            ClusterConfig(
                replicas=3,
                network=NetworkConfig(
                    16,
                    engine="fast",
                    admission=AdmissionPolicy(rate=0.0, burst=2.0),
                ),
                spill_over=False,
            )
        )
        fs = frames(30)
        shed = 0
        try:
            for a in fs:
                if isinstance(c.submit(a), ShedFrame):
                    shed += 1
        finally:
            c.close()
        assert c.stats.spillovers == 0
        assert c.stats.shed_frames == shed > 0


class TestEvents:
    def test_cluster_metric_families(self):
        obs = MetricsObserver()
        c = build(observer=obs)
        fs = frames(12)
        kill_at = 6
        victim = c.router.order(
            assignment_fingerprint(fs[kill_at]), c.replicas
        )[0].index
        c.kill_replica(victim, at_frame=kill_at)
        restart = c.rolling_restart(drain_frames=2)
        survivor = next(
            i for i in range(3) if i != victim
        )
        restart.schedule(survivor, at_frame=8)
        try:
            for a in fs:
                c.submit(a)
            restart.flush()
        finally:
            c.close()
        text = obs.registry.to_prometheus_text()
        assert "repro_cluster_frames_total" in text
        assert "repro_cluster_requeues_total 1" in text
        assert "repro_cluster_kills_total 1" in text
        assert "repro_cluster_restarts_total 1" in text
        assert "repro_cluster_plans_warmed_total" in text
        assert "repro_cluster_replicas_up" in text

    def test_control_plane_runs_per_replica(self):
        """Each replica's fabric builds its own control plane from the
        shared config; the cluster needs no special wiring."""
        from repro import ControlPolicy

        c = build(
            replicas=2,
            admission=AdmissionPolicy(rate=1.0, burst=4.0),
            control=ControlPolicy(),
        )
        try:
            for a in frames(40):
                c.submit(a)
        finally:
            c.close()
        for r in c.replicas:
            assert r.fabric.control is not None
            assert r.fabric.control.tick_count > 0
