"""ClusterRouter: rendezvous affinity, determinism, health ordering."""

import random

import pytest

from repro import ClusterConfig, FabricCluster, NetworkConfig
from repro.cluster import ClusterRouter, ReplicaState
from repro.core.serialization import assignment_fingerprint

from conftest import make_random_assignment


def cluster_of(k, seed=0, n=16, **net_kw):
    cfg = ClusterConfig(
        replicas=k,
        network=NetworkConfig(n, engine="fast", **net_kw),
        placement_seed=seed,
    )
    return FabricCluster(cfg)


def fingerprints(n=16, count=20, seed=0):
    rng = random.Random(seed)
    return [
        assignment_fingerprint(make_random_assignment(n, rng))
        for _ in range(count)
    ]


class TestRendezvous:
    def test_placement_is_deterministic(self):
        c1, c2 = cluster_of(4, seed=3), cluster_of(4, seed=3)
        try:
            for fp in fingerprints():
                o1 = [r.index for r in c1.router.order(fp, c1.replicas)]
                o2 = [r.index for r in c2.router.order(fp, c2.replicas)]
                assert o1 == o2
        finally:
            c1.close()
            c2.close()

    def test_seed_changes_placement(self):
        c1, c2 = cluster_of(4, seed=0), cluster_of(4, seed=1)
        try:
            homes1 = [
                c1.router.order(fp, c1.replicas)[0].index
                for fp in fingerprints()
            ]
            homes2 = [
                c2.router.order(fp, c2.replicas)[0].index
                for fp in fingerprints()
            ]
            assert homes1 != homes2
        finally:
            c1.close()
            c2.close()

    def test_every_replica_is_someones_home(self):
        """Rendezvous spreads distinct fingerprints over all replicas."""
        c = cluster_of(4)
        try:
            homes = {
                c.router.order(fp, c.replicas)[0].index
                for fp in fingerprints(count=64)
            }
            assert homes == {0, 1, 2, 3}
        finally:
            c.close()

    def test_minimal_disruption_on_replica_loss(self):
        """Removing one replica re-homes only its own fingerprints."""
        c = cluster_of(4)
        try:
            fps = fingerprints(count=64)
            before = {
                fp: c.router.order(fp, c.replicas)[0].index for fp in fps
            }
            c.replicas[2].kill()
            after = {
                fp: c.router.order(fp, c.replicas)[0].index for fp in fps
            }
            for fp in fps:
                if before[fp] != 2:
                    assert after[fp] == before[fp]
                else:
                    assert after[fp] != 2
        finally:
            c.close()


class TestHealthOrdering:
    def test_down_replicas_never_returned(self):
        c = cluster_of(3)
        try:
            c.replicas[1].kill()
            for fp in fingerprints(count=10):
                assert 1 not in [
                    r.index for r in c.router.order(fp, c.replicas)
                ]
        finally:
            c.close()

    def test_draining_excluded_while_up_exists(self):
        c = cluster_of(3)
        try:
            c.replicas[0].drain()
            for fp in fingerprints(count=10):
                order = [r.index for r in c.router.order(fp, c.replicas)]
                assert 0 not in order and len(order) == 2
        finally:
            c.close()

    def test_draining_fallback_when_nothing_up(self):
        """A fully-draining cluster still serves (drains are graceful)."""
        c = cluster_of(2)
        try:
            for r in c.replicas:
                r.drain()
            for fp in fingerprints(count=5):
                order = c.router.order(fp, c.replicas)
                assert [r.state for r in order] == [
                    ReplicaState.DRAINING,
                    ReplicaState.DRAINING,
                ]
        finally:
            c.close()

    def test_weight_is_pure(self):
        router = ClusterRouter(seed=9)
        fp = fingerprints(count=1)[0]
        assert router.weight(fp, 0) == router.weight(fp, 0)
        assert router.weight(fp, 0) != router.weight(fp, 1)


class TestAffinity:
    def test_repeated_assignments_stay_home(self):
        """Plan affinity: the cluster-wide hit rate matches the miss
        count of a single fabric (one compile per distinct plan)."""
        c = cluster_of(4)
        try:
            rng = random.Random(5)
            pool = [make_random_assignment(16, rng) for _ in range(6)]
            for i in range(60):
                c.submit(pool[i % len(pool)])
            assert c.stats.plan_cache_misses == len(pool)
            assert c.stats.plan_cache_hits == 60 - len(pool)
        finally:
            c.close()
