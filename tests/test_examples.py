"""Smoke tests: every example script runs cleanly and prints its story.

Examples are documentation; these tests keep them from rotting.  Each
script is executed in-process (``runpy``) with stdout captured, and a
couple of content markers per script assert it still tells the story
its header promises.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

#: script -> markers that must appear in its stdout
EXPECTED = {
    "quickstart.py": ["a1ae011", "verified: True", "output 7 <- input 2"],
    "videoconference.py": ["all verified", "hardware comparison"],
    "fft_butterfly.py": ["FFT butterflies", "latency advantage"],
    "feedback_cost_study.py": ["identical, verified deliveries", "passes"],
    "complexity_study.py": ["n log^2 n", "forward"],
    "vod_fabric_session.py": ["VoD session", "frame latency"],
    "distance_learning.py": ["frames (optimal", "frame composition"],
    "full_reproduction_report.py": ["ALL CLAIMS REPRODUCED"],
}


@pytest.mark.parametrize("script", sorted(EXPECTED))
def test_example_runs_and_tells_its_story(script, capsys, monkeypatch):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    monkeypatch.setattr(sys, "argv", [str(path)])
    try:
        runpy.run_path(str(path), run_name="__main__")
    except SystemExit as exc:  # report script exits with a code
        assert not exc.code, f"{script} exited with {exc.code}"
    out = capsys.readouterr().out
    for marker in EXPECTED[script]:
        assert marker in out, f"{script}: missing {marker!r}"


def test_every_example_covered():
    """A new example must register its markers here."""
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(EXPECTED)
