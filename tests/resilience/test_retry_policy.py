"""RetryPolicy backoff: max_delay_s cap and deterministic jitter."""

import math

import pytest

from repro.faults import RetryPolicy


class TestMaxDelayCap:
    def test_default_is_uncapped(self):
        p = RetryPolicy(base_delay_s=1.0, multiplier=2.0)
        assert p.max_delay_s == math.inf
        assert p.delay(10) == 512.0

    def test_cap_bounds_exponential_growth(self):
        p = RetryPolicy(
            max_retries=10, base_delay_s=1.0, multiplier=2.0, max_delay_s=4.0
        )
        assert p.delay(1) == 1.0
        assert p.delay(2) == 2.0
        assert p.delay(3) == 4.0
        assert p.delay(4) == 4.0  # capped
        assert p.delay(10) == 4.0

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError, match="max_delay_s"):
            RetryPolicy(max_delay_s=-1.0)


class TestJitter:
    def test_zero_jitter_is_exact(self):
        p = RetryPolicy(base_delay_s=0.5, multiplier=2.0)
        assert p.delay(2) == 1.0

    def test_jitter_is_deterministic_per_seed_and_retry(self):
        p = RetryPolicy(base_delay_s=1.0, jitter=0.5, jitter_seed=42)
        assert p.delay(3) == p.delay(3)
        q = RetryPolicy(base_delay_s=1.0, jitter=0.5, jitter_seed=42)
        assert q.delay(3) == p.delay(3)

    def test_different_seeds_give_different_delays(self):
        a = RetryPolicy(base_delay_s=1.0, jitter=0.5, jitter_seed=1)
        b = RetryPolicy(base_delay_s=1.0, jitter=0.5, jitter_seed=2)
        assert a.delay(1) != b.delay(1)

    def test_jitter_stays_within_the_band(self):
        p = RetryPolicy(
            base_delay_s=1.0, multiplier=1.0, jitter=0.25, jitter_seed=7
        )
        for retry in range(1, 50):
            assert 0.75 <= p.delay(retry) <= 1.25

    def test_jitter_applies_after_the_cap(self):
        p = RetryPolicy(
            base_delay_s=8.0, max_delay_s=2.0, jitter=0.5, jitter_seed=3
        )
        assert p.delay(5) <= 3.0  # 2.0 * (1 + 0.5) at most

    def test_zero_delay_is_never_jittered(self):
        p = RetryPolicy(base_delay_s=0.0, jitter=1.0)
        assert p.delay(1) == 0.0

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_jitter_fraction_validated(self, bad):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=bad)
