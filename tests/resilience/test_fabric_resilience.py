"""MulticastFabric under the resilience layer: gate, deadline, breaker,
and leak-safe close."""

import random

import pytest

from conftest import make_random_assignment
from repro import (
    AdmissionPolicy,
    BreakerPolicy,
    DeadlineBudget,
    MulticastFabric,
    NetworkConfig,
    RetryPolicy,
    ShedFrame,
)
from repro.faults import FaultPlan
from repro.faults.healing import route_with_healing
from repro.resilience import CircuitBreaker


def _frames(n, count, seed=0):
    rng = random.Random(seed)
    return [make_random_assignment(n, rng) for _ in range(count)]


class TestAdmissionOnSubmit:
    def test_shed_frames_never_route(self):
        pol = AdmissionPolicy(rate=0.0, burst=2.0)
        fab = MulticastFabric(NetworkConfig(16, engine="fast", admission=pol))
        results = [fab.submit(f) for f in _frames(16, 5, seed=1)]
        shed = [r for r in results if isinstance(r, ShedFrame)]
        routed = [r for r in results if not isinstance(r, ShedFrame)]
        assert len(routed) == 2 and len(shed) == 3
        assert all(s.ok is False for s in shed)
        assert fab.stats.frames == 2
        assert fab.stats.shed_frames == 3
        fab.close()

    def test_priority_survives_the_reserve(self):
        pol = AdmissionPolicy(rate=0.0, burst=2.0, reserve=1.0)
        fab = MulticastFabric(NetworkConfig(16, engine="fast", admission=pol))
        frames = _frames(16, 3, seed=2)
        assert not isinstance(fab.submit(frames[0], priority=0), ShedFrame)
        assert isinstance(fab.submit(frames[1], priority=0), ShedFrame)
        assert not isinstance(fab.submit(frames[2], priority=1), ShedFrame)
        fab.close()

    def test_no_admission_config_means_no_gate(self):
        fab = MulticastFabric(NetworkConfig(16, engine="fast"))
        assert fab.gate is None
        fab.close()


class TestDeadlineOnHealing:
    def _faulted_network(self):
        from repro.core.routing import build_network

        plan = FaultPlan.random(16, faults=4, seed=3)
        return build_network(NetworkConfig(16, engine="fast", fault_plan=plan))

    def test_expired_budget_stops_repair_passes(self):
        class Expired:
            unlimited = False
            expired = True

            def clamp(self, d):
                return 0.0

        net = self._faulted_network()
        frame = _frames(16, 1, seed=4)[0]
        result = route_with_healing(net, frame, budget=Expired())
        if result.lost:
            assert result.deadline_expired
            assert result.attempts == 1  # no repair pass ran
        net.close()

    def test_backoff_sleeps_are_clamped_to_the_budget(self):
        """A 5 s base backoff under a 50 ms budget returns promptly."""
        import time

        net = self._faulted_network()
        frame = _frames(16, 1, seed=5)[0]
        slow = RetryPolicy(max_retries=3, base_delay_s=5.0)
        t0 = time.monotonic()
        route_with_healing(
            net, frame, policy=slow, budget=DeadlineBudget(50.0)
        )
        assert time.monotonic() - t0 < 2.0
        net.close()

    def test_open_breaker_short_circuits_the_retry_loop(self):
        net = self._faulted_network()
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1))
        breaker.record(False)
        assert breaker.is_open
        frame = _frames(16, 1, seed=6)[0]
        result = route_with_healing(net, frame, breaker=breaker)
        if result.lost:
            assert result.short_circuited
            assert result.attempts == 1
        net.close()


class TestBreakerOnFabric:
    def test_tripped_breaker_quarantines_and_short_circuits(self):
        plan = FaultPlan.random(16, faults=4, seed=7)
        cfg = NetworkConfig(
            16,
            engine="fast",
            fault_plan=plan,
            breaker=BreakerPolicy(
                failure_threshold=2, open_frames=3, half_open_probes=1
            ),
        )
        fab = MulticastFabric(cfg, strict=False)
        for f in _frames(16, 40, seed=8):
            fab.submit(f)
        assert fab.breaker.opens > 0
        assert fab.stats.short_circuits > 0
        assert fab.stats.quarantines > 0
        # Short-circuited frames were served (on the standby), not lost.
        assert fab.stats.standby_frames >= fab.stats.short_circuits
        fab.close()

    def test_faultless_fabric_has_no_breaker(self):
        cfg = NetworkConfig(
            16, engine="fast", breaker=BreakerPolicy()
        )
        fab = MulticastFabric(cfg)
        assert fab.breaker is None  # breaker guards the fault plane only
        fab.close()


class TestDeadlineStats:
    def test_deadline_expiries_are_counted(self):
        # deadline_ms so small every healed frame's first budget check
        # has already expired.
        plan = FaultPlan.random(16, faults=4, seed=9)
        cfg = NetworkConfig(
            16, engine="fast", fault_plan=plan, deadline_ms=1e-6
        )
        fab = MulticastFabric(cfg, strict=False)
        for f in _frames(16, 30, seed=10):
            fab.submit(f)
        # Degraded frames hit the expired budget before any repair.
        if fab.stats.degraded_frames:
            assert fab.stats.deadline_expired_frames > 0
        fab.close()


class TestCloseSafety:
    def test_brsmn_close_releases_pool_when_drain_raises(self):
        """Satellite (a): a raising pipeline drain cannot leak the
        worker pool's threads."""
        from repro.core.routing import build_network

        net = build_network(
            NetworkConfig(16, engine="fast", workers=2, compile_ahead=1)
        )
        assert net.pipeline is not None and net.pool is not None

        def exploding_drain():
            raise RuntimeError("drain blew up")

        net.pipeline.drain = exploding_drain
        with pytest.raises(RuntimeError, match="drain blew up"):
            net.close()
        # The pool was still shut down (no executor left behind).
        assert net.pool._executor is None

    def test_fabric_close_reaches_standby_when_primary_raises(self):
        plan = FaultPlan.random(16, faults=2, seed=11)
        cfg = NetworkConfig(16, engine="fast", fault_plan=plan)
        fab = MulticastFabric(cfg, strict=False)
        closed = []

        fab.standby.close = lambda: closed.append("standby")

        def exploding_close():
            raise RuntimeError("primary close blew up")

        fab.network.close = exploding_close
        with pytest.raises(RuntimeError, match="primary close"):
            fab.close()
        assert closed == ["standby"]

    def test_close_is_idempotent(self):
        fab = MulticastFabric(NetworkConfig(16, engine="fast", workers=2))
        fab.close()
        fab.close()
