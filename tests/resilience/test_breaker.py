"""CircuitBreaker: the closed -> open -> half-open state machine."""

import pytest

from repro.obs import MetricsObserver
from repro.resilience import BreakerPolicy, BreakerState, CircuitBreaker


def trip(breaker):
    """Drive a closed breaker to OPEN via consecutive failures."""
    for _ in range(breaker.policy.failure_threshold):
        breaker.record(False)
    assert breaker.state is BreakerState.OPEN


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"open_frames": 0},
            {"half_open_probes": 0},
        ],
    )
    def test_thresholds_must_be_positive(self, kwargs):
        with pytest.raises(ValueError):
            BreakerPolicy(**kwargs)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        b = CircuitBreaker()
        assert b.state is BreakerState.CLOSED
        assert b.allow()
        assert not b.is_open

    def test_success_resets_the_failure_streak(self):
        b = CircuitBreaker(BreakerPolicy(failure_threshold=3))
        b.record(False)
        b.record(False)
        b.record(True)  # streak broken
        b.record(False)
        b.record(False)
        assert b.state is BreakerState.CLOSED

    def test_consecutive_failures_trip_open(self):
        b = CircuitBreaker(BreakerPolicy(failure_threshold=2))
        trip(b)
        assert b.is_open
        assert b.opens == 1

    def test_denials_count_the_cooldown_to_half_open(self):
        b = CircuitBreaker(BreakerPolicy(failure_threshold=1, open_frames=3))
        trip(b)
        assert [b.allow() for _ in range(3)] == [False, False, False]
        assert b.state is BreakerState.HALF_OPEN
        assert b.short_circuits == 3
        assert b.allow()  # probes flow again

    def test_half_open_closes_after_probe_successes(self):
        b = CircuitBreaker(
            BreakerPolicy(
                failure_threshold=1, open_frames=1, half_open_probes=2
            )
        )
        trip(b)
        b.allow()  # cooldown spent -> HALF_OPEN
        b.record(True)
        assert b.state is BreakerState.HALF_OPEN
        b.record(True)
        assert b.state is BreakerState.CLOSED
        assert b.closes == 1

    def test_half_open_failure_reopens(self):
        b = CircuitBreaker(BreakerPolicy(failure_threshold=1, open_frames=1))
        trip(b)
        b.allow()
        assert b.state is BreakerState.HALF_OPEN
        b.record(False)
        assert b.state is BreakerState.OPEN
        assert b.opens == 2

    def test_stale_record_while_open_changes_nothing(self):
        b = CircuitBreaker(BreakerPolicy(failure_threshold=1))
        trip(b)
        assert b.record(True) is BreakerState.OPEN


class TestSnapshotRestore:
    def test_round_trip_preserves_state(self):
        b = CircuitBreaker(BreakerPolicy(failure_threshold=1, open_frames=4))
        trip(b)
        b.allow()
        snap = b.snapshot()
        b2 = CircuitBreaker(b.policy)
        b2.restore(snap)
        assert b2.state is BreakerState.OPEN
        assert b2.denied_since_open == 1
        assert b2.opens == 1 and b2.short_circuits == 1
        # The restored breaker continues the cooldown where it left off.
        for _ in range(3):
            b2.allow()
        assert b2.state is BreakerState.HALF_OPEN

    def test_snapshot_is_plain_json_types(self):
        import json

        b = CircuitBreaker()
        trip(b)
        assert json.loads(json.dumps(b.snapshot())) == b.snapshot()


class TestObservability:
    def test_transitions_feed_resilience_metrics(self):
        obs = MetricsObserver()
        b = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, open_frames=1),
            scope="primary",
            observer=obs,
        )
        trip(b)
        b.allow()  # short circuit + half-open
        text = obs.registry.to_prometheus_text()
        assert 'repro_resilience_breaker_transitions_total{state="open"} 1' in text
        assert "repro_resilience_short_circuits_total 1" in text
        assert 'repro_resilience_breaker_state{scope="primary"} 1' in text
