"""AdmissionGate: token bucket, watermarks, priority reserve."""

import math

import pytest

from repro.obs import MetricsObserver
from repro.resilience import AdmissionGate, AdmissionPolicy, ShedFrame


class TestPolicyValidation:
    def test_defaults_are_all_permissive(self):
        p = AdmissionPolicy()
        assert p.unlimited
        assert math.isinf(p.rate) and math.isinf(p.burst)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate": -1.0},
            {"burst": 0.5},
            {"soft_watermark": -1.0},
            {"soft_watermark": 8.0, "hard_watermark": 4.0},
            {"reserve": -1.0},
            {"burst": 4.0, "reserve": 4.0},  # reserve must be < burst
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionPolicy(**kwargs)


class TestTokenBucket:
    def test_default_gate_admits_everything(self):
        gate = AdmissionGate()
        for _ in range(1000):
            gate.tick()
            assert gate.admit()
        assert gate.shed == 0

    def test_burst_then_rate_limited(self):
        gate = AdmissionGate(AdmissionPolicy(rate=1.0, burst=3.0))
        gate.tick()  # bucket already full: tick cannot overfill
        decisions = [gate.admit() for _ in range(5)]
        assert decisions == [True, True, True, False, False]
        assert gate.last_reason == "tokens"
        gate.tick()  # one token back
        assert gate.admit()
        assert not gate.admit()

    def test_refill_caps_at_burst(self):
        gate = AdmissionGate(AdmissionPolicy(rate=10.0, burst=2.0))
        for _ in range(5):
            gate.tick()
        assert [gate.admit() for _ in range(3)] == [True, True, False]

    def test_deterministic_counters(self):
        gate = AdmissionGate(AdmissionPolicy(rate=0.5, burst=1.0))
        for _ in range(10):
            gate.tick()
            gate.admit()
        # The full bucket caps at burst=1, so the gate alternates:
        # admit (1 -> 0), shed (0.5 < 1), admit (back at 1), ...
        assert gate.admitted == 5
        assert gate.shed == 5
        assert gate.admitted_by_priority == {0: 5}
        assert gate.shed_by_priority == {0: 5}


class TestWatermarks:
    def test_soft_watermark_sheds_best_effort_only(self):
        gate = AdmissionGate(AdmissionPolicy(soft_watermark=4.0))
        assert gate.admit(priority=0, queue_depth=3)
        assert not gate.admit(priority=0, queue_depth=4)
        assert gate.last_reason == "watermark"
        assert gate.admit(priority=1, queue_depth=4)

    def test_hard_watermark_sheds_everything(self):
        gate = AdmissionGate(
            AdmissionPolicy(soft_watermark=4.0, hard_watermark=8.0)
        )
        assert not gate.admit(priority=1, queue_depth=8)
        assert not gate.admit(priority=0, queue_depth=9)
        assert gate.last_reason == "watermark"


class TestPriorityReserve:
    def test_reserve_tokens_are_priority_only(self):
        gate = AdmissionGate(
            AdmissionPolicy(rate=0.0, burst=3.0, reserve=2.0)
        )
        # 3 tokens, 2 reserved: one best-effort admit, then priority only.
        assert gate.admit(priority=0)
        assert not gate.admit(priority=0)
        assert gate.last_reason == "tokens"
        assert gate.admit(priority=1)
        assert gate.admit(priority=1)
        assert not gate.admit(priority=1)  # bucket empty for everyone


class TestObservability:
    def test_events_feed_resilience_metrics(self):
        obs = MetricsObserver()
        gate = AdmissionGate(
            AdmissionPolicy(rate=0.0, burst=1.0), observer=obs
        )
        gate.tick()
        gate.admit(priority=1)
        gate.admit(priority=0)
        text = obs.registry.to_prometheus_text()
        assert 'repro_resilience_admitted_total{priority="1"} 1' in text
        assert 'repro_resilience_shed_total{priority="0"} 1' in text


class TestShedFrame:
    def test_marker_is_falsy_ok(self):
        shed = ShedFrame(assignment=None, priority=0, reason="tokens")
        assert shed.ok is False
        assert shed.reason == "tokens"
