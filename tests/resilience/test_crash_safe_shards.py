"""Crash-safe sharded routing: crashed workers never lose a slice."""

from __future__ import annotations

import random
import threading

import numpy as np
import pytest

from conftest import make_random_assignment
from repro.core.fastplan import compile_frame_plan
from repro.obs import MetricsObserver
from repro.parallel import ShardedBatchRouter, WorkerPool
from repro.resilience import DeadlineBudget


def _on_pool_thread() -> bool:
    """True when running on a WorkerPool thread (named repro-worker*)."""
    return threading.current_thread().name.startswith("repro-worker")


class CrashingPlan:
    """Wrap a real plan; the first ``crashes`` pool-thread calls die.

    Submitting-thread calls (the caller's own shard, requeued work that
    fell back inline) always succeed, so the recovery ladder is
    exercised deterministically.
    """

    def __init__(self, plan, crashes: int):
        self._plan = plan
        self._budget = crashes
        self._lock = threading.Lock()
        self.worker_calls = 0

    def apply_batch(self, mat, attempt=0):
        if _on_pool_thread():
            with self._lock:
                self.worker_calls += 1
                if self._budget > 0:
                    self._budget -= 1
                    raise RuntimeError("injected worker crash")
        return self._plan.apply_batch(mat, attempt)


@pytest.fixture()
def pool():
    p = WorkerPool(2)
    yield p
    p.shutdown()


def _case(n=32, batch=12, seed=5):
    a = make_random_assignment(n, random.Random(seed))
    plan = compile_frame_plan(a)
    mat = np.random.default_rng(seed).integers(0, 2**31, size=(batch, n))
    return plan, mat


class TestCrashRecovery:
    def test_single_crash_requeues_exactly_once(self, pool):
        plan, mat = _case()
        crashing = CrashingPlan(plan, crashes=1)
        router = ShardedBatchRouter(pool)
        out = router.apply(crashing, mat)
        # Bit-identical to the sequential result despite the crash.
        assert np.array_equal(out, plan.apply_batch(mat))
        assert router.requeues == 1
        assert router.inline_fallbacks == 0

    def test_double_crash_falls_back_inline(self, pool):
        plan, mat = _case()
        # 2 workers -> one pooled shard; both its attempts crash.
        crashing = CrashingPlan(plan, crashes=2)
        router = ShardedBatchRouter(pool)
        out = router.apply(crashing, mat)
        assert np.array_equal(out, plan.apply_batch(mat))
        assert router.requeues == 1
        assert router.inline_fallbacks == 1

    def test_dead_executor_routes_everything_inline(self, pool):
        plan, mat = _case()
        router = ShardedBatchRouter(pool)
        pool.shutdown()
        # submit() would restart the pool; simulate the shutdown race by
        # making every submission fail like a closing executor does.
        pool.submit = lambda *a, **k: (_ for _ in ()).throw(
            RuntimeError("cannot schedule new futures after shutdown")
        )
        out = router.apply(plan, mat)
        assert np.array_equal(out, plan.apply_batch(mat))
        assert router.inline_fallbacks >= 1

    def test_deterministic_poison_still_propagates(self, pool):
        """Availability never trumps correctness: a plan that fails
        everywhere (not just on workers) raises, after the ladder."""

        class PoisonedPlan:
            def apply_batch(self, mat, attempt=0):
                raise ValueError("poisoned plan")

        mat = np.zeros((8, 16))
        with pytest.raises(ValueError, match="poisoned plan"):
            ShardedBatchRouter(pool).apply(PoisonedPlan(), mat)

    def test_recovery_emits_resilience_metrics(self, pool):
        plan, mat = _case(seed=6)
        obs = MetricsObserver()
        router = ShardedBatchRouter(pool, observer=obs)
        router.apply(CrashingPlan(plan, crashes=2), mat)
        text = obs.registry.to_prometheus_text()
        assert "repro_resilience_shard_requeues_total 1" in text
        assert "repro_resilience_shard_inline_total 1" in text


class TestConcurrentCrashes:
    def test_concurrent_batches_under_crashes_stay_bit_identical(self):
        """Satellite (d): concurrent route_batch calls with injected
        worker crashes still return bit-identical deliveries, and every
        crash is requeued exactly once."""
        pool = WorkerPool(4)
        try:
            plan, mat = _case(n=64, batch=24, seed=9)
            expected = plan.apply_batch(mat)
            routers = [ShardedBatchRouter(pool) for _ in range(4)]
            crashing = [CrashingPlan(plan, crashes=1) for _ in range(4)]
            results = [None] * 4
            errors = []

            def worker(i):
                try:
                    results[i] = routers[i].apply(crashing[i], mat)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            for i in range(4):
                assert np.array_equal(results[i], expected)
                assert routers[i].requeues == 1
        finally:
            pool.shutdown()


class TestDeadlineBoundedWaits:
    def test_expired_budget_computes_stranded_shards_inline(self, pool):
        plan, mat = _case(seed=11)

        class SlowOnWorkers:
            """Worker calls stall past the deadline; inline is instant."""

            def __init__(self, plan):
                self._plan = plan
                self._release = threading.Event()

            def apply_batch(self, m, attempt=0):
                if _on_pool_thread():
                    self._release.wait(timeout=5.0)
                return self._plan.apply_batch(m, attempt)

        slow = SlowOnWorkers(plan)
        router = ShardedBatchRouter(pool)
        budget = DeadlineBudget(20.0)  # 20 ms: the stall outlives it
        out = router.apply(slow, mat, budget=budget)
        slow._release.set()
        # Complete and correct despite the stranded worker (the benign
        # race: the worker writes identical bytes to a disjoint slice).
        assert np.array_equal(out, plan.apply_batch(mat))
        assert router.inline_fallbacks >= 1

    def test_unlimited_budget_changes_nothing(self, pool):
        plan, mat = _case(seed=12)
        out = ShardedBatchRouter(pool).apply(
            plan, mat, budget=DeadlineBudget(None)
        )
        assert np.array_equal(out, plan.apply_batch(mat))
