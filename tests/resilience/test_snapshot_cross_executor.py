"""Satellite: snapshots must warm-restore across executor backends.

A snapshot captures *assignments*, not compiled plans, so nothing
executor-specific should leak into the document — a fleet can snapshot
under ``executor="thread"`` and warm-restore into ``executor="process"``
replicas (or back) during a rolling upgrade.  This was untested; these
pin it, including the constructor's ``snapshot_path`` auto-restore path
and the health/breaker state transfer.
"""

import random

import pytest

from repro import (
    BreakerPolicy,
    FabricSnapshot,
    MulticastFabric,
    NetworkConfig,
)
from repro.faults import FaultKind, FaultPlan
from repro.faults.health import PlaneState

from conftest import make_random_assignment

pytestmark = pytest.mark.parametrize(
    "src_executor,dst_executor",
    [("thread", "process"), ("process", "thread")],
)


def cfg(executor, **kw):
    return NetworkConfig(
        16, engine="fast", workers=2, executor=executor, **kw
    )


def frames(count=10, distinct=4, seed=0):
    rng = random.Random(seed)
    pool = [make_random_assignment(16, rng) for _ in range(distinct)]
    return [pool[i % distinct] for i in range(count)]


class TestCrossExecutorRestore:
    def test_plan_cache_round_trip(self, src_executor, dst_executor):
        src = MulticastFabric(cfg(src_executor))
        for a in frames():
            src.submit(a)
        snap = FabricSnapshot.capture(src)
        src.close()
        assert snap.assignments

        dst = MulticastFabric(cfg(dst_executor))
        warmed = snap.restore(dst)
        assert warmed == len(snap.assignments)
        for a in frames():
            dst.submit(a)
        assert dst.stats.plan_cache_misses == 0
        assert dst.stats.plan_cache_hits == 10
        dst.close()

    def test_snapshot_path_auto_restore(
        self, src_executor, dst_executor, tmp_path
    ):
        """close() persists under one executor; the constructor warm
        restores under the other."""
        path = str(tmp_path / "snap.json")
        src = MulticastFabric(cfg(src_executor, snapshot_path=path))
        for a in frames():
            src.submit(a)
        src.close()

        dst = MulticastFabric(cfg(dst_executor, snapshot_path=path))
        for a in frames():
            dst.submit(a)
        assert dst.stats.plan_cache_misses == 0
        dst.close()

    def test_health_and_breaker_state_transfer(
        self, src_executor, dst_executor
    ):
        plan = FaultPlan.random(
            16, faults=2, seed=5, kinds=[FaultKind.STUCK_AT]
        )
        breaker = BreakerPolicy(failure_threshold=2, open_frames=50)
        src = MulticastFabric(
            cfg(src_executor, fault_plan=plan, breaker=breaker)
        )
        src.health.quarantine()
        snap = FabricSnapshot.capture(src)
        src.close()

        dst = MulticastFabric(
            cfg(dst_executor, fault_plan=plan, breaker=breaker)
        )
        snap.restore(dst)
        assert dst.health.state is PlaneState.QUARANTINED
        dst.close()

    def test_document_is_executor_agnostic(
        self, src_executor, dst_executor
    ):
        """The serialized document from either executor is identical:
        nothing backend-specific may leak into the format."""
        fabrics = [
            MulticastFabric(cfg(src_executor)),
            MulticastFabric(cfg(dst_executor)),
        ]
        docs = []
        for fabric in fabrics:
            for a in frames():
                fabric.submit(a)
            docs.append(FabricSnapshot.capture(fabric).to_json())
            fabric.close()
        assert docs[0] == docs[1]
