"""DeadlineBudget: deterministic wall-time accounting via a fake clock."""

import math

import pytest

from repro.resilience import DeadlineBudget


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestUnlimited:
    def test_none_deadline_never_expires(self):
        clock = FakeClock()
        b = DeadlineBudget(None, clock=clock)
        assert b.unlimited
        assert not b.expired
        clock.advance(1e9)
        assert not b.expired
        assert b.remaining_s == math.inf

    def test_clamp_is_identity(self):
        b = DeadlineBudget(None, clock=FakeClock())
        assert b.clamp(123.0) == 123.0
        assert b.clamp(0.0) == 0.0


class TestLimited:
    def test_counts_down_and_expires(self):
        clock = FakeClock()
        b = DeadlineBudget(100.0, clock=clock)
        assert not b.unlimited
        assert b.remaining_s == pytest.approx(0.1)
        clock.advance(0.06)
        assert b.remaining_s == pytest.approx(0.04)
        assert not b.expired
        clock.advance(0.05)
        assert b.expired
        assert b.remaining_s == 0.0  # floored, never negative

    def test_elapsed_tracks_the_clock(self):
        clock = FakeClock(5.0)
        b = DeadlineBudget(50.0, clock=clock)
        clock.advance(0.02)
        assert b.elapsed_s == pytest.approx(0.02)

    def test_clamp_shortens_to_remaining(self):
        clock = FakeClock()
        b = DeadlineBudget(100.0, clock=clock)
        assert b.clamp(1.0) == pytest.approx(0.1)
        assert b.clamp(0.05) == pytest.approx(0.05)
        clock.advance(0.2)
        assert b.clamp(1.0) == 0.0

    def test_each_budget_starts_fresh(self):
        """A budget is per-frame: a late construction does not inherit
        an earlier frame's elapsed time."""
        clock = FakeClock()
        DeadlineBudget(10.0, clock=clock)
        clock.advance(1.0)
        b2 = DeadlineBudget(10.0, clock=clock)
        assert not b2.expired


class TestValidation:
    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_deadline_rejected(self, bad):
        with pytest.raises(ValueError, match="deadline_ms"):
            DeadlineBudget(bad)

    def test_negative_clamp_rejected(self):
        with pytest.raises(ValueError, match="delay_s"):
            DeadlineBudget(10.0, clock=FakeClock()).clamp(-0.1)

    def test_repr_mentions_state(self):
        assert "unlimited" in repr(DeadlineBudget(None, clock=FakeClock()))
        assert "remaining" in repr(DeadlineBudget(10.0, clock=FakeClock()))
