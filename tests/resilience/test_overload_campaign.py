"""Acceptance: the seeded overload + fault campaign from the issue.

n=64, 4 workers, 2 injected faults, arrivals at twice the one-frame-
per-slot service capacity.  The campaign must finish with zero
unhandled exceptions, account for every generated request in exactly
one of delivered / recovered / shed / lost, and keep admitted-frame
p95 serve latency within the deadline.
"""

import pytest

from repro import NetworkConfig
from repro.core.arrivals import QueueingSimulator, poisson_arrivals
from repro.faults import FaultPlan, RetryPolicy
from repro.obs import MetricsObserver
from repro.resilience import AdmissionPolicy

N = 64
SLOTS = 64
WORKERS = 4
FAULTS = 2
ARRIVAL_RATE = 2.0  # 2x the one-frame-per-slot capacity
DEADLINE_MS = 250.0
SEED = 2026


@pytest.fixture(scope="module")
def campaign():
    plan = FaultPlan.random(N, faults=FAULTS, seed=SEED)
    metrics = MetricsObserver()
    cfg = NetworkConfig(
        N,
        engine="fast",
        workers=WORKERS,
        fault_plan=plan,
        observer=metrics,
        admission=AdmissionPolicy(
            rate=1.5, burst=8.0, soft_watermark=16.0, hard_watermark=32.0
        ),
        deadline_ms=DEADLINE_MS,
    )
    sim = QueueingSimulator(cfg, retry_policy=RetryPolicy(max_retries=2))
    arrivals = poisson_arrivals(
        N,
        rate=ARRIVAL_RATE,
        slots=SLOTS,
        seed=SEED + 1,
        high_priority_fraction=0.25,
    )
    try:
        report = sim.run(arrivals)  # any unhandled exception fails here
    finally:
        sim.close()
    return arrivals, report, metrics


class TestAcceptanceCampaign:
    def test_overload_is_real(self, campaign):
        arrivals, report, _ = campaign
        assert len(arrivals) > SLOTS  # offered load above capacity
        assert report.shed > 0  # the gate actually engaged

    def test_every_request_accounted_exactly_once(self, campaign):
        arrivals, report, _ = campaign
        delivered = report.served - report.recovered
        lost = report.abandoned
        accounted = delivered + report.recovered + report.shed + lost
        assert accounted == len(arrivals)

    def test_admitted_p95_latency_respects_the_deadline(self, campaign):
        _, report, _ = campaign
        assert report.serve_ms  # frames were actually served
        assert report.p95_serve_ms <= DEADLINE_MS

    def test_campaign_is_deterministic_in_outcome_counts(self, campaign):
        """Re-running the same seeds reproduces the accounting exactly
        (serve_ms is wall clock and may differ)."""
        arrivals, report, _ = campaign
        plan = FaultPlan.random(N, faults=FAULTS, seed=SEED)
        cfg = NetworkConfig(
            N,
            engine="fast",
            workers=WORKERS,
            fault_plan=plan,
            admission=AdmissionPolicy(
                rate=1.5, burst=8.0, soft_watermark=16.0, hard_watermark=32.0
            ),
            deadline_ms=DEADLINE_MS,
        )
        sim = QueueingSimulator(cfg, retry_policy=RetryPolicy(max_retries=2))
        try:
            again = sim.run(
                poisson_arrivals(
                    N,
                    rate=ARRIVAL_RATE,
                    slots=SLOTS,
                    seed=SEED + 1,
                    high_priority_fraction=0.25,
                )
            )
        finally:
            sim.close()
        assert again.served == report.served
        assert again.shed == report.shed
        assert again.recovered == report.recovered
        assert again.abandoned == report.abandoned
        assert again.slots_run == report.slots_run

    def test_resilience_metrics_were_emitted(self, campaign):
        _, report, metrics = campaign
        text = metrics.registry.to_prometheus_text()
        assert "repro_resilience_admitted_total" in text
        assert "repro_resilience_shed_total" in text


class TestOverloadCli:
    def test_cli_overload_campaign(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "chaos",
                "--overload",
                "--n", "64",
                "--frames", "64",
                "--faults", "2",
                "--arrival-rate", "2.0",
                "--deadline-ms", "250",
                "--seed", "2026",
            ]
        )
        # 0 (all admitted requests eventually served) or 3 (losses) —
        # never a crash, never a usage error.
        assert rc in (0, 3)
        out = capsys.readouterr().out
        assert "overload campaign: n=64" in out
        assert "accounted (complete)" in out
        assert "shed at admission" in out

    def test_cli_overload_bad_rate_is_usage_error(self, capsys):
        from repro.cli import main

        rc = main(
            ["chaos", "--overload", "--n", "16", "--arrival-rate", "-1"]
        )
        assert rc == 2
