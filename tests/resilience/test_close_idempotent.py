"""Regression: double close() is safe at every layer.

RollingRestart drains close an already-closed fabric (the replica was
killed, then cycled); that second close must not re-run snapshot
auto-persistence — overwriting the file with post-drain state — or
raise.  ``BRSMN.close`` documents idempotency; this pins it.
"""

import json
import os
import random

from repro import BRSMN, MulticastFabric, NetworkConfig

from conftest import make_random_assignment


def frames(n=16, count=8, seed=0):
    rng = random.Random(seed)
    return [make_random_assignment(n, rng) for _ in range(count)]


class TestFabricDoubleClose:
    def test_double_close_does_not_repersist_snapshot(self, tmp_path):
        path = tmp_path / "snap.json"
        fabric = MulticastFabric(
            NetworkConfig(16, engine="fast", snapshot_path=str(path))
        )
        for a in frames():
            fabric.submit(a)
        fabric.close()
        first = path.read_bytes()
        stamp = os.stat(path).st_mtime_ns
        fabric.close()  # must not rewrite (or raise)
        assert path.read_bytes() == first
        assert os.stat(path).st_mtime_ns == stamp

    def test_submit_after_close_rearms_persistence(self, tmp_path):
        """A closed fabric transparently restarts on submit; the next
        close must persist the newly-learned state."""
        path = tmp_path / "snap.json"
        fabric = MulticastFabric(
            NetworkConfig(16, engine="fast", snapshot_path=str(path))
        )
        for a in frames(seed=1, count=3):
            fabric.submit(a)
        fabric.close()
        before = len(json.loads(path.read_text())["assignments"])
        for a in frames(seed=2, count=3):
            fabric.submit(a)
        fabric.close()
        after = len(json.loads(path.read_text())["assignments"])
        assert after > before

    def test_double_close_without_snapshot(self):
        fabric = MulticastFabric(NetworkConfig(16, engine="fast", workers=2))
        for a in frames():
            fabric.submit(a)
        fabric.close()
        fabric.close()

    def test_double_close_with_standby_plane(self):
        from repro.faults import FaultPlan

        fabric = MulticastFabric(
            NetworkConfig(
                16,
                engine="fast",
                fault_plan=FaultPlan.random(16, faults=1, seed=1),
            )
        )
        for a in frames():
            fabric.submit(a)
        fabric.close()
        fabric.close()


class TestBRSMNDoubleClose:
    def test_plain(self):
        net = BRSMN(NetworkConfig(16, engine="fast"))
        net.close()
        net.close()

    def test_parallel(self):
        net = BRSMN(NetworkConfig(16, engine="fast", workers=2))
        net.route(frames(count=1)[0])
        net.close()
        net.close()

    def test_compile_ahead(self):
        net = BRSMN(
            NetworkConfig(16, engine="fast", workers=2, compile_ahead=2)
        )
        for a in frames(count=4):
            net.prefetch(a)
            net.route(a)
        net.close()
        net.close()
