"""FabricSnapshot: warm-restart round trips for plans, health, breaker."""

import random

import pytest

from conftest import make_random_assignment
from repro import (
    BreakerPolicy,
    BreakerState,
    FabricSnapshot,
    MulticastFabric,
    NetworkConfig,
)
from repro.faults import FaultPlan
from repro.faults.health import PlaneState


def _frames(n, count, seed=0):
    rng = random.Random(seed)
    return [make_random_assignment(n, rng) for _ in range(count)]


class TestPlanCacheWarmth:
    def test_restore_warms_the_plan_cache(self):
        cfg = NetworkConfig(16, engine="fast")
        fab = MulticastFabric(cfg)
        frames = _frames(16, 6, seed=1)
        fab.run(frames)
        snap = fab.snapshot()
        assert snap.n == 16
        assert len(snap.assignments) == 6

        fab2 = MulticastFabric(cfg)
        warmed = fab2.restore(snap)
        assert warmed == 6
        # The warmed cache serves the same frames without a compile.
        fab2.run(frames)
        assert fab2.stats.plan_cache_misses == 0
        assert fab2.stats.plan_cache_hits > 0
        fab.close()
        fab2.close()

    def test_restored_deliveries_match(self):
        cfg = NetworkConfig(16, engine="fast")
        fab = MulticastFabric(cfg)
        frames = _frames(16, 4, seed=2)
        originals = [fab.submit(f) for f in frames]
        snap = fab.snapshot()
        fab2 = MulticastFabric(cfg)
        fab2.restore(snap)
        for frame, original in zip(frames, originals):
            again = fab2.submit(frame)
            assert [
                None if m is None else (m.source, m.payload)
                for m in again.outputs
            ] == [
                None if m is None else (m.source, m.payload)
                for m in original.outputs
            ]
        fab.close()
        fab2.close()

    def test_reference_engine_snapshots_are_empty_but_valid(self):
        cfg = NetworkConfig(8, engine="reference")
        fab = MulticastFabric(cfg)
        fab.run(_frames(8, 3, seed=3))
        snap = fab.snapshot()
        assert snap.assignments == []
        fab2 = MulticastFabric(cfg)
        assert fab2.restore(snap) == 0


class TestHealthAndBreaker:
    def _faulted_config(self):
        plan = FaultPlan.random(16, faults=4, seed=7)
        return NetworkConfig(
            16,
            engine="fast",
            fault_plan=plan,
            breaker=BreakerPolicy(
                failure_threshold=2, open_frames=3, half_open_probes=1
            ),
        )

    def test_quarantine_and_breaker_survive_restart(self):
        cfg = self._faulted_config()
        fab = MulticastFabric(cfg, strict=False)
        for f in _frames(16, 40, seed=4):
            fab.submit(f)
        assert fab.stats.quarantines > 0
        snap = fab.snapshot()
        assert snap.health is not None and snap.breaker is not None

        fab2 = MulticastFabric(cfg, strict=False)
        assert fab2.health.state is PlaneState.HEALTHY
        fab2.restore(snap)
        assert fab2.health.state is fab.health.state
        assert fab2.breaker.state is fab.breaker.state
        assert fab2.breaker.opens == fab.breaker.opens
        fab.close()
        fab2.close()

    def test_breakerless_fabric_ignores_breaker_state(self):
        plan = FaultPlan.random(16, faults=2, seed=1)
        cfg = NetworkConfig(16, engine="fast", fault_plan=plan)
        snap = FabricSnapshot(
            n=16, breaker={"state": "open"}, health=None
        )
        fab = MulticastFabric(cfg, strict=False)
        fab.restore(snap)  # no breaker attribute to restore into
        assert fab.breaker is None
        fab.close()


class TestJsonFormat:
    def test_round_trip_through_json_and_disk(self, tmp_path):
        cfg = NetworkConfig(16, engine="fast")
        fab = MulticastFabric(cfg)
        fab.run(_frames(16, 3, seed=5))
        snap = fab.snapshot()

        again = FabricSnapshot.from_json(snap.to_json())
        assert again.n == snap.n
        assert again.assignments == snap.assignments

        path = tmp_path / "fabric.json"
        snap.save(str(path))
        loaded = FabricSnapshot.load(str(path))
        assert loaded.assignments == snap.assignments
        fab.close()

    def test_wrong_kind_and_version_rejected(self):
        with pytest.raises(ValueError, match="fabric_snapshot"):
            FabricSnapshot.from_json('{"kind": "assignment", "n": 8}')
        with pytest.raises(ValueError, match="version"):
            FabricSnapshot.from_json(
                '{"kind": "fabric_snapshot", "version": 99, "n": 8}'
            )

    def test_size_mismatch_refused(self):
        snap = FabricSnapshot(n=32)
        fab = MulticastFabric(NetworkConfig(16, engine="fast"))
        with pytest.raises(ValueError, match="n=32"):
            fab.restore(snap)
        fab.close()

    def test_restore_recompiles_under_the_new_fault_plan(self):
        """Plans are recompiled by the restoring fabric's own compiler,
        so a different fault plan yields that plan's (different)
        behaviour, not stale healthy-plane plans."""
        cfg = NetworkConfig(16, engine="fast")
        fab = MulticastFabric(cfg)
        frames = _frames(16, 2, seed=6)
        fab.run(frames)
        snap = fab.snapshot()

        faulted = NetworkConfig(
            16, engine="fast", fault_plan=FaultPlan.random(16, faults=3, seed=2)
        )
        fab2 = MulticastFabric(faulted, strict=False)
        warmed = fab2.restore(snap)
        assert warmed == len(snap.assignments)
        # The warmed fabric still routes through its healing layer.
        result = fab2.submit(frames[0])
        assert hasattr(result, "outcomes")
        fab.close()
        fab2.close()


class TestSnapshotPathAutoPersistence:
    """``NetworkConfig(snapshot_path=...)``: close() persists, the next
    constructor warm-restores — no explicit snapshot calls."""

    def test_close_writes_and_reopen_restores(self, tmp_path):
        path = tmp_path / "state" / "fabric.json"
        cfg = NetworkConfig(16, engine="fast", snapshot_path=str(path))
        frames = _frames(16, 5, seed=3)

        fab = MulticastFabric(cfg)
        fab.run(frames)
        fab.close()
        assert path.exists()
        assert FabricSnapshot.load(str(path)).n == 16

        fab2 = MulticastFabric(cfg)
        try:
            fab2.run(frames)
            assert fab2.stats.plan_cache_misses == 0
            assert fab2.stats.plan_cache_hits > 0
        finally:
            fab2.close()

    def test_missing_file_starts_cold(self, tmp_path):
        cfg = NetworkConfig(
            16, engine="fast", snapshot_path=str(tmp_path / "absent.json")
        )
        fab = MulticastFabric(cfg)
        try:
            fab.run(_frames(16, 2, seed=4))
            assert fab.stats.plan_cache_misses > 0
        finally:
            fab.close()

    def test_non_string_path_rejected_by_name(self):
        with pytest.raises(ValueError, match="snapshot_path"):
            NetworkConfig(16, snapshot_path=7)
