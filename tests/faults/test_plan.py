"""FaultPlan / Fault model: validation, determinism, fingerprints."""

import pytest

from repro.faults import Fault, FaultKind, FaultPlan


class TestFaultValidation:
    def test_kind_coerced_from_string(self):
        f = Fault(kind="dead_switch", level=1, index=0)
        assert f.kind is FaultKind.DEAD_SWITCH

    def test_positions(self):
        assert Fault(kind="stuck_at", level=1, index=3).positions == (6, 7)

    def test_bad_level(self):
        with pytest.raises(ValueError, match="level"):
            Fault(kind="stuck_at", level=0, index=0)

    def test_bad_stuck_setting(self):
        with pytest.raises(ValueError, match="stuck_setting"):
            Fault(kind="stuck_at", level=1, index=0, stuck_setting=2)

    def test_bad_drop_rate(self):
        with pytest.raises(ValueError, match="drop_rate"):
            Fault(kind="flaky_link", level=1, index=0, drop_rate=1.5)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Fault(kind="melted", level=1, index=0)


class TestFaultPlanValidation:
    def test_level_out_of_range_for_n(self):
        with pytest.raises(ValueError, match="out of range"):
            FaultPlan(8, (Fault(kind="stuck_at", level=4, index=0),))

    def test_index_out_of_range_for_n(self):
        with pytest.raises(ValueError, match="out of range"):
            FaultPlan(8, (Fault(kind="stuck_at", level=1, index=4),))

    def test_duplicate_cell_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(
                8,
                (
                    Fault(kind="stuck_at", level=2, index=1),
                    Fault(kind="dead_switch", level=2, index=1),
                ),
            )

    def test_faults_sorted_by_cell(self):
        plan = FaultPlan(
            8,
            (
                Fault(kind="stuck_at", level=3, index=0),
                Fault(kind="stuck_at", level=1, index=2),
            ),
        )
        assert [(f.level, f.index) for f in plan.faults] == [(1, 2), (3, 0)]
        assert plan.levels == (1, 3)
        assert len(plan.at_level(3)) == 1

    def test_empty(self):
        plan = FaultPlan.empty(16)
        assert plan.is_empty and plan.levels == ()


class TestSeededConstructors:
    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_single_switch_deterministic(self, n):
        a = FaultPlan.single_switch(n, seed=5)
        b = FaultPlan.single_switch(n, seed=5)
        assert a == b and len(a.faults) == 1

    def test_single_switch_pins_coordinates(self):
        plan = FaultPlan.single_switch(
            16, kind=FaultKind.DEAD_SWITCH, level=2, index=3
        )
        (f,) = plan.faults
        assert (f.kind, f.level, f.index) == (FaultKind.DEAD_SWITCH, 2, 3)

    def test_seeds_cover_the_fault_space(self):
        cells = {
            FaultPlan.single_switch(8, seed=s).faults[0].index
            for s in range(64)
        }
        assert len(cells) == 4  # all of 0..3 reached

    def test_random_counts_and_determinism(self):
        a = FaultPlan.random(16, faults=5, seed=9)
        assert len(a.faults) == 5
        assert a == FaultPlan.random(16, faults=5, seed=9)
        assert a != FaultPlan.random(16, faults=5, seed=10)

    def test_random_too_many_faults(self):
        with pytest.raises(ValueError, match="cannot place"):
            FaultPlan.random(8, faults=13)

    def test_random_kind_restriction(self):
        plan = FaultPlan.random(16, faults=4, seed=1, kinds=["flaky_link"])
        assert {f.kind for f in plan.faults} == {FaultKind.FLAKY_LINK}


class TestDeterministicDrops:
    def test_drop_mask_stable_per_attempt(self):
        f = Fault(kind="flaky_link", level=2, index=1, drop_rate=0.5, seed=3)
        masks = [f.drop_mask(a) for a in range(6)]
        assert masks == [f.drop_mask(a) for a in range(6)]
        assert any(m != masks[0] for m in masks)  # attempts re-draw

    def test_drop_rate_extremes(self):
        never = Fault(kind="flaky_link", level=1, index=0, drop_rate=0.0)
        always = Fault(kind="flaky_link", level=1, index=0, drop_rate=1.0)
        for attempt in range(4):
            assert never.drop_mask(attempt) == (False, False)
            assert always.drop_mask(attempt) == (True, True)


class TestFingerprint:
    def test_content_addressed(self):
        a = FaultPlan.single_switch(16, kind="stuck_at", level=2, index=1)
        b = FaultPlan(16, (Fault(kind="stuck_at", level=2, index=1, seed=0),))
        assert a.fingerprint() == b.fingerprint()

    def test_distinguishes_plans(self):
        a = FaultPlan.single_switch(16, kind="stuck_at", level=2, index=1)
        b = FaultPlan.single_switch(16, kind="dead_switch", level=2, index=1)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() != FaultPlan.empty(16).fingerprint()

    def test_golden_fingerprint(self):
        # Pinned: the fingerprint keys cached routing plans, so it must
        # be stable across processes and Python versions.
        plan = FaultPlan(8, (Fault(kind="dead_switch", level=1, index=2),))
        assert plan.fingerprint() == (
            "3db625fd83189f856a28819585d52b63cc3134838872cc23e481c021aeb11251"
        )
