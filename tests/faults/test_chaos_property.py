"""Acceptance property: heal fully, or degrade honestly.

For every seeded single-switch fault plan and random assignment, the
resilient route must either deliver every terminal (possibly after
reroute) or return a :class:`DegradedResult` naming *exactly* the
terminals that remained unreachable — verified independently against
the returned outputs, not the result's own bookkeeping.
"""

import random

import pytest

from repro.core import NetworkConfig, route_resilient
from repro.core.verification import verify_delivery
from repro.faults import FaultPlan

from conftest import make_random_assignment

SEEDS_PER_SIZE = 20


def _check_result(assignment, result):
    inverse = assignment.inverse_map()
    terminals = set(inverse)

    # Outcomes name every terminal exactly once, partitioned by status.
    assert set(result.outcomes) == terminals
    delivered, recovered, lost = (
        set(result.delivered), set(result.recovered), set(result.lost)
    )
    assert delivered | recovered | lost == terminals
    assert len(delivered) + len(recovered) + len(lost) == len(terminals)

    # Independent ground truth from the outputs the caller receives:
    # the lost set is exactly the terminals without a correct delivery.
    actually_failed = {
        o
        for o in terminals
        if result.outputs[o] is None or result.outputs[o].source != inverse[o]
    }
    assert lost == actually_failed

    # Nothing spurious outside the assignment's terminals.
    for o in range(assignment.n):
        if o not in terminals:
            assert result.outputs[o] is None

    # The attached verification report agrees with the honest loss.
    report = verify_delivery(assignment, result.outputs)
    assert report.ok == result.ok
    assert result.verification.violations == report.violations

    if result.ok:
        assert not lost and result.verification.ok
    else:
        assert lost and result.degraded


@pytest.mark.parametrize("n", [8, 16, 32])
@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_single_switch_chaos_property(n, engine):
    for seed in range(SEEDS_PER_SIZE):
        plan = FaultPlan.single_switch(n, seed=seed)
        assignment = make_random_assignment(n, random.Random(7000 + seed))
        cfg = NetworkConfig(n, engine=engine, fault_plan=plan)
        result = route_resilient(cfg, assignment)
        _check_result(assignment, result)


@pytest.mark.parametrize("n", [8, 16, 32])
def test_multi_fault_chaos_property(n):
    """Same guarantee under plans with several simultaneous faults."""
    for seed in range(10):
        plan = FaultPlan.random(n, faults=3, seed=seed)
        assignment = make_random_assignment(n, random.Random(8000 + seed))
        cfg = NetworkConfig(n, engine="fast", fault_plan=plan)
        result = route_resilient(cfg, assignment)
        _check_result(assignment, result)


@pytest.mark.parametrize("n", [8, 16, 32])
def test_empty_plan_never_degrades(n):
    for seed in range(5):
        assignment = make_random_assignment(n, random.Random(seed))
        cfg = NetworkConfig(n, engine="fast", fault_plan=FaultPlan.empty(n))
        result = route_resilient(cfg, assignment)
        assert result.ok and not result.degraded and result.attempts == 1
        _check_result(assignment, result)
