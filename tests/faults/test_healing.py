"""The healing loop: detection, bounded retries, honest degradation."""

import random

import pytest

from repro.core import NetworkConfig, route_resilient
from repro.faults import (
    DegradedResult,
    FaultKind,
    FaultPlan,
    RetryPolicy,
    route_with_healing,
)
from repro.obs import Observer

from conftest import make_random_assignment


class _Recorder(Observer):
    def __init__(self):
        self.events = []

    def on_fault(self, event):
        self.events.append(event)


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(max_retries=4, base_delay_s=0.1, multiplier=2.0)
        assert [policy.delay(r) for r in (1, 2, 3)] == [0.1, 0.2, 0.4]

    def test_zero_base_means_no_sleeping(self):
        assert RetryPolicy().delay(3) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestHealthyPath:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_no_faults_single_pass(self, engine):
        n = 16
        assignment = make_random_assignment(n, random.Random(0))
        result = route_resilient(NetworkConfig(n, engine=engine), assignment)
        assert isinstance(result, DegradedResult)
        assert result.ok and not result.degraded
        assert result.attempts == 1
        assert result.recovered == () and result.lost == ()
        assert set(result.delivered) == set(assignment.used_outputs)
        assert result.verification is not None and result.verification.ok


class TestHealingOutcomes:
    def test_flaky_recovers_within_budget(self):
        # flaky plane 3 cell 0 with seed 0 drops the first pass for
        # terminals 0/1 and passes a retry (pinned by the seeded RNG).
        plan = FaultPlan.single_switch(
            16, kind=FaultKind.FLAKY_LINK, level=3, index=0
        )
        cfg = NetworkConfig(16, engine="fast", fault_plan=plan)
        result = route_resilient(
            cfg, {0: [0, 1, 2, 3], 5: [8, 9], 12: [12, 15]}
        )
        assert result.ok and result.degraded
        assert result.recovered == (0, 1)
        assert result.attempts == 2
        assert {o: out.status for o, out in result.outcomes.items()}[0] == (
            "recovered"
        )

    def test_dead_delivery_switch_is_honestly_lost(self):
        # Plane m faults pin terminals to the faulty cell: unreachable.
        n = 16
        plan = FaultPlan.single_switch(
            n, kind=FaultKind.DEAD_SWITCH, level=4, index=0
        )
        cfg = NetworkConfig(n, engine="reference", fault_plan=plan)
        result = route_resilient(cfg, {3: [0, 1, 2, 3]})
        assert not result.ok
        assert result.lost == (0, 1)
        assert result.attempts == 1 + RetryPolicy().max_retries
        assert sorted(result.verification.violations) != []
        # Scrubbed: no message on lost outputs, real ones elsewhere.
        assert result.outputs[0] is None and result.outputs[1] is None
        assert result.outputs[2] is not None

    def test_outcomes_partition_terminals(self):
        n = 16
        for seed in range(10):
            plan = FaultPlan.random(n, faults=2, seed=seed)
            assignment = make_random_assignment(n, random.Random(seed))
            cfg = NetworkConfig(n, engine="fast", fault_plan=plan)
            result = route_resilient(cfg, assignment)
            terminals = set(assignment.used_outputs)
            assert set(result.outcomes) == terminals
            parts = (
                set(result.delivered),
                set(result.recovered),
                set(result.lost),
            )
            assert set().union(*parts) == terminals
            assert sum(len(p) for p in parts) == len(terminals)

    def test_retry_budget_respected(self):
        n = 16
        plan = FaultPlan.single_switch(
            n, kind=FaultKind.DEAD_SWITCH, level=4, index=0
        )
        cfg = NetworkConfig(n, fault_plan=plan)
        result = route_resilient(
            cfg, {3: [0, 1]}, policy=RetryPolicy(max_retries=1)
        )
        assert result.attempts == 2
        assert result.lost == (0, 1)

    def test_zero_retries_detect_only(self):
        n = 16
        plan = FaultPlan.single_switch(
            n, kind=FaultKind.DEAD_SWITCH, level=4, index=0
        )
        cfg = NetworkConfig(n, fault_plan=plan)
        result = route_resilient(
            cfg, {3: [0, 1]}, policy=RetryPolicy(max_retries=0)
        )
        assert result.attempts == 1 and result.lost == (0, 1)


class TestEngineAgreementOnHealing:
    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_same_outcomes_both_engines(self, n):
        for seed in range(10):
            plan = FaultPlan.single_switch(n, seed=seed)
            assignment = make_random_assignment(n, random.Random(seed))
            results = [
                route_resilient(
                    NetworkConfig(n, engine=engine, fault_plan=plan),
                    assignment,
                )
                for engine in ("reference", "fast")
            ]
            ref, fast = results
            assert ref.delivered == fast.delivered, (n, seed)
            assert ref.recovered == fast.recovered, (n, seed)
            assert ref.lost == fast.lost, (n, seed)
            assert ref.attempts == fast.attempts, (n, seed)


class TestHealingEvents:
    def test_lifecycle_events_emitted(self):
        n = 16
        plan = FaultPlan.single_switch(
            n, kind=FaultKind.DEAD_SWITCH, level=4, index=0
        )
        rec = _Recorder()
        cfg = NetworkConfig(n, fault_plan=plan, observer=rec)
        result = route_resilient(cfg, {3: [0, 1, 2, 3]})
        actions = [e.action for e in rec.events]
        # One detected + retry pair per repair pass.
        assert actions.count("detected") == result.attempts - 1
        assert actions.count("retry") == result.attempts - 1
        assert "lost" in actions
        lost_event = next(e for e in rec.events if e.action == "lost")
        assert lost_event.terminals == (0, 1)

    def test_recovered_event_names_terminals(self):
        plan = FaultPlan.single_switch(
            16, kind=FaultKind.FLAKY_LINK, level=3, index=0
        )
        rec = _Recorder()
        cfg = NetworkConfig(16, engine="fast", fault_plan=plan, observer=rec)
        result = route_resilient(
            cfg, {0: [0, 1, 2, 3], 5: [8, 9], 12: [12, 15]}
        )
        assert result.recovered == (0, 1)
        recovered = [e for e in rec.events if e.action == "recovered"]
        assert recovered and recovered[-1].terminals == (0, 1)


class TestDirectLoopEntry:
    def test_route_with_healing_accepts_network(self):
        from repro.core import build_network

        n = 8
        plan = FaultPlan.single_switch(
            n, kind=FaultKind.FLAKY_LINK, level=1, index=0, drop_rate=1.0
        )
        net = build_network(NetworkConfig(n, fault_plan=plan))
        assignment = make_random_assignment(n, random.Random(2))
        result = route_with_healing(net, assignment)
        assert isinstance(result, DegradedResult)
        assert set(result.outcomes) == set(assignment.used_outputs)
