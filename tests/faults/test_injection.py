"""Cross-engine fault injection: reference and fast stay bit-identical.

The reference engine applies fault planes in-recursion, per switch; the
fast engine folds the same plan into its compiled gather plan.  These
tests pin the property everything else relies on: under any plan the
two engines deliver the same messages to the same outputs and report
the same fault hits.
"""

import random

import pytest

from repro.core import MulticastAssignment, NetworkConfig, build_network
from repro.faults import FaultKind, FaultPlan
from repro.obs import Observer

from conftest import make_random_assignment


def _payloads(n):
    return [f"p{i}" for i in range(n)]


def _asg(n, dests):
    return MulticastAssignment.from_dict(n, dests)


def _snapshot(result):
    """Delivered (output -> source, payload) map of a routing result."""
    return {
        o: (msg.source, msg.payload)
        for o, msg in enumerate(result.outputs)
        if msg is not None
    }


def _hits(result):
    """Fault hits as a comparable set (emission order is engine-specific)."""
    return {
        (h.fault.level, h.fault.index, h.fault.kind.value,
         tuple(sorted(h.outputs)))
        for h in result.fault_casualties
    }


def _route_both(n, plan, assignment, mode="selfrouting"):
    ref = build_network(NetworkConfig(n, engine="reference", fault_plan=plan))
    fast = build_network(NetworkConfig(n, engine="fast", fault_plan=plan))
    kwargs = dict(mode=mode, payloads=_payloads(n))
    return ref.route(assignment, **kwargs), fast.route(assignment, **kwargs)


class TestEnginesAgreeUnderFaults:
    @pytest.mark.parametrize("n", [8, 16, 32])
    @pytest.mark.parametrize("mode", ["selfrouting", "oracle"])
    def test_single_fault_identity(self, n, mode):
        for seed in range(25):
            plan = FaultPlan.single_switch(n, seed=seed)
            assignment = make_random_assignment(n, random.Random(1000 + seed))
            r, f = _route_both(n, plan, assignment, mode=mode)
            assert _snapshot(r) == _snapshot(f), (n, seed, mode)
            assert _hits(r) == _hits(f), (n, seed, mode)

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_multi_fault_identity(self, n):
        for seed in range(15):
            plan = FaultPlan.random(n, faults=3, seed=seed)
            assignment = make_random_assignment(n, random.Random(2000 + seed))
            r, f = _route_both(n, plan, assignment)
            assert _snapshot(r) == _snapshot(f), (n, seed)
            assert _hits(r) == _hits(f), (n, seed)

    @pytest.mark.parametrize("kind", list(FaultKind))
    def test_each_kind_identity(self, kind):
        n = 16
        for seed in range(10):
            plan = FaultPlan.single_switch(n, seed=seed, kind=kind)
            assignment = make_random_assignment(n, random.Random(3000 + seed))
            r, f = _route_both(n, plan, assignment)
            assert _snapshot(r) == _snapshot(f), (kind, seed)

    def test_batch_matches_single_frames(self):
        n = 16
        plan = FaultPlan.random(n, faults=2, seed=4)
        assignment = make_random_assignment(n, random.Random(4000))
        frames = 6
        matrix = [
            [f"f{f}p{i}" for i in range(n)] for f in range(frames)
        ]
        ref = build_network(
            NetworkConfig(n, engine="reference", fault_plan=plan)
        )
        fast = build_network(NetworkConfig(n, engine="fast", fault_plan=plan))
        batch_ref = ref.route_batch(assignment, matrix)
        batch_fast = fast.route_batch(assignment, matrix)
        assert list(batch_ref.delivery_src) == list(batch_fast.delivery_src)
        for f in range(frames):
            single = ref.route(assignment, payloads=matrix[f])
            expected = [
                msg.payload if msg is not None else None
                for msg in single.outputs
            ]
            assert list(batch_ref.payloads[f]) == expected, f
            assert list(batch_fast.payloads[f]) == expected, f
        assert _hits(batch_ref) == _hits(batch_fast)


class TestFaultSemantics:
    def test_stuck_parallel_is_silent(self):
        n = 16
        for seed in range(8):
            plan = FaultPlan(
                n,
                tuple(
                    f.__class__(**{**f.as_dict(), "stuck_setting": 0})
                    for f in FaultPlan.single_switch(
                        n, seed=seed, kind=FaultKind.STUCK_AT
                    ).faults
                ),
            )
            assignment = make_random_assignment(n, random.Random(seed))
            healthy = build_network(NetworkConfig(n)).route(
                assignment, payloads=_payloads(n)
            )
            r, f = _route_both(n, plan, assignment)
            assert _snapshot(r) == _snapshot(healthy)
            assert _snapshot(f) == _snapshot(healthy)

    def test_inner_stuck_crossed_self_heals(self):
        """Tag-driven routing below an inner plane absorbs the swap."""
        n = 16
        for seed in range(10):
            plan = FaultPlan.single_switch(
                n, seed=seed, kind=FaultKind.STUCK_AT, level=1 + seed % 3
            )
            assignment = make_random_assignment(n, random.Random(seed))
            healthy = build_network(NetworkConfig(n)).route(
                assignment, payloads=_payloads(n)
            )
            r, f = _route_both(n, plan, assignment)
            assert _snapshot(r) == _snapshot(healthy), seed
            assert _snapshot(f) == _snapshot(healthy), seed

    def test_dead_switch_loses_only_crossing_traffic(self):
        n = 8
        plan = FaultPlan.single_switch(
            n, kind=FaultKind.DEAD_SWITCH, level=3, index=0
        )
        # Outputs 0 and 1 sit behind the dead delivery cell.
        r, f = _route_both(n, plan, _asg(n, {0: [0, 1], 5: [4, 5]}))
        for result in (r, f):
            snap = _snapshot(result)
            assert set(snap) == {4, 5}
            assert _hits(result) == {(3, 0, "dead_switch", (0, 1))}

    def test_flaky_redraws_per_attempt(self):
        n = 8
        plan = FaultPlan.single_switch(
            n, kind=FaultKind.FLAKY_LINK, level=3, index=1, drop_rate=0.5
        )
        net = build_network(NetworkConfig(n, engine="fast", fault_plan=plan))
        outcomes = set()
        for attempt in range(8):
            net._injector.attempt = attempt
            result = net.route(_asg(n, {1: [2, 3]}), payloads=_payloads(n))
            outcomes.add(frozenset(_snapshot(result)))
        net._injector.attempt = 0
        assert len(outcomes) > 1  # different coins on different attempts


class TestEmptyPlanIsIdentity:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_no_injector_attached(self, engine):
        net = build_network(
            NetworkConfig(16, engine=engine, fault_plan=FaultPlan.empty(16))
        )
        assert net._injector is None and net.fault_plan is None

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_bit_identical_to_no_plan(self, engine):
        n = 16
        for seed in range(10):
            assignment = make_random_assignment(n, random.Random(seed))
            plain = build_network(NetworkConfig(n, engine=engine)).route(
                assignment, payloads=_payloads(n)
            )
            empty = build_network(
                NetworkConfig(
                    n, engine=engine, fault_plan=FaultPlan.empty(n)
                )
            ).route(assignment, payloads=_payloads(n))
            assert _snapshot(plain) == _snapshot(empty)
            assert empty.fault_casualties == []


class _Recorder(Observer):
    def __init__(self):
        self.events = []

    def on_fault(self, event):
        self.events.append(event)


class TestInjectedEvents:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_injected_event_per_hit(self, engine):
        n = 8
        plan = FaultPlan.single_switch(
            n, kind=FaultKind.DEAD_SWITCH, level=3, index=0
        )
        rec = _Recorder()
        net = build_network(
            NetworkConfig(n, engine=engine, fault_plan=plan, observer=rec)
        )
        net.route(_asg(n, {0: [0, 1]}), payloads=_payloads(n))
        injected = [e for e in rec.events if e.action == "injected"]
        assert len(injected) == 1
        (event,) = injected
        assert event.kind == "dead_switch"
        assert (event.level, event.index) == (3, 0)
        assert event.terminals == (0, 1)

    def test_no_events_when_traffic_misses_the_fault(self):
        n = 8
        plan = FaultPlan.single_switch(
            n, kind=FaultKind.DEAD_SWITCH, level=3, index=3
        )
        rec = _Recorder()
        net = build_network(
            NetworkConfig(n, engine="fast", fault_plan=plan, observer=rec)
        )
        net.route(_asg(n, {0: [0, 1]}), payloads=_payloads(n))
        assert [e for e in rec.events if e.action == "injected"] == []


class TestPlanCacheKeying:
    def test_faulty_and_healthy_plans_do_not_collide(self):
        n = 16
        assignment = make_random_assignment(n, random.Random(0))
        plan = FaultPlan.single_switch(n, kind="dead_switch", level=4, index=0)
        faulty = build_network(NetworkConfig(n, engine="fast", fault_plan=plan))
        healthy = build_network(NetworkConfig(n, engine="fast"))
        faulty.route(assignment, payloads=_payloads(n))
        healthy.route(assignment, payloads=_payloads(n))
        keys_faulty = set(faulty.plan_cache._plans)
        keys_healthy = set(healthy.plan_cache._plans)
        assert keys_faulty and keys_healthy
        assert keys_faulty.isdisjoint(keys_healthy)
        for key in keys_faulty:
            assert key.endswith("@" + plan.fingerprint())
