"""Plane health: the quarantine state machine, fabric and queueing."""

import random

import pytest

from repro.core import (
    MulticastFabric,
    NetworkConfig,
    QueueingSimulator,
    RoutingResult,
)
from repro.core.arrivals import poisson_arrivals
from repro.faults import (
    DegradedResult,
    FaultKind,
    FaultPlan,
    HealthTracker,
    PlaneState,
    RetryPolicy,
)
from repro.obs import Observer
from repro.workloads import random_multicast


class TestHealthTracker:
    def test_quarantine_after_consecutive_failures(self):
        h = HealthTracker(fail_threshold=3)
        assert h.record(True) is PlaneState.HEALTHY
        assert h.record(True) is PlaneState.HEALTHY
        assert h.record(True) is PlaneState.QUARANTINED
        assert h.quarantines == 1 and not h.use_primary

    def test_clean_frame_resets_the_streak(self):
        h = HealthTracker(fail_threshold=2)
        h.record(True)
        h.record(False)
        h.record(True)
        assert h.state is PlaneState.HEALTHY

    def test_full_cycle_to_readmission(self):
        h = HealthTracker(
            fail_threshold=1, quarantine_frames=2, probe_frames=2
        )
        h.record(True)
        assert h.state is PlaneState.QUARANTINED
        h.record(False)
        assert h.state is PlaneState.QUARANTINED  # draining
        h.record(False)
        assert h.state is PlaneState.PROBATION
        h.record(False)
        assert h.state is PlaneState.PROBATION
        h.record(False)
        assert h.state is PlaneState.HEALTHY
        assert h.readmissions == 1

    def test_degraded_probe_requarantines(self):
        h = HealthTracker(
            fail_threshold=1, quarantine_frames=0, probe_frames=2
        )
        h.record(True)
        h.record(False)  # drains instantly -> probation
        assert h.state is PlaneState.PROBATION
        h.record(True)
        assert h.state is PlaneState.QUARANTINED
        assert h.quarantines == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthTracker(fail_threshold=0)
        with pytest.raises(ValueError):
            HealthTracker(probe_frames=0)


class _Recorder(Observer):
    def __init__(self):
        self.events = []

    def on_fault(self, event):
        self.events.append(event)


def _degrading_plan(n=16):
    """A plan that reliably degrades broadcast-heavy frames."""
    return FaultPlan.single_switch(
        n, kind=FaultKind.DEAD_SWITCH, level=4, index=0
    )


class TestFabricHealth:
    def test_returns_degraded_results_on_primary(self):
        n = 16
        fabric = MulticastFabric(
            NetworkConfig(n, fault_plan=_degrading_plan(n))
        )
        result = fabric.submit(random_multicast(n, seed=0))
        assert isinstance(result, DegradedResult)
        assert fabric.stats.frames == 1

    def test_quarantine_then_standby_then_readmit(self):
        n = 16
        rec = _Recorder()
        fabric = MulticastFabric(
            NetworkConfig(n, fault_plan=_degrading_plan(n), observer=rec),
            health=HealthTracker(
                fail_threshold=2, quarantine_frames=3, probe_frames=10
            ),
        )
        # Frames that always cross the dead delivery cell (outputs 0/1).
        frame = random_multicast(n, seed=1)
        while 0 not in frame.used_outputs or 1 not in frame.used_outputs:
            frame = random_multicast(n, seed=random.randrange(10_000))
        for _ in range(2):
            fabric.submit(frame)
        assert fabric.health.state is PlaneState.QUARANTINED
        assert fabric.stats.quarantines == 1
        # While quarantined, traffic drains on the fault-free standby:
        # served frames come back as plain verified RoutingResults.
        standby_result = fabric.submit(frame)
        assert isinstance(standby_result, RoutingResult)
        assert fabric.stats.standby_frames == 1
        fabric.submit(frame)
        fabric.submit(frame)
        assert fabric.health.state is PlaneState.PROBATION
        actions = [e.action for e in rec.events]
        assert "quarantined" in actions and "probation" in actions

    def test_fault_losses_never_raise_even_strict(self):
        n = 16
        fabric = MulticastFabric(
            NetworkConfig(n, fault_plan=_degrading_plan(n)), strict=True
        )
        frame = random_multicast(n, seed=1)
        while 0 not in frame.used_outputs:
            frame = random_multicast(n, seed=random.randrange(10_000))
        result = fabric.submit(frame)  # loses terminals, must not raise
        assert result.lost
        assert fabric.stats.lost_frames == 1
        assert fabric.stats.lost_terminals == len(result.lost)
        assert fabric.stats.failures  # accounted instead

    def test_stats_accumulate_recovered(self):
        n = 32
        plan = FaultPlan.random(n, faults=2, seed=4)  # includes a flaky
        fabric = MulticastFabric(
            NetworkConfig(n, fault_plan=plan),
            retry_policy=RetryPolicy(max_retries=3),
        )
        fabric.run(random_multicast(n, seed=i) for i in range(40))
        s = fabric.stats
        assert s.frames == 40
        assert s.degraded_frames > 0
        assert s.recovered_terminals > 0
        assert s.standby_frames > 0

    def test_reset_rebuilds_health(self):
        n = 16
        fabric = MulticastFabric(
            NetworkConfig(n, fault_plan=_degrading_plan(n)),
            health=HealthTracker(fail_threshold=1),
        )
        frame = random_multicast(n, seed=1)
        while 0 not in frame.used_outputs:
            frame = random_multicast(n, seed=random.randrange(10_000))
        fabric.submit(frame)
        assert fabric.health.state is PlaneState.QUARANTINED
        fabric.reset()
        assert fabric.health.state is PlaneState.HEALTHY
        assert fabric.health.fail_threshold == 1
        assert fabric.stats.frames == 0

    def test_no_fault_plan_means_no_health_machinery(self):
        fabric = MulticastFabric(NetworkConfig(16))
        assert fabric.health is None and fabric.standby is None
        result = fabric.submit(random_multicast(16, seed=0))
        assert isinstance(result, RoutingResult)


class TestQueueingUnderFaults:
    def test_served_plus_abandoned_accounts_everything(self):
        n = 16
        plan = _degrading_plan(n)
        sim = QueueingSimulator(
            NetworkConfig(n, fault_plan=plan), max_requeues=2
        )
        arrivals = poisson_arrivals(n, rate=1.5, slots=30, seed=3)
        report = sim.run(arrivals)
        assert report.served + report.abandoned == len(arrivals)
        # The dead delivery cell guarantees some losses and requeues.
        assert report.requeued > 0
        assert report.abandoned > 0

    def test_zero_requeues_abandons_immediately(self):
        n = 16
        sim = QueueingSimulator(
            NetworkConfig(n, fault_plan=_degrading_plan(n)), max_requeues=0
        )
        arrivals = poisson_arrivals(n, rate=1.0, slots=20, seed=5)
        report = sim.run(arrivals)
        assert report.requeued == 0
        assert report.served + report.abandoned == len(arrivals)

    def test_healthy_config_ignores_fault_kwargs(self):
        n = 8
        sim = QueueingSimulator(NetworkConfig(n), max_requeues=5)
        arrivals = poisson_arrivals(n, rate=1.0, slots=10, seed=1)
        report = sim.run(arrivals)
        assert report.served == len(arrivals)
        assert report.requeued == 0 and report.abandoned == 0

    def test_max_requeues_validation(self):
        with pytest.raises(ValueError, match="max_requeues"):
            QueueingSimulator(NetworkConfig(8), max_requeues=-1)


class TestConfigValidation:
    def test_plan_size_must_match(self):
        with pytest.raises(ValueError, match="fault_plan is for"):
            NetworkConfig(16, fault_plan=FaultPlan.empty(8))

    def test_feedback_rejects_fault_plan(self):
        with pytest.raises(ValueError, match="unrolled"):
            NetworkConfig(
                16,
                implementation="feedback",
                fault_plan=_degrading_plan(16),
            )
