"""Tests for the cost-crossover finder."""

import pytest

from repro.analysis.crossover import crossover_size
from repro.baselines.crossbar import CrossbarMulticast
from repro.core.brsmn import BRSMN
from repro.core.feedback import FeedbackBRSMN


class TestCrossoverSize:
    def test_crossbar_vs_brsmn(self):
        """The motivating crossover: n^2 loses to n log^2 n from n=32."""
        n = crossover_size(
            lambda n: CrossbarMulticast(n).switch_count,
            lambda n: BRSMN(n).switch_count,
        )
        assert n == 32
        assert CrossbarMulticast(n).switch_count > BRSMN(n).switch_count
        # just below the crossover, the crossbar is (still) cheaper
        assert CrossbarMulticast(16).switch_count <= BRSMN(16).switch_count

    def test_crossbar_vs_feedback_not_later(self):
        """The O(n log n) feedback design wins no later than the
        unrolled network does."""
        unrolled = crossover_size(
            lambda n: CrossbarMulticast(n).switch_count,
            lambda n: BRSMN(n).switch_count,
        )
        feedback = crossover_size(
            lambda n: CrossbarMulticast(n).switch_count,
            lambda n: FeedbackBRSMN(n).switch_count,
        )
        assert feedback <= unrolled

    def test_final_crossover_skips_degenerate_dip(self):
        """BRSMN is cheaper at n=2 but dearer at 4..16; the finder must
        report the *stable* crossover (32), not the n=2 blip."""
        n = crossover_size(
            lambda n: CrossbarMulticast(n).switch_count,
            lambda n: BRSMN(n).switch_count,
        )
        assert n > 2

    def test_never_crossing_returns_none(self):
        assert crossover_size(lambda n: 1.0, lambda n: 2.0, max_m=10) is None

    def test_synthetic_known_crossover(self):
        # n^2 vs 100 n: equal at n = 100; first power of two beyond: 128
        assert crossover_size(lambda n: n**2, lambda n: 100 * n) == 128

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            crossover_size(lambda n: n, lambda n: n, max_m=0)
