"""Tests for text-table formatting."""

import pytest

from repro.analysis.tables import format_kv, format_table


class TestFormatTable:
    def test_basic_shape(self):
        text = format_table(["name", "n"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}

    def test_column_alignment(self):
        text = format_table(["x", "y"], [["long-value", 1]])
        header, rule, row = text.splitlines()
        assert header.index("y") == row.index("1")

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159], [12345.6], [0.0001]])
        assert "3.142" in text
        assert "1.23e+04" in text or "12345" in text.replace(",", "")
        assert "0.0001" in text

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestFormatKv:
    def test_alignment(self):
        text = format_kv({"a": 1, "long_key": 2})
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert format_kv({}) == ""
