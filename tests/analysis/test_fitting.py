"""Tests for growth-law fitting."""

import math

import pytest

from repro.analysis.fitting import (
    GROWTH_MODELS,
    best_model,
    doubling_ratios,
    fit_constant,
    loglog_slope,
)


class TestFitConstant:
    def test_exact_fit(self):
        ns = [8, 16, 32, 64]
        ys = [3.0 * n * math.log2(n) for n in ns]
        c, resid = fit_constant(ns, ys, GROWTH_MODELS["n log n"])
        assert abs(c - 3.0) < 1e-12
        assert resid < 1e-12

    def test_noisy_fit(self):
        ns = [8, 16, 32, 64, 128]
        ys = [2.0 * n * (1 + 0.01 * (-1) ** i) for i, n in enumerate(ns)]
        c, resid = fit_constant(ns, ys, GROWTH_MODELS["n"])
        assert abs(c - 2.0) < 0.05
        assert resid < 0.02

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_constant([], [], GROWTH_MODELS["n"])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_constant([2, 4], [1.0, -1.0], GROWTH_MODELS["n"])


class TestBestModel:
    def test_discriminates_polylog_factors(self):
        ns = [2**k for k in range(3, 14)]
        for name in ("n", "n log n", "n log^2 n", "n^2"):
            ys = [GROWTH_MODELS[name](n) * 7.0 for n in ns]
            got, c, resid = best_model(ns, ys)
            assert got == name
            assert abs(c - 7.0) < 1e-9

    def test_sublinear_laws(self):
        ns = [2**k for k in range(3, 14)]
        ys = [GROWTH_MODELS["log^2 n"](n) for n in ns]
        got, _c, _r = best_model(ns, ys)
        assert got == "log^2 n"


class TestLogLogSlope:
    def test_power_law_exact(self):
        ns = [2**k for k in range(3, 10)]
        assert abs(loglog_slope(ns, [n**2 for n in ns]) - 2.0) < 1e-9

    def test_polylog_between_degrees(self):
        ns = [2**k for k in range(3, 14)]
        slope = loglog_slope(ns, [n * math.log2(n) ** 2 for n in ns])
        assert 1.0 < slope < 2.0


class TestDoublingRatios:
    def test_nlogn_ratio_formula(self):
        ns = [64, 128]
        ys = [n * math.log2(n) for n in ns]
        r = doubling_ratios(ns, ys)[0]
        assert abs(r - 2 * 7 / 6) < 1e-12

    def test_discriminates_table2_rows(self):
        """At n=64->128 the n log n and n log^2 n rows differ by ~17%."""
        ns = [64, 128]
        r1 = doubling_ratios(ns, [n * math.log2(n) for n in ns])[0]
        r2 = doubling_ratios(ns, [n * math.log2(n) ** 2 for n in ns])[0]
        assert r2 / r1 > 1.15

    def test_requires_doublings(self):
        with pytest.raises(ValueError):
            doubling_ratios([8, 24], [1.0, 2.0])
