"""Tests for connection-tree extraction (the edge-disjoint-trees claim)."""

import networkx as nx
from hypothesis import given, settings

from repro.analysis.trees import extract_connection_trees
from repro.core.brsmn import BRSMN
from repro.core.feedback import FeedbackBRSMN
from repro.core.multicast import MulticastAssignment, paper_example_assignment

from conftest import assignments


class TestPaperExampleTrees:
    def test_trees_extracted_per_source(self):
        res = BRSMN(8).route(paper_example_assignment(), collect_trace=True)
        ct = extract_connection_trees(res.trace, 8)
        assert ct.ok, ct.violations
        assert set(ct.trees) == {0, 2, 3, 7}

    def test_fanouts_match_destination_sets(self):
        a = paper_example_assignment()
        res = BRSMN(8).route(a, collect_trace=True)
        ct = extract_connection_trees(res.trace, 8)
        for src in ct.trees:
            assert ct.fanout(src) == len(a[src])

    def test_trees_are_arborescences(self):
        res = BRSMN(8).route(paper_example_assignment(), collect_trace=True)
        ct = extract_connection_trees(res.trace, 8)
        for g in ct.trees.values():
            assert nx.is_arborescence(g)


class TestEdgeDisjointness:
    @settings(max_examples=100, deadline=None)
    @given(assignments(max_m=5))
    def test_random_assignments_edge_disjoint(self, a):
        """The paper's multicast-network definition, checked per link."""
        res = BRSMN(a.n).route(a, mode="selfrouting", collect_trace=True)
        ct = extract_connection_trees(res.trace, a.n)
        assert ct.ok, ct.violations
        for src in ct.trees:
            assert ct.fanout(src) == len(a[src])

    @settings(max_examples=40, deadline=None)
    @given(assignments(max_m=4))
    def test_feedback_network_edge_disjoint(self, a):
        res = FeedbackBRSMN(a.n).route(a, collect_trace=True)
        ct = extract_connection_trees(res.trace, a.n)
        assert ct.ok, ct.violations


class TestBroadcastTree:
    def test_broadcast_is_one_big_tree(self):
        n = 16
        res = BRSMN(n).route(
            MulticastAssignment.broadcast(n), collect_trace=True
        )
        ct = extract_connection_trees(res.trace, n)
        assert ct.ok
        assert list(ct.trees) == [0]
        assert ct.fanout(0) == n

    def test_unicast_tree_is_a_path(self):
        n = 8
        res = BRSMN(n).route(
            MulticastAssignment(8, [{5}, None, None, None, None, None, None, None]),
            collect_trace=True,
        )
        ct = extract_connection_trees(res.trace, n)
        g = ct.trees[0]
        # a unicast tree is a simple path: every node has out-degree <= 1
        assert all(g.out_degree(v) <= 1 for v in g)
        assert ct.fanout(0) == 1
