"""Tests for the one-call reproduction report."""

from repro.analysis.report import CheckResult, ReproductionReport, reproduction_report


class TestReproductionReport:
    def test_all_claims_pass(self):
        report = reproduction_report()
        failing = [c for c in report.checks if not c.passed]
        assert report.ok, failing

    def test_expected_claims_present(self):
        names = [c.name for c in reproduction_report().checks]
        assert "Fig.2 worked example" in names
        assert "Fig.9 tag sequences" in names
        assert "Table 1 encoding" in names
        assert any("n log^2 n" in n for n in names)
        assert len(names) >= 10

    def test_render_contains_verdict(self):
        text = reproduction_report().render()
        assert "ALL CLAIMS REPRODUCED" in text
        assert "PASS" in text

    def test_failed_check_changes_verdict(self):
        report = ReproductionReport(
            checks=[CheckResult("claim", False, "broken")]
        )
        assert not report.ok
        assert "SOME CLAIMS FAILED" in report.render()

    def test_crashing_check_reported_not_raised(self):
        from repro.analysis.report import _check

        result = _check("boom", lambda: 1 / 0)
        assert not result.passed
        assert "ZeroDivisionError" in result.detail
