"""Tests for the switch-activity profiler."""

from repro.analysis.activity import profile_trace, profile_workload
from repro.core.brsmn import BRSMN
from repro.core.multicast import MulticastAssignment, paper_example_assignment
from repro.rbn.switches import SwitchSetting
from repro.workloads.random_assignments import random_multicast, random_permutation


class TestProfileTrace:
    def test_paper_example_profile(self):
        res = BRSMN(8).route(paper_example_assignment(), collect_trace=True)
        p = profile_trace(res.trace)
        # the profile sees every replication: BSN alpha splits plus
        # final-switch broadcasts = total copies - active inputs = 8 - 4
        a = paper_example_assignment()
        assert p.broadcast_total == a.total_fanout - len(a.active_inputs)
        assert p.frames == 1

    def test_fractions_sum_to_one(self):
        res = BRSMN(16).route(
            random_multicast(16, seed=1), mode="selfrouting", collect_trace=True
        )
        p = profile_trace(res.trace)
        for size in p.counts:
            total = sum(
                p.fraction(size, s) for s in SwitchSetting
            )
            assert abs(total - 1.0) < 1e-12


class TestProfileWorkload:
    def test_permutations_never_broadcast(self):
        """Multicast machinery is pay-per-use: unicast traffic fires no
        broadcast switches anywhere."""
        frames = [random_permutation(16, seed=s) for s in range(5)]
        p = profile_workload(16, frames)
        assert p.broadcast_total == 0
        assert p.frames == 5

    def test_broadcast_heavy_fires_many(self):
        frames = [MulticastAssignment.broadcast(16)]
        p = profile_workload(16, frames)
        # a full broadcast replicates n-1 times in total (binary tree)
        assert p.broadcast_total == 16 - 1

    def test_switch_totals_match_structure(self):
        """Every physical switch application appears exactly once."""
        frames = [random_multicast(16, seed=2)]
        p = profile_workload(16, frames)
        # level 1 BSN(16): two RBN passes, each with merges of sizes
        # 2..16; level 2: two BSN(8) passes, ... final switches size 2.
        net = BRSMN(16)
        assert sum(p.total(size) for size in p.counts) == net.switch_count

    def test_rows_shape(self):
        frames = [random_multicast(16, seed=3)]
        rows = profile_workload(16, frames).rows()
        assert [r[0] for r in rows] == [2, 4, 8, 16]
        for r in rows:
            assert len(r) == 5
