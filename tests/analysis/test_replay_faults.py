"""Tests for trace replay and the stuck-switch fault study."""

import random

import pytest

from repro.analysis.faults import misplacement_rate, stuck_switch_study
from repro.analysis.replay import replay_pass
from repro.core.tags import Tag
from repro.errors import RoutingInvariantError
from repro.rbn.cells import cells_from_tags
from repro.rbn.quasisort import quasisort
from repro.rbn.scatter import scatter
from repro.rbn.switches import SwitchSetting
from repro.rbn.trace import Trace
from repro.viz.ascii import split_rbn_passes


def _record_quasisort(n, seed):
    rng = random.Random(seed)
    half = n // 2
    n0 = rng.randint(0, half)
    n1 = rng.randint(0, half)
    tags = [Tag.ZERO] * n0 + [Tag.ONE] * n1 + [Tag.EPS] * (n - n0 - n1)
    rng.shuffle(tags)
    trace = Trace()
    out = quasisort(cells_from_tags(tags), trace=trace, keep_dummies=True)
    return split_rbn_passes(trace, n)[0], out


class TestReplayFidelity:
    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_replay_reproduces_recorded_outputs(self, n):
        """Replaying the recorded settings gives the recorded frame."""
        records, expected = _record_quasisort(n, seed=n)
        replayed = replay_pass(records, n)
        assert [(c.tag, c.data) for c in replayed] == [
            (c.tag, c.data) for c in expected
        ]

    def test_replay_scatter_pass_with_broadcasts(self):
        """Broadcast stages replay exactly (alpha splits re-fire)."""
        tags = [Tag.ALPHA, Tag.EPS, Tag.ZERO, Tag.ONE, Tag.ALPHA, Tag.EPS, Tag.EPS, Tag.EPS]
        trace = Trace()
        out = scatter(cells_from_tags(tags), 0, trace=trace)
        records = split_rbn_passes(trace, 8)[0]
        replayed = replay_pass(records, 8)
        assert [(c.tag, c.data) for c in replayed] == [
            (c.tag, c.data) for c in out
        ]

    def test_incomplete_pass_rejected(self):
        records, _ = _record_quasisort(8, seed=1)
        with pytest.raises(ValueError):
            replay_pass(records[:3], 8)


class TestOverrides:
    def test_last_stage_fault_displaces_at_most_two(self):
        """A stuck switch in the outermost merge hurts only its pair."""
        n = 16
        records, _ = _record_quasisort(n, seed=2)
        baseline = replay_pass(records, n)
        outer = [r for r in records if r.size == n][0]
        for i, setting in enumerate(outer.settings):
            flipped = (
                SwitchSetting.CROSS
                if setting is SwitchSetting.PARALLEL
                else SwitchSetting.PARALLEL
            )
            faulty = replay_pass(records, n, overrides={(n, 0, i): flipped})
            moved = sum(
                1
                for b, f in zip(baseline, faulty)
                if (b.data, b.tag) != (f.data, f.tag)
            )
            assert moved <= 2

    def test_override_to_broadcast_raises_strict(self):
        n = 8
        records, _ = _record_quasisort(n, seed=3)
        # find a switch whose inputs are (message, message): broadcast illegal
        with pytest.raises(RoutingInvariantError):
            for rec in records:
                for i in range(rec.size // 2):
                    replay_pass(
                        records,
                        n,
                        overrides={(rec.size, rec.offset, i): SwitchSetting.UPPER_BCAST},
                    )

    def test_non_strict_falls_back_to_parallel(self):
        n = 8
        records, _ = _record_quasisort(n, seed=3)
        out = replay_pass(
            records,
            n,
            overrides={(records[-1].size, 0, 0): SwitchSetting.UPPER_BCAST},
            strict_broadcast=False,
        )
        assert len(out) == n  # survived


class TestMisplacementRate:
    def test_identical_frames_zero(self):
        cells = cells_from_tags([Tag.ZERO, Tag.ONE])
        assert misplacement_rate(cells, cells) == 0.0

    def test_swapped_messages_full(self):
        a = cells_from_tags([Tag.ZERO, Tag.ONE])
        b = [a[1], a[0]]
        assert misplacement_rate(a, b) == 1.0

    def test_idle_links_ignored(self):
        a = cells_from_tags([Tag.ZERO, Tag.EPS, Tag.EPS, Tag.EPS])
        assert misplacement_rate(a, a) == 0.0


class TestStuckSwitchStudy:
    def test_study_structure(self):
        s = stuck_switch_study(16, seed=4)
        assert s.faults_injected > 0
        assert set(s.per_stage) <= {2, 4, 8, 16}
        for rates in s.per_stage.values():
            assert all(0.0 <= r <= 1.0 for r in rates)

    def test_stuck_cross_variant(self):
        s = stuck_switch_study(16, seed=4, stuck_at=SwitchSetting.CROSS)
        assert s.faults_injected > 0

    def test_deterministic(self):
        a = stuck_switch_study(16, seed=6)
        b = stuck_switch_study(16, seed=6)
        assert a.per_stage == b.per_stage

    def test_single_fault_is_one_transposition_at_any_depth(self):
        """In a permutation pass, one stuck switch misplaces exactly its
        own two cells regardless of stage depth (the measured structural
        fact the fault study documents)."""
        n = 16
        records, _ = _record_quasisort(n, seed=7)
        baseline = replay_pass(records, n)
        for rec in records:
            for i, setting in enumerate(rec.settings):
                flipped = (
                    SwitchSetting.CROSS
                    if setting is SwitchSetting.PARALLEL
                    else SwitchSetting.PARALLEL
                )
                faulty = replay_pass(
                    records, n, overrides={(rec.size, rec.offset, i): flipped}
                )
                moved = sum(
                    1
                    for b, f in zip(baseline, faulty)
                    if (b.data, b.tag) != (f.data, f.tag)
                )
                assert moved <= 2, (rec.size, rec.offset, i, moved)
