"""Stateful property test: a long-lived fabric session never misroutes.

Hypothesis drives a :class:`~repro.core.fabric.MulticastFabric` through
an arbitrary interleaving of frame submissions (across workload
families and fanout regimes) and resets; after every step, the
aggregate statistics must remain consistent and every delivery
verified.  This simulates the lifetime of a deployed switch rather than
one-shot frames.
"""

import random

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.core.config import NetworkConfig
from repro.core.fabric import MulticastFabric
from repro.core.multicast import MulticastAssignment

from conftest import make_random_assignment

N = 16


class FabricSession(RuleBasedStateMachine):
    """A random long-lived session on a 16-port fabric."""

    @initialize(implementation=st.sampled_from(["unrolled", "feedback"]))
    def start(self, implementation):
        self.fabric = MulticastFabric(NetworkConfig(N, implementation=implementation))
        self.expected_frames = 0
        self.expected_deliveries = 0

    @rule(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def submit_random_frame(self, seed):
        a = make_random_assignment(N, random.Random(seed))
        self.fabric.submit(a)
        self.expected_frames += 1
        self.expected_deliveries += a.total_fanout

    @rule(source=st.integers(min_value=0, max_value=N - 1))
    def submit_broadcast(self, source):
        self.fabric.submit(MulticastAssignment.broadcast(N, source))
        self.expected_frames += 1
        self.expected_deliveries += N

    @rule()
    def submit_empty(self):
        self.fabric.submit(MulticastAssignment.empty(N))
        self.expected_frames += 1

    @rule()
    def reset(self):
        self.fabric.reset()
        self.expected_frames = 0
        self.expected_deliveries = 0

    @invariant()
    def stats_consistent(self):
        if not hasattr(self, "fabric"):
            return
        assert self.fabric.stats.frames == self.expected_frames
        assert self.fabric.stats.deliveries == self.expected_deliveries
        assert not self.fabric.stats.failures  # strict mode would raise


FabricSession.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
TestFabricSession = FabricSession.TestCase
