"""Failure injection: every corruption the library must catch, caught.

The self-routing scheme is only trustworthy if violations are *loud*:
corrupted tag streams, illegal populations, conflicting assignments and
sabotaged switch settings must raise, not silently misroute.
"""

import pytest

from repro.core.brsmn import BRSMN, inject_messages
from repro.core.bsn import BinarySplittingNetwork, make_bsn_cells
from repro.core.message import Message
from repro.core.multicast import MulticastAssignment
from repro.core.tags import Tag
from repro.core.tagtree import TagTree
from repro.errors import (
    BlockingError,
    InvalidAssignmentError,
    InvalidTagError,
    NetworkSizeError,
    ReproError,
    RoutingInvariantError,
)
from repro.rbn.cells import Cell, cells_from_tags
from repro.rbn.quasisort import divide_epsilons
from repro.rbn.scatter import scatter


class TestCorruptedTagStreams:
    def test_wrong_head_tag_detected(self):
        """A SEQ whose head contradicts the destinations is refused at
        the first BSN — the misroute never happens."""
        n = 8
        bad_seq = TagTree.from_destinations(n, {6}).to_sequence()
        msg = Message(source=0, destinations={1}).with_stream(bad_seq)
        with pytest.raises(RoutingInvariantError):
            make_bsn_cells([msg] + [None] * (n - 1), 0, n, "selfrouting")

    def test_truncated_stream_detected(self):
        n = 8
        seq = TagTree.from_destinations(n, {1}).to_sequence()
        msg = Message(source=0, destinations={1}).with_stream(seq[:3])
        net = BRSMN(n)
        a = MulticastAssignment(n, [{1}] + [None] * (n - 1))
        frame = inject_messages(a, "selfrouting")
        frame[0] = msg
        with pytest.raises((RoutingInvariantError, InvalidTagError, IndexError)):
            net._route(frame, 0, n, "selfrouting", net.route(a), None)

    def test_missing_stream_detected(self):
        msg = Message(source=0, destinations={1})
        with pytest.raises(InvalidAssignmentError):
            make_bsn_cells([msg, None, None, None], 0, 4, "selfrouting")


class TestIllegalPopulations:
    def test_scatter_alpha_majority_rejected_in_bsn_mode(self):
        tags = [Tag.ALPHA, Tag.ALPHA, Tag.ZERO, Tag.ONE]
        with pytest.raises(RoutingInvariantError):
            scatter(cells_from_tags(tags), 0)

    def test_bsn_overfull_half_rejected(self):
        bsn = BinarySplittingNetwork(4)
        tags = [Tag.ONE, Tag.ONE, Tag.ONE, Tag.EPS]
        with pytest.raises(RoutingInvariantError):
            bsn.route_cells(cells_from_tags(tags))

    def test_eps_divide_overfull_rejected(self):
        tags = [Tag.ZERO, Tag.ZERO, Tag.ZERO, Tag.EPS]
        with pytest.raises(RoutingInvariantError):
            divide_epsilons(cells_from_tags(tags))


class TestInvalidAssignments:
    def test_duplicate_output(self):
        with pytest.raises(InvalidAssignmentError):
            MulticastAssignment(4, [{0}, {0}, None, None])

    def test_bad_network_size(self):
        with pytest.raises(NetworkSizeError):
            BRSMN(12)
        with pytest.raises(NetworkSizeError):
            BRSMN(0)

    def test_all_errors_share_base(self):
        """Callers can catch ReproError for everything library-raised."""
        for exc in (
            NetworkSizeError,
            InvalidAssignmentError,
            InvalidTagError,
            RoutingInvariantError,
            BlockingError,
        ):
            assert issubclass(exc, ReproError)


class TestSabotagedSwitching:
    def test_broadcast_on_message_pair_detected(self):
        """Manually forcing a broadcast where both inputs carry data is
        caught by the switch itself."""
        from repro.rbn.merging import apply_merging
        from repro.rbn.switches import SwitchSetting

        upper = [Cell(Tag.ZERO, data="a")]
        lower = [Cell(Tag.ONE, data="b")]
        with pytest.raises(RoutingInvariantError):
            apply_merging(upper, lower, [SwitchSetting.UPPER_BCAST])

    def test_alpha_without_branches_cannot_split(self):
        cell = Cell(Tag.ALPHA, data="m")  # branches None
        zero, one = cell.split()
        # splitting is legal but the copies carry no payload —
        # delivering them would fail verification; assert the shape here
        assert zero.data is None and one.data is None


class TestCopyNetworkBlocking:
    def test_fanout_overflow_is_blocking(self):
        """The copy network's only blocking condition is total fanout
        greater than n — a real BlockingError, distinct from invariants."""
        from repro.baselines.copy_network import CopyNetwork

        cn = CopyNetwork(4)
        msgs = [
            Message(source=0, destinations={0, 1, 2}),
            Message(source=1, destinations={3}),
            Message(source=2, destinations=frozenset({0})),  # would exceed via dup
            None,
        ]
        # the third message makes total fanout 5 > 4
        with pytest.raises(BlockingError):
            cn.replicate(msgs)
