"""Integration: all four network implementations agree on all workloads."""

import pytest
from hypothesis import given, settings

from repro.baselines.crossbar import CrossbarMulticast
from repro.baselines.sort_copy import CopySortMulticast
from repro.core.brsmn import BRSMN
from repro.core.feedback import FeedbackBRSMN
from repro.core.verification import verify_result
from repro.workloads.patterns import (
    fft_butterfly_rounds,
    matrix_multiply_rounds,
)
from repro.workloads.random_assignments import assignment_suite
from repro.workloads.scenarios import (
    replicated_db_frames,
    videoconference_frames,
    vod_frames,
)

from conftest import assignments


def _delivery_signature(result):
    return [
        None if m is None else (m.source, m.payload) for m in result.outputs
    ]


ALL_IMPLEMENTATIONS = [
    ("brsmn", lambda n: BRSMN(n)),
    ("feedback", lambda n: FeedbackBRSMN(n)),
    ("crossbar", lambda n: CrossbarMulticast(n)),
    ("copy+sort", lambda n: CopySortMulticast(n)),
]


class TestCrossImplementationEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(assignments(max_m=5))
    def test_four_implementations_agree(self, a):
        """Crossbar is the functional gold standard; everything must
        match it delivery-for-delivery."""
        reference = _delivery_signature(CrossbarMulticast(a.n).route(a))
        for name, make in ALL_IMPLEMENTATIONS:
            got = _delivery_signature(make(a.n).route(a))
            assert got == reference, name


class TestWorkloadSweeps:
    @pytest.mark.parametrize("n", [16, 64])
    def test_random_suite_all_networks(self, n):
        for a in assignment_suite(n, seed=11):
            for name, make in ALL_IMPLEMENTATIONS:
                report = verify_result(make(n).route(a))
                assert report.ok, (name, report.violations)

    def test_matrix_multiply_session(self):
        n = 16
        net = BRSMN(n)
        for a in matrix_multiply_rounds(n):
            assert verify_result(net.route(a, mode="selfrouting")).ok

    def test_fft_session(self):
        n = 32
        net = FeedbackBRSMN(n)
        for a in fft_butterfly_rounds(n):
            assert verify_result(net.route(a, mode="selfrouting")).ok

    def test_videoconference_session(self):
        n = 32
        net = BRSMN(n)
        for a in videoconference_frames(n, conferences=4, frames=16, seed=12):
            assert verify_result(net.route(a, mode="selfrouting")).ok

    def test_vod_session(self):
        n = 64
        net = BRSMN(n)
        for a in vod_frames(n, servers=3, frames=12, seed=13):
            assert verify_result(net.route(a, mode="selfrouting")).ok

    def test_replicated_db_session(self):
        n = 32
        net = FeedbackBRSMN(n)
        for a in replicated_db_frames(n, shards=4, replicas=3, frames=12, seed=14):
            assert verify_result(net.route(a, mode="selfrouting")).ok


class TestScale:
    def test_n256_heavy_multicast(self):
        from repro.workloads.random_assignments import random_multicast

        n = 256
        a = random_multicast(n, load=1.0, seed=15)
        res = BRSMN(n).route(a, mode="selfrouting")
        assert verify_result(res).ok

    def test_n512_broadcast_feedback(self):
        from repro.core.multicast import MulticastAssignment

        n = 512
        res = FeedbackBRSMN(n).route(MulticastAssignment.broadcast(n))
        assert verify_result(res).ok
        assert res.pass_count == 2 * 9 - 1
