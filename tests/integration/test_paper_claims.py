"""Integration: the paper's numbered claims, checked mechanically.

One test per claim, cross-referencing the paper's section/equation so
EXPERIMENTS.md can cite this file as the machine-checked record.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brsmn import BRSMN, inject_messages
from repro.core.bsn import BinarySplittingNetwork, make_bsn_cells
from repro.core.feedback import FeedbackBRSMN
from repro.core.multicast import MulticastAssignment
from repro.core.tags import Tag
from repro.core.verification import verify_result
from repro.rbn.scatter import count_tags

from conftest import assignments, make_random_assignment


class TestSection2Definitions:
    def test_permutation_is_special_case(self):
        """'A permutation assignment is a special case of a multicast
        assignment where each I_i has at most one element.'"""
        a = MulticastAssignment.from_permutation([1, 0, None, 2])
        assert a.is_permutation
        assert verify_result(BRSMN(4).route(a)).ok

    @settings(max_examples=100, deadline=None)
    @given(assignments(min_m=2, max_m=5))
    def test_four_case_analysis(self, a):
        """Section 2's case analysis: each input is case 1 (upper), 2
        (lower), 3 (split) or 4 (idle) — and the BSN realises it."""
        n = a.n
        mid = n // 2
        frame = inject_messages(a)
        cells = make_bsn_cells(frame, 0, n, "oracle")
        for msg, cell in zip(frame, cells):
            if msg is None:
                assert cell.tag is Tag.EPS                      # case 4
            elif all(d < mid for d in msg.destinations):
                assert cell.tag is Tag.ZERO                     # case 1
            elif all(d >= mid for d in msg.destinations):
                assert cell.tag is Tag.ONE                      # case 2
            else:
                assert cell.tag is Tag.ALPHA                    # case 3


class TestSection3Equations:
    @settings(max_examples=150, deadline=None)
    @given(assignments(min_m=2, max_m=5))
    def test_eq1_eq2_eq3_on_valid_assignments(self, a):
        """Any valid assignment induces BSN inputs obeying eqs. (1)-(3)."""
        n = a.n
        cells = make_bsn_cells(inject_messages(a), 0, n, "oracle")
        c = count_tags(cells)
        assert c["n0"] + c["n1"] + c["na"] + c["ne"] == n        # eq. (1)
        assert c["n0"] + c["na"] <= n // 2                       # eq. (2)
        assert c["n1"] + c["na"] <= n // 2                       # eq. (2)
        assert c["na"] <= c["ne"]                                # eq. (3)

    @settings(max_examples=100, deadline=None)
    @given(assignments(min_m=2, max_m=5))
    def test_eq4_bsn_output_counts(self, a):
        """Eq. (4): output populations after the BSN."""
        n = a.n
        bsn = BinarySplittingNetwork(n)
        cells = make_bsn_cells(inject_messages(a), 0, n, "oracle")
        before = count_tags(cells)
        out, _stats = bsn.route_cells(cells)
        after = count_tags(out)
        assert after["n0"] == before["n0"] + before["na"]
        assert after["n1"] == before["n1"] + before["na"]
        assert after["ne"] == before["ne"] - before["na"]
        assert after["na"] == 0


class TestHeadlineTheorem:
    """'...can realize arbitrary multicast assignments ... without any
    blocking' — the paper's abstract, on dense random sweeps."""

    def test_dense_sweep_small_sizes(self):
        rng = random.Random(0xFEED)
        for n in (2, 4, 8):
            for _ in range(150):
                a = make_random_assignment(n, rng)
                for mode in ("oracle", "selfrouting"):
                    assert verify_result(BRSMN(n).route(a, mode=mode)).ok

    def test_exhaustive_n2(self):
        """Every one of the 7 distinct n=2 assignments routes."""
        cases = [
            [None, None],
            [{0}, None], [{1}, None], [None, {0}], [None, {1}],
            [{0, 1}, None], [None, {0, 1}],
            [{0}, {1}], [{1}, {0}],
        ]
        for dests in cases:
            a = MulticastAssignment(2, dests)
            assert verify_result(BRSMN(2).route(a, mode="selfrouting")).ok

    def test_exhaustive_n4_unicast_pairs(self):
        """All partial permutations of n=4 (625 input/output maps)."""
        import itertools

        count = 0
        for perm in itertools.product([None, 0, 1, 2, 3], repeat=4):
            used = [p for p in perm if p is not None]
            if len(used) != len(set(used)):
                continue
            a = MulticastAssignment.from_permutation(list(perm))
            assert verify_result(BRSMN(4).route(a)).ok
            count += 1
        assert count == 209  # number of partial injections on 4 elements


class TestSection73Feedback:
    def test_feedback_is_single_rbn(self):
        """'the feedback version of an n x n BRSMN is simply an n x n
        RBN' — physical cost = (n/2) log n."""
        from repro.rbn.topology import rbn_switch_count

        for n in (4, 16, 256):
            assert FeedbackBRSMN(n).switch_count == rbn_switch_count(n)

    @settings(max_examples=60, deadline=None)
    @given(assignments(max_m=4))
    def test_feedback_functionally_complete(self, a):
        assert verify_result(FeedbackBRSMN(a.n).route(a, mode="selfrouting")).ok


class TestSection74Complexities:
    def test_cost_recurrence_c_n(self):
        """C(n) = O(n log n) + 2 C(n/2) — checked as exact recurrence."""
        for n in (8, 16, 64, 256):
            bsn_cost = BinarySplittingNetwork(n).switch_count
            assert (
                BRSMN(n).switch_count
                == bsn_cost + 2 * BRSMN(n // 2).switch_count
            )

    def test_depth_recurrence_d_n(self):
        """D(n) = O(log n) + D(n/2)."""
        for n in (8, 64):
            assert BRSMN(n).depth == 2 * (n.bit_length() - 1) + BRSMN(n // 2).depth

    def test_routing_time_recurrence_t_n(self):
        """T(n) = O(log n) + T(n/2) via the timing model."""
        from repro.hardware.timing import TimingModel

        tm = TimingModel()
        for n in (8, 64, 1024):
            assert tm.brsmn_routing_time(n) == tm.bsn_routing_time(
                n
            ) + tm.brsmn_routing_time(n // 2)
