"""Metamorphic properties of the routing relation.

These tests transform an assignment in ways with a *known* effect on
the correct output and check the network tracks the transformation —
catching classes of bugs (bit-handedness, half-swaps, source mixups)
that plain verification of random instances can miss because both the
implementation and the checker could be wrong the same way.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.brsmn import BRSMN
from repro.core.multicast import MulticastAssignment

from conftest import assignments, make_random_assignment


def _delivery_sources(result):
    return [None if m is None else m.source for m in result.outputs]


class TestXorRelabelling:
    """Relabel every destination d -> d XOR mask.

    XOR permutes each address bit-plane independently, so a valid
    assignment stays valid and the correct delivery vector is exactly
    the permuted one.  This exercises *every* bit-handedness decision
    (msb-vs-lsb, upper-vs-lower) in the splitting recursion.
    """

    @settings(max_examples=150, deadline=None)
    @given(assignments(max_m=5), st.data())
    def test_deliveries_commute_with_xor(self, a, data):
        n = a.n
        mask = data.draw(st.integers(min_value=0, max_value=n - 1))
        relabelled = MulticastAssignment(
            n, [{d ^ mask for d in ds} for ds in a.destinations]
        )
        net = BRSMN(n)
        base = _delivery_sources(net.route(a, mode="selfrouting"))
        moved = _delivery_sources(net.route(relabelled, mode="selfrouting"))
        assert all(moved[o ^ mask] == base[o] for o in range(n))


class TestSourceRelabelling:
    """Move every destination set to a different input.

    The delivery map output -> source must follow the relabelling;
    nothing about the *outputs* changes.
    """

    @settings(max_examples=100, deadline=None)
    @given(assignments(max_m=5), st.integers(min_value=0, max_value=2**31))
    def test_deliveries_commute_with_input_permutation(self, a, seed):
        n = a.n
        rng = random.Random(seed)
        perm = list(range(n))
        rng.shuffle(perm)
        relabelled = MulticastAssignment(
            n,
            [
                a.destinations[perm[i]]
                for i in range(n)
            ],
        )
        net = BRSMN(n)
        base = _delivery_sources(net.route(a, mode="selfrouting"))
        moved = _delivery_sources(net.route(relabelled, mode="selfrouting"))
        # output o was fed by source s; now the same destination set sits
        # at input perm^{-1}... — i.e. moved[o] = p with perm[p] = base[o].
        inv = {perm[i]: i for i in range(n)}
        assert all(
            (moved[o] is None and base[o] is None)
            or moved[o] == inv[base[o]]
            for o in range(n)
        )


class TestSubAssignmentStability:
    """Dropping one multicast leaves every other delivery unchanged
    (per the theorem each remaining output still hears its source)."""

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_drop_one_multicast(self, seed):
        rng = random.Random(seed)
        n = 16
        a = make_random_assignment(n, rng)
        active = a.active_inputs
        if not active:
            return
        victim = rng.choice(active)
        reduced = MulticastAssignment(
            n,
            [
                None if i == victim else a.destinations[i]
                for i in range(n)
            ],
        )
        net = BRSMN(n)
        base = _delivery_sources(net.route(a, mode="selfrouting"))
        thin = _delivery_sources(net.route(reduced, mode="selfrouting"))
        for o in range(n):
            if base[o] == victim:
                assert thin[o] is None
            else:
                assert thin[o] == base[o]
