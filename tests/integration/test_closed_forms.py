"""Closed-form constants (docs/complexity_derivations.md), pinned exactly."""

import pytest

from repro.core.brsmn import BRSMN
from repro.core.bsn import BinarySplittingNetwork
from repro.core.feedback import FeedbackBRSMN

SIZES = [2**k for k in range(1, 13)]


class TestSwitchCountClosedForms:
    @pytest.mark.parametrize("n", SIZES)
    def test_rbn_and_bsn(self, n):
        from repro.rbn.topology import rbn_switch_count

        m = n.bit_length() - 1
        assert rbn_switch_count(n) == (n // 2) * m
        if n >= 2:
            assert BinarySplittingNetwork(n).switch_count == n * m

    @pytest.mark.parametrize("n", SIZES)
    def test_brsmn_closed_form(self, n):
        """C(n) = n (m(m+1)/2 - 1) + n/2."""
        m = n.bit_length() - 1
        expected = n * (m * (m + 1) // 2 - 1) + n // 2
        assert BRSMN(n).switch_count == expected

    def test_worked_values(self):
        assert BRSMN(8).switch_count == 44
        assert BRSMN(1024).switch_count == 55808

    @pytest.mark.parametrize("n", SIZES)
    def test_feedback_closed_form(self, n):
        m = n.bit_length() - 1
        assert FeedbackBRSMN(n).switch_count == (n // 2) * m
        assert FeedbackBRSMN(n).pass_count == 2 * m - 1


class TestDepthClosedForm:
    @pytest.mark.parametrize("n", SIZES)
    def test_depth_is_m2_plus_m_minus_1(self, n):
        m = n.bit_length() - 1
        assert BRSMN(n).depth == m * m + m - 1

    def test_worked_values(self):
        assert BRSMN(8).depth == 11
        assert BRSMN(64).depth == 41


class TestRoutingTimeClosedForm:
    @pytest.mark.parametrize("n", [2**k for k in range(2, 13)])
    def test_timing_model_closed_form(self, n):
        """T(n) = 12c (m(m+1)/2 - 1) + (m-1)(6c + s) + s."""
        from repro.hardware.timing import TimingModel, TimingParameters

        p = TimingParameters()
        c, s = p.cycle_delay, p.setting_delay
        m = n.bit_length() - 1
        expected = 12 * c * (m * (m + 1) // 2 - 1) + (m - 1) * (6 * c + s) + s
        assert TimingModel(p).brsmn_routing_time(n) == expected
