"""Exhaustive verification on small instances.

Property tests sample; these tests *enumerate*.  At n = 4 the entire
multicast-assignment space is small enough to route completely: an
assignment is a map from each output to (the input that feeds it |
unused), so there are 5^4 = 625 assignments — every single one is
routed in both modes through both implementations.  Combined with the
exhaustive n = 2 cases and the full destination-set space of the SEQ
codec at n = 8, the base of the paper's induction is machine-checked
with no sampling gaps.
"""

import itertools

import pytest

from repro.core.brsmn import BRSMN
from repro.core.feedback import FeedbackBRSMN
from repro.core.multicast import MulticastAssignment
from repro.core.tagtree import TagTree
from repro.core.verification import verify_result


def _all_assignments(n):
    """Every multicast assignment of an n x n network.

    Enumerated as all maps output -> (source input | unused).
    """
    for owners in itertools.product(range(n + 1), repeat=n):
        dests = [[] for _ in range(n)]
        for out, owner in enumerate(owners):
            if owner < n:
                dests[owner].append(out)
        yield MulticastAssignment(n, dests)


class TestExhaustiveN4:
    def test_all_625_assignments_both_modes(self):
        """The complete n=4 assignment space through the BRSMN."""
        net = BRSMN(4)
        count = 0
        for a in _all_assignments(4):
            for mode in ("oracle", "selfrouting"):
                report = verify_result(net.route(a, mode=mode))
                assert report.ok, (str(a), mode, report.violations)
            count += 1
        assert count == 5**4

    def test_all_625_assignments_feedback(self):
        net = FeedbackBRSMN(4)
        for a in _all_assignments(4):
            assert verify_result(net.route(a, mode="selfrouting")).ok

    def test_implementations_agree_everywhere(self):
        unrolled = BRSMN(4)
        feedback = FeedbackBRSMN(4)
        for a in _all_assignments(4):
            sig = lambda r: [None if m is None else m.source for m in r.outputs]
            assert sig(unrolled.route(a)) == sig(feedback.route(a))


class TestExhaustiveN2:
    def test_all_9_assignments(self):
        net = BRSMN(2)
        count = 0
        for a in _all_assignments(2):
            for mode in ("oracle", "selfrouting"):
                assert verify_result(net.route(a, mode=mode)).ok
            count += 1
        assert count == 9


class TestExhaustiveSeqCodec:
    def test_all_destination_sets_n8(self):
        """All 256 destination subsets of an 8-output network round-trip
        through the SEQ codec with valid trees."""
        for bits in range(256):
            dests = frozenset(i for i in range(8) if (bits >> i) & 1)
            tree = TagTree.from_destinations(8, dests)
            tree.validate()
            assert TagTree.from_sequence(8, tree.to_sequence()).destinations() == dests

    def test_all_destination_sets_n4(self):
        for bits in range(16):
            dests = frozenset(i for i in range(4) if (bits >> i) & 1)
            tree = TagTree.from_destinations(4, dests)
            tree.validate()
            assert tree.destinations() == dests
            assert len(tree.to_sequence()) == 3


class TestExhaustiveQuasisortN4:
    def test_all_valid_populations_all_arrangements(self):
        """Every tag arrangement over {0,1,eps}^4 with n0,n1 <= 2."""
        from repro.core.tags import Tag
        from repro.rbn.cells import cells_from_tags
        from repro.rbn.quasisort import quasisort

        count = 0
        for tags in itertools.product([Tag.ZERO, Tag.ONE, Tag.EPS], repeat=4):
            if tags.count(Tag.ZERO) > 2 or tags.count(Tag.ONE) > 2:
                continue
            out = quasisort(cells_from_tags(list(tags)))
            assert all(c.tag in (Tag.ZERO, Tag.EPS) for c in out[:2])
            assert all(c.tag in (Tag.ONE, Tag.EPS) for c in out[2:])
            count += 1
        assert count == 3**4 - 18  # 9 arrangements exceed each cap, overlaps impossible

    def test_population_count_arithmetic(self):
        """Sanity on the previous test's expected count."""
        import itertools as it

        from repro.core.tags import Tag

        valid = sum(
            1
            for tags in it.product([Tag.ZERO, Tag.ONE, Tag.EPS], repeat=4)
            if tags.count(Tag.ZERO) <= 2 and tags.count(Tag.ONE) <= 2
        )
        assert valid == 63


class TestExhaustiveScatterN4:
    def test_all_valid_bsn_populations(self):
        """Every 4-tag arrangement satisfying eqs. (1)-(2)."""
        from repro.core.tags import Tag
        from repro.rbn.cells import cells_from_tags
        from repro.rbn.compact import compact_of_predicate
        from repro.rbn.scatter import count_tags, scatter

        count = 0
        base = [Tag.ZERO, Tag.ONE, Tag.ALPHA, Tag.EPS]
        for tags in itertools.product(base, repeat=4):
            c = {
                "n0": tags.count(Tag.ZERO),
                "n1": tags.count(Tag.ONE),
                "na": tags.count(Tag.ALPHA),
            }
            if c["n0"] + c["na"] > 2 or c["n1"] + c["na"] > 2:
                continue
            for s in range(4):
                out = scatter(cells_from_tags(list(tags)), s)
                oc = count_tags(out)
                assert oc["na"] == 0
                assert oc["n0"] == c["n0"] + c["na"]
                assert oc["n1"] == c["n1"] + c["na"]
            count += 1
        assert count > 80  # exhaustiveness sanity
