"""Tests for the ASCII renderers."""

from repro.core.brsmn import BRSMN
from repro.core.multicast import MulticastAssignment, paper_example_assignment
from repro.core.tags import Tag
from repro.rbn.cells import cells_from_tags
from repro.rbn.switches import SwitchSetting
from repro.viz.ascii import (
    format_cells,
    format_settings,
    render_assignment,
    render_delivery,
    render_stage,
    render_trace,
)


class TestFormatters:
    def test_format_cells(self):
        cells = cells_from_tags([Tag.ZERO, Tag.ONE, Tag.ALPHA, Tag.EPS, Tag.EPS0, Tag.EPS1])
        assert format_cells(cells) == "01aezw"

    def test_format_settings(self):
        s = [
            SwitchSetting.PARALLEL,
            SwitchSetting.CROSS,
            SwitchSetting.UPPER_BCAST,
            SwitchSetting.LOWER_BCAST,
        ]
        assert format_settings(s) == "=x^v"


class TestRenderers:
    def test_render_assignment_mentions_binary(self):
        text = render_assignment(paper_example_assignment())
        assert "011, 100, 111" in text
        assert "input 2" in text

    def test_render_empty_assignment(self):
        assert "(empty)" in render_assignment(MulticastAssignment.empty(4))

    def test_render_trace_and_stage(self):
        res = BRSMN(8).route(paper_example_assignment(), collect_trace=True)
        text = render_trace(res.trace)
        assert text.count("merge") == len(res.trace.stages)
        one_line = render_stage(res.trace.stages[0])
        assert "in=" in one_line and "out=" in one_line and "set=" in one_line

    def test_render_trace_truncation(self):
        res = BRSMN(8).route(paper_example_assignment(), collect_trace=True)
        text = render_trace(res.trace, max_stages=3)
        assert "more stages" in text

    def test_render_delivery(self):
        res = BRSMN(8).route(paper_example_assignment())
        text = render_delivery(res.outputs)
        assert "output 0 <- input 0" in text
        assert "output 7 <- input 2" in text

    def test_render_delivery_empty(self):
        assert "(none)" in render_delivery([None, None])


class TestPassGrid:
    def _bsn_trace(self, n=8):
        from repro.core.tags import parse_tag_string
        from repro.rbn.cells import cells_from_tags
        from repro.rbn.quasisort import quasisort
        from repro.rbn.scatter import scatter
        from repro.rbn.trace import Trace

        tags = parse_tag_string("0a1e ae01".replace(" ", ""))
        trace = Trace()
        mid = scatter(cells_from_tags(tags), 0, trace=trace)
        quasisort(mid, trace=trace)
        return trace

    def test_split_passes_finds_two(self):
        from repro.viz.ascii import split_rbn_passes

        passes = split_rbn_passes(self._bsn_trace(), 8)
        assert len(passes) == 2  # scatter, quasisort
        for p in passes:
            assert p[-1].size == 8 and p[-1].offset == 0
            assert len(p) == 7  # n - 1 merging networks

    def test_grid_shape_and_inputs(self):
        from repro.viz.ascii import render_pass_grid, split_rbn_passes

        passes = split_rbn_passes(self._bsn_trace(), 8)
        grid = render_pass_grid(passes[0], 8)
        lines = grid.splitlines()
        assert len(lines) == 2 + 8  # header + rule + one row per terminal
        # the input column spells the original tags
        in_col = "".join(line.split()[1] for line in lines[2:])
        assert in_col == "0a1eae01"

    def test_incomplete_pass_rejected(self):
        import pytest

        from repro.viz.ascii import render_pass_grid, split_rbn_passes

        passes = split_rbn_passes(self._bsn_trace(), 8)
        with pytest.raises(ValueError):
            render_pass_grid(passes[0][:3], 8)
