"""Tests for the ASCII Gantt renderer."""

from repro.hardware.schedule import FrameSchedule, build_frame_schedule
from repro.viz.gantt import render_gantt


class TestRenderGantt:
    def test_one_row_per_activity(self):
        schedule = build_frame_schedule(16)
        text = render_gantt(schedule)
        lines = text.splitlines()
        # header + one row per entry + total line
        assert len(lines) == 2 + len(schedule.entries)

    def test_bars_fit_width(self):
        schedule = build_frame_schedule(64)
        width = 40
        for line in render_gantt(schedule, width=width).splitlines()[1:-1]:
            bar = line.split("|")[1]
            assert len(bar) == width

    def test_bar_symbols_match_kinds(self):
        schedule = build_frame_schedule(8)
        lines = render_gantt(schedule).splitlines()[1:-1]
        for entry, line in zip(schedule.entries, lines):
            bar = line.split("|")[1]
            symbol = "#" if entry.kind == "routing" else "="
            assert symbol in bar
            assert bar.strip(" ").strip(symbol) == ""

    def test_durations_printed(self):
        schedule = build_frame_schedule(8)
        text = render_gantt(schedule)
        for e in schedule.entries:
            assert f" {e.duration}" in text

    def test_bars_are_time_ordered(self):
        schedule = build_frame_schedule(32)
        lines = render_gantt(schedule).splitlines()[1:-1]
        first_marks = [
            len(line.split("|")[1]) - len(line.split("|")[1].lstrip(" "))
            for line in lines
        ]
        assert first_marks == sorted(first_marks)

    def test_empty_schedule(self):
        assert "(empty)" in render_gantt(FrameSchedule(n=8))
