"""Structured multicast patterns from parallel computing.

Section 1 of the paper motivates hardware multicast with concrete
parallel-computing operations: replicated-database updates, matrix
multiplication, FFT, barrier synchronisation, message passing.  These
generators produce the communication patterns of those algorithms as
multicast assignments, so the benches exercise the network on the
workloads the paper cares about rather than only uniform noise.

A multicast *assignment* requires disjoint destination sets, so
operations that are inherently many-rounds (e.g. all-to-all broadcast)
are expressed as a *sequence* of assignments, one per round.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.multicast import MulticastAssignment
from ..rbn.permutations import check_network_size

__all__ = [
    "matrix_multiply_rounds",
    "fft_butterfly_rounds",
    "barrier_fanout_rounds",
    "tree_broadcast_rounds",
    "transpose_permutation",
    "shuffle_permutation",
    "bit_reversal_permutation",
]


def matrix_multiply_rounds(n: int, row_major_sources: bool = True) -> List[MulticastAssignment]:
    """One-to-row multicast rounds of parallel matrix multiplication.

    For a ``sqrt(n) x sqrt(n)`` processor grid computing ``C = A B``
    (SUMMA-style), round ``k`` has the ``k``-th column of the grid
    broadcast its ``A`` block along its row — i.e. processor
    ``(i, k)`` multicasts to ``{(i, 0..q-1)}``.  Each round is one
    valid multicast assignment; there are ``q = sqrt(n)`` rounds.

    Requires ``n`` to be an even power of two (so the grid is square).
    """
    m = check_network_size(n)
    if m % 2:
        raise ValueError(f"matrix grid needs an even power of two, got n={n}")
    q = 1 << (m // 2)
    rounds: List[MulticastAssignment] = []
    for k in range(q):
        dests: List[Optional[List[int]]] = [None] * n
        for i in range(q):
            src = i * q + k if row_major_sources else k * q + i
            dests[src] = [i * q + j for j in range(q)]
        rounds.append(MulticastAssignment(n, dests))
    return rounds


def fft_butterfly_rounds(n: int) -> List[MulticastAssignment]:
    """The butterfly exchange rounds of an ``n``-point FFT.

    Round ``k`` (``k = 0 .. log2 n - 1``) pairs processor ``i`` with
    ``i XOR 2^k``; each processor sends to its partner.  These are
    permutation assignments (fanout 1) — the unicast-regular traffic a
    multicast network must also handle gracefully.
    """
    m = check_network_size(n)
    rounds: List[MulticastAssignment] = []
    for k in range(m):
        perm = [i ^ (1 << k) for i in range(n)]
        rounds.append(MulticastAssignment.from_permutation(perm))
    return rounds


def barrier_fanout_rounds(n: int, root: int = 0) -> List[MulticastAssignment]:
    """The release (fan-out) phase of a tree barrier.

    After the last processor arrives, the root releases everyone along
    a binomial tree: in round ``k`` every already-released processor
    ``p`` notifies ``p + n / 2^{k+1}``-style partners.  Expressed here
    as ``log2 n`` permutation assignments whose union covers all
    processors exactly once.
    """
    m = check_network_size(n)
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range")
    rounds: List[MulticastAssignment] = []
    released = [root]
    stride = n
    for _k in range(m):
        stride //= 2
        dests: List[Optional[List[int]]] = [None] * n
        new = []
        for p in released:
            target = (p + stride) % n
            dests[p] = [target]
            new.append(target)
        rounds.append(MulticastAssignment(n, dests))
        released = released + new
    return rounds


def tree_broadcast_rounds(n: int, root: int = 0) -> List[MulticastAssignment]:
    """Single-round hardware broadcast vs ``log n`` software rounds.

    Returns the software binomial-tree broadcast as rounds — the very
    pattern hardware multicast collapses to *one* frame
    (:meth:`MulticastAssignment.broadcast`).  The motivation bench
    contrasts the two.
    """
    return barrier_fanout_rounds(n, root)


def transpose_permutation(n: int) -> MulticastAssignment:
    """The matrix-transpose permutation on a square processor grid."""
    m = check_network_size(n)
    if m % 2:
        raise ValueError(f"transpose needs an even power of two, got n={n}")
    q = 1 << (m // 2)
    perm = [0] * n
    for i in range(q):
        for j in range(q):
            perm[i * q + j] = j * q + i
    return MulticastAssignment.from_permutation(perm)


def shuffle_permutation(n: int) -> MulticastAssignment:
    """The perfect-shuffle permutation (left bit rotation)."""
    m = check_network_size(n)
    perm = [((i << 1) | (i >> (m - 1))) & (n - 1) for i in range(n)]
    return MulticastAssignment.from_permutation(perm)


def bit_reversal_permutation(n: int) -> MulticastAssignment:
    """The FFT bit-reversal reordering permutation."""
    m = check_network_size(n)

    def rev(i: int) -> int:
        r = 0
        for _ in range(m):
            r = (r << 1) | (i & 1)
            i >>= 1
        return r

    return MulticastAssignment.from_permutation([rev(i) for i in range(n)])
