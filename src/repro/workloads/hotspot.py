"""Hotspot and multi-tenant traffic generators.

Switching fabrics degrade under *skew*: a few popular outputs (hotspot
servers) or a few chatty sources.  A nonblocking multicast network
claims immunity — any *valid* assignment routes — but skew still
changes the internal work profile (where alphas concentrate, how long
epsilon blocks get), so these generators matter for exercising the
scatter/quasisort machinery off the uniform path:

* :func:`hotspot_multicast` — most traffic targets a small hot set of
  outputs (think: popular storage shards); the remaining load is
  uniform background.
* :func:`tenant_partitioned` — the port space is split between tenants;
  each tenant's traffic stays inside its partition (the isolation
  pattern of shared switch deployments).
* :func:`incast_rounds` — many sources target one sink over successive
  frames (the classic datacenter incast, serialised into valid
  one-frame assignments).
* :func:`hotspot_session` — a frame *sequence* drawn from a small pool
  of recurring hotspot assignments (a conference session re-sending the
  same multicast trees frame after frame) — the workload the fast
  engine's plan cache exists for.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.multicast import MulticastAssignment
from ..rbn.permutations import check_network_size

__all__ = [
    "hotspot_multicast",
    "tenant_partitioned",
    "incast_rounds",
    "hotspot_session",
]


def _rng(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def hotspot_multicast(
    n: int,
    hot_outputs: int = 4,
    hot_fraction: float = 0.75,
    seed=0,
) -> MulticastAssignment:
    """Skewed multicast: hot outputs absorb most destination slots.

    ``hot_outputs`` random outputs are always all claimed; of the cold
    outputs only ``hot_fraction``-dependent leftovers are used (roughly
    half by default).  Destination sets are small (1-3 outputs) and the
    hot outputs are handed out first, so early multicasts concentrate
    on the hot region — several connection trees funnel through the
    same sub-network, the skew case uniform generators never produce.

    Args:
        n: network size.
        hot_outputs: size of the hot set (must be <= n).
        hot_fraction: fraction of the cold output space left *unused*
            (higher = more skew), in ``[0, 1]``.
        seed: RNG seed or Generator.
    """
    check_network_size(n)
    if not 1 <= hot_outputs <= n:
        raise ValueError(f"hot_outputs must be in [1, {n}]")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    rng = _rng(seed)
    outs = list(map(int, rng.permutation(n)))
    hot = outs[:hot_outputs]
    cold = outs[hot_outputs:]
    cold_used = cold[: int(len(cold) * (1.0 - hot_fraction))]
    sources = list(map(int, rng.permutation(n)))

    dests: List[Optional[List[int]]] = [None] * n
    pool = list(hot) + cold_used
    si = 0
    while pool:
        src = sources[si]
        si += 1
        take = min(int(rng.integers(1, 4)), len(pool))
        dests[src] = pool[:take]
        pool = pool[take:]
    return MulticastAssignment(n, dests)


def hotspot_session(
    n: int,
    frames: int = 64,
    distinct: int = 8,
    hot_outputs: int = 4,
    seed=0,
) -> List[MulticastAssignment]:
    """A frame sequence of *recurring* hotspot assignments.

    Real multicast traffic repeats: a videoconference or replicated
    write stream re-sends the same connection trees frame after frame,
    only occasionally re-negotiating membership.  This generator draws
    each frame uniformly from a pool of ``distinct`` hotspot
    assignments, so a sequence of ``frames >> distinct`` frames
    exercises plan reuse — the fast engine's
    :class:`~repro.core.fastplan.PlanCache` should answer all but the
    first occurrence of each pool member from cache.

    Args:
        n: network size.
        frames: sequence length.
        distinct: pool size (distinct assignments in the session).
        hot_outputs: hot-set size handed to :func:`hotspot_multicast`.
        seed: RNG seed or Generator.

    Returns:
        A list of ``frames`` assignments containing at most
        ``distinct`` distinct members.
    """
    check_network_size(n)
    if frames < 1 or distinct < 1:
        raise ValueError("frames and distinct must be >= 1")
    rng = _rng(seed)
    pool = [
        hotspot_multicast(n, hot_outputs=hot_outputs, seed=rng)
        for _ in range(distinct)
    ]
    return [pool[int(rng.integers(len(pool)))] for _ in range(frames)]


def tenant_partitioned(
    n: int,
    tenants: int = 4,
    load: float = 0.8,
    seed=0,
) -> MulticastAssignment:
    """Multi-tenant traffic: each tenant multicasts inside its partition.

    The port space is cut into ``tenants`` equal contiguous partitions;
    each tenant independently generates a random multicast among its
    own ports at the given load.  Isolation here is a *workload*
    property (the network itself imposes none) — the test value is that
    per-partition traffic exercises the BRSMN's deeper recursion levels
    heavily while the top levels mostly pass through.

    Args:
        n: network size; ``tenants`` must divide it into power-of-two
            partitions of size >= 2.
    """
    check_network_size(n)
    part = n // tenants
    if tenants * part != n or part < 2 or part & (part - 1):
        raise ValueError(
            f"{tenants} tenants must split n={n} into equal power-of-two "
            "partitions of size >= 2"
        )
    rng = _rng(seed)
    dests: List[Optional[List[int]]] = [None] * n
    for t in range(tenants):
        base = t * part
        ports = [base + int(p) for p in rng.permutation(part)]
        k = int(round(load * part))
        used = ports[:k]
        sources = [base + int(s) for s in rng.permutation(part)]
        si = 0
        while used:
            take = min(int(rng.integers(1, part + 1)), len(used))
            dests[sources[si]] = used[:take]
            used = used[take:]
            si += 1
    return MulticastAssignment(n, dests)


def incast_rounds(
    n: int,
    sink: int = 0,
    senders: Optional[int] = None,
    seed=0,
) -> List[MulticastAssignment]:
    """Datacenter incast: many sources to one sink, one per frame.

    A single frame can deliver only one message to the sink (an output
    hears one input), so incast is inherently multi-frame: round ``k``
    carries sender ``k``'s unicast to the sink, plus uniform background
    traffic on the other ports so each frame still loads the fabric.

    Args:
        n: network size.
        sink: the victim output.
        senders: number of rounds (default ``n - 1``).
        seed: RNG seed or Generator.
    """
    check_network_size(n)
    if not 0 <= sink < n:
        raise ValueError(f"sink {sink} out of range")
    rng = _rng(seed)
    count = senders if senders is not None else n - 1
    others = [i for i in range(n) if i != sink]
    rounds: List[MulticastAssignment] = []
    for k in range(count):
        sender = others[k % len(others)]
        dests: List[Optional[List[int]]] = [None] * n
        dests[sender] = [sink]
        # background: a random partial permutation on the other ports
        free_out = [int(o) for o in rng.permutation(n) if o != sink]
        free_in = [int(i) for i in rng.permutation(n) if i != sender]
        background = len(free_out) // 2
        for i, o in zip(free_in[:background], free_out[:background]):
            dests[i] = [o]
        rounds.append(MulticastAssignment(n, dests))
    return rounds
