"""Telecom scenario workloads (video conferencing, replicated databases).

The paper's introduction names multicast as "a critical operation for
video/teleconference calls, video-on-demand services and distance
learning" and for "updates in replicated and distributed databases".
These generators model such systems as sequences of multicast frames:

* :func:`videoconference_frames` — a switch hosting several concurrent
  conferences; per frame, each conference's current speaker multicasts
  to the other participants.
* :func:`vod_frames` — video-on-demand: a few server ports each
  streaming to a (Zipf-skewed) audience of subscriber ports.
* :func:`replicated_db_frames` — a primary commits updates to its
  replica group; several independent shard groups per frame.

All generators take seeds and return lists of
:class:`~repro.core.multicast.MulticastAssignment` (one per frame), so
benches can replay a realistic session through any network
implementation.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.multicast import MulticastAssignment
from ..rbn.permutations import check_network_size

__all__ = ["videoconference_frames", "vod_frames", "replicated_db_frames"]


def _rng(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def videoconference_frames(
    n: int,
    conferences: int = 4,
    frames: int = 32,
    seed=0,
) -> List[MulticastAssignment]:
    """A multi-conference switch session.

    Ports are partitioned into ``conferences`` disjoint groups (plus
    possibly idle ports).  Every frame, each conference picks one
    member as the active speaker; the speaker's input multicasts to
    all *other* members' outputs.

    Args:
        n: switch size.
        conferences: number of concurrent conferences (each needs >= 2
            ports).
        frames: number of frames to generate.
        seed: RNG seed or Generator.
    """
    check_network_size(n)
    if conferences * 2 > n:
        raise ValueError(
            f"{conferences} conferences need >= {2 * conferences} ports, have {n}"
        )
    rng = _rng(seed)
    ports = rng.permutation(n)
    # Split ports into conference groups of random size >= 2.
    groups: List[List[int]] = []
    remaining = list(map(int, ports))
    spare = len(remaining) - 2 * conferences
    for c in range(conferences):
        extra = int(rng.integers(0, spare + 1)) if spare > 0 else 0
        size = 2 + extra
        spare -= extra
        groups.append(remaining[:size])
        remaining = remaining[size:]
    out: List[MulticastAssignment] = []
    for _ in range(frames):
        dests: List[Optional[List[int]]] = [None] * n
        for group in groups:
            speaker = group[int(rng.integers(len(group)))]
            listeners = [p for p in group if p != speaker]
            dests[speaker] = listeners
        out.append(MulticastAssignment(n, dests))
    return out


def vod_frames(
    n: int,
    servers: int = 2,
    frames: int = 32,
    zipf_a: float = 1.5,
    seed=0,
) -> List[MulticastAssignment]:
    """Video-on-demand streaming with Zipf-skewed channel popularity.

    ``servers`` ports stream channels; the remaining ports subscribe,
    each to one channel chosen Zipf(``zipf_a``) — so one hot channel
    typically has a large multicast tree and the tail channels small
    ones.  Subscriptions re-shuffle slowly across frames (10% churn).
    """
    check_network_size(n)
    if not 1 <= servers < n:
        raise ValueError(f"servers must be in [1, {n}), got {servers}")
    rng = _rng(seed)
    ports = list(map(int, rng.permutation(n)))
    server_ports = ports[:servers]
    subscribers = ports[servers:]
    choice = {
        s: int(min(rng.zipf(zipf_a), servers) - 1) for s in subscribers
    }
    out: List[MulticastAssignment] = []
    for _ in range(frames):
        # churn: ~10% of subscribers re-pick a channel
        for s in subscribers:
            if rng.random() < 0.1:
                choice[s] = int(min(rng.zipf(zipf_a), servers) - 1)
        dests: List[Optional[List[int]]] = [None] * n
        for k, sp in enumerate(server_ports):
            audience = [s for s in subscribers if choice[s] == k]
            if audience:
                dests[sp] = audience
        out.append(MulticastAssignment(n, dests))
    return out


def replicated_db_frames(
    n: int,
    shards: int = 4,
    replicas: int = 3,
    frames: int = 32,
    commit_prob: float = 0.7,
    seed=0,
) -> List[MulticastAssignment]:
    """Replicated-database commit traffic.

    ``shards`` primaries each own a disjoint replica group of
    ``replicas`` ports.  Per frame, each primary independently commits
    (probability ``commit_prob``), multicasting the update to its
    replica group.

    Args:
        n: network size; needs ``shards * (1 + replicas) <= n``.
    """
    check_network_size(n)
    need = shards * (1 + replicas)
    if need > n:
        raise ValueError(f"need {need} ports for this topology, have {n}")
    rng = _rng(seed)
    ports = list(map(int, rng.permutation(n)))
    primaries = []
    groups = []
    pos = 0
    for _ in range(shards):
        primaries.append(ports[pos])
        groups.append(ports[pos + 1 : pos + 1 + replicas])
        pos += 1 + replicas
    out: List[MulticastAssignment] = []
    for _ in range(frames):
        dests: List[Optional[List[int]]] = [None] * n
        for p, grp in zip(primaries, groups):
            if rng.random() < commit_prob:
                dests[p] = list(grp)
        out.append(MulticastAssignment(n, dests))
    return out
