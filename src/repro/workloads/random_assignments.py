"""Random multicast-assignment generators.

All generators are deterministic given a seed (they draw from a
:class:`numpy.random.Generator`) and always produce *valid*
assignments — destination sets pairwise disjoint — so every generated
workload is routable by a nonblocking multicast network by definition.

Knobs:

* ``load`` — the fraction of outputs that receive a message;
* fanout discipline — how the used outputs are grouped into
  destination sets (uniform random, geometric "few big trees",
  fixed-fanout, permutation).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.multicast import MulticastAssignment
from ..rbn.permutations import check_network_size

__all__ = [
    "random_multicast",
    "random_permutation",
    "random_partial_permutation",
    "fixed_fanout_multicast",
    "geometric_multicast",
    "broadcast_heavy",
    "assignment_suite",
]


def _rng(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def _partition_outputs(
    used: np.ndarray, sources: List[int], sizes: Sequence[int], n: int
) -> MulticastAssignment:
    dests: List[Optional[List[int]]] = [None] * n
    pos = 0
    for src, k in zip(sources, sizes):
        dests[src] = [int(d) for d in used[pos : pos + k]]
        pos += k
    return MulticastAssignment(n, dests)


def random_multicast(
    n: int, load: float = 1.0, seed=0, max_fanout: Optional[int] = None
) -> MulticastAssignment:
    """A uniformly random multicast assignment.

    The ``round(load * n)`` used outputs are shuffled and cut into
    destination sets of uniformly random sizes, assigned to distinct
    random inputs.

    Args:
        n: network size.
        load: fraction of outputs used, in ``[0, 1]``.
        seed: RNG seed or Generator.
        max_fanout: optional cap on destination-set size.
    """
    check_network_size(n)
    if not 0.0 <= load <= 1.0:
        raise ValueError(f"load must be in [0, 1], got {load}")
    rng = _rng(seed)
    k = int(round(load * n))
    used = rng.permutation(n)[:k]
    sources = [int(s) for s in rng.permutation(n)]
    cap = max_fanout if max_fanout is not None else n
    sizes: List[int] = []
    remaining = k
    while remaining > 0:
        take = int(rng.integers(1, min(remaining, cap) + 1))
        sizes.append(take)
        remaining -= take
    return _partition_outputs(used, sources[: len(sizes)], sizes, n)


def random_permutation(n: int, seed=0) -> MulticastAssignment:
    """A uniformly random full permutation assignment."""
    check_network_size(n)
    rng = _rng(seed)
    return MulticastAssignment.from_permutation(
        [int(p) for p in rng.permutation(n)]
    )


def random_partial_permutation(n: int, load: float = 0.5, seed=0) -> MulticastAssignment:
    """A random partial permutation: ``round(load * n)`` unicasts."""
    check_network_size(n)
    rng = _rng(seed)
    k = int(round(load * n))
    ins = rng.permutation(n)[:k]
    outs = rng.permutation(n)[:k]
    perm: List[Optional[int]] = [None] * n
    for i, o in zip(ins, outs):
        perm[int(i)] = int(o)
    return MulticastAssignment.from_permutation(perm)


def fixed_fanout_multicast(n: int, fanout: int, seed=0) -> MulticastAssignment:
    """Every active input multicasts to exactly ``fanout`` outputs.

    Uses ``n // fanout`` active inputs covering ``(n // fanout) *
    fanout`` outputs.
    """
    check_network_size(n)
    if not 1 <= fanout <= n:
        raise ValueError(f"fanout must be in [1, {n}], got {fanout}")
    rng = _rng(seed)
    groups = n // fanout
    used = rng.permutation(n)[: groups * fanout]
    sources = [int(s) for s in rng.permutation(n)[:groups]]
    return _partition_outputs(used, sources, [fanout] * groups, n)


def geometric_multicast(n: int, p: float = 0.5, load: float = 1.0, seed=0) -> MulticastAssignment:
    """Geometric fanout distribution: few big trees, many unicasts.

    Destination-set sizes are drawn geometric(``p``) (so mean ``1/p``),
    truncated to the outputs still available.
    """
    check_network_size(n)
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
    rng = _rng(seed)
    k = int(round(load * n))
    used = rng.permutation(n)[:k]
    sources = [int(s) for s in rng.permutation(n)]
    sizes: List[int] = []
    remaining = k
    while remaining > 0:
        take = min(int(rng.geometric(p)), remaining)
        sizes.append(take)
        remaining -= take
    return _partition_outputs(used, sources[: len(sizes)], sizes, n)


def broadcast_heavy(n: int, broadcasters: int = 1, seed=0) -> MulticastAssignment:
    """A few inputs share the whole output space evenly.

    The extreme-fanout stress case: ``broadcasters`` inputs each
    multicast to ``n / broadcasters`` outputs (maximum alpha-splitting
    work per BSN level).
    """
    check_network_size(n)
    if not 1 <= broadcasters <= n:
        raise ValueError(f"broadcasters must be in [1, {n}]")
    rng = _rng(seed)
    used = rng.permutation(n)
    sources = [int(s) for s in rng.permutation(n)[:broadcasters]]
    base = n // broadcasters
    sizes = [base] * broadcasters
    for i in range(n - base * broadcasters):
        sizes[i] += 1
    return _partition_outputs(used, sources, sizes, n)


def assignment_suite(n: int, seed=0) -> List[MulticastAssignment]:
    """A representative workload mix for one size (bench convenience).

    Covers: full/partial permutations, uniform multicast at three
    loads, fixed fanout, geometric fanout and a near-broadcast.
    """
    rng = _rng(seed)
    return [
        random_permutation(n, rng),
        random_partial_permutation(n, 0.5, rng),
        random_multicast(n, 1.0, rng),
        random_multicast(n, 0.75, rng),
        random_multicast(n, 0.25, rng),
        fixed_fanout_multicast(n, min(4, n), rng),
        geometric_multicast(n, 0.5, 1.0, rng),
        broadcast_heavy(n, 1, rng),
        broadcast_heavy(n, max(2, n // 8), rng),
    ]
