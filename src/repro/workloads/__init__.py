"""Workload generators: the traffic the benches and tests route.

* :mod:`~repro.workloads.random_assignments` — seeded random multicast
  assignments with load / fanout knobs;
* :mod:`~repro.workloads.patterns` — parallel-computing patterns the
  paper's introduction motivates (matrix multiply, FFT, barriers,
  classic permutations);
* :mod:`~repro.workloads.scenarios` — telecom sessions (video
  conferencing, video-on-demand, replicated databases).
"""

from .hotspot import (
    hotspot_multicast,
    hotspot_session,
    incast_rounds,
    tenant_partitioned,
)
from .patterns import (
    barrier_fanout_rounds,
    bit_reversal_permutation,
    fft_butterfly_rounds,
    matrix_multiply_rounds,
    shuffle_permutation,
    transpose_permutation,
    tree_broadcast_rounds,
)
from .random_assignments import (
    assignment_suite,
    broadcast_heavy,
    fixed_fanout_multicast,
    geometric_multicast,
    random_multicast,
    random_partial_permutation,
    random_permutation,
)
from .scenarios import replicated_db_frames, videoconference_frames, vod_frames

__all__ = [
    "hotspot_multicast",
    "hotspot_session",
    "incast_rounds",
    "tenant_partitioned",
    "barrier_fanout_rounds",
    "bit_reversal_permutation",
    "fft_butterfly_rounds",
    "matrix_multiply_rounds",
    "shuffle_permutation",
    "transpose_permutation",
    "tree_broadcast_rounds",
    "assignment_suite",
    "broadcast_heavy",
    "fixed_fanout_multicast",
    "geometric_multicast",
    "random_multicast",
    "random_partial_permutation",
    "random_permutation",
    "replicated_db_frames",
    "videoconference_frames",
    "vod_frames",
]
