"""Exception hierarchy for the BRSMN reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class.  The hierarchy distinguishes *user* errors (invalid
assignments, bad network sizes) from *internal invariant violations*
(conditions the paper proves can never occur — e.g. a broadcast switch
whose inputs are not an (alpha, epsilon) pair).  Internal violations are a
bug in either the implementation or the paper's claims, and tests rely on
them being raised eagerly.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NetworkSizeError",
    "InvalidAssignmentError",
    "InvalidTagError",
    "RoutingInvariantError",
    "BlockingError",
    "ReproDeprecationWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class NetworkSizeError(ReproError, ValueError):
    """Raised when a network size is not a power of two (or is < 2)."""


class InvalidAssignmentError(ReproError, ValueError):
    """Raised when a multicast assignment violates the paper's model.

    A valid assignment ``{I_0, ..., I_{n-1}}`` (Section 2) requires the
    destination sets to be pairwise disjoint subsets of
    ``{0, ..., n-1}``.
    """


class InvalidTagError(ReproError, ValueError):
    """Raised when a routing-tag value or tag sequence is malformed."""


class RoutingInvariantError(ReproError, RuntimeError):
    """An invariant the paper proves always holds was violated.

    Examples: a broadcast switch whose inputs are not an
    (alpha-message, empty) pair; a merge that does not produce the
    circular compact sequence a lemma promises; an epsilon-dividing
    count going negative.
    """


class BlockingError(ReproError, RuntimeError):
    """Raised when two messages contend for one link or output.

    The BRSMN is nonblocking for every valid multicast assignment, so
    this error firing on a valid assignment indicates an implementation
    bug; baselines that *can* block (none in this library by default)
    would raise it legitimately.
    """


class ReproDeprecationWarning(DeprecationWarning):
    """A deprecated :mod:`repro` API was used.

    Distinct from the builtin so the test suite can turn *first-party*
    deprecations into hard errors (``pyproject.toml`` registers
    ``error::repro.errors.ReproDeprecationWarning``) without tripping
    on deprecations raised by third-party dependencies.
    """
