"""Multi-replica serving tier over independent fabrics.

The cluster layer scales the library *out* where everything below it
scales *up*: K independent
:class:`~repro.core.fabric.MulticastFabric` replicas behind one
deterministic facade, with plan-affinity placement (rendezvous hashing
on assignment fingerprints keeps repeated assignments on the replica
that already compiled their plan), health-aware failover (open breaker
or quarantined primary deprioritizes a replica; a killed replica's
in-flight frame requeues exactly once to a sibling, bit-identically),
and zero-loss rolling restarts (drain, snapshot, warm-restore a
successor, re-admit — all on the frame clock, so seeded campaigns
replay exactly).  See ``docs/cluster.md``.
"""

from .cluster import ClusterStats, ClusterUnavailableError, FabricCluster
from .config import ClusterConfig
from .replica import FabricReplica, ReplicaDownError, ReplicaState
from .restart import RollingRestart
from .router import ClusterRouter

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "ClusterStats",
    "ClusterUnavailableError",
    "FabricCluster",
    "FabricReplica",
    "ReplicaDownError",
    "ReplicaState",
    "RollingRestart",
]
