"""Declarative configuration of a multi-replica fabric cluster.

A :class:`ClusterConfig` composes with the per-replica
:class:`~repro.core.config.NetworkConfig`: the cluster tier decides *how
many* fabrics serve and *which one* gets each frame, while everything
about how a single replica routes — engine, workers, executor, fault
plan, admission, control — stays on the network config it already lives
on.  Every replica is built from the **same** network config, which is
what makes cluster routing bit-identical to a single fabric: routing is
a pure function of (config, assignment), so it cannot matter which
replica serves a frame.

One deliberate restriction: ``network.snapshot_path`` must be unset.
Snapshot persistence is a *cluster* concern here — K replicas sharing
one path would clobber each other, and
:class:`~repro.cluster.restart.RollingRestart` captures/restores
snapshots itself at drain time (``snapshot_dir`` names where they go).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..core.config import NetworkConfig

__all__ = ["ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """Frozen description of a fabric cluster.

    Attributes:
        replicas: number of independent fabric replicas (>= 1).
        network: the per-replica :class:`~repro.core.config.NetworkConfig`
            (identical for every replica; its ``snapshot_path`` must be
            ``None`` — the cluster manages snapshots).
        placement_seed: seed mixed into the rendezvous placement hash,
            so distinct clusters spread the same workload differently
            while each cluster stays replay-deterministic.
        spill_over: when True (default), a frame shed by its home
            replica's admission gate is offered to the remaining
            candidates in placement order before being shed
            cluster-wide.
        drain_frames: rolling-restart drain window — cluster
            submissions a DRAINING replica waits (receiving no new
            placements) before its snapshot/swap completes.
        snapshot_dir: directory where rolling restarts persist each
            replica's :class:`~repro.resilience.snapshot.FabricSnapshot`
            (``None``: snapshots are handed over in memory only).
    """

    replicas: int
    network: NetworkConfig
    placement_seed: int = 0
    spill_over: bool = True
    drain_frames: int = 4
    snapshot_dir: Optional[str] = None

    def __post_init__(self):
        if not isinstance(self.replicas, int) or isinstance(
            self.replicas, bool
        ):
            raise TypeError(
                f"replicas must be an int, got {type(self.replicas).__name__}"
            )
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if not isinstance(self.network, NetworkConfig):
            raise TypeError(
                "network must be a NetworkConfig, got "
                f"{type(self.network).__name__}"
            )
        if self.network.snapshot_path is not None:
            raise ValueError(
                "network.snapshot_path must be None in a cluster: rolling "
                "restarts manage snapshots (set ClusterConfig.snapshot_dir "
                "to persist them)"
            )
        if not isinstance(self.placement_seed, int) or isinstance(
            self.placement_seed, bool
        ):
            raise TypeError(
                "placement_seed must be an int, got "
                f"{type(self.placement_seed).__name__}"
            )
        if not isinstance(self.drain_frames, int) or isinstance(
            self.drain_frames, bool
        ):
            raise TypeError(
                "drain_frames must be an int, got "
                f"{type(self.drain_frames).__name__}"
            )
        if self.drain_frames < 0:
            raise ValueError(
                f"drain_frames must be >= 0, got {self.drain_frames}"
            )

    def derive(self, **overrides) -> "ClusterConfig":
        """A copy with ``overrides`` applied (and re-validated)."""
        return dataclasses.replace(self, **overrides)
