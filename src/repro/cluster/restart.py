"""Zero-loss rolling restarts, driven by the cluster's frame clock.

A :class:`RollingRestart` cycles each replica through::

    drain (no new placements) --> snapshot --> swap in a fresh fabric
        --> warm-restore --> re-admit (UP, generation + 1)

Everything is keyed to the cluster's frame counter, not wall time, so a
seeded campaign replays exactly: the drain starts when frame ``t`` is
submitted, and the snapshot/swap/restore happens *between* frames
``t + drain_frames - 1`` and ``t + drain_frames``.  Because a DRAINING
replica takes no new placements and the swap is frame-synchronous,
no admitted frame is ever in flight on a replica being swapped — which
is why a rolling restart loses zero frames by construction, and the
property tests can demand exact accounting rather than a loss bound.

The successor fabric warm-restores from the drained replica's
:class:`~repro.resilience.snapshot.FabricSnapshot` (persisted under
``snapshot_dir`` when configured), so the plan cache — the thing the
plan-affinity router works to keep hot — survives the restart.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from .replica import ReplicaState

__all__ = ["RollingRestart"]


class RollingRestart:
    """A frame-scheduled restart campaign over a cluster's replicas.

    Args:
        cluster: the :class:`~repro.cluster.cluster.FabricCluster`
            whose ``submit`` clock drives the campaign (attach via
            :meth:`FabricCluster.rolling_restart`).
        drain_frames: cluster submissions between a replica's drain and
            its swap (default: the cluster config's).
        snapshot_dir: persist each drained replica's snapshot as
            ``replica-<i>.json`` here (default: the cluster config's;
            ``None`` hands the snapshot over in memory only).
    """

    def __init__(self, cluster, drain_frames=None, snapshot_dir=None):
        self.cluster = cluster
        self.drain_frames = (
            cluster.config.drain_frames
            if drain_frames is None
            else drain_frames
        )
        if self.drain_frames < 0:
            raise ValueError(
                f"drain_frames must be >= 0, got {self.drain_frames}"
            )
        self.snapshot_dir = (
            cluster.config.snapshot_dir
            if snapshot_dir is None
            else snapshot_dir
        )
        self._begin: Dict[int, List[int]] = {}
        self._finish: Dict[int, List[int]] = {}
        self.completed: List[int] = []

    def schedule(self, replica: int, at_frame: int) -> None:
        """Drain replica ``replica`` when frame ``at_frame`` arrives;
        swap/restore ``drain_frames`` submissions later."""
        if not 0 <= replica < len(self.cluster.replicas):
            raise ValueError(
                f"replica index {replica} out of range "
                f"[0, {len(self.cluster.replicas)})"
            )
        if at_frame < self.cluster.frame_index:
            raise ValueError(
                f"cannot schedule a restart at frame {at_frame}: the "
                f"cluster is already at frame {self.cluster.frame_index}"
            )
        self._begin.setdefault(at_frame, []).append(replica)

    def plan_campaign(self, total_frames: int) -> None:
        """Spread one restart per replica evenly across a campaign of
        ``total_frames`` submissions (replica ``i`` drains at frame
        ``(i + 1) * total_frames // (K + 1)``)."""
        count = len(self.cluster.replicas)
        for i in range(count):
            self.schedule(i, (i + 1) * total_frames // (count + 1))

    def on_frame(self, index: int) -> None:
        """Advance the campaign to cluster frame ``index`` (called by
        :meth:`FabricCluster.submit` before placement)."""
        for rid in self._begin.pop(index, ()):
            self._start(rid, index)
        for rid in self._finish.pop(index, ()):
            self._complete(rid)

    def flush(self) -> None:
        """Finish every pending cycle now (campaign over: nothing may
        be left draining)."""
        pending: List[int] = []
        for index in sorted(self._begin):
            for rid in self._begin[index]:
                if self._drain(rid):
                    pending.append(rid)
        self._begin.clear()
        for index in sorted(self._finish):
            pending.extend(self._finish[index])
        self._finish.clear()
        for rid in pending:
            self._complete(rid)

    @property
    def pending(self) -> int:
        """Cycles not yet completed."""
        return sum(len(v) for v in self._begin.values()) + sum(
            len(v) for v in self._finish.values()
        )

    # -- internals -----------------------------------------------------
    def _drain(self, rid: int) -> bool:
        replica = self.cluster.replicas[rid]
        if not replica.alive:
            # Killed before its restart slot: the cycle still runs, as
            # a cold restart (there is no fabric left to snapshot).
            return True
        replica.drain()
        self.cluster._emit("drain", replica=rid)
        self.cluster._emit_state(replica)
        return True

    def _start(self, rid: int, index: int) -> None:
        if self._drain(rid):
            self._finish.setdefault(
                index + self.drain_frames, []
            ).append(rid)

    def _complete(self, rid: int) -> None:
        cluster = self.cluster
        replica = cluster.replicas[rid]
        snap = None
        if replica.state is not ReplicaState.DOWN:
            snap = replica.snapshot()
            cluster._emit(
                "snapshot", replica=rid, frames=len(snap.assignments)
            )
            if self.snapshot_dir is not None:
                snap.save(
                    os.path.join(self.snapshot_dir, f"replica-{rid}.json")
                )
        warmed = replica.restart(snap)
        cluster.stats.restarts += 1
        cluster._emit("restore", replica=rid, plans=warmed)
        cluster._emit("readmit", replica=rid)
        cluster._emit_state(replica)
        self.completed.append(rid)
