"""One cluster member: a fabric plus its serving lifecycle.

A :class:`FabricReplica` wraps a
:class:`~repro.core.fabric.MulticastFabric` with the state machine the
cluster tier routes around::

    UP --(drain)--> DRAINING --(restart)--> UP     (generation + 1)
    UP / DRAINING --(kill)--> DOWN --(restart)--> UP

``UP`` replicas take new placements; ``DRAINING`` replicas take no new
placements but are still alive (a cluster whose every replica is
draining falls back to them rather than refusing traffic); ``DOWN``
replicas serve nothing — a frame placed on a replica that goes down
before service is requeued to a sibling by the cluster.

The replica also carries the *impairment* signal the router uses for
health-aware balancing: a replica whose circuit breaker is open or
whose :class:`~repro.faults.health.HealthTracker` has quarantined the
primary plane still serves (on its standby plane), but new placements
prefer unimpaired siblings.
"""

from __future__ import annotations

import enum

from ..core.fabric import MulticastFabric
from ..errors import ReproError

__all__ = ["FabricReplica", "ReplicaDownError", "ReplicaState"]


def is_shed(result) -> bool:
    """True for an admission-gate :class:`~repro.resilience.gate.ShedFrame`.

    A type test, not ``result.ok`` — a lost-terminal
    :class:`~repro.faults.healing.DegradedResult` is also falsy on
    ``ok`` but *was served* (fault losses are accounted, not retried on
    a sibling: the siblings share the same fault plan).
    """
    from ..resilience.gate import ShedFrame  # deferred: cycle

    return isinstance(result, ShedFrame)


class ReplicaDownError(ReproError, RuntimeError):
    """Raised when a frame is submitted to a DOWN replica."""


class ReplicaState(str, enum.Enum):
    """Serving lifecycle of one replica."""

    UP = "up"
    DRAINING = "draining"
    DOWN = "down"


class FabricReplica:
    """A :class:`~repro.core.fabric.MulticastFabric` with a lifecycle.

    Args:
        index: stable replica id within the cluster (survives
            restarts — the *fabric* is replaced, the replica is not).
        config: the replica's
            :class:`~repro.core.config.NetworkConfig`; every restart
            rebuilds the fabric from this same config.
        mode: routing mode passed to the fabric.
        strict: verification strictness passed to the fabric.
        retry_policy: optional
            :class:`~repro.faults.healing.RetryPolicy` for fault-aware
            fabrics (stateless config, safe to share across replicas).
        health_factory: optional zero-argument callable returning a
            fresh :class:`~repro.faults.health.HealthTracker` per
            fabric build — health state is *per replica*, so a shared
            tracker instance would corrupt the state machines; a
            factory lets callers pin thresholds fleet-wide.
    """

    def __init__(
        self,
        index: int,
        config,
        mode="selfrouting",
        strict=True,
        retry_policy=None,
        health_factory=None,
    ):
        self.index = index
        self.config = config
        self.mode = mode
        self.strict = strict
        self.retry_policy = retry_policy
        self.health_factory = health_factory
        self.fabric = self._build()
        self.state = ReplicaState.UP
        self.generation = 0
        self.frames_served = 0

    def _build(self) -> MulticastFabric:
        return MulticastFabric(
            self.config,
            mode=self.mode,
            strict=self.strict,
            retry_policy=self.retry_policy,
            health=(
                self.health_factory()
                if self.health_factory is not None
                else None
            ),
        )

    # -- routing-facing signals ----------------------------------------
    @property
    def serving(self) -> bool:
        """True when the replica accepts new placements."""
        return self.state is ReplicaState.UP

    @property
    def alive(self) -> bool:
        """True when the replica can still serve a frame at all."""
        return self.state is not ReplicaState.DOWN

    @property
    def impaired(self) -> bool:
        """True when the router should deprioritize this replica.

        An open circuit breaker or a quarantined primary plane means
        the replica is serving degraded (standby plane, short-circuited
        primary); it remains a valid target but loses placement
        priority to unimpaired siblings.
        """
        fabric = self.fabric
        breaker = getattr(fabric, "breaker", None)
        if breaker is not None and breaker.is_open:
            return True
        health = fabric.health
        return health is not None and not health.use_primary

    # -- serving -------------------------------------------------------
    def submit(self, assignment, priority: int = 0):
        """Route one frame on this replica's fabric."""
        if self.state is ReplicaState.DOWN:
            raise ReplicaDownError(
                f"replica {self.index} is down (generation "
                f"{self.generation})"
            )
        result = self.fabric.submit(assignment, priority=priority)
        if not is_shed(result):
            self.frames_served += 1
        return result

    # -- lifecycle -----------------------------------------------------
    def drain(self) -> None:
        """Stop taking new placements; keep serving what arrives."""
        if self.state is ReplicaState.UP:
            self.state = ReplicaState.DRAINING

    def kill(self) -> None:
        """Crash the replica: no snapshot, pools released, state DOWN.

        Idempotent.  The wrapped fabric never carries a
        ``snapshot_path`` (:class:`~repro.cluster.config.ClusterConfig`
        forbids it), so closing here persists nothing — a kill is a
        crash, not a graceful handover.
        """
        if self.state is ReplicaState.DOWN:
            return
        self.state = ReplicaState.DOWN
        self.fabric.close()

    def snapshot(self):
        """Capture the fabric's warm-restart
        :class:`~repro.resilience.snapshot.FabricSnapshot`."""
        return self.fabric.snapshot()

    def restart(self, snapshot=None) -> int:
        """Replace the fabric with a fresh one (warm when given a
        snapshot); the replica re-enters UP with ``generation + 1``.

        Returns the number of plans warmed (0 on a cold restart).
        """
        if self.state is not ReplicaState.DOWN:
            self.fabric.close()
        self.fabric = self._build()
        warmed = 0
        if snapshot is not None:
            warmed = snapshot.restore(self.fabric)
        self.state = ReplicaState.UP
        self.generation += 1
        return warmed

    def close(self) -> None:
        """Release the fabric's resources (idempotent; state unchanged
        unless the replica was serving, in which case it goes DOWN)."""
        if self.state is ReplicaState.DOWN:
            return
        self.state = ReplicaState.DOWN
        self.fabric.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FabricReplica(index={self.index}, state={self.state.value}, "
            f"generation={self.generation}, served={self.frames_served})"
        )
