"""Plan-affinity placement: rendezvous hashing over replicas.

The cluster's win condition is keeping the *cluster-wide* plan-cache
hit rate near single-fabric levels: a repeated assignment must land on
the replica that already compiled its
:class:`~repro.core.fastplan.FramePlan`.  :class:`ClusterRouter` does
this with rendezvous (highest-random-weight) hashing keyed on the
assignment's content fingerprint
(:func:`~repro.core.serialization.assignment_fingerprint`):

* every (fingerprint, replica) pair hashes to a weight; the frame's
  candidate order is the replicas sorted by descending weight,
* the same fingerprint always produces the same order (placement is a
  pure function of fingerprint, seed and the replica id set), so
  repeated assignments stick to their home replica,
* removing a replica only re-homes the fingerprints whose top choice
  it was — every other assignment keeps its warm cache (the classic
  rendezvous minimal-disruption property),
* a ``seed`` is mixed into every weight so distinct clusters spread
  the same workload differently, deterministically.

Health-aware balancing is layered on top: serving (UP) replicas are
partitioned into unimpaired and impaired (open breaker / quarantined
primary), each partition keeps rendezvous order, and impaired replicas
go to the back.  DOWN replicas never appear; DRAINING replicas are
offered only when nothing else serves (they are alive — refusing
traffic during a single-replica rolling restart would lose frames).
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

from .replica import FabricReplica, ReplicaState

__all__ = ["ClusterRouter"]


class ClusterRouter:
    """Deterministic rendezvous placement with health-aware ordering.

    Args:
        seed: mixed into every placement weight; two routers with the
            same seed produce identical placements.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed

    def weight(self, fingerprint: str, replica_index: int) -> str:
        """The rendezvous weight of one (assignment, replica) pair.

        A hex sha256 digest — compared lexicographically, which is
        exactly comparing the 256-bit integers, so ordering is
        deterministic across platforms and Python hash randomization.
        """
        key = f"{self.seed}:{replica_index}:{fingerprint}"
        return hashlib.sha256(key.encode("ascii")).hexdigest()

    def order(
        self, fingerprint: str, replicas: Sequence[FabricReplica]
    ) -> List[FabricReplica]:
        """Candidate replicas for one frame, best first.

        UP replicas in rendezvous order, unimpaired before impaired;
        when no replica is UP, the DRAINING ones (same ordering) so a
        fully-draining cluster still serves.  DOWN replicas are never
        returned.  Empty means the cluster has no alive replica.
        """

        def ranked(pool: List[FabricReplica]) -> List[FabricReplica]:
            healthy = [r for r in pool if not r.impaired]
            impaired = [r for r in pool if r.impaired]
            key = lambda r: (self.weight(fingerprint, r.index), r.index)
            return sorted(healthy, key=key, reverse=True) + sorted(
                impaired, key=key, reverse=True
            )

        up = [r for r in replicas if r.state is ReplicaState.UP]
        if up:
            return ranked(up)
        draining = [
            r for r in replicas if r.state is ReplicaState.DRAINING
        ]
        return ranked(draining)
