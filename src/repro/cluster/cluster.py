"""The cluster facade: K fabrics behind one deterministic ``submit``.

:class:`FabricCluster` is the serving tier the ROADMAP's "heavy
traffic" goal needs above a single
:class:`~repro.core.fabric.MulticastFabric`: K independent replicas,
plan-affinity placement (:class:`~repro.cluster.router.ClusterRouter`),
health-aware failover and zero-loss rolling restarts
(:class:`~repro.cluster.restart.RollingRestart`).

Determinism contract
--------------------

Cluster routing is **bit-identical** to routing the same frame sequence
through one fabric built from the same
:class:`~repro.core.config.NetworkConfig`: every replica is built from
that config, and routing is a pure function of (config, assignment), so
the serving replica cannot change the result.  Placement itself is a
pure function of (assignment fingerprint, placement seed, replica
states), kills and restarts are keyed to the frame counter, and the
summary carries no wall-clock fields — a seeded campaign replays to a
byte-identical summary.  With a fault plan, two kinds of *per-plane
session state* qualify the cross-replica-count contract: the
attempt-indexed ``flaky_link`` drop masks (bit-identity holds for the
attempt-independent kinds — ``stuck_at`` and ``dead_switch``), and the
:class:`~repro.faults.health.HealthTracker` quarantine machine, whose
transitions depend on which frames each replica saw (pin its
thresholds via ``health_factory`` for strict bit-identity); see
``docs/cluster.md``.

Failure semantics
-----------------

A replica killed after a frame was placed on it (a scheduled
``kill_replica(i, at_frame=f)`` lands between placement and service,
modeling an in-flight loss) has that frame **requeued exactly once** to
the next candidate in placement order.  A frame shed by its home
replica's admission gate spills over to the remaining candidates before
being shed cluster-wide.  Accounting is exact: every submitted frame
ends served (``stats.frames``) or shed (``stats.shed_frames``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Dict, Iterable, List, Optional

from ..core.serialization import assignment_fingerprint
from ..errors import ReproError
from ..obs.events import ClusterEvent
from .config import ClusterConfig
from .replica import FabricReplica, ReplicaState, is_shed
from .router import ClusterRouter

__all__ = ["ClusterStats", "ClusterUnavailableError", "FabricCluster"]


class ClusterUnavailableError(ReproError, RuntimeError):
    """Raised when no alive replica remains to serve a frame."""


@dataclass
class ClusterStats:
    """Aggregate statistics of one cluster session.

    Attributes:
        frames: frames served by some replica.
        deliveries: verified terminal deliveries (degraded frames count
            their delivered terminals; lost terminals are excluded).
        shed_frames: frames refused by every tried replica's admission
            gate (never routed; disjoint from ``frames``).
        requeues: frames whose home replica died in flight and were
            requeued (exactly once) to a sibling.
        spillovers: frames shed by their home replica and admitted by a
            sibling.
        degraded_frames / lost_frames / lost_terminals /
        recovered_terminals: fault-campaign accounting, summed over the
            serving replicas.
        plan_cache_hits / plan_cache_misses: cluster-wide plan cache
            traffic — the plan-affinity router's figure of merit.
        kills: replicas crashed (scheduled or immediate).
        restarts: rolling-restart cycles completed.
        per_replica: replica index -> frames served.
    """

    frames: int = 0
    deliveries: int = 0
    shed_frames: int = 0
    requeues: int = 0
    spillovers: int = 0
    degraded_frames: int = 0
    lost_frames: int = 0
    lost_terminals: int = 0
    recovered_terminals: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    kills: int = 0
    restarts: int = 0
    per_replica: Counter = field(default_factory=Counter)

    @property
    def plan_cache_hit_rate(self) -> float:
        """Fraction of fast-engine frames answered from a plan cache."""
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0


class FabricCluster:
    """K independent fabric replicas behind one deterministic facade.

    Args:
        config: a :class:`~repro.cluster.config.ClusterConfig`.  Every
            replica is built from ``config.network``; the observer on
            that config (e.g. a thread-safe
            :class:`~repro.obs.MetricsObserver`) is shared by the
            replicas *and* receives the cluster's own
            :class:`~repro.obs.events.ClusterEvent` stream
            (``repro_cluster_*`` metric families).
        mode: routing mode for every frame.
        strict: verification strictness (see
            :class:`~repro.core.fabric.MulticastFabric`).
        retry_policy: optional healing
            :class:`~repro.faults.healing.RetryPolicy` shared by every
            replica (stateless config).
        health_factory: optional zero-argument callable returning a
            fresh :class:`~repro.faults.health.HealthTracker` per
            fabric build, so fleet-wide health thresholds can be
            pinned without sharing mutable tracker state.
    """

    def __init__(
        self,
        config: ClusterConfig,
        mode="selfrouting",
        strict=True,
        retry_policy=None,
        health_factory=None,
    ):
        if not isinstance(config, ClusterConfig):
            raise TypeError(
                f"config must be a ClusterConfig, got {type(config).__name__}"
            )
        self.config = config
        self.n = config.network.n
        self.observer = config.network.observer
        self.router = ClusterRouter(config.placement_seed)
        self.replicas: List[FabricReplica] = [
            FabricReplica(
                i,
                config.network,
                mode=mode,
                strict=strict,
                retry_policy=retry_policy,
                health_factory=health_factory,
            )
            for i in range(config.replicas)
        ]
        self.stats = ClusterStats()
        self._frame_index = 0
        self._kills: Dict[int, List[int]] = {}
        self._restart = None
        for replica in self.replicas:
            self._emit_state(replica)

    # -- observability -------------------------------------------------
    def _emit(self, action: str, **kw) -> None:
        obs = self.observer
        if obs is not None and obs.enabled:
            obs.on_cluster(
                ClusterEvent(action=action, t_ns=perf_counter_ns(), **kw)
            )

    def _emit_state(self, replica: FabricReplica) -> None:
        self._emit(
            "state",
            replica=replica.index,
            state=replica.state.value,
            up=self.up_count,
        )

    @property
    def up_count(self) -> int:
        """Replicas currently accepting new placements."""
        return sum(1 for r in self.replicas if r.state is ReplicaState.UP)

    @property
    def frame_index(self) -> int:
        """Frames submitted so far (the kill/restart schedule clock)."""
        return self._frame_index

    # -- lifecycle -----------------------------------------------------
    def kill_replica(self, index: int, at_frame: Optional[int] = None):
        """Crash replica ``index`` — now, or when frame ``at_frame`` is
        in flight (between its placement and its service, so the frame
        requeues to a sibling; that is the in-flight-loss model the
        determinism tests pin down)."""
        if not 0 <= index < len(self.replicas):
            raise ValueError(
                f"replica index {index} out of range "
                f"[0, {len(self.replicas)})"
            )
        if at_frame is not None:
            if at_frame < self._frame_index:
                raise ValueError(
                    f"cannot schedule a kill at frame {at_frame}: the "
                    f"cluster is already at frame {self._frame_index}"
                )
            self._kills.setdefault(at_frame, []).append(index)
            return
        replica = self.replicas[index]
        if replica.state is ReplicaState.DOWN:
            return
        replica.kill()
        self.stats.kills += 1
        self._emit("killed", replica=index)
        self._emit_state(replica)

    def rolling_restart(self, drain_frames=None, snapshot_dir=None):
        """Attach (and return) a
        :class:`~repro.cluster.restart.RollingRestart` campaign driven
        by this cluster's frame clock."""
        from .restart import RollingRestart  # deferred: cycle

        self._restart = RollingRestart(
            self, drain_frames=drain_frames, snapshot_dir=snapshot_dir
        )
        return self._restart

    def close(self) -> None:
        """Release every replica's resources (idempotent)."""
        for replica in self.replicas:
            replica.close()

    # -- serving -------------------------------------------------------
    def submit(self, assignment, priority: int = 0):
        """Route one frame on its home replica (placement order:
        rendezvous weight, unimpaired first), with requeue-once and
        spill-over failover.  Returns exactly what a single fabric
        would: a :class:`~repro.core.brsmn.RoutingResult`, a
        :class:`~repro.faults.healing.DegradedResult`, or a
        :class:`~repro.resilience.gate.ShedFrame` when every tried
        replica shed it."""
        idx = self._frame_index
        self._frame_index += 1
        if self._restart is not None:
            self._restart.on_frame(idx)
        fingerprint = assignment_fingerprint(assignment)
        order = self.router.order(fingerprint, self.replicas)
        if not order:
            raise ClusterUnavailableError(
                f"no alive replica for frame {idx}"
            )
        home = order[0]
        # Scheduled kills land here — after placement, before service —
        # so the victim's in-flight frame exercises the requeue path.
        for rid in self._kills.pop(idx, ()):
            self.kill_replica(rid)
        requeued = False
        if not home.alive:
            siblings = [r for r in order[1:] if r.alive]
            if not siblings:
                raise ClusterUnavailableError(
                    f"frame {idx}: home replica {home.index} died and no "
                    "sibling remains"
                )
            home = siblings[0]
            requeued = True
        result = home.submit(assignment, priority=priority)
        served_by = home
        spilled = False
        if is_shed(result) and self.config.spill_over:
            for candidate in order:
                if candidate is home or not candidate.alive:
                    continue
                retry = candidate.submit(assignment, priority=priority)
                if not is_shed(retry):
                    result, served_by, spilled = retry, candidate, True
                    break
        return self._account(assignment, result, served_by, requeued, spilled)

    def run(self, frames: Iterable) -> ClusterStats:
        """Route a whole frame sequence; returns the session stats."""
        for assignment in frames:
            self.submit(assignment)
        return self.stats

    def _account(self, assignment, result, served_by, requeued, spilled):
        stats = self.stats
        if is_shed(result):
            stats.shed_frames += 1
            if requeued:
                stats.requeues += 1
            self._emit("shed", replica=served_by.index)
            return result
        stats.frames += 1
        stats.per_replica[served_by.index] += 1
        terminals = assignment.total_fanout
        if hasattr(result, "outcomes"):  # DegradedResult
            lost = len(result.lost)
            stats.deliveries += terminals - lost
            stats.recovered_terminals += len(result.recovered)
            if result.degraded:
                stats.degraded_frames += 1
            if lost:
                stats.lost_frames += 1
                stats.lost_terminals += lost
        else:
            stats.deliveries += terminals
        stats.plan_cache_hits += getattr(result, "plan_cache_hits", 0)
        stats.plan_cache_misses += getattr(result, "plan_cache_misses", 0)
        if requeued:
            stats.requeues += 1
            self._emit("requeued", replica=served_by.index)
        elif spilled:
            stats.spillovers += 1
            self._emit("spillover", replica=served_by.index)
        else:
            self._emit("submitted", replica=served_by.index)
        return result

    # -- reporting -----------------------------------------------------
    def summary(self) -> dict:
        """A replay-deterministic campaign summary (no wall-clock
        fields; two identically-seeded campaigns produce byte-identical
        JSON)."""
        stats = self.stats
        return {
            "n": self.n,
            "replicas": len(self.replicas),
            "placement_seed": self.config.placement_seed,
            "frames": stats.frames,
            "deliveries": stats.deliveries,
            "shed": stats.shed_frames,
            "requeues": stats.requeues,
            "spillovers": stats.spillovers,
            "degraded_frames": stats.degraded_frames,
            "lost_frames": stats.lost_frames,
            "lost_terminals": stats.lost_terminals,
            "recovered_terminals": stats.recovered_terminals,
            "plan_cache_hits": stats.plan_cache_hits,
            "plan_cache_misses": stats.plan_cache_misses,
            "plan_cache_hit_rate": round(stats.plan_cache_hit_rate, 6),
            "kills": stats.kills,
            "restarts": stats.restarts,
            "up": self.up_count,
            "per_replica": {
                str(r.index): stats.per_replica.get(r.index, 0)
                for r in self.replicas
            },
            "generations": {
                str(r.index): r.generation for r in self.replicas
            },
        }
