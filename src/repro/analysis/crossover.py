"""Cost-curve crossover finder: at which size does one design win?

Asymptotic statements ("the crossbar is Theta(n^2), the BRSMN is
Theta(n log^2 n)") leave the practical question open: *from which
network size onward* does the cheaper asymptotic actually cost less?
This utility finds that size between two cost curves over power-of-two
sizes — used to turn Table 2 and the baseline comparison into concrete
purchasing advice ("below 32 ports, buy the crossbar").

Real curves can cross more than once at tiny sizes (a 2x2 BRSMN is one
switch while the crossbar model charges two crosspoint-equivalents), so
the finder returns the *final* crossover: the smallest size from which
``cheap_large`` stays cheaper through the whole examined range.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["crossover_size"]


def crossover_size(
    cheap_small: Callable[[int], float],
    cheap_large: Callable[[int], float],
    max_m: int = 24,
) -> Optional[int]:
    """Smallest power-of-two ``n`` from which ``cheap_large`` stays cheaper.

    Args:
        cheap_small: cost function expected to win at small sizes
            (e.g. crossbar switch count).
        cheap_large: cost function expected to win at large sizes
            (e.g. BRSMN switch count).
        max_m: search bound — sizes ``2^1 .. 2^max_m`` are examined.

    Returns:
        The smallest examined size ``n`` such that
        ``cheap_large(n') < cheap_small(n')`` for every examined
        ``n' >= n``; ``None`` if ``cheap_large`` is not cheaper at the
        bound (no stable crossover within range).
    """
    if max_m < 1:
        raise ValueError(f"max_m must be >= 1, got {max_m}")
    crossover: Optional[int] = None
    for m in range(1, max_m + 1):
        n = 1 << m
        if cheap_large(n) < cheap_small(n):
            if crossover is None:
                crossover = n
        else:
            crossover = None  # cheapness not (yet) stable
    return crossover
