"""Stuck-switch fault sensitivity: how fragile is a routed frame?

The paper's network has no redundancy, so a single faulty switch
*will* corrupt some frames — the engineering question is how much and
where it hurts most.  This study injects stuck-at faults (a switch
frozen at parallel or crossing, modelling a dead setting latch) into
recorded passes and measures the damage:

* :func:`misplacement_rate` — fraction of cells that end somewhere
  other than in the fault-free replay;
* :func:`stuck_switch_study` — sweep faults over every switch of a
  pass and aggregate by stage, reporting mean/max damage per stage.

The structural fact the study demonstrates (and tests pin down): in a
*permutation* pass (quasisort / bit sort), flipping one switch composes
a single transposition into the routing permutation — exactly the
switch's own two cells end up misplaced, **regardless of the faulty
stage's depth**.  Damage does not cascade, because later stages route
the swapped cells obliviously; what breaks instead is the *compact
target* (the 0s/1s are no longer cleanly separated), which the next
BSN level's input validation then catches.  Broadcast-bearing scatter
passes are more brittle: a fault that separates an (alpha, eps) pair
trips the broadcast invariant outright — detection, not silent
misdelivery — which the replay engine surfaces as
:class:`~repro.errors.RoutingInvariantError`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core.tags import Tag
from ..rbn.cells import Cell, cells_from_tags
from ..rbn.quasisort import quasisort
from ..rbn.switches import SwitchSetting
from ..rbn.trace import StageRecord, Trace
from ..viz.ascii import split_rbn_passes
from .replay import SwitchAddress, replay_pass

__all__ = ["FaultStudy", "misplacement_rate", "stuck_switch_study"]


def misplacement_rate(
    baseline: Sequence[Cell], faulty: Sequence[Cell]
) -> float:
    """Fraction of *message* cells not at their fault-free position.

    Empty (epsilon) cells are ignored: moving idle links harms nobody.
    """
    total = 0
    moved = 0
    for b, f in zip(baseline, faulty):
        if b.is_empty and f.is_empty:
            continue
        total += 1
        if (b.data, b.tag) != (f.data, f.tag):
            moved += 1
    return moved / total if total else 0.0


@dataclass
class FaultStudy:
    """Aggregated stuck-switch sweep results.

    Attributes:
        n: pass width.
        per_stage: merge size -> list of misplacement rates, one per
            injected fault at that stage.
        faults_injected: total faults simulated.
    """

    n: int
    per_stage: Dict[int, List[float]] = field(default_factory=dict)
    faults_injected: int = 0

    def mean_rate(self, size: int) -> float:
        """Mean misplacement rate over faults at merges of this size."""
        rates = self.per_stage[size]
        return sum(rates) / len(rates)

    def max_rate(self, size: int) -> float:
        """Worst-case misplacement rate at merges of this size."""
        return max(self.per_stage[size])

    @property
    def overall_mean(self) -> float:
        """Mean misplacement rate over every injected fault."""
        rates = [r for rs in self.per_stage.values() for r in rs]
        return sum(rates) / len(rates) if rates else 0.0


def _sorting_pass_records(n: int, seed: int) -> List[StageRecord]:
    """Record one quasisort pass over a random valid population."""
    rng = random.Random(seed)
    half = n // 2
    n0 = rng.randint(0, half)
    n1 = rng.randint(0, half)
    tags = [Tag.ZERO] * n0 + [Tag.ONE] * n1 + [Tag.EPS] * (n - n0 - n1)
    rng.shuffle(tags)
    trace = Trace()
    quasisort(cells_from_tags(tags), trace=trace)
    passes = split_rbn_passes(trace, n)
    return passes[0]


def stuck_switch_study(
    n: int,
    seed: int = 0,
    stuck_at: SwitchSetting = SwitchSetting.PARALLEL,
) -> FaultStudy:
    """Inject one stuck switch at a time over a whole quasisort pass.

    For every switch of every merging stage: freeze it at ``stuck_at``,
    replay the recorded pass, and measure the misplacement rate against
    the fault-free replay.

    Args:
        n: pass width (power of two, >= 4 recommended).
        seed: workload seed.
        stuck_at: the fault model (PARALLEL = dead latch reads 0,
            CROSS = reads 1).
    """
    records = _sorting_pass_records(n, seed)
    baseline = replay_pass(records, n)
    study = FaultStudy(n=n)
    for rec in records:
        half = rec.size // 2
        for i in range(half):
            addr: SwitchAddress = (rec.size, rec.offset, i)
            if rec.settings[i] is stuck_at:
                continue  # fault coincides with the healthy setting
            faulty = replay_pass(records, n, overrides={addr: stuck_at})
            rate = misplacement_rate(baseline, faulty)
            study.per_stage.setdefault(rec.size, []).append(rate)
            study.faults_injected += 1
    return study
