"""Trace replay: re-execute a recorded RBN pass, optionally perturbed.

A recorded :class:`~repro.rbn.trace.Trace` holds, for every merging
stage, the switch settings the distributed algorithms chose.  Replaying
those settings over the original inputs must reproduce the original
outputs exactly — a strong end-to-end consistency check — and replaying
with *overridden* settings lets us ask counterfactuals the paper never
could: what does one stuck switch do to a frame?

Scope: replay operates on one full-width RBN pass (as produced by
:func:`repro.viz.ascii.split_rbn_passes`) — scatter or quasisort.
Replaying across BSN levels is out of scope because inter-level
re-tagging happens outside the traced switches.

Used by :mod:`repro.analysis.faults` for the stuck-switch study.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import RoutingInvariantError
from ..rbn.cells import Cell
from ..rbn.switches import SwitchSetting, apply_switch
from ..rbn.trace import StageRecord

__all__ = ["SwitchAddress", "replay_pass"]

#: Identifies one switch within a pass: (merge size, block offset,
#: switch index within the merge).
SwitchAddress = Tuple[int, int, int]


def replay_pass(
    records: Sequence[StageRecord],
    width: int,
    overrides: Optional[Dict[SwitchAddress, SwitchSetting]] = None,
    *,
    strict_broadcast: bool = True,
) -> List[Cell]:
    """Re-execute one recorded pass; return the resulting output frame.

    Args:
        records: the stage records of exactly one full-width pass, in
            application order.
        width: the pass width ``n``.
        overrides: optional map of :data:`SwitchAddress` to forced
            settings (the fault model).  Addresses not present keep
            their recorded settings.
        strict_broadcast: when True, an overridden-to-broadcast switch
            with an illegal input pair raises (the hardware invariant);
            when False such a switch falls back to PARALLEL — modelling
            a broadcast-enable line that the datapath guards.

    Returns:
        The ``width`` output cells after replaying every stage.

    Raises:
        ValueError: if the records do not tile one full-width pass.
        RoutingInvariantError: per ``strict_broadcast``.
    """
    overrides = overrides or {}
    m = width.bit_length() - 1
    by_stage: Dict[int, List[StageRecord]] = {}
    for rec in records:
        by_stage.setdefault(rec.size.bit_length() - 1, []).append(rec)
    if sorted(by_stage) != list(range(1, m + 1)):
        raise ValueError(f"records do not form one pass of width {width}")

    # Seed the frame from the innermost stage's recorded inputs.
    frame: List[Optional[Cell]] = [None] * width
    for rec in by_stage[1]:
        for pos, cell in enumerate(rec.inputs):
            frame[rec.offset + pos] = cell
    if any(c is None for c in frame):
        raise ValueError("stage-1 records do not cover the full width")

    for k in range(1, m + 1):
        for rec in sorted(by_stage[k], key=lambda r: r.offset):
            half = rec.size // 2
            base = rec.offset
            new = list(frame[base : base + rec.size])
            for i in range(half):
                addr: SwitchAddress = (rec.size, base, i)
                setting = overrides.get(addr, rec.settings[i])
                upper = frame[base + i]
                lower = frame[base + i + half]
                try:
                    out_u, out_l = apply_switch(setting, upper, lower)
                except RoutingInvariantError:
                    if strict_broadcast or addr not in overrides:
                        raise
                    out_u, out_l = apply_switch(
                        SwitchSetting.PARALLEL, upper, lower
                    )
                new[i] = out_u
                new[i + half] = out_l
            frame[base : base + rec.size] = new
    return [c for c in frame]  # type: ignore[misc]
