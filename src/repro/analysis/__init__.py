"""Analysis utilities: growth fitting, tables, connection trees.

* :mod:`~repro.analysis.fitting` — least-squares growth-law fits,
  log-log slopes, doubling-ratio discrimination;
* :mod:`~repro.analysis.tables` — fixed-width text tables for the
  bench output and EXPERIMENTS.md;
* :mod:`~repro.analysis.trees` — explicit edge-disjoint connection-tree
  extraction from routing traces (the paper's definition of a multicast
  network, checked structurally).
"""

from .fitting import (
    GROWTH_MODELS,
    best_model,
    doubling_ratios,
    fit_constant,
    loglog_slope,
)
from .activity import ActivityProfile, profile_trace, profile_workload
from .crossover import crossover_size
from .faults import FaultStudy, misplacement_rate, stuck_switch_study
from .replay import SwitchAddress, replay_pass
from .report import CheckResult, ReproductionReport, reproduction_report
from .tables import format_kv, format_table
from .trees import ConnectionTrees, extract_connection_trees

__all__ = [
    "GROWTH_MODELS",
    "best_model",
    "doubling_ratios",
    "fit_constant",
    "loglog_slope",
    "format_kv",
    "format_table",
    "ConnectionTrees",
    "extract_connection_trees",
    "CheckResult",
    "ReproductionReport",
    "reproduction_report",
    "FaultStudy",
    "misplacement_rate",
    "stuck_switch_study",
    "SwitchAddress",
    "replay_pass",
    "ActivityProfile",
    "profile_trace",
    "profile_workload",
    "crossover_size",
]
