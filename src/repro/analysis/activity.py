"""Internal switch-activity analysis: what the fabric actually does.

The complexity analysis counts switches; this module counts what they
*do* — per merging-stage-size distributions of parallel / crossing /
upper-broadcast / lower-broadcast settings over routed frames.  The
profiles answer workload questions the paper leaves qualitative:

* broadcasts concentrate where the alpha surpluses meet — for uniform
  multicast that is the mid-size merges; for broadcast-heavy traffic
  the top merges;
* permutation traffic fires zero broadcasts anywhere (a direct check
  that multicast machinery is pay-per-use);
* the crossing fraction is the "work" the compact-sequence targets
  demand, roughly half at every stage for random traffic.

Profiles come from recorded traces, so they reflect the exact switch
settings the distributed algorithms chose.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..core.brsmn import BRSMN
from ..core.multicast import MulticastAssignment
from ..rbn.switches import SwitchSetting
from ..rbn.trace import Trace

__all__ = ["ActivityProfile", "profile_trace", "profile_workload"]


@dataclass
class ActivityProfile:
    """Per-merge-size switch-setting counts.

    Attributes:
        counts: merge size -> Counter over :class:`SwitchSetting`.
        frames: routed frames aggregated into this profile.
    """

    counts: Dict[int, Counter] = field(default_factory=dict)
    frames: int = 0

    def add_trace(self, trace: Trace) -> None:
        """Aggregate one frame's trace into the profile."""
        for rec in trace.stages:
            bucket = self.counts.setdefault(rec.size, Counter())
            for setting in rec.settings:
                bucket[setting] += 1
        self.frames += 1

    def total(self, size: int) -> int:
        """Total switch applications at merges of this size."""
        return sum(self.counts[size].values())

    def fraction(self, size: int, setting: SwitchSetting) -> float:
        """Share of one setting at merges of this size."""
        total = self.total(size)
        return self.counts[size][setting] / total if total else 0.0

    @property
    def broadcast_total(self) -> int:
        """Total broadcast firings across all sizes."""
        return sum(
            c[SwitchSetting.UPPER_BCAST] + c[SwitchSetting.LOWER_BCAST]
            for c in self.counts.values()
        )

    def rows(self) -> List[List]:
        """Tabular view: one row per merge size (for the bench)."""
        out: List[List] = []
        for size in sorted(self.counts):
            out.append(
                [
                    size,
                    self.total(size),
                    f"{self.fraction(size, SwitchSetting.PARALLEL):.2f}",
                    f"{self.fraction(size, SwitchSetting.CROSS):.2f}",
                    f"{self.fraction(size, SwitchSetting.UPPER_BCAST) + self.fraction(size, SwitchSetting.LOWER_BCAST):.3f}",
                ]
            )
        return out


def profile_trace(trace: Trace) -> ActivityProfile:
    """Profile a single recorded frame."""
    profile = ActivityProfile()
    profile.add_trace(trace)
    return profile


def profile_workload(
    n: int,
    frames: Iterable[MulticastAssignment],
    mode: str = "selfrouting",
) -> ActivityProfile:
    """Route a frame sequence with tracing and aggregate the activity.

    Args:
        n: network size.
        frames: the assignments to route.
        mode: routing mode.
    """
    net = BRSMN(n)
    profile = ActivityProfile()
    for assignment in frames:
        result = net.route(assignment, mode=mode, collect_trace=True)
        profile.add_trace(result.trace)
    return profile
