"""One-call reproduction report: everything the paper claims, checked.

:func:`reproduction_report` re-derives the paper's checkable artefacts
— the Fig. 2 delivery map, the Fig. 9 SEQ strings, the eq. (13)
ordering, Table 1's encoding, Table 2's growth shapes, the feedback
saving and the throughput trade — and renders one self-contained text
report with a pass/fail verdict per item.  It is what
``examples/full_reproduction_report.py`` prints and what a downstream
user runs first to convince themselves the library matches the paper.

Every check is *recomputed at call time* from the public API (nothing
is cached or hard-coded beyond the paper's expected values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from ..baselines.models import PAPER_TABLE2
from ..core.brsmn import BRSMN
from ..core.feedback import FeedbackBRSMN
from ..core.multicast import paper_example_assignment
from ..core.tags import Tag, encode_tag, format_tag_string
from ..core.tagtree import TagTree, order_sequence
from ..core.verification import verify_result
from ..hardware.cost import CostModel
from ..hardware.schedule import pipelined_throughput
from ..hardware.timing import TimingModel
from .fitting import GROWTH_MODELS, best_model
from .tables import format_table

__all__ = ["CheckResult", "ReproductionReport", "reproduction_report"]

SIZES = [2**k for k in range(3, 13)]


@dataclass(frozen=True)
class CheckResult:
    """One checked claim.

    Attributes:
        name: short claim identifier (paper anchor).
        passed: whether the recomputation matched the paper.
        detail: what was compared.
    """

    name: str
    passed: bool
    detail: str


@dataclass
class ReproductionReport:
    """The full set of claim checks plus a rendered summary."""

    checks: List[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every claim check passed."""
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        """Render the report as text."""
        rows = [
            [c.name, "PASS" if c.passed else "FAIL", c.detail] for c in self.checks
        ]
        verdict = "ALL CLAIMS REPRODUCED" if self.ok else "SOME CLAIMS FAILED"
        return (
            "Reproduction report — Yang & Wang, 'A New Self-Routing "
            "Multicast Network'\n\n"
            + format_table(["claim", "status", "detail"], rows)
            + f"\n\nverdict: {verdict} ({sum(c.passed for c in self.checks)}"
            f"/{len(self.checks)})"
        )


def _check(name: str, fn: Callable[[], Tuple[bool, str]]) -> CheckResult:
    try:
        passed, detail = fn()
    except Exception as exc:  # a crash is a failed claim, not a crash
        return CheckResult(name, False, f"raised {type(exc).__name__}: {exc}")
    return CheckResult(name, passed, detail)


def reproduction_report() -> ReproductionReport:
    """Recompute and check every headline claim; return the report."""
    report = ReproductionReport()
    add = report.checks.append

    # --- Fig. 2: the worked example's delivery map.
    def fig2():
        res = BRSMN(8).route(paper_example_assignment(), mode="selfrouting")
        got = {o: m.source for o, m in res.delivered.items()}
        want = {0: 0, 1: 0, 2: 3, 3: 2, 4: 2, 5: 7, 6: 7, 7: 2}
        return got == want and verify_result(res).ok, f"deliveries {got}"

    add(_check("Fig.2 worked example", fig2))

    # --- Fig. 9: the two SEQ strings.
    def fig9():
        s1 = format_tag_string(TagTree.from_destinations(8, {0, 1}).to_sequence())
        s2 = format_tag_string(
            TagTree.from_destinations(8, {3, 4, 7}).to_sequence()
        )
        return (s1, s2) == ("00eaeee", "a1ae011"), f"SEQs {s1!r}, {s2!r}"

    add(_check("Fig.9 tag sequences", fig9))

    # --- eq. (13): the n=16 ordering.
    def eq13():
        seq = (
            order_sequence(["t11"])
            + order_sequence(["t21", "t22"])
            + order_sequence([f"t3{i}" for i in range(1, 5)])
            + order_sequence([f"t4{i}" for i in range(1, 9)])
        )
        want = "t11 t21 t22 t31 t33 t32 t34 t41 t45 t43 t47 t42 t46 t44 t48".split()
        return seq == want, "order matches eq. (13)"

    add(_check("eq.(13) SEQ order n=16", eq13))

    # --- Table 1: the encoding.
    def table1():
        want = {
            Tag.ZERO: (0, 0, 0),
            Tag.ONE: (0, 0, 1),
            Tag.ALPHA: (1, 0, 0),
            Tag.EPS0: (1, 1, 0),
            Tag.EPS1: (1, 1, 1),
        }
        ok = all(encode_tag(t) == bits for t, bits in want.items())
        return ok, "5 fixed codes + eps don't-care"

    add(_check("Table 1 encoding", table1))

    # --- Table 2: growth shapes from measured counts.
    cm = CostModel()
    tm = TimingModel()

    def cost_new():
        name, _c, resid = best_model(SIZES, [cm.brsmn_gates(n) for n in SIZES])
        return name == "n log^2 n", f"best fit {name} (resid {resid:.3f})"

    def cost_fb():
        name, _c, resid = best_model(SIZES, [cm.feedback_gates(n) for n in SIZES])
        return name == "n log n", f"best fit {name} (resid {resid:.2g})"

    def depth_shape():
        sub = {k: v for k, v in GROWTH_MODELS.items() if k.startswith("log")}
        name, _c, _r = best_model(SIZES, [cm.brsmn_depth(n) for n in SIZES], sub)
        return name == "log^2 n", f"best fit {name}"

    def routing_shape():
        sub = {k: v for k, v in GROWTH_MODELS.items() if k.startswith("log")}
        name, _c, _r = best_model(
            SIZES, [tm.brsmn_routing_time(n) for n in SIZES], sub
        )
        return name == "log^2 n", f"best fit {name}"

    add(_check("Table 2 cost (new design) = n log^2 n", cost_new))
    add(_check("Table 2 cost (feedback) = n log n", cost_fb))
    add(_check("Table 2 depth = log^2 n", depth_shape))
    add(_check("Table 2 routing time = log^2 n", routing_shape))

    # --- Section 7.3: the feedback network is a single RBN.
    def feedback_single_rbn():
        ok = all(
            FeedbackBRSMN(n).switch_count == (n // 2) * (n.bit_length() - 1)
            for n in (8, 64, 1024)
        )
        return ok, "switches = (n/2) log2 n at n = 8, 64, 1024"

    add(_check("Sec 7.3 feedback = one RBN", feedback_single_rbn))

    # --- routing-time advantage over log^3 designs = log n.
    def advantage():
        import math

        n = 1024
        adv = math.log2(n) ** 3 / math.log2(n) ** 2
        return adv == 10.0, f"log^3/log^2 = {adv:.0f}x at n=1024"

    add(_check("routing advantage vs [4],[9]", advantage))

    # --- throughput trade (beyond-paper, consistency check only).
    def throughput():
        r = pipelined_throughput(1024)
        return (
            r.feedback_period == r.latency and r.unrolled_period < r.latency,
            f"period unrolled {r.unrolled_period} vs feedback {r.feedback_period}",
        )

    add(_check("pipelined throughput trade", throughput))

    # --- paper Table 2 as printed (sanity echo).
    def table2_rows_present():
        names = [r["network"] for r in PAPER_TABLE2]
        return len(names) == 4, ", ".join(names)

    add(_check("Table 2 rows", table2_rows_present))

    return report
