"""Empirical growth-rate fitting for the complexity claims.

The paper's Table 2 states asymptotic orders; the reproduction measures
actual switch/gate/delay counts over a size sweep and asks "which
growth law fits?".  Utilities here:

* :func:`fit_constant` — least-squares leading constant for a given
  model ``y ~ c * f(n)``, with relative residual;
* :func:`best_model` — model selection among candidate growth laws;
* :func:`loglog_slope` — the raw log-log slope (polynomial degree
  estimate);
* :func:`doubling_ratios` — the ``y(2n)/y(n)`` ratio sequence, the
  sharpest practical discriminator between ``n log n`` and
  ``n log^2 n`` at bench sizes.

Standard growth laws are provided in :data:`GROWTH_MODELS`.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "GROWTH_MODELS",
    "fit_constant",
    "best_model",
    "loglog_slope",
    "doubling_ratios",
]

#: Candidate growth laws by name.
GROWTH_MODELS: Dict[str, Callable[[float], float]] = {
    "1": lambda n: 1.0,
    "log n": lambda n: math.log2(n),
    "log^2 n": lambda n: math.log2(n) ** 2,
    "log^3 n": lambda n: math.log2(n) ** 3,
    "n": lambda n: float(n),
    "n log n": lambda n: n * math.log2(n),
    "n log^2 n": lambda n: n * math.log2(n) ** 2,
    "n^2": lambda n: float(n) ** 2,
}


def fit_constant(
    ns: Sequence[int],
    ys: Sequence[float],
    model: Callable[[float], float],
) -> Tuple[float, float]:
    """Least-squares fit of ``y ~ c * model(n)``.

    Returns:
        ``(c, rel_residual)`` where ``rel_residual`` is the RMS of the
        relative errors ``(y - c model) / y`` — scale-free, so model
        comparison is meaningful across quantities.
    """
    if len(ns) != len(ys) or not ns:
        raise ValueError("ns and ys must be equal-length and non-empty")
    f = np.array([model(n) for n in ns], dtype=float)
    y = np.array(ys, dtype=float)
    if np.any(y <= 0) or np.any(f <= 0):
        raise ValueError("fit requires positive measurements and model values")
    c = float(np.dot(f, y) / np.dot(f, f))
    rel = (y - c * f) / y
    return c, float(np.sqrt(np.mean(rel**2)))


def best_model(
    ns: Sequence[int],
    ys: Sequence[float],
    models: Dict[str, Callable[[float], float]] = GROWTH_MODELS,
) -> Tuple[str, float, float]:
    """Pick the growth law with the smallest relative residual.

    Returns:
        ``(name, constant, rel_residual)`` of the winner.
    """
    best: Tuple[str, float, float] = ("", 0.0, math.inf)
    for name, f in models.items():
        try:
            c, resid = fit_constant(ns, ys, f)
        except ValueError:
            continue
        if resid < best[2]:
            best = (name, c, resid)
    if not best[0]:
        raise ValueError("no model could be fitted")
    return best


def loglog_slope(ns: Sequence[int], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` vs ``log n``.

    A pure power law ``n^a`` yields exactly ``a``; polylog factors push
    the slope slightly above the polynomial degree at finite sizes.
    """
    x = np.log(np.array(ns, dtype=float))
    y = np.log(np.array(ys, dtype=float))
    slope, _intercept = np.polyfit(x, y, 1)
    return float(slope)


def doubling_ratios(ns: Sequence[int], ys: Sequence[float]) -> List[float]:
    """The ``y(2n) / y(n)`` sequence over consecutive doublings.

    For measurements at ``n, 2n, 4n, ...``: a law ``n log^k n`` gives
    ratios ``2 * ((m+1)/m)^k`` at ``n = 2^m`` — e.g. going 64 -> 128,
    ``n log n`` gives 2.33 while ``n log^2 n`` gives 2.72; crisp enough
    to separate the Table 2 rows empirically.
    """
    if len(ns) != len(ys):
        raise ValueError("ns and ys must be equal length")
    ratios = []
    for i in range(len(ns) - 1):
        if ns[i + 1] != 2 * ns[i]:
            raise ValueError("sizes must be consecutive doublings")
        ratios.append(ys[i + 1] / ys[i])
    return ratios
