"""Text-table rendering for the benches and EXPERIMENTS.md.

Benches print the regenerated tables/figures as fixed-width text so the
harness output can be diffed against EXPERIMENTS.md.  This module keeps
the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

__all__ = ["format_table", "format_kv"]

Cell = Union[str, int, float]


def _fmt(x: Cell) -> str:
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1000 or abs(x) < 0.01:
            return f"{x:.3g}"
        return f"{x:.3f}".rstrip("0").rstrip(".")
    return str(x)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]]) -> str:
    """Render a fixed-width text table.

    Args:
        headers: column titles.
        rows: row cell values (str / int / float).

    Returns:
        A multi-line string with a header rule, columns padded to the
        widest cell.
    """
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_kv(pairs: Dict[str, Cell], indent: str = "  ") -> str:
    """Render key/value pairs, one per line, keys aligned."""
    if not pairs:
        return ""
    w = max(len(k) for k in pairs)
    return "\n".join(f"{indent}{k.ljust(w)} : {_fmt(v)}" for k, v in pairs.items())
