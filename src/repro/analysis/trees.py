"""Connection-tree extraction: verifying "over edge-disjoint trees".

The paper defines a multicast network as one that realises every
multicast assignment "over edge-disjoint trees" — each input's message
follows a tree of physical links, trees of different inputs sharing no
link.  The routing simulator enforces per-link exclusivity implicitly
(a link carries one cell); this module makes the claim *explicit*: it
reconstructs, from a recorded trace, the connection tree of every
source and checks

1. every physical link carries at most one message (edge-disjointness),
2. each source's links form a connected, rooted out-tree whose fan-out
   only increases at broadcast switches,
3. the leaves of each tree are exactly the source's destinations.

Links are identified by ``(producer_stage_index, terminal_position)``:
a merging-stage record consumes the cells last produced at its terminal
positions and produces new ones.  Trees are materialised as
:class:`networkx.DiGraph` objects so downstream analyses (e.g. tree
depth / fan-out histograms) can use the standard graph toolkit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..core.message import Message
from ..rbn.trace import Trace

__all__ = ["ConnectionTrees", "extract_connection_trees"]

#: A link: produced by stage `stage` (or -1 for a network input) at
#: absolute terminal `terminal`.
Link = Tuple[int, int]


@dataclass
class ConnectionTrees:
    """The per-source connection trees recovered from one trace.

    Attributes:
        trees: source -> directed graph whose nodes are links and whose
            edges follow the message through successive stages.
        edge_disjoint: True when no physical link carried two sources.
        violations: human-readable problems found (empty when clean).
    """

    trees: Dict[int, "nx.DiGraph"] = field(default_factory=dict)
    edge_disjoint: bool = True
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return self.edge_disjoint and not self.violations

    def tree_depth(self, source: int) -> int:
        """Longest root-to-leaf path of one source's tree (in stages)."""
        g = self.trees[source]
        roots = [v for v in g if g.in_degree(v) == 0]
        return max(
            (nx.dag_longest_path_length(g),),
            default=0,
        ) if roots else 0

    def fanout(self, source: int) -> int:
        """Number of terminal leaves of one source's tree."""
        g = self.trees[source]
        return sum(1 for v in g if g.out_degree(v) == 0)


def _source_of(cell) -> Optional[int]:
    msg = cell.data
    if isinstance(msg, Message):
        return msg.source
    return None


def extract_connection_trees(trace: Trace, n: int) -> ConnectionTrees:
    """Rebuild and validate the connection trees of a routing frame.

    Args:
        trace: a trace recorded with ``collect_trace=True`` covering the
            whole frame (BRSMN or feedback BRSMN).
        n: the network size (absolute terminals are ``0..n-1``).

    Returns:
        The per-source trees plus validation outcome.  Sources are the
        message sources observed in the trace.
    """
    result = ConnectionTrees()
    # last_producer[t]: the Link currently live at absolute terminal t,
    # plus the source occupying it (None = idle).
    last_producer: List[Link] = [(-1, t) for t in range(n)]
    last_source: List[Optional[int]] = [None] * n

    # Seed the network inputs from the first stage(s) touching each
    # terminal: we instead seed lazily — inputs of a stage read the
    # current live link of their terminals.
    link_user: Dict[Link, int] = {}

    def graph(source: int) -> "nx.DiGraph":
        if source not in result.trees:
            result.trees[source] = nx.DiGraph()
        return result.trees[source]

    for si, rec in enumerate(trace.stages):
        base = rec.offset
        # Consume inputs: associate each input cell with its live link.
        in_links: List[Link] = []
        for pos, cell in enumerate(rec.inputs):
            t = base + pos
            src = _source_of(cell)
            in_links.append(last_producer[t])
            if src is not None:
                expected = last_source[t]
                if expected is not None and expected != src:
                    result.violations.append(
                        f"stage {si}: terminal {t} handed source {src} but "
                        f"was carrying source {expected}"
                    )
        # Produce outputs: new links at the same terminals.
        half = rec.size // 2
        for pos, cell in enumerate(rec.outputs):
            t = base + pos
            src = _source_of(cell)
            new_link: Link = (si, t)
            if src is not None:
                # Which input produced this output?  For unicast the
                # switch pairs (pos, pos +/- half); for broadcast both
                # outputs come from the alpha input.  We recover the
                # predecessor by *object identity*: unicast passes the
                # same Message instance through; a broadcast emits the
                # alpha cell's branch payloads, so we also match against
                # branch0/branch1.  (Matching by source alone is
                # ambiguous when two copies of one multicast meet at the
                # same switch.)
                i_u = pos % half
                i_l = i_u + half
                msg = cell.data
                candidates = []
                for ip in (i_u, i_l):
                    ic = rec.inputs[ip]
                    if ic.data is msg or ic.branch0 is msg or ic.branch1 is msg:
                        candidates.append(ip)
                if not candidates:
                    result.violations.append(
                        f"stage {si}: output terminal {t} carries source "
                        f"{src} absent from its switch inputs"
                    )
                    continue
                prev_link = in_links[candidates[0]]
                g = graph(src)
                g.add_edge(prev_link, new_link)
                if new_link in link_user and link_user[new_link] != src:
                    result.edge_disjoint = False
                    result.violations.append(
                        f"link {new_link} shared by sources "
                        f"{link_user[new_link]} and {src}"
                    )
                link_user[new_link] = src
            last_producer[t] = new_link
            last_source[t] = src

    # Validate tree-ness: connected DAG with a single root per source.
    for source, g in result.trees.items():
        if g.number_of_nodes() == 0:
            continue
        roots = [v for v in g if g.in_degree(v) == 0]
        if len(roots) != 1:
            result.violations.append(
                f"source {source}: {len(roots)} roots (expected 1)"
            )
            continue
        if not nx.is_arborescence(g):
            result.violations.append(
                f"source {source}: connection graph is not a tree"
            )
    return result
