"""High-level one-call routing API.

Most users want: "give this multicast assignment to the network and
hand me the verified deliveries".  :func:`route_multicast` does exactly
that — it builds the requested network implementation, routes, verifies
and raises on any violation — and :func:`route_and_report` returns the
raw result plus the verification report for callers that want to
inspect failures instead.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple, Union

from ..errors import RoutingInvariantError
from .brsmn import BRSMN, RoutingResult
from .feedback import FeedbackBRSMN
from .multicast import MulticastAssignment
from .verification import VerificationReport, verify_result

__all__ = ["build_network", "route_multicast", "route_and_report"]

AssignmentLike = Union[MulticastAssignment, Sequence, Mapping[int, Sequence[int]]]


def _coerce_assignment(n: int, assignment: AssignmentLike) -> MulticastAssignment:
    if isinstance(assignment, MulticastAssignment):
        return assignment
    if isinstance(assignment, Mapping):
        return MulticastAssignment.from_dict(n, assignment)
    return MulticastAssignment(n, list(assignment))


def build_network(n: int, implementation: str = "unrolled", engine: str = "reference"):
    """Construct a multicast network.

    Args:
        n: network size (power of two, >= 2).
        implementation: ``"unrolled"`` for the full
            :class:`~repro.core.brsmn.BRSMN` (cost ``O(n log^2 n)``,
            single-pass) or ``"feedback"`` for the hardware-reusing
            :class:`~repro.core.feedback.FeedbackBRSMN`
            (cost ``O(n log n)``, ``2 log n - 1`` passes).
        engine: ``"reference"`` or ``"fast"`` (compiled NumPy routing
            plans; unrolled implementation only — the feedback network
            time-multiplexes physical hardware, which is exactly what a
            compiled plan abstracts away).
    """
    if implementation == "unrolled":
        return BRSMN(n, engine=engine)
    if implementation == "feedback":
        if engine != "reference":
            raise ValueError(
                "engine='fast' requires implementation='unrolled' "
                "(the feedback network is a hardware-reuse simulation)"
            )
        return FeedbackBRSMN(n)
    raise ValueError(
        f"unknown implementation {implementation!r} "
        "(expected 'unrolled' or 'feedback')"
    )


def route_and_report(
    n: int,
    assignment: AssignmentLike,
    *,
    mode: str = "selfrouting",
    implementation: str = "unrolled",
    engine: str = "reference",
    payloads: Optional[Sequence] = None,
    collect_trace: bool = False,
) -> Tuple[RoutingResult, VerificationReport]:
    """Route an assignment and return ``(result, verification report)``.

    Args:
        n: network size.
        assignment: a :class:`MulticastAssignment`, a list of
            destination iterables, or a sparse ``{input: destinations}``
            mapping.
        mode: ``"selfrouting"`` (default — the paper's hardware
            behaviour) or ``"oracle"``.
        implementation: ``"unrolled"`` or ``"feedback"``.
        engine: ``"reference"`` or ``"fast"`` (see
            :func:`build_network`).
        payloads: optional per-input payloads.
        collect_trace: record the full stage trace (reference engine
            only).
    """
    net = build_network(n, implementation, engine)
    asg = _coerce_assignment(n, assignment)
    result = net.route(asg, mode=mode, payloads=payloads, collect_trace=collect_trace)
    return result, verify_result(result)


def route_multicast(
    n: int,
    assignment: AssignmentLike,
    *,
    mode: str = "selfrouting",
    implementation: str = "unrolled",
    engine: str = "reference",
    payloads: Optional[Sequence] = None,
    collect_trace: bool = False,
) -> RoutingResult:
    """Route an assignment, verify it, and return the result.

    Raises:
        RoutingInvariantError: if verification finds any violation
            (missing / spurious / misrouted delivery).
    """
    result, report = route_and_report(
        n,
        assignment,
        mode=mode,
        implementation=implementation,
        engine=engine,
        payloads=payloads,
        collect_trace=collect_trace,
    )
    if not report.ok:
        raise RoutingInvariantError(
            "routing verification failed: " + "; ".join(report.violations)
        )
    return result
