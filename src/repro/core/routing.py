"""High-level one-call routing API.

Most users want: "give this multicast assignment to the network and
hand me the verified deliveries".  :func:`route_multicast` does exactly
that — it builds the requested network, routes, verifies (attaching the
:class:`~repro.core.verification.VerificationReport` to the result) and
raises on any violation unless ``strict=False``.

Both :func:`build_network` and :func:`route_multicast` take either a
bare port count or a :class:`~repro.core.config.NetworkConfig` — all
construction options (implementation, engine, cache sizing, workers,
observers, fault plans, resilience and control policies) live on the
config.  The pre-v1 ``implementation=`` / ``engine=`` kwargs and the
``route_and_report`` wrapper are gone; ``docs/migration_v1.md`` maps
every old spelling to its replacement.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

from ..errors import RoutingInvariantError
from .brsmn import BRSMN, RoutingResult
from .config import _resolve_config
from .feedback import FeedbackBRSMN
from .multicast import MulticastAssignment
from .verification import verify_result

__all__ = [
    "build_network",
    "route_multicast",
    "route_resilient",
]

AssignmentLike = Union[MulticastAssignment, Sequence, Mapping[int, Sequence[int]]]


def _coerce_assignment(n: int, assignment: AssignmentLike) -> MulticastAssignment:
    if isinstance(assignment, MulticastAssignment):
        return assignment
    if isinstance(assignment, Mapping):
        return MulticastAssignment.from_dict(n, assignment)
    return MulticastAssignment(n, list(assignment))


def build_network(n):
    """Construct a multicast network.

    Args:
        n: a :class:`~repro.core.config.NetworkConfig`, or a bare
            network size (power of two, >= 2) for an all-defaults
            reference network.
    """
    cfg = _resolve_config(n)
    if cfg.implementation == "feedback":
        if cfg.observer is not None:
            raise ValueError(
                "observer hooks require implementation='unrolled' (the "
                "feedback network time-multiplexes one physical BSN)"
            )
        return FeedbackBRSMN(cfg.n)
    return BRSMN(cfg)


def route_multicast(
    n,
    assignment: AssignmentLike,
    *,
    mode: str = "selfrouting",
    payloads: Optional[Sequence] = None,
    collect_trace: bool = False,
    strict: bool = True,
) -> RoutingResult:
    """Route an assignment, verify it, and return the result.

    Args:
        n: a :class:`~repro.core.config.NetworkConfig` or a bare
            network size.
        assignment: a :class:`MulticastAssignment`, a list of
            destination iterables, or a sparse ``{input: destinations}``
            mapping.
        mode: ``"selfrouting"`` (default — the paper's hardware
            behaviour) or ``"oracle"``.
        payloads: optional per-input payloads.
        collect_trace: record the full stage trace (reference engine
            only).
        strict: when True (default) raise on any verification
            violation; when False record the report on the result and
            return it regardless.

    Returns:
        The :class:`~repro.core.brsmn.RoutingResult`, with
        :attr:`~repro.core.brsmn.RoutingResult.verification` attached.

    Raises:
        RoutingInvariantError: if ``strict`` and verification finds any
            violation (missing / spurious / misrouted delivery).
    """
    cfg = _resolve_config(n)
    net = build_network(cfg)
    asg = _coerce_assignment(cfg.n, assignment)
    result = net.route(asg, mode=mode, payloads=payloads, collect_trace=collect_trace)
    report = verify_result(result)
    result.verification = report
    if strict and not report.ok:
        raise RoutingInvariantError(
            "routing verification failed: " + "; ".join(report.violations)
        )
    return result


def route_resilient(
    n,
    assignment: AssignmentLike,
    *,
    mode: str = "selfrouting",
    payloads: Optional[Sequence] = None,
    policy=None,
):
    """Route with self-healing: detect, retry, reroute, degrade.

    The resilient counterpart of :func:`route_multicast` for networks
    carrying a :class:`~repro.faults.plan.FaultPlan` (via
    ``NetworkConfig(n, fault_plan=...)``): instead of raising on a
    verification violation, failed terminals are re-routed through
    repair passes bounded by the
    :class:`~repro.faults.healing.RetryPolicy`, and the caller receives
    a :class:`~repro.faults.healing.DegradedResult` naming every
    terminal's outcome.  On a healthy network this is one ordinary
    verified pass.

    Args:
        n: a :class:`~repro.core.config.NetworkConfig` or a bare
            network size.
        assignment: a :class:`MulticastAssignment`, a list of
            destination iterables, or a sparse ``{input: destinations}``
            mapping.
        mode: ``"selfrouting"`` (default) or ``"oracle"``.
        payloads: optional per-input payloads (repair passes re-send
            the same payloads).
        policy: optional :class:`~repro.faults.healing.RetryPolicy`.

    With ``deadline_ms`` on the config, the healing retries run under a
    :class:`~repro.resilience.budget.DeadlineBudget`: an expired budget
    stops further repair passes and the result reports
    ``deadline_expired=True`` (remaining terminals count as lost).

    Returns:
        A :class:`~repro.faults.healing.DegradedResult`; its ``ok``
        property is True when every terminal was delivered (possibly
        after healing).
    """
    from ..faults.healing import route_with_healing  # deferred: cycle

    cfg = _resolve_config(n)
    net = build_network(cfg)
    asg = _coerce_assignment(cfg.n, assignment)
    budget = None
    if cfg.deadline_ms is not None:
        from ..resilience.budget import DeadlineBudget  # deferred: cycle

        budget = DeadlineBudget(cfg.deadline_ms)
    return route_with_healing(
        net, asg, mode=mode, payloads=payloads, policy=policy, budget=budget
    )
