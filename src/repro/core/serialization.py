"""JSON serialisation for assignments, requests and routing results.

Interop layer for the CLI and for users driving the library from other
tools: a stable, documented JSON shape for the three objects that cross
process boundaries.

Formats (all top-level objects carry a ``"kind"`` discriminator):

``assignment``::

    {"kind": "assignment", "n": 8,
     "destinations": {"0": [0, 1], "2": [3, 4, 7]}}

``requests``::

    {"kind": "requests", "n": 8,
     "requests": [{"source": 0, "destinations": [1, 2], "payload": "x"}]}

``result`` (write-only — results are reproducible from assignments)::

    {"kind": "result", "n": 8, "mode": "selfrouting",
     "deliveries": {"0": {"source": 0, "payload": "pkt0"}, ...},
     "stats": {"splits": 3, "switch_ops": 44}}
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List

from ..errors import InvalidAssignmentError
from .admission import Request
from .brsmn import RoutingResult
from .multicast import MulticastAssignment

__all__ = [
    "assignment_to_json",
    "assignment_from_json",
    "assignment_fingerprint",
    "requests_to_json",
    "requests_from_json",
    "result_to_json",
]


def assignment_to_json(assignment: MulticastAssignment) -> str:
    """Serialise an assignment to the documented JSON shape."""
    dests = {
        str(i): sorted(ds)
        for i, ds in enumerate(assignment.destinations)
        if ds
    }
    return json.dumps(
        {"kind": "assignment", "n": assignment.n, "destinations": dests},
        indent=2,
    )


def assignment_fingerprint(assignment: MulticastAssignment) -> str:
    """Canonical content fingerprint of an assignment.

    Two assignments fingerprint equal iff they have the same ``n`` and
    the same destination sets, regardless of how they were constructed.
    The digest keys the routing-plan cache
    (:class:`repro.core.fastplan.PlanCache`).

    Returns:
        A sha256 hex digest of the compact canonical JSON form.
    """
    canonical = json.dumps(
        {
            "n": assignment.n,
            "destinations": {
                str(i): sorted(ds)
                for i, ds in enumerate(assignment.destinations)
                if ds
            },
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def assignment_from_json(text: str) -> MulticastAssignment:
    """Parse an assignment; validates shape and the Section 2 model.

    Raises:
        InvalidAssignmentError: on a malformed document or an invalid
            assignment.
    """
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InvalidAssignmentError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("kind") != "assignment":
        raise InvalidAssignmentError('expected {"kind": "assignment", ...}')
    try:
        n = int(doc["n"])
        mapping = {
            int(k): [int(d) for d in v] for k, v in doc["destinations"].items()
        }
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise InvalidAssignmentError(f"malformed assignment document: {exc}") from exc
    return MulticastAssignment.from_dict(n, mapping)


def requests_to_json(n: int, requests: List[Request]) -> str:
    """Serialise a request batch."""
    return json.dumps(
        {
            "kind": "requests",
            "n": n,
            "requests": [
                {
                    "source": r.source,
                    "destinations": sorted(r.destinations),
                    "payload": r.payload,
                    "priority": r.priority,
                }
                for r in requests
            ],
        },
        indent=2,
    )


def requests_from_json(text: str):
    """Parse a request batch; returns ``(n, [Request, ...])``."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InvalidAssignmentError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("kind") != "requests":
        raise InvalidAssignmentError('expected {"kind": "requests", ...}')
    try:
        n = int(doc["n"])
        requests = [
            Request(
                source=int(r["source"]),
                destinations=frozenset(int(d) for d in r["destinations"]),
                payload=r.get("payload"),
                priority=int(r.get("priority", 0)),
            )
            for r in doc["requests"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidAssignmentError(f"malformed requests document: {exc}") from exc
    return n, requests


def result_to_json(result: RoutingResult) -> str:
    """Serialise a routing result's deliveries and stats."""
    deliveries: Dict[str, Any] = {}
    for o, msg in enumerate(result.outputs):
        if msg is not None:
            deliveries[str(o)] = {"source": msg.source, "payload": msg.payload}
    return json.dumps(
        {
            "kind": "result",
            "n": result.assignment.n,
            "mode": result.mode,
            "deliveries": deliveries,
            "stats": {
                "splits": result.total_splits,
                "switch_ops": result.switch_ops,
                "final_switches": result.final_switches,
            },
        },
        indent=2,
    )
