"""Multicast routing-tag trees and the SEQ wire format (paper Section 7.1).

A multicast with destination set ``I`` in an ``n x n`` BRSMN is encoded
as a complete binary tree of ``log2 n`` levels.  Level ``i`` describes
the ``i``-th most significant address bit: a node representing a
sub-multicast gets tag

* ``ALPHA`` if its destinations have both 0 and 1 in bit ``i``,
* ``ZERO``/``ONE`` if they all have 0 / all have 1,
* ``EPS`` if the sub-multicast is empty.

The tree is flattened to the *routing tag sequence* ``SEQ`` by
equations (10)-(12)::

    merge(b_1..b_k; c_1..c_k) = b_1 c_1 b_2 c_2 ... b_k c_k          (10)
    order(b_1..b_k) = merge(order(first half), order(second half))   (11)
    SEQ = conc(order(SEQ_1), order(SEQ_2), ..., order(SEQ_log n))    (12)

where ``SEQ_i`` lists level ``i``'s tags left to right.  The point of
this interleaved order is streaming: after a BSN consumes the head tag
``a_0``, the odd-position remainder is exactly the left subtree's SEQ
and the even-position remainder the right subtree's (paper Fig. 10), so
a constant number of buffers per input suffices.

The full sequence has ``n - 1`` tags (one per tree node).  [Note: the
paper's prose indexes the sequence ``a_0 ... a_{2n-2}``, but its own
Fig. 11 / eq. (13) example for n = 16 has 15 = n - 1 tags and the
Fig. 9 examples for n = 8 have 7; we follow the figures.]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import InvalidTagError
from ..rbn.permutations import check_network_size
from .tags import Tag, format_tag_string

__all__ = [
    "TagTreeNode",
    "TagTree",
    "merge_sequences",
    "order_sequence",
    "split_stream",
    "tag_of_destinations",
]


def tag_of_destinations(dests: Iterable[int], midpoint: int) -> Tag:
    """The routing tag of a destination set relative to an address midpoint.

    Destinations strictly below the midpoint are "upper half" (bit 0);
    at or above are "lower half" (bit 1).
    """
    has_lo = any(d < midpoint for d in dests)
    has_hi = any(d >= midpoint for d in dests)
    if has_lo and has_hi:
        return Tag.ALPHA
    if has_lo:
        return Tag.ZERO
    if has_hi:
        return Tag.ONE
    return Tag.EPS


def merge_sequences(b: Sequence, c: Sequence) -> List:
    """Equation (10): interleave two equal-length sequences."""
    if len(b) != len(c):
        raise InvalidTagError(
            f"merge requires equal lengths, got {len(b)} and {len(c)}"
        )
    out: List = []
    for x, y in zip(b, c):
        out.append(x)
        out.append(y)
    return out


def order_sequence(seq: Sequence) -> List:
    """Equation (11): the recursive interleaving order of one tree level.

    ``order`` of a ``2^i``-long level listing re-orders it so that the
    tags belonging to the *left* subtree of the root occupy the odd
    positions (0-based even indices) and the right subtree's the even
    positions, recursively.
    """
    k = len(seq)
    if k == 1:
        return list(seq)
    if k % 2:
        raise InvalidTagError(f"order() needs a power-of-two length, got {k}")
    half = k // 2
    return merge_sequences(order_sequence(seq[:half]), order_sequence(seq[half:]))


def split_stream(stream: Sequence[Tag]) -> Tuple[Tag, Tuple[Tag, ...], Tuple[Tag, ...]]:
    """Consume the head tag and split the remainder (paper Fig. 10).

    Returns ``(a0, upper_stream, lower_stream)`` where the upper stream
    (``a1, a3, a5, ...``) is the left subtree's SEQ and the lower stream
    (``a2, a4, a6, ...``) the right subtree's.  For a length-1 stream
    both remainders are empty.
    """
    if not stream:
        raise InvalidTagError("cannot split an empty tag stream")
    head = stream[0]
    rest = tuple(stream[1:])
    return head, rest[0::2], rest[1::2]


@dataclass(frozen=True)
class TagTreeNode:
    """One node of a multicast tag tree.

    Attributes:
        tag: this node's routing tag.
        left: child for address bit 0 (``None`` at the last level).
        right: child for address bit 1.
    """

    tag: Tag
    left: Optional["TagTreeNode"] = None
    right: Optional["TagTreeNode"] = None

    @property
    def is_last_level(self) -> bool:
        """True for nodes of level ``log2 n`` (no children)."""
        return self.left is None


class TagTree:
    """The complete tag tree of one multicast in an ``n x n`` network.

    Build with :meth:`from_destinations` or :meth:`from_sequence`;
    serialise with :meth:`to_sequence`.  ``TagTree`` instances are
    immutable value objects (equality = equal n and equal sequences).
    """

    def __init__(self, n: int, root: TagTreeNode):
        check_network_size(n)
        self.n = n
        self.m = n.bit_length() - 1
        self.root = root

    # -- construction --------------------------------------------------
    @classmethod
    def from_destinations(cls, n: int, destinations: Iterable[int]) -> "TagTree":
        """Build the (unique) tag tree of a destination set.

        An empty destination set yields the all-epsilon tree, matching
        the paper's "any network input without a message is always
        assumed to have a tag eps".
        """
        check_network_size(n)
        dests = frozenset(destinations)
        for d in dests:
            if not 0 <= d < n:
                raise InvalidTagError(f"destination {d} out of range [0, {n})")

        def build(sub: FrozenSet[int], size: int) -> TagTreeNode:
            mid = size // 2
            tag = tag_of_destinations(sub, mid)
            if size == 2:
                return TagTreeNode(tag)
            lo = frozenset(d for d in sub if d < mid)
            hi = frozenset(d - mid for d in sub if d >= mid)
            return TagTreeNode(tag, build(lo, mid), build(hi, mid))

        return cls(n, build(dests, n))

    @classmethod
    def from_sequence(cls, n: int, seq: Sequence[Tag]) -> "TagTree":
        """Parse a SEQ tag sequence (length ``n - 1``) back into a tree."""
        check_network_size(n)
        if len(seq) != n - 1:
            raise InvalidTagError(
                f"SEQ for n={n} must have {n - 1} tags, got {len(seq)}"
            )

        def parse(stream: Sequence[Tag], size: int) -> TagTreeNode:
            head, up, lo = split_stream(stream)
            if not isinstance(head, Tag):
                raise InvalidTagError(f"SEQ element {head!r} is not a Tag")
            if size == 2:
                return TagTreeNode(head)
            return TagTreeNode(head, parse(up, size // 2), parse(lo, size // 2))

        return cls(n, parse(tuple(seq), n))

    # -- serialisation --------------------------------------------------
    def levels(self) -> List[List[Tag]]:
        """``SEQ_i`` listings: ``levels()[i-1]`` is level ``i``, left to right."""
        out: List[List[Tag]] = []
        frontier = [self.root]
        for _ in range(self.m):
            out.append([node.tag for node in frontier])
            nxt: List[TagTreeNode] = []
            for node in frontier:
                if node.left is not None:
                    nxt.append(node.left)
                    nxt.append(node.right)
            frontier = nxt
        return out

    def to_sequence(self) -> Tuple[Tag, ...]:
        """Equation (12): ``conc(order(SEQ_1), ..., order(SEQ_log n))``."""
        seq: List[Tag] = []
        for level in self.levels():
            seq.extend(order_sequence(level))
        return tuple(seq)

    # -- queries ---------------------------------------------------------
    def destinations(self) -> FrozenSet[int]:
        """Invert the tree back to its destination set."""
        dests: List[int] = []

        def walk(node: TagTreeNode, prefix: int, size: int) -> None:
            if node.tag is Tag.EPS:
                return
            go_left = node.tag in (Tag.ZERO, Tag.ALPHA)
            go_right = node.tag in (Tag.ONE, Tag.ALPHA)
            if node.is_last_level:
                if go_left:
                    dests.append(prefix << 1)
                if go_right:
                    dests.append((prefix << 1) | 1)
                return
            if go_left:
                walk(node.left, prefix << 1, size // 2)
            if go_right:
                walk(node.right, (prefix << 1) | 1, size // 2)

        walk(self.root, 0, self.n)
        return frozenset(dests)

    def validate(self) -> None:
        """Check the parent/child tag consistency rules of Section 7.1.

        * an ``ALPHA`` node's children are both non-epsilon;
        * a ``ZERO`` node's left child is non-epsilon and its right
          child is epsilon (mirrored for ``ONE``);
        * an ``EPS`` node's children are both epsilon.

        Raises:
            InvalidTagError: on the first violated rule.
        """

        def check(node: TagTreeNode, path: str) -> None:
            if node.is_last_level:
                return
            lt, rt = node.left.tag, node.right.tag
            tag = node.tag
            if tag is Tag.ALPHA and (lt is Tag.EPS or rt is Tag.EPS):
                raise InvalidTagError(f"alpha node {path or 'root'} has an eps child")
            if tag is Tag.ZERO and (lt is Tag.EPS or rt is not Tag.EPS):
                raise InvalidTagError(f"zero node {path or 'root'} children invalid")
            if tag is Tag.ONE and (lt is not Tag.EPS or rt is Tag.EPS):
                raise InvalidTagError(f"one node {path or 'root'} children invalid")
            if tag is Tag.EPS and (lt is not Tag.EPS or rt is not Tag.EPS):
                raise InvalidTagError(f"eps node {path or 'root'} has non-eps child")
            check(node.left, path + "0")
            check(node.right, path + "1")

        check(self.root, "")

    # -- dunder ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TagTree):
            return NotImplemented
        return self.n == other.n and self.to_sequence() == other.to_sequence()

    def __hash__(self) -> int:
        return hash((self.n, self.to_sequence()))

    def __str__(self) -> str:
        return (
            f"TagTree(n={self.n}, seq={format_tag_string(self.to_sequence())!r})"
        )
