"""Session-level facade: a multicast switching fabric over many frames.

Networks in this library are frame-oriented (one multicast assignment
in, one delivery map out).  Real deployments — the videoconference /
VoD / replicated-DB scenarios of :mod:`repro.workloads.scenarios` —
route long *sequences* of frames and care about aggregate statistics.
:class:`MulticastFabric` wraps any network implementation with:

* per-frame verification (configurable to raise or record),
* aggregate counters (frames, deliveries, splits, switch operations),
* a running fanout histogram,

so examples and benches can express sessions in three lines.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, List

from ..errors import RoutingInvariantError
from .brsmn import RoutingResult
from .config import _UNSET, _resolve_config
from .multicast import MulticastAssignment
from .routing import build_network
from .verification import verify_result

__all__ = ["FabricStats", "MulticastFabric"]


@dataclass
class FabricStats:
    """Aggregate statistics of one fabric session.

    Attributes:
        frames: frames routed.
        deliveries: total verified (output, message) deliveries.
        splits: total alpha splits performed by BSN levels.
        switch_ops: total 2x2 switch applications.
        failures: frames whose verification failed (only populated when
            the fabric is constructed with ``strict=False``).
        fanout_histogram: multicast fanout -> occurrence count.
        plan_cache_hits: fast engine — frames served by a cached
            routing plan.
        plan_cache_misses: fast engine — frames that compiled a plan.
    """

    frames: int = 0
    deliveries: int = 0
    splits: int = 0
    switch_ops: int = 0
    failures: List[str] = field(default_factory=list)
    fanout_histogram: Counter = field(default_factory=Counter)
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0

    @property
    def mean_fanout(self) -> float:
        """Average destination-set size over all routed multicasts."""
        total = sum(f * c for f, c in self.fanout_histogram.items())
        count = sum(self.fanout_histogram.values())
        return total / count if count else 0.0

    @property
    def plan_cache_hit_rate(self) -> float:
        """Fraction of fast-engine frames answered from the plan cache."""
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0


class MulticastFabric:
    """A verified multicast switch running frame sequences.

    Args:
        n: a :class:`~repro.core.config.NetworkConfig`, or a bare port
            count (power of two) for an all-defaults reference network.
        implementation: deprecated — set it on the config instead.
        mode: routing mode for every frame.
        strict: when True (default), a verification failure raises
            :class:`~repro.errors.RoutingInvariantError`; when False it
            is recorded in :attr:`FabricStats.failures` and the session
            continues.
        engine: deprecated — set it on the config instead.  The fast
            engine memoises routing plans, so sessions with recurring
            assignments also report plan-cache hits.
        observer: optional :class:`~repro.obs.events.Observer`
            (overrides the config's); every ``submit`` then emits frame
            lifecycle events, level spans and plan-cache events.
    """

    def __init__(
        self,
        n,
        implementation=_UNSET,
        mode: str = "selfrouting",
        strict: bool = True,
        engine=_UNSET,
        observer=None,
    ):
        cfg = _resolve_config(
            n,
            implementation=implementation,
            engine=engine,
            observer=observer,
            caller="MulticastFabric",
            hint="MulticastFabric(NetworkConfig(n, ...))",
        )
        self.config = cfg
        self.network = build_network(cfg)
        self.n = cfg.n
        self.mode = mode
        self.strict = strict
        self.engine = cfg.engine
        self.observer = cfg.observer
        self.stats = FabricStats()

    def submit(self, assignment: MulticastAssignment) -> RoutingResult:
        """Route and verify one frame, updating the session statistics."""
        result = self.network.route(assignment, mode=self.mode)
        report = verify_result(result)
        if not report.ok:
            msg = (
                f"frame {self.stats.frames}: " + "; ".join(report.violations)
            )
            if self.strict:
                raise RoutingInvariantError(msg)
            self.stats.failures.append(msg)
        self.stats.frames += 1
        self.stats.deliveries += report.deliveries
        self.stats.splits += result.total_splits
        self.stats.switch_ops += result.switch_ops
        self.stats.plan_cache_hits += result.plan_cache_hits
        self.stats.plan_cache_misses += result.plan_cache_misses
        for i in assignment.active_inputs:
            self.stats.fanout_histogram[len(assignment[i])] += 1
        return result

    def run(self, frames: Iterable[MulticastAssignment]) -> FabricStats:
        """Route a whole frame sequence; returns the session statistics."""
        for assignment in frames:
            self.submit(assignment)
        return self.stats

    def reset(self) -> None:
        """Clear the session statistics (the network is stateless)."""
        self.stats = FabricStats()
