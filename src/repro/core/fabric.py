"""Session-level facade: a multicast switching fabric over many frames.

Networks in this library are frame-oriented (one multicast assignment
in, one delivery map out).  Real deployments — the videoconference /
VoD / replicated-DB scenarios of :mod:`repro.workloads.scenarios` —
route long *sequences* of frames and care about aggregate statistics.
:class:`MulticastFabric` wraps any network implementation with:

* per-frame verification (configurable to raise or record),
* aggregate counters (frames, deliveries, splits, switch operations),
* a running fanout histogram,

so examples and benches can express sessions in three lines.

When the config carries resilience settings the fabric also runs the
overload-serving layer (:mod:`repro.resilience`): an
:class:`~repro.resilience.gate.AdmissionGate` in front of ``submit``
(shed frames return a :class:`~repro.resilience.gate.ShedFrame`, never
touch the network), a per-frame
:class:`~repro.resilience.budget.DeadlineBudget` carried through the
healing retries, and a :class:`~repro.resilience.breaker.CircuitBreaker`
over the primary (faulted) plane that short-circuits it to the standby
— and forces a :class:`~repro.faults.health.HealthTracker` quarantine —
once it trips.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field, replace
from time import perf_counter_ns
from typing import Iterable, List

import os

from ..errors import RoutingInvariantError
from ..obs.events import CompositeObserver, FaultEvent
from .brsmn import RoutingResult
from .config import _resolve_config
from .multicast import MulticastAssignment
from .routing import build_network
from .verification import verify_result

__all__ = ["FabricStats", "MulticastFabric"]


@dataclass
class FabricStats:
    """Aggregate statistics of one fabric session.

    Attributes:
        frames: frames routed.
        deliveries: total verified (output, message) deliveries.
        splits: total alpha splits performed by BSN levels.
        switch_ops: total 2x2 switch applications.
        failures: frames whose verification failed (only populated when
            the fabric is constructed with ``strict=False``).
        fanout_histogram: multicast fanout -> occurrence count.
        plan_cache_hits: fast engine — frames served by a cached
            routing plan.
        plan_cache_misses: fast engine — frames that compiled a plan.
        degraded_frames: fault-aware sessions — frames that needed
            healing (retries) or lost terminals.
        lost_frames: frames that ended with at least one lost terminal.
        recovered_terminals: terminals healed by repair passes.
        lost_terminals: terminals abandoned after the retry budget.
        quarantines: times the primary plane entered quarantine.
        standby_frames: frames served by the standby plane while the
            primary was quarantined.
        shed_frames: frames refused by the admission gate (never
            routed; not counted in ``frames``).
        deadline_expired_frames: frames whose healing loop was cut
            short by the deadline budget.
        short_circuits: frames diverted to the standby plane by an
            open circuit breaker (counted in ``standby_frames`` too).
    """

    frames: int = 0
    deliveries: int = 0
    splits: int = 0
    switch_ops: int = 0
    failures: List[str] = field(default_factory=list)
    fanout_histogram: Counter = field(default_factory=Counter)
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    degraded_frames: int = 0
    lost_frames: int = 0
    recovered_terminals: int = 0
    lost_terminals: int = 0
    quarantines: int = 0
    standby_frames: int = 0
    shed_frames: int = 0
    deadline_expired_frames: int = 0
    short_circuits: int = 0

    @property
    def mean_fanout(self) -> float:
        """Average destination-set size over all routed multicasts."""
        total = sum(f * c for f, c in self.fanout_histogram.items())
        count = sum(self.fanout_histogram.values())
        return total / count if count else 0.0

    @property
    def plan_cache_hit_rate(self) -> float:
        """Fraction of fast-engine frames answered from the plan cache."""
        total = self.plan_cache_hits + self.plan_cache_misses
        return self.plan_cache_hits / total if total else 0.0


class MulticastFabric:
    """A verified multicast switch running frame sequences.

    Args:
        n: a :class:`~repro.core.config.NetworkConfig`, or a bare port
            count (power of two) for an all-defaults reference network.
            Implementation and engine selection live on the config (the
            fast engine memoises routing plans, so sessions with
            recurring assignments also report plan-cache hits).
        mode: routing mode for every frame.
        strict: when True (default), a verification failure raises
            :class:`~repro.errors.RoutingInvariantError`; when False it
            is recorded in :attr:`FabricStats.failures` and the session
            continues.
        observer: optional :class:`~repro.obs.events.Observer`
            (overrides the config's); every ``submit`` then emits frame
            lifecycle events, level spans and plan-cache events.
        retry_policy: fault-aware sessions — the
            :class:`~repro.faults.healing.RetryPolicy` of the healing
            loop (default: the policy's defaults).
        health: fault-aware sessions — a pre-configured
            :class:`~repro.faults.health.HealthTracker` (default: one
            with its default thresholds).

    Resilience settings live on the config: ``admission`` installs an
    :class:`~repro.resilience.gate.AdmissionGate` (overloaded submits
    return a :class:`~repro.resilience.gate.ShedFrame`), ``deadline_ms``
    gives every frame a
    :class:`~repro.resilience.budget.DeadlineBudget`, and ``breaker``
    (on fault-aware sessions) puts a
    :class:`~repro.resilience.breaker.CircuitBreaker` over the primary
    plane.  All three default to off and cost nothing when unset.

    With ``control`` on the config, a
    :class:`~repro.control.plane.ControlPlane` watches the fabric's
    event stream and retunes the bound actuators (admission rate and
    reserve, compile-ahead depth, shard worker target, retry backoff)
    once per submission tick; decisions are logged on
    :attr:`MulticastFabric.control` and emitted as
    :class:`~repro.obs.events.ControlEvent` samples.  With
    ``snapshot_path``, :meth:`close` writes a warm-restart
    :class:`~repro.resilience.snapshot.FabricSnapshot` there and the
    constructor restores from an existing file (a missing file is a
    cold start).

    When the config carries a non-empty fault plan, the fabric runs the
    self-healing layer: every frame submitted to the (faulty) primary
    plane goes through
    :func:`~repro.faults.healing.route_with_healing` and returns a
    :class:`~repro.faults.healing.DegradedResult` — fault losses never
    raise, regardless of ``strict`` (they are accounted, not
    exceptional).  A :class:`~repro.faults.health.HealthTracker`
    quarantines the primary after repeated degraded frames; traffic
    then drains on a fault-free *standby* plane (same config, no fault
    plan) until the primary earns re-admission through clean probes.
    """

    def __init__(
        self,
        n,
        mode: str = "selfrouting",
        strict: bool = True,
        observer=None,
        retry_policy=None,
        health=None,
    ):
        cfg = _resolve_config(n, observer=observer)
        self.config = cfg
        if cfg.control is not None:
            from ..control.plane import ControlPlane  # deferred: cycle

            # The plane's signal aggregator is spliced in FRONT of the
            # caller's observer so it sees every event the network will
            # emit; ControlEvents go to the caller's observer only.
            self.control = ControlPlane(cfg.control, observer=cfg.observer)
            cfg = replace(
                cfg,
                observer=CompositeObserver(self.control.signals, cfg.observer),
            )
        else:
            self.control = None
        self.network = build_network(cfg)
        self.n = cfg.n
        self.mode = mode
        self.strict = strict
        self.engine = cfg.engine
        self.observer = cfg.observer
        self.stats = FabricStats()
        self.deadline_ms = cfg.deadline_ms
        if cfg.admission is not None:
            from ..resilience.gate import AdmissionGate  # deferred: cycle

            self.gate = AdmissionGate(cfg.admission, observer=cfg.observer)
        else:
            self.gate = None
        if cfg.fault_plan is not None and not cfg.fault_plan.is_empty:
            from ..faults.healing import RetryPolicy  # deferred: cycle
            from ..faults.health import HealthTracker

            self.retry_policy = (
                retry_policy if retry_policy is not None else RetryPolicy()
            )
            self.health = health if health is not None else HealthTracker()
            self.standby = build_network(replace(cfg, fault_plan=None))
            if cfg.breaker is not None:
                from ..resilience.breaker import (  # deferred: cycle
                    CircuitBreaker,
                )

                self.breaker = CircuitBreaker(
                    cfg.breaker, scope="primary", observer=cfg.observer
                )
            else:
                self.breaker = None
        else:
            self.retry_policy = retry_policy
            self.health = None
            self.standby = None
            self.breaker = None
        if self.control is not None:
            base_retry = self.retry_policy
            if base_retry is None and self.health is not None:
                from ..faults.healing import RetryPolicy  # deferred: cycle

                base_retry = RetryPolicy()
            self.control.bind(
                gate=self.gate,
                pipeline=getattr(self.network, "pipeline", None),
                router=getattr(self.network, "_sharded", None),
                breaker=self.breaker,
                retry_policy=base_retry,
                retry_setter=(
                    None
                    if base_retry is None
                    else lambda p: setattr(self, "retry_policy", p)
                ),
            )
        self.snapshot_path = cfg.snapshot_path
        self._closed = False
        if self.snapshot_path is not None and os.path.exists(
            self.snapshot_path
        ):
            from ..resilience.snapshot import FabricSnapshot  # deferred

            FabricSnapshot.load(self.snapshot_path).restore(self)

    def submit(self, assignment: MulticastAssignment, priority: int = 0):
        """Route one frame, updating the session statistics.

        Returns a verified
        :class:`~repro.core.brsmn.RoutingResult` — or, when the fabric
        carries a fault plan and the primary plane is serving, a healed
        :class:`~repro.faults.healing.DegradedResult`.  With an
        admission policy on the config, an overloaded submit returns a
        :class:`~repro.resilience.gate.ShedFrame` instead (``ok`` is
        False, nothing was routed); ``priority > 0`` frames survive
        soft shedding and may draw on the token reserve.

        With a control policy on the config, every submission —
        including a shed one — counts toward the control plane's tick
        cadence, so the adaptive loops see overload as it happens.
        """
        # A submit after close() transparently restarts the session
        # (the pools re-spawn lazily), so the next close() is live
        # again — it must persist the newly-accumulated state.
        self._closed = False
        if self.control is None:
            return self._submit(assignment, priority)
        try:
            return self._submit(assignment, priority)
        finally:
            self.control.maybe_tick()

    def _submit(self, assignment: MulticastAssignment, priority: int = 0):
        if self.gate is not None:
            self.gate.tick()
            if not self.gate.admit(priority=priority):
                self.stats.shed_frames += 1
                from ..resilience.gate import ShedFrame  # deferred: cycle

                return ShedFrame(
                    assignment=assignment,
                    priority=priority,
                    reason=self.gate.last_reason,
                )
        budget = self._budget()
        if self.health is None:
            return self._submit_verified(assignment, self.network)
        if self.health.use_primary:
            if self.breaker is not None and not self.breaker.allow():
                # Open breaker: the primary is short-circuited to the
                # standby without paying a (likely doomed) healed pass.
                self.stats.short_circuits += 1
                result = self._submit_verified(assignment, self.standby)
                self.stats.standby_frames += 1
                self._record_health(False)
                return result
            return self._submit_healed(assignment, budget)
        result = self._submit_verified(assignment, self.standby)
        self.stats.standby_frames += 1
        self._record_health(False)
        return result

    def _budget(self):
        """A fresh per-frame deadline budget, or None when unlimited."""
        if self.deadline_ms is None:
            return None
        from ..resilience.budget import DeadlineBudget  # deferred: cycle

        return DeadlineBudget(self.deadline_ms)

    def _submit_verified(self, assignment, network) -> RoutingResult:
        """The plain path: route on ``network``, verify, account."""
        result = network.route(assignment, mode=self.mode)
        report = verify_result(result)
        if not report.ok:
            msg = (
                f"frame {self.stats.frames}: " + "; ".join(report.violations)
            )
            if self.strict:
                raise RoutingInvariantError(msg)
            self.stats.failures.append(msg)
        self.stats.frames += 1
        self.stats.deliveries += report.deliveries
        self.stats.splits += result.total_splits
        self.stats.switch_ops += result.switch_ops
        self.stats.plan_cache_hits += result.plan_cache_hits
        self.stats.plan_cache_misses += result.plan_cache_misses
        for i in assignment.active_inputs:
            self.stats.fanout_histogram[len(assignment[i])] += 1
        return result

    def _submit_healed(self, assignment, budget=None):
        """The fault path: heal on the primary plane, track its health."""
        from ..faults.healing import route_with_healing  # deferred: cycle

        result = route_with_healing(
            self.network,
            assignment,
            mode=self.mode,
            policy=self.retry_policy,
            budget=budget,
            breaker=self.breaker,
        )
        self.stats.frames += 1
        self.stats.deliveries += result.verification.deliveries
        self.stats.splits += result.total_splits
        self.stats.switch_ops += result.switch_ops
        self.stats.recovered_terminals += len(result.recovered)
        if result.degraded:
            self.stats.degraded_frames += 1
        if result.lost:
            self.stats.lost_frames += 1
            self.stats.lost_terminals += len(result.lost)
            self.stats.failures.append(
                f"frame {self.stats.frames - 1}: lost terminals "
                f"{list(result.lost)} after {result.attempts} attempts"
            )
        if result.deadline_expired:
            self.stats.deadline_expired_frames += 1
        for i in assignment.active_inputs:
            self.stats.fanout_histogram[len(assignment[i])] += 1
        self._record_health(result.degraded)
        if self.breaker is not None:
            was_open = self.breaker.is_open
            self.breaker.record(not result.degraded)
            if self.breaker.is_open and not was_open:
                # A tripped breaker escalates straight to quarantine so
                # traffic drains on the standby during the cooldown.
                before = self.health.state
                after = self.health.quarantine()
                self.stats.quarantines = self.health.quarantines
                if after is not before:
                    obs = self.observer
                    if obs is not None and obs.enabled:
                        obs.on_fault(
                            FaultEvent(
                                action="quarantined", t_ns=perf_counter_ns()
                            )
                        )
        return result

    def _record_health(self, degraded: bool) -> None:
        """Feed one frame into the health tracker; emit transitions."""
        before = self.health.state
        after = self.health.record(degraded)
        self.stats.quarantines = self.health.quarantines
        if after is before:
            return
        obs = self.observer
        if obs is not None and obs.enabled:
            action = {
                "quarantined": "quarantined",
                "probation": "probation",
                "healthy": "readmitted",
            }[after.value]
            obs.on_fault(
                FaultEvent(action=action, t_ns=perf_counter_ns())
            )

    def prefetch(self, assignment: MulticastAssignment) -> bool:
        """Warm the primary network's plan cache for an upcoming frame.

        Delegates to :meth:`~repro.core.brsmn.BRSMN.prefetch`; a no-op
        (False) unless the config enables ``compile_ahead``.  Callers
        with their own lookahead (e.g. a scheduler that knows the next
        slot's frame) use this directly; :meth:`run` does it for you.
        """
        prefetch = getattr(self.network, "prefetch", None)
        if prefetch is None:
            return False
        return prefetch(assignment)

    def run(self, frames: Iterable[MulticastAssignment]) -> FabricStats:
        """Route a whole frame sequence; returns the session statistics.

        With ``compile_ahead > 0`` in the config, the run loop holds a
        sliding lookahead window of that depth over the sequence: each
        upcoming frame is prefetched — its plan compiles on the worker
        pool — while earlier frames route on this thread, so a stream
        of cold assignments no longer stalls for a full compile per
        frame.  Frame order, verification, statistics and results are
        identical to the sequential loop; lookahead only moves compile
        work off the critical path (and consumes generator inputs up to
        ``compile_ahead`` frames early).
        """
        lookahead = getattr(self.network, "compile_ahead", 0)
        if lookahead <= 0:
            for assignment in frames:
                self.submit(assignment)
            return self.stats
        window: deque = deque()
        for assignment in frames:
            if window:
                # Not the frame we are about to route: warm it.
                self.prefetch(assignment)
            window.append(assignment)
            if len(window) > lookahead:
                self.submit(window.popleft())
        while window:
            self.submit(window.popleft())
        return self.stats

    def close(self) -> None:
        """Release parallel-engine resources (worker threads).

        Idempotent and optional — a closed fabric transparently
        restarts its pool on the next submit; see
        :meth:`~repro.core.brsmn.BRSMN.close`.  The standby plane is
        closed in a ``finally`` so a raising primary drain can never
        leak its worker threads.  With ``snapshot_path`` on the config
        a warm-restart snapshot is written first (before the pools
        drain), so the next fabric constructed with the same path
        restores warm.  A second ``close()`` with no submit in between
        is a no-op: in particular it does *not* re-persist the snapshot
        (a drain manager closing an already-closed fabric must not
        overwrite the file with a post-drain state).
        """
        if self._closed:
            return
        self._closed = True
        if self.snapshot_path is not None:
            self.snapshot().save(self.snapshot_path)
        try:
            close = getattr(self.network, "close", None)
            if close is not None:
                close()
        finally:
            close = getattr(self.standby, "close", None)
            if close is not None:
                close()

    def snapshot(self):
        """Capture a warm-restart
        :class:`~repro.resilience.snapshot.FabricSnapshot` — the plan
        cache's assignments plus health and breaker state."""
        from ..resilience.snapshot import FabricSnapshot  # deferred: cycle

        return FabricSnapshot.capture(self)

    def restore(self, snap) -> int:
        """Adopt a :class:`~repro.resilience.snapshot.FabricSnapshot`:
        recompile its cached assignments on *this* fabric's compiler and
        restore health/breaker state.  Returns the number of plans
        warmed."""
        return snap.restore(self)

    def reset(self) -> None:
        """Clear the session statistics and health state (the network
        itself is stateless)."""
        self.stats = FabricStats()
        if self.health is not None:
            from ..faults.health import HealthTracker  # deferred: cycle

            self.health = HealthTracker(
                fail_threshold=self.health.fail_threshold,
                quarantine_frames=self.health.quarantine_frames,
                probe_frames=self.health.probe_frames,
            )
