"""Discrete-event multi-frame pipeline simulation of the BRSMN.

:mod:`repro.hardware.schedule` computes frame latency and period
*arithmetically*; this module checks those numbers the honest way — by
actually simulating frames flowing through the network's pipeline
segments and detecting structural hazards.

Model: the unrolled BRSMN is a chain of **segments**, one per splitting
level (each = that level's routing computation + its two datapath
passes, busy for the level's full service time per frame), ending with
the delivery level.  Segments are distinct hardware, so different
frames may occupy different segments simultaneously; a *structural
hazard* occurs iff a frame arrives at a segment before the previous
frame has left it.  The feedback BRSMN is a single segment serving a
frame's whole schedule.

:func:`simulate_stream` pushes ``k`` frames injected every ``period``
gate-delays and reports per-frame completion times, per-segment
utilisation and any hazards; :func:`find_min_period` bisects for the
smallest hazard-free period — which the tests pin to
:func:`repro.hardware.schedule.pipelined_throughput`'s arithmetic
(slowest-segment busy time for the unrolled network, whole-frame
latency for the feedback one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..hardware.cost import CostParameters, DEFAULT_COST
from ..hardware.schedule import build_frame_schedule
from ..hardware.timing import TimingParameters
from ..rbn.permutations import check_network_size

__all__ = ["SegmentStats", "StreamReport", "simulate_stream", "find_min_period"]


def _segment_service_times(
    n: int,
    implementation: str,
    timing: TimingParameters,
    cost: CostParameters,
) -> List[int]:
    """Busy time per pipeline segment for one frame.

    Unrolled: one segment per level (level entries of the frame
    schedule).  Feedback: a single segment covering the whole schedule.
    """
    schedule = build_frame_schedule(n, timing, cost)
    if implementation == "feedback":
        return [schedule.total_time]
    if implementation != "unrolled":
        raise ValueError(f"unknown implementation {implementation!r}")
    by_level: Dict[int, int] = {}
    for e in schedule.entries:
        by_level[e.level] = by_level.get(e.level, 0) + e.duration
    return [by_level[level] for level in sorted(by_level)]


@dataclass
class SegmentStats:
    """Occupancy record of one pipeline segment.

    Attributes:
        service_time: busy time per frame (gate delays).
        busy: total gate delays spent serving frames.
        hazards: number of frames that arrived while still busy.
    """

    service_time: int
    busy: int = 0
    hazards: int = 0


@dataclass
class StreamReport:
    """Outcome of streaming ``k`` frames through the pipeline.

    Attributes:
        n: network size.
        period: injection period used (gate delays).
        completions: per-frame completion times.
        segments: per-segment statistics, in pipeline order.
        makespan: completion time of the last frame.
    """

    n: int
    period: int
    completions: List[int] = field(default_factory=list)
    segments: List[SegmentStats] = field(default_factory=list)

    @property
    def hazard_free(self) -> bool:
        """True when no frame ever collided with its predecessor."""
        return all(s.hazards == 0 for s in self.segments)

    @property
    def makespan(self) -> int:
        """Completion time of the last frame."""
        return max(self.completions, default=0)

    def utilisation(self, segment: int) -> float:
        """Busy fraction of one segment over the makespan."""
        if self.makespan == 0:
            return 0.0
        return self.segments[segment].busy / self.makespan

    @property
    def bottleneck_utilisation(self) -> float:
        """Utilisation of the busiest segment (1.0 = saturated)."""
        return max(
            (self.utilisation(i) for i in range(len(self.segments))),
            default=0.0,
        )


def simulate_stream(
    n: int,
    frames: int,
    period: int,
    implementation: str = "unrolled",
    timing: TimingParameters = TimingParameters(),
    cost: CostParameters = DEFAULT_COST,
) -> StreamReport:
    """Stream frames through the pipeline; detect structural hazards.

    Frame ``f`` is injected at time ``f * period`` and visits every
    segment in order; at each it must wait until the segment is free
    (a *hazard*, counted) and then occupies it for the segment's
    service time.

    Args:
        n: network size (power of two).
        frames: number of frames to stream (>= 1).
        period: injection period in gate delays (>= 1).
        implementation: ``"unrolled"`` or ``"feedback"``.
        timing, cost: hardware constants (must match the ones used to
            derive any period being validated).
    """
    check_network_size(n)
    if frames < 1:
        raise ValueError(f"frames must be >= 1, got {frames}")
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    services = _segment_service_times(n, implementation, timing, cost)
    report = StreamReport(
        n=n,
        period=period,
        segments=[SegmentStats(service_time=t) for t in services],
    )
    free_at = [0] * len(services)  # when each segment becomes free
    for f in range(frames):
        t = f * period
        for i, service in enumerate(services):
            if t < free_at[i]:
                report.segments[i].hazards += 1
                t = free_at[i]
            free_at[i] = t + service
            report.segments[i].busy += service
            t += service
        report.completions.append(t)
    return report


def find_min_period(
    n: int,
    implementation: str = "unrolled",
    timing: TimingParameters = TimingParameters(),
    cost: CostParameters = DEFAULT_COST,
    probe_frames: int = 8,
) -> int:
    """Smallest hazard-free injection period, found by bisection.

    For a chain of fixed-service segments this equals the largest
    segment service time; the simulation-based search exists precisely
    so tests can confirm the arithmetic instead of assuming it.
    """
    services = _segment_service_times(n, implementation, timing, cost)
    lo, hi = 1, sum(services) + 1
    while lo < hi:
        mid = (lo + hi) // 2
        if simulate_stream(
            n, probe_frames, mid, implementation, timing, cost
        ).hazard_free:
            hi = mid
        else:
            lo = mid + 1
    return lo
