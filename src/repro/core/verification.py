"""Delivery verification: the nonblocking-multicast acceptance criteria.

The headline claim of the paper is that a BRSMN "can realize arbitrary
multicast assignments between its inputs and outputs without any
blocking" over edge-disjoint trees.  :func:`verify_delivery` checks the
outcome of a routing pass against the assignment, and
:func:`verify_edge_disjoint` checks the per-link exclusivity property
on a recorded trace (every link of every stage carries at most one
message per frame — which is what makes the realized connection trees
edge-disjoint).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..rbn.trace import Trace
from .brsmn import RoutingResult
from .message import Message
from .multicast import MulticastAssignment

__all__ = ["VerificationReport", "verify_delivery", "verify_edge_disjoint", "verify_result"]


@dataclass
class VerificationReport:
    """Outcome of verifying one routing pass.

    Attributes:
        ok: True when no violations were found.
        violations: human-readable descriptions of every failure.
        deliveries: number of (output, message) deliveries checked.
    """

    ok: bool
    violations: List[str] = field(default_factory=list)
    deliveries: int = 0

    def __bool__(self) -> bool:
        return self.ok


def verify_delivery(
    assignment: MulticastAssignment,
    outputs: Sequence[Optional[Message]],
) -> VerificationReport:
    """Check that a routed frame delivered the assignment exactly.

    Verifies, for every output ``o``:

    * if ``o`` is in some ``I_i``, the delivered message's source is
      ``i`` (and its payload is input ``i``'s payload);
    * if ``o`` is in no destination set, nothing was delivered.
    """
    violations: List[str] = []
    if len(outputs) != assignment.n:
        return VerificationReport(
            False, [f"expected {assignment.n} outputs, got {len(outputs)}"]
        )
    inverse = assignment.inverse_map()
    deliveries = 0
    for o, msg in enumerate(outputs):
        expect = inverse.get(o)
        if expect is None:
            if msg is not None:
                violations.append(
                    f"output {o}: spurious delivery from input {msg.source}"
                )
            continue
        if msg is None:
            violations.append(f"output {o}: missing delivery from input {expect}")
        elif msg.source != expect:
            violations.append(
                f"output {o}: delivered from input {msg.source}, expected {expect}"
            )
        else:
            deliveries += 1
    return VerificationReport(not violations, violations, deliveries)


def verify_edge_disjoint(trace: Trace) -> VerificationReport:
    """Check per-link exclusivity on a recorded trace.

    In a circuit-switched frame, each physical link carries exactly one
    cell by construction; what can go wrong is a switch *overwriting* a
    message (two messages entering, fewer leaving) or fabricating one.
    This check asserts conservation per recorded stage: the multiset of
    non-idle payload identities leaving a stage equals the multiset
    entering it, except at legal broadcast switches where one alpha
    message becomes its two branch copies.
    """
    violations: List[str] = []
    for si, st in enumerate(trace.stages):
        n_in = sum(1 for c in st.inputs if not c.is_empty)
        n_out = sum(1 for c in st.outputs if not c.is_empty)
        if n_out != n_in + st.broadcast_count:
            violations.append(
                f"stage {si} (size {st.size} at offset {st.offset}): "
                f"{n_in} messages in, {n_out} out with "
                f"{st.broadcast_count} broadcasts"
            )
    return VerificationReport(not violations, violations, deliveries=0)


def verify_result(result: RoutingResult) -> VerificationReport:
    """Verify a :class:`~repro.core.brsmn.RoutingResult` end to end.

    Combines :func:`verify_delivery` with, when a trace is present,
    :func:`verify_edge_disjoint`.
    """
    report = verify_delivery(result.assignment, result.outputs)
    if result.trace is not None:
        edge = verify_edge_disjoint(result.trace)
        if not edge.ok:
            report.ok = False
            report.violations.extend(edge.violations)
    return report
