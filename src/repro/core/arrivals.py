"""Queueing on top of the frame switch: arrivals, backlog, waiting times.

The admission layer (:mod:`repro.core.admission`) packs a *static*
request batch into frames.  A running switch instead sees a *stream*:
calls arrive over time, the fabric serves one multicast frame per slot,
and unserved requests queue.  This module provides that operational
layer:

* :func:`poisson_arrivals` — a seeded arrival process: per slot a
  Poisson-distributed number of requests with configurable fanout
  distribution;
* :class:`QueueingSimulator` — per slot: enqueue the new arrivals,
  greedily pack one conflict-free frame from the backlog
  (largest-first or FIFO), route it through a real network (verified),
  and record each request's waiting time;
* :class:`QueueingReport` — waiting-time and backlog statistics.

The point: the nonblocking guarantee is per *frame*; end-to-end call
latency is a queueing phenomenon governed by port contention, which
this simulation measures instead of hand-waving.

When the config carries resilience settings, the simulator also runs
the overload layer: an :class:`~repro.resilience.gate.AdmissionGate`
admits or sheds each request *at arrival* (the gate ticks once per
slot; shed requests are counted in :attr:`QueueingReport.shed` and
never enter the backlog), and ``deadline_ms`` bounds each slot's
healing retries through a
:class:`~repro.resilience.budget.DeadlineBudget`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter_ns
from typing import List, Optional, Sequence

import numpy as np

from ..errors import InvalidAssignmentError
from ..obs.events import QueueDepth
from ..rbn.permutations import check_network_size
from .admission import Request, conflicts
from .config import _resolve_config
from .multicast import MulticastAssignment
from .routing import build_network
from .verification import verify_result

__all__ = [
    "Arrival",
    "poisson_arrivals",
    "QueueingReport",
    "QueueingSimulator",
]


@dataclass(frozen=True)
class Arrival:
    """One request arriving at a given frame slot.

    Attributes:
        slot: arrival time in frame slots (0-based).
        request: the multicast call.
    """

    slot: int
    request: Request


def poisson_arrivals(
    n: int,
    rate: float,
    slots: int,
    seed=0,
    mean_fanout: float = 2.0,
    high_priority_fraction: float = 0.0,
) -> List[Arrival]:
    """A seeded Poisson arrival process of multicast requests.

    Args:
        n: switch size.
        rate: mean arrivals per slot.
        slots: number of slots to generate.
        seed: RNG seed or Generator.
        mean_fanout: mean destination-set size (geometric, >= 1).
        high_priority_fraction: probability that a request carries
            ``priority=1`` (survives soft admission shedding).  The
            default 0.0 draws nothing from the RNG, so existing seeded
            streams are unchanged.

    Returns:
        Arrivals in slot order.
    """
    check_network_size(n)
    if rate < 0 or slots < 0:
        raise ValueError("rate and slots must be non-negative")
    if mean_fanout < 1.0:
        raise ValueError("mean_fanout must be >= 1")
    if not 0.0 <= high_priority_fraction <= 1.0:
        raise ValueError(
            "high_priority_fraction must be in [0, 1], got "
            f"{high_priority_fraction}"
        )
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    arrivals: List[Arrival] = []
    counter = 0
    p = 1.0 / mean_fanout
    for slot in range(slots):
        for _ in range(int(rng.poisson(rate))):
            src = int(rng.integers(n))
            fanout = min(int(rng.geometric(p)), n)
            dests = frozenset(
                int(d) for d in rng.choice(n, size=fanout, replace=False)
            )
            priority = 0
            if high_priority_fraction > 0.0:
                priority = int(rng.random() < high_priority_fraction)
            arrivals.append(
                Arrival(
                    slot,
                    Request(
                        src,
                        dests,
                        payload=f"call{counter}",
                        priority=priority,
                    ),
                )
            )
            counter += 1
    return arrivals


@dataclass
class QueueingReport:
    """Statistics of one queueing simulation.

    Attributes:
        n: switch size.
        slots_run: frame slots simulated (>= the arrival horizon; the
            simulator keeps running until the backlog drains).
        served: requests delivered.
        waits: per-request waiting time in slots (service slot minus
            arrival slot).
        backlog_per_slot: backlog size at the end of each slot.
        deliveries: total (output, message) deliveries.
        requeued: fault-aware runs — times a request's failed terminals
            were put back on the backlog for a later slot.
        abandoned: fault-aware runs — requests given up after
            ``max_requeues`` requeues still left terminals undelivered.
        shed: requests refused by the admission gate at arrival (never
            queued, never served).
        recovered: requests fully served only after at least one
            requeue (a subset of ``served``).
        serve_ms: wall-clock milliseconds spent routing each non-empty
            slot's frame (the latency a per-slot deadline bounds).
    """

    n: int
    slots_run: int = 0
    served: int = 0
    waits: List[int] = field(default_factory=list)
    backlog_per_slot: List[int] = field(default_factory=list)
    deliveries: int = 0
    requeued: int = 0
    abandoned: int = 0
    shed: int = 0
    recovered: int = 0
    serve_ms: List[float] = field(default_factory=list)

    @property
    def mean_wait(self) -> float:
        """Mean waiting time in slots."""
        return sum(self.waits) / len(self.waits) if self.waits else 0.0

    @property
    def max_wait(self) -> int:
        """Worst waiting time in slots."""
        return max(self.waits, default=0)

    @property
    def peak_backlog(self) -> int:
        """Largest end-of-slot backlog observed."""
        return max(self.backlog_per_slot, default=0)

    @property
    def p95_serve_ms(self) -> float:
        """95th-percentile per-slot serve latency in milliseconds
        (nearest-rank over :attr:`serve_ms`; 0.0 with no samples)."""
        if not self.serve_ms:
            return 0.0
        ordered = sorted(self.serve_ms)
        rank = max(0, -(-95 * len(ordered) // 100) - 1)
        return ordered[rank]


class QueueingSimulator:
    """Serve an arrival stream, one verified multicast frame per slot.

    Args:
        n: a :class:`~repro.core.config.NetworkConfig`, or a bare
            switch size — long arrival simulations are exactly where
            ``engine="fast"`` and its plan cache pay off.
        policy: backlog packing order — ``"largest_first"`` (fanout
            descending, FIFO within ties) or ``"fifo"``.
        max_slots: safety bound on total slots simulated.
        observer: optional :class:`~repro.obs.events.Observer`
            (overrides the config's); receives the routed frames'
            lifecycle events plus one end-of-slot
            :class:`~repro.obs.events.QueueDepth` sample per slot.
        max_requeues: fault-aware runs — times a request's failed
            terminals may be put back on the backlog before the request
            is abandoned.
        retry_policy: fault-aware runs — the
            :class:`~repro.faults.healing.RetryPolicy` of the per-slot
            healing loop.

    An ``admission`` policy on the config installs an
    :class:`~repro.resilience.gate.AdmissionGate` that admits or sheds
    each request the slot it arrives (queue depth = current backlog);
    ``deadline_ms`` bounds each slot's healing retries.  Both default
    to off.  A ``control`` policy runs a
    :class:`~repro.control.plane.ControlPlane` over the slot loop: one
    deterministic control tick at the end of every slot, retuning the
    gate's rate/reserve, the compile-ahead depth and the shard worker
    target from the observed window (see ``docs/control_plane.md``).

    When the config carries a non-empty fault plan, every slot's frame
    is routed through :func:`~repro.faults.healing.route_with_healing`:
    terminals the in-slot retries cannot reach are re-queued as a
    reduced request for a later slot (a different backlog packing routes
    them through different positions), bounded by ``max_requeues``.
    """

    def __init__(
        self,
        n,
        policy: str = "largest_first",
        max_slots: int = 100_000,
        observer=None,
        max_requeues: int = 3,
        retry_policy=None,
    ):
        cfg = _resolve_config(n, observer=observer)
        if policy not in ("largest_first", "fifo"):
            raise ValueError(
                f"unknown policy {policy!r} "
                "(expected 'largest_first' or 'fifo')"
            )
        if max_requeues < 0:
            raise ValueError(f"max_requeues must be >= 0, got {max_requeues}")
        if cfg.control is not None:
            from ..control.plane import ControlPlane  # deferred: cycle
            from ..obs.events import CompositeObserver

            # Splice the plane's signal aggregator in front of the
            # caller's observer so it sees every event the slot loop
            # emits; ControlEvents go to the caller's observer only.
            self.control = ControlPlane(cfg.control, observer=cfg.observer)
            cfg = replace(
                cfg,
                observer=CompositeObserver(self.control.signals, cfg.observer),
            )
        else:
            self.control = None
        self.n = cfg.n
        self.policy = policy
        self.network = build_network(cfg)
        self.observer = cfg.observer
        self.max_slots = max_slots
        self.max_requeues = max_requeues
        self.retry_policy = retry_policy
        self._fault_aware = (
            cfg.fault_plan is not None and not cfg.fault_plan.is_empty
        )
        self.deadline_ms = cfg.deadline_ms
        if cfg.admission is not None:
            from ..resilience.gate import AdmissionGate  # deferred: cycle

            self.gate = AdmissionGate(cfg.admission, observer=cfg.observer)
        else:
            self.gate = None
        if self.control is not None:
            base_retry = self.retry_policy
            if base_retry is None and self._fault_aware:
                from ..faults.healing import RetryPolicy  # deferred: cycle

                base_retry = RetryPolicy()
            self.control.bind(
                gate=self.gate,
                pipeline=getattr(self.network, "pipeline", None),
                router=getattr(self.network, "_sharded", None),
                retry_policy=base_retry,
                retry_setter=(
                    None
                    if base_retry is None
                    else lambda p: setattr(self, "retry_policy", p)
                ),
            )

    def _pack_frame(self, backlog: List[Arrival]) -> List[int]:
        """Pick a conflict-free subset of the backlog (greedy); returns
        indices into the backlog, to be served this slot."""
        order = range(len(backlog))
        if self.policy == "largest_first":
            order = sorted(
                order, key=lambda i: (-backlog[i].request.fanout, i)
            )
        chosen: List[int] = []
        for i in order:
            r = backlog[i].request
            if all(not conflicts(r, backlog[j].request) for j in chosen):
                chosen.append(i)
        return sorted(chosen)

    def run(self, arrivals: Sequence[Arrival]) -> QueueingReport:
        """Simulate until every arrival has been served.

        Raises:
            RuntimeError: if the backlog fails to drain within
                ``max_slots`` (offered load persistently above
                capacity).
        """
        report = QueueingReport(n=self.n)
        obs = self.observer
        emit = obs is not None and obs.enabled
        prefetch = getattr(self.network, "compile_ahead", 0) > 0
        pending = sorted(arrivals, key=lambda a: a.slot)
        backlog: List[Arrival] = []
        # Requeue budget per in-backlog arrival object; entries are
        # popped when the arrival is served/requeued/abandoned, so ids
        # are only ever read while their object is alive.
        requeue_counts: dict = {}
        slot = 0
        idx = 0
        while idx < len(pending) or backlog:
            if slot >= self.max_slots:
                raise RuntimeError(
                    f"backlog failed to drain within {self.max_slots} slots"
                )
            if self.gate is not None:
                self.gate.tick()
            while idx < len(pending) and pending[idx].slot <= slot:
                arrival = pending[idx]
                idx += 1
                if self.gate is not None and not self.gate.admit(
                    priority=arrival.request.priority,
                    queue_depth=len(backlog),
                ):
                    report.shed += 1
                    continue
                backlog.append(arrival)
            chosen = self._pack_frame(backlog)
            served_now = 0
            if chosen:
                serve_start = perf_counter_ns()
                dests: List[Optional[List[int]]] = [None] * self.n
                payloads: List[object] = [None] * self.n
                for i in chosen:
                    r = backlog[i].request
                    dests[r.source] = sorted(r.destinations)
                    payloads[r.source] = r.payload
                frame = MulticastAssignment(self.n, dests)
                if self._fault_aware:
                    served_now = self._serve_healed(
                        frame, payloads, backlog, chosen,
                        slot, report, requeue_counts,
                    )
                else:
                    result = self.network.route(frame, payloads=payloads)
                    check = verify_result(result)
                    if not check.ok:
                        raise InvalidAssignmentError(
                            "queueing frame failed verification: "
                            + "; ".join(check.violations)
                        )
                    report.deliveries += check.deliveries
                    for i in chosen:
                        report.waits.append(slot - backlog[i].slot)
                        report.served += 1
                    served_now = len(chosen)
                    backlog = [
                        a for k, a in enumerate(backlog) if k not in set(chosen)
                    ]
                report.serve_ms.append(
                    (perf_counter_ns() - serve_start) / 1e6
                )
            if emit:
                obs.on_queue_depth(
                    QueueDepth(slot=slot, depth=len(backlog), served=served_now)
                )
            if prefetch:
                self._prefetch_next_slot(backlog, pending, idx, slot + 1)
            if self.control is not None:
                self.control.maybe_tick(queue_depth=len(backlog))
            slot += 1
            report.backlog_per_slot.append(len(backlog))
        report.slots_run = slot
        return report

    def _prefetch_next_slot(
        self,
        backlog: List[Arrival],
        pending: List[Arrival],
        idx: int,
        next_slot: int,
    ) -> None:
        """Warm the plan cache for the frame the *next* slot will route.

        Packing is a deterministic function of the backlog and the
        arrivals admitted by then, so replaying it on a scratch list
        predicts the next frame exactly; its plan then compiles on the
        worker pool while this thread packs, verifies and accounts.
        The speculative pack is paid only on parallel configurations
        (``compile_ahead > 0``).
        """
        lookahead = list(backlog)
        while idx < len(pending) and pending[idx].slot <= next_slot:
            lookahead.append(pending[idx])
            idx += 1
        chosen = self._pack_frame(lookahead)
        if not chosen:
            return
        dests: List[Optional[List[int]]] = [None] * self.n
        for i in chosen:
            r = lookahead[i].request
            dests[r.source] = sorted(r.destinations)
        self.network.prefetch(MulticastAssignment(self.n, dests))

    def close(self) -> None:
        """Release parallel-engine resources (worker threads); no-op on
        non-parallel configurations."""
        close = getattr(self.network, "close", None)
        if close is not None:
            close()

    def _serve_healed(
        self, frame, payloads, backlog, chosen, slot, report, requeue_counts
    ) -> int:
        """Serve one slot's frame through the healing loop.

        Requests whose terminals the in-slot retries could not reach are
        put back on the backlog as a *reduced* request (only the failed
        terminals, original arrival slot) up to ``max_requeues`` times,
        then abandoned.  With ``deadline_ms`` on the config, a fresh
        :class:`~repro.resilience.budget.DeadlineBudget` bounds the
        slot's retries.  Mutates ``backlog`` in place; returns the
        number of requests fully served this slot.
        """
        from ..faults.healing import route_with_healing  # deferred: cycle

        budget = None
        if self.deadline_ms is not None:
            from ..resilience.budget import DeadlineBudget  # deferred: cycle

            budget = DeadlineBudget(self.deadline_ms)
        result = route_with_healing(
            self.network,
            frame,
            payloads=payloads,
            policy=self.retry_policy,
            budget=budget,
        )
        report.deliveries += result.verification.deliveries
        lost = set(result.lost)
        served_now = 0
        requeues: List[Arrival] = []
        for i in chosen:
            arrival = backlog[i]
            r = arrival.request
            failed = r.destinations & lost
            budget_used = requeue_counts.pop(id(arrival), 0)
            if not failed:
                report.waits.append(slot - arrival.slot)
                report.served += 1
                served_now += 1
                if budget_used > 0:
                    report.recovered += 1
            elif budget_used >= self.max_requeues:
                report.abandoned += 1
            else:
                report.requeued += 1
                retry = Arrival(
                    arrival.slot,
                    Request(
                        r.source,
                        frozenset(failed),
                        payload=r.payload,
                        priority=r.priority,
                    ),
                )
                requeue_counts[id(retry)] = budget_used + 1
                requeues.append(retry)
        backlog[:] = [
            a for k, a in enumerate(backlog) if k not in set(chosen)
        ] + requeues
        return served_now
