"""The binary splitting network (paper Section 3, Fig. 4).

A BSN is the work-horse of one BRSMN level: it takes ``n`` links
carrying messages tagged by the current address bit (``0`` /upper half,
``1`` /lower half, ``ALPHA`` /both — must be split, ``EPS`` /idle) and
delivers every 0-bound message to its upper ``n/2`` outputs and every
1-bound message to its lower ``n/2`` outputs, splitting alphas along
the way.  Input tag populations obey eqs. (1)-(3)::

    n0 + n1 + na + ne = n ,   n0 + na <= n/2 ,   n1 + na <= n/2 ,

which imply ``na <= ne``; the output populations satisfy eq. (4).

Construction (Fig. 4a): a *scatter network* (RBN, Theorem 2) eliminates
all alphas, then a *quasisorting network* (RBN with epsilon-dividing +
bit sorting, Section 5.2) moves the 0s up and the 1s down.

The BSN layer is also where multicast semantics enter the otherwise
tag-only RBN layer: :func:`make_bsn_cells` turns per-input messages
into tagged cells, pre-computing each alpha's two branch payloads —
from the destination sets (oracle mode) or by splitting the routing-tag
stream per Fig. 10 (self-routing mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import InvalidAssignmentError, RoutingInvariantError
from ..rbn.cells import Cell
from ..rbn.fast import fast_quasisort
from ..rbn.fast_scatter import fast_scatter_cells
from ..rbn.permutations import check_network_size
from ..rbn.quasisort import quasisort
from ..rbn.scatter import count_tags, scatter
from ..rbn.trace import Trace
from .message import Message
from .tags import Tag
from .tagtree import split_stream, tag_of_destinations

__all__ = ["BsnFrameStats", "BinarySplittingNetwork", "make_bsn_cells"]


def make_bsn_cells(
    messages: Sequence[Optional[Message]],
    base: int,
    size: int,
    mode: str = "oracle",
) -> List[Cell]:
    """Tag one level's messages and prepare alpha branch payloads.

    Args:
        messages: per-input messages of this sub-network (``None`` =
            idle input).
        base: absolute address of this sub-network's first output.
        size: sub-network size ``n'``.
        mode: ``"oracle"`` derives tags from the remaining destination
            sets; ``"selfrouting"`` consumes the head of each message's
            tag stream (the hardware behaviour, paper Section 7.1).

    Returns:
        One :class:`~repro.rbn.cells.Cell` per input.

    Raises:
        InvalidAssignmentError: if a message's destinations stray
            outside ``[base, base + size)``.
        RoutingInvariantError: in self-routing mode, if a stream head
            contradicts the message's actual destinations (a corrupted
            tag sequence).
    """
    mid = base + size // 2
    cells: List[Cell] = []
    for msg in messages:
        if msg is None:
            cells.append(Cell(Tag.EPS))
            continue
        if any(not base <= d < base + size for d in msg.destinations):
            raise InvalidAssignmentError(
                f"message from input {msg.source} has destinations outside "
                f"[{base}, {base + size})"
            )
        up_msg, lo_msg = msg.split_at(mid)
        oracle_tag = tag_of_destinations(msg.destinations, mid)
        if mode == "oracle":
            tag = oracle_tag
        elif mode == "selfrouting":
            if msg.tag_stream is None:
                raise InvalidAssignmentError(
                    f"message from input {msg.source} carries no tag stream"
                )
            head, up_stream, lo_stream = split_stream(msg.tag_stream)
            if head is not oracle_tag:
                raise RoutingInvariantError(
                    f"tag stream head {head} contradicts destinations "
                    f"({oracle_tag}) for input {msg.source}"
                )
            tag = head
            up_msg = None if up_msg is None else up_msg.with_stream(up_stream)
            lo_msg = None if lo_msg is None else lo_msg.with_stream(lo_stream)
        else:
            raise ValueError(f"unknown routing mode {mode!r}")

        if tag is Tag.ALPHA:
            cells.append(Cell(Tag.ALPHA, data=msg, branch0=up_msg, branch1=lo_msg))
        else:
            carried = up_msg if tag is Tag.ZERO else lo_msg
            cells.append(Cell(tag, data=carried))
    return cells


@dataclass
class BsnFrameStats:
    """Per-frame statistics of one BSN traversal.

    Attributes:
        size: the BSN size ``n``.
        input_counts: tag populations on the inputs (paper's
            ``n0, n1, na, ne``).
        splits: number of alpha messages split (= broadcasts fired).
        switch_ops: 2x2 switch applications (two RBN passes).
    """

    size: int
    input_counts: dict = field(default_factory=dict)
    splits: int = 0
    switch_ops: int = 0


class BinarySplittingNetwork:
    """An ``n x n`` binary splitting network (scatter RBN + quasisort RBN).

    Args:
        n: network size (power of two, >= 2).
        engine: ``"reference"`` runs the per-switch RBN simulations;
            ``"fast"`` runs the vectorised scatter + quasisort kernels
            (:mod:`repro.rbn.fast_scatter`, :mod:`repro.rbn.fast`) —
            cell-for-cell identical output.  A requested trace always
            uses the reference path (the fast path has no stages to
            record).
    """

    def __init__(self, n: int, engine: str = "reference"):
        self.m = check_network_size(n)
        self.n = n
        if engine not in ("reference", "fast"):
            raise ValueError(
                f"unknown engine {engine!r} (expected 'reference' or 'fast')"
            )
        self.engine = engine

    @property
    def switch_count(self) -> int:
        """Physical switches: two RBNs of ``(n/2) log2 n`` each."""
        return 2 * (self.n // 2) * self.m

    @property
    def depth(self) -> int:
        """Switch stages on any input-output path: ``2 log2 n``."""
        return 2 * self.m

    def route_cells(
        self,
        cells: Sequence[Cell],
        *,
        trace: Optional[Trace] = None,
        offset: int = 0,
    ) -> Tuple[List[Cell], BsnFrameStats]:
        """Route one frame of tagged cells through scatter + quasisort.

        Returns the ``n`` output cells (zeros all in positions
        ``[0, n/2)``, ones in ``[n/2, n)``) and the frame statistics.

        Raises:
            RoutingInvariantError: if the input populations violate
                eqs. (1)-(3).
        """
        if len(cells) != self.n:
            raise InvalidAssignmentError(
                f"expected {self.n} cells, got {len(cells)}"
            )
        counts = count_tags(cells)
        half = self.n // 2
        if counts["n0"] + counts["na"] > half or counts["n1"] + counts["na"] > half:
            raise RoutingInvariantError(
                "BSN input constraint (eq. 2) violated: "
                "n0={n0}, n1={n1}, na={na}, n/2={h}".format(
                    n0=counts["n0"], n1=counts["n1"], na=counts["na"], h=half
                )
            )
        if self.engine == "fast" and trace is None:
            scattered = fast_scatter_cells(cells, 0)
            sorted_cells = fast_quasisort(scattered)
        else:
            scattered = scatter(cells, 0, trace=trace, offset=offset)
            sorted_cells = quasisort(scattered, trace=trace, offset=offset)
        stats = BsnFrameStats(
            size=self.n,
            input_counts=counts,
            splits=counts["na"],
            switch_ops=2 * (self.n // 2) * self.m,
        )
        return sorted_cells, stats

    def route_messages(
        self,
        messages: Sequence[Optional[Message]],
        base: int = 0,
        mode: str = "oracle",
        *,
        trace: Optional[Trace] = None,
    ) -> Tuple[List[Optional[Message]], List[Optional[Message]], BsnFrameStats]:
        """Split one level's messages into upper-half and lower-half frames.

        Args:
            messages: per-input messages (``None`` = idle).
            base: absolute address of this sub-network's first output.
            mode: ``"oracle"`` or ``"selfrouting"`` (see
                :func:`make_bsn_cells`).
            trace: optional recorder.

        Returns:
            ``(upper, lower, stats)`` — the message frames handed to the
            two half-size BRSMNs.  Every message in ``upper`` has all
            destinations below the midpoint; symmetric for ``lower``.
        """
        cells = make_bsn_cells(messages, base, self.n, mode)
        out_cells, stats = self.route_cells(cells, trace=trace, offset=base)
        half = self.n // 2
        upper = [c.data for c in out_cells[:half]]
        lower = [c.data for c in out_cells[half:]]
        # Sanity: tags and halves must agree (Theorem 2 + quasisort).
        for c in out_cells[:half]:
            if c.tag not in (Tag.ZERO, Tag.EPS):
                raise RoutingInvariantError(
                    f"upper BSN output carries tag {c.tag}"
                )
        for c in out_cells[half:]:
            if c.tag not in (Tag.ONE, Tag.EPS):
                raise RoutingInvariantError(
                    f"lower BSN output carries tag {c.tag}"
                )
        return upper, lower, stats
