"""Routing-tag values and the 3-bit encoding scheme of paper Table 1.

The BRSMN routes with four tag values per link (Section 3):

* ``ZERO``  — every destination of this message lies in the *upper* half
  of the current subnetwork's outputs (the current address bit is 0).
* ``ONE``   — every destination lies in the *lower* half (bit is 1).
* ``ALPHA`` — destinations in both halves; the message must be *split*
  (one copy per half) by a broadcast switch in the scatter network.
* ``EPS``   — the empty tag: the link carries no message.

The quasisorting network additionally distinguishes *dummy* epsilons
(Section 5.2): ``EPS0`` (an epsilon re-labelled as a dummy 0) and
``EPS1`` (dummy 1), so that the 0-population and 1-population are both
exactly ``n/2`` and plain bit sorting (Theorem 1) applies.

Table 1 of the paper assigns a 3-bit hardware encoding ``b0 b1 b2``:

====== =========
tag    b0 b1 b2
====== =========
0      0  0  0
1      0  0  1
alpha  1  0  0
eps    1  1  X
eps0   1  1  0
eps1   1  1  1
====== =========

so that ``b0 AND NOT b1`` counts alphas and ``b0 AND b1`` counts
epsilons — the single-gate count predicates used by the forward phases
of the self-routing circuit (Section 7.2).
"""

from __future__ import annotations

import enum

from ..errors import InvalidTagError

__all__ = [
    "Tag",
    "TAG_SYMBOLS",
    "encode_tag",
    "decode_tag",
    "is_alpha_bit",
    "is_eps_bit",
    "is_one_bit",
    "parse_tag_string",
    "format_tag_string",
]


class Tag(enum.Enum):
    """A routing-tag value carried by one link of the network.

    Members compare by identity; use :func:`encode_tag` for the Table 1
    hardware encoding.  ``EPS0``/``EPS1`` only ever appear *inside* the
    quasisorting network.
    """

    ZERO = "0"
    ONE = "1"
    ALPHA = "a"
    EPS = "e"
    EPS0 = "e0"
    EPS1 = "e1"

    @property
    def is_eps_like(self) -> bool:
        """True for ``EPS``, ``EPS0`` and ``EPS1`` (no message carried)."""
        return self in (Tag.EPS, Tag.EPS0, Tag.EPS1)

    @property
    def is_chi(self) -> bool:
        """True for the combined value ``chi`` of Section 5.1 (0 or 1).

        The scatter-network analysis folds ``ZERO`` and ``ONE`` into a
        single symbol ``chi`` because both travel unicast and neither
        participates in alpha/epsilon elimination.
        """
        return self in (Tag.ZERO, Tag.ONE)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tag.{self.name}"


#: Human-readable one-character symbols used by the ASCII renderer and in
#: tag-string literals (``EPS0``/``EPS1`` need two characters).
TAG_SYMBOLS = {
    Tag.ZERO: "0",
    Tag.ONE: "1",
    Tag.ALPHA: "a",
    Tag.EPS: "e",
    Tag.EPS0: "z",
    Tag.EPS1: "w",
}

_SYMBOL_TO_TAG = {v: k for k, v in TAG_SYMBOLS.items()}

#: Table 1 of the paper: tag -> (b0, b1, b2).  ``EPS`` encodes with a
#: don't-care third bit; we canonicalise X to 0 when encoding and accept
#: both codes when decoding.
_ENCODING = {
    Tag.ZERO: (0, 0, 0),
    Tag.ONE: (0, 0, 1),
    Tag.ALPHA: (1, 0, 0),
    Tag.EPS0: (1, 1, 0),
    Tag.EPS1: (1, 1, 1),
}


def encode_tag(tag: Tag) -> tuple[int, int, int]:
    """Encode a tag value as the 3-bit tuple ``(b0, b1, b2)`` of Table 1.

    ``EPS`` has a don't-care last bit ``11X``; it is canonicalised to
    ``(1, 1, 0)``.

    Raises:
        InvalidTagError: if ``tag`` is not a :class:`Tag`.
    """
    if tag is Tag.EPS:
        return (1, 1, 0)
    try:
        return _ENCODING[tag]
    except (KeyError, TypeError) as exc:
        raise InvalidTagError(f"not a routing tag: {tag!r}") from exc


def decode_tag(bits: tuple[int, int, int], *, dummies: bool = False) -> Tag:
    """Decode a 3-bit Table 1 code back into a :class:`Tag`.

    Args:
        bits: the ``(b0, b1, b2)`` triple.
        dummies: when True, ``110``/``111`` decode to ``EPS0``/``EPS1``
            (the quasisorting network's view); when False both decode to
            the plain ``EPS`` (the ``11X`` row of Table 1).

    Raises:
        InvalidTagError: for the unused code ``101`` or malformed input.
    """
    b0, b1, b2 = bits
    if any(b not in (0, 1) for b in (b0, b1, b2)):
        raise InvalidTagError(f"bits must be 0/1 triple, got {bits!r}")
    if (b0, b1) == (0, 0):
        return Tag.ONE if b2 else Tag.ZERO
    if (b0, b1) == (1, 0):
        if b2:
            raise InvalidTagError("code 101 is unused in Table 1")
        return Tag.ALPHA
    if (b0, b1) == (1, 1):
        if dummies:
            return Tag.EPS1 if b2 else Tag.EPS0
        return Tag.EPS
    raise InvalidTagError(f"code {bits!r} is unused in Table 1")


def is_alpha_bit(tag: Tag) -> int:
    """The hardware alpha-counting predicate ``b0 AND NOT b1`` (Sec 7.2)."""
    b0, b1, _ = encode_tag(tag)
    return b0 & (1 - b1)


def is_eps_bit(tag: Tag) -> int:
    """The hardware epsilon-counting predicate ``b0 AND b1`` (Sec 7.2)."""
    b0, b1, _ = encode_tag(tag)
    return b0 & b1


def is_one_bit(tag: Tag) -> int:
    """The hardware 1-counting predicate: bit ``b2`` (Section 7.2).

    Valid only in the quasisorting network, where every tag is one of
    ``ZERO``, ``ONE``, ``EPS0``, ``EPS1`` — there ``b2`` is exactly
    "counts as a (real or dummy) one".
    """
    return encode_tag(tag)[2]


def parse_tag_string(text: str) -> list[Tag]:
    """Parse a compact tag-string literal like ``"00eaeee"`` into tags.

    Symbols: ``0 1 a e`` plus ``z`` (= eps0) and ``w`` (= eps1); spaces
    are ignored.  This is the format used throughout the tests and the
    figure-regeneration benches to transcribe the paper's examples
    (e.g. Fig. 9's sequences ``00eaeee`` and ``a1ae011``).
    """
    tags = []
    for ch in text:
        if ch.isspace():
            continue
        try:
            tags.append(_SYMBOL_TO_TAG[ch])
        except KeyError as exc:
            raise InvalidTagError(f"unknown tag symbol {ch!r} in {text!r}") from exc
    return tags


def format_tag_string(tags) -> str:
    """Inverse of :func:`parse_tag_string`."""
    return "".join(TAG_SYMBOLS[t] for t in tags)
