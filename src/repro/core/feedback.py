"""The feedback implementation of the BRSMN (paper Section 7.3, Fig. 13).

All functional components of the BRSMN are recursively-defined reverse
banyan networks, so the network can *reuse itself*: build one physical
``n x n`` RBN, feed each output back to the input with the same
address, and time-multiplex:

* pass 1: the full RBN acts as the scatter network of the level-1 BSN;
* pass 2: the full RBN acts as its quasisorting network;
* passes 3-4: the two ``n/2 x n/2`` sub-RBNs (the first ``log n - 1``
  stages, upper and lower halves) act as the two level-2 BSNs'
  scatter / quasisort networks — both halves in parallel per pass;
* ... and so on, down to the final delivery on the size-2 sub-RBNs
  (the first stage's switches).

Hardware cost collapses from ``O(n log^2 n)`` to the single RBN's
``O(n log n)`` switches, at the price of ``2 log n - 1`` sequential
passes (depth in *time* rather than silicon).  This module simulates
exactly that schedule, reusing the same distributed algorithms per
slice, and accounts for passes and physical-switch usage so the Fig. 13
bench can report the cost/passes trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import InvalidAssignmentError
from ..rbn.cells import Cell
from ..rbn.permutations import check_network_size
from ..rbn.quasisort import quasisort
from ..rbn.scatter import scatter
from ..rbn.topology import rbn_switch_count
from ..rbn.trace import Trace
from .brsmn import RoutingResult, deliver_final_switch, inject_messages
from .bsn import BsnFrameStats, make_bsn_cells
from .message import Message
from .multicast import MulticastAssignment
from .tags import Tag

__all__ = ["PassRecord", "FeedbackRoutingResult", "FeedbackBRSMN"]


@dataclass(frozen=True)
class PassRecord:
    """One time-multiplexed pass over (part of) the physical RBN.

    Attributes:
        index: 1-based pass number.
        level: which BRSMN splitting level this pass serves (1-based).
        role: ``"scatter"``, ``"quasisort"`` or ``"deliver"``.
        slice_size: size of each sub-RBN slice used.
        slices: number of parallel slices (= n / slice_size).
        stages_used: physical switch stages active during the pass
            (= log2(slice_size)).
    """

    index: int
    level: int
    role: str
    slice_size: int
    slices: int
    stages_used: int


@dataclass
class FeedbackRoutingResult(RoutingResult):
    """Routing result with the feedback network's pass schedule.

    Attributes:
        passes: the time-multiplexing schedule actually executed.
    """

    passes: List[PassRecord] = field(default_factory=list)

    @property
    def pass_count(self) -> int:
        """Sequential passes used (= 2 log2 n - 1)."""
        return len(self.passes)


class FeedbackBRSMN:
    """The feedback (hardware-reusing) BRSMN of paper Fig. 13.

    Functionally identical to :class:`~repro.core.brsmn.BRSMN`; only
    the physical realisation differs — a single ``n x n`` RBN reused
    ``2 log2 n - 1`` times on progressively smaller slices.

    Args:
        n: network size (power of two, >= 2).
    """

    def __init__(self, n: int):
        self.m = check_network_size(n)
        self.n = n

    @property
    def switch_count(self) -> int:
        """Physical switches: one RBN, ``(n/2) log2 n`` (Section 7.4)."""
        return rbn_switch_count(self.n)

    @property
    def pass_count(self) -> int:
        """Sequential passes per frame: ``2 log2 n - 1``."""
        return 2 * self.m - 1

    @property
    def depth(self) -> int:
        """Total switch stages traversed over all passes.

        Matches the unrolled network's ``Theta(log^2 n)`` path length:
        each level-``j`` pass pair crosses ``2 log2(n_j)`` stages.
        """
        total = 0
        size = self.n
        while size > 2:
            total += 2 * (size.bit_length() - 1)
            size //= 2
        return total + 1

    def route(
        self,
        assignment: MulticastAssignment,
        mode: str = "oracle",
        payloads: Optional[Sequence] = None,
        *,
        collect_trace: bool = False,
    ) -> FeedbackRoutingResult:
        """Route one assignment through the time-multiplexed schedule.

        Levels run globally: pass ``2j-1`` scatters *all* level-``j``
        slices in parallel, pass ``2j`` quasisorts them, and the final
        pass delivers on the size-2 slices.
        """
        if assignment.n != self.n:
            raise InvalidAssignmentError(
                f"assignment size {assignment.n} != network size {self.n}"
            )
        trace = (
            Trace(label=f"FeedbackBRSMN(n={self.n}, mode={mode})")
            if collect_trace
            else None
        )
        result = FeedbackRoutingResult(
            assignment=assignment, outputs=[], mode=mode, trace=trace
        )
        frame: List[Optional[Message]] = inject_messages(assignment, mode, payloads)
        pass_no = 0
        level = 0
        size = self.n
        while size > 2:
            level += 1
            half = size // 2
            blocks = self.n // size
            stages = size.bit_length() - 1
            # --- scatter pass over every slice of this level.
            cells: List[Cell] = []
            block_splits: List[int] = []
            for b in range(blocks):
                base = b * size
                block_cells = make_bsn_cells(frame[base : base + size], base, size, mode)
                block_splits.append(
                    sum(1 for c in block_cells if c.tag is Tag.ALPHA)
                )
                cells.extend(scatter(block_cells, 0, trace=trace, offset=base))
            pass_no += 1
            result.passes.append(
                PassRecord(pass_no, level, "scatter", size, blocks, stages)
            )
            # --- quasisort pass over every slice.
            next_frame: List[Optional[Message]] = []
            for b in range(blocks):
                base = b * size
                sorted_cells = quasisort(
                    cells[base : base + size], trace=trace, offset=base
                )
                counts = {
                    "n0": sum(1 for c in sorted_cells if c.tag is Tag.ZERO),
                    "n1": sum(1 for c in sorted_cells if c.tag is Tag.ONE),
                    "na": 0,
                    "ne": sum(1 for c in sorted_cells if c.tag is Tag.EPS),
                }
                result.bsn_stats.append(
                    BsnFrameStats(
                        size=size,
                        input_counts=counts,
                        splits=block_splits[b],
                        switch_ops=2 * half * stages,
                    )
                )
                next_frame.extend(c.data for c in sorted_cells)
            pass_no += 1
            result.passes.append(
                PassRecord(pass_no, level, "quasisort", size, blocks, stages)
            )
            frame = next_frame
            size = half
        # --- final delivery pass on the size-2 slices (first stage).
        outputs: List[Optional[Message]] = []
        for b in range(self.n // 2):
            out_pair, _setting = deliver_final_switch(
                frame[2 * b : 2 * b + 2], 2 * b, mode, trace=trace
            )
            outputs.extend(out_pair)
            result.final_switches += 1
        pass_no += 1
        result.passes.append(
            PassRecord(pass_no, level + 1, "deliver", 2, self.n // 2, 1)
        )
        result.outputs = outputs
        return result
