"""The binary radix sorting multicast network (paper Section 2, Fig. 1).

An ``n x n`` BRSMN realises *any* multicast assignment without blocking
by recursive binary radix splitting: an ``n x n`` binary splitting
network routes every message toward the half containing its
destinations (splitting those that need both halves), then two
``n/2 x n/2`` BRSMNs finish the job on the next address bit, down to
``2 x 2`` switches that deliver on the last bit (Fig. 2 shows the
worked 8x8 example, available as
:func:`repro.core.multicast.paper_example_assignment`).

Routing modes
-------------

* ``"oracle"`` — each level recomputes tags from the messages'
  remaining destination sets.  Simple and convenient; semantically the
  information used is identical to the paper's.
* ``"selfrouting"`` — faithful to the hardware: each message carries
  only its routing-tag sequence (:class:`~repro.core.tagtree.TagTree`
  serialised by eq. (12)); every BSN consumes the head tag and splits
  the remainder by the odd/even interleave (Fig. 10).  Any discrepancy
  between stream and destinations raises
  :class:`~repro.errors.RoutingInvariantError`.

Both modes must produce identical deliveries; the ablation bench and
tests verify this.

Engines
-------

* ``engine="reference"`` (default) — the per-switch Python simulation
  described above: inspectable, traceable, slow.
* ``engine="fast"`` — routes through a compiled
  :class:`~repro.core.fastplan.FramePlan`: the whole recursion becomes
  a handful of NumPy gathers, plans are memoised in a
  :class:`~repro.core.fastplan.PlanCache`, and
  :meth:`BRSMN.route_batch` routes a ``(batch, n)`` payload matrix in
  one shot.  Deliveries are property-tested identical to the reference
  engine; traces are a reference-engine feature (``collect_trace=True``
  with the fast engine raises ``ValueError``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InvalidAssignmentError, RoutingInvariantError
from ..obs.events import FaultEvent, FrameDone, FrameStart, LevelSpan
from ..rbn.cells import Cell
from ..rbn.permutations import check_network_size
from ..rbn.switches import SwitchSetting
from ..rbn.trace import Trace
from .bsn import BinarySplittingNetwork, BsnFrameStats
from .config import NetworkConfig, _resolve_config
from .message import Message
from .multicast import MulticastAssignment
from .tags import Tag
from .tagtree import TagTree, tag_of_destinations

__all__ = [
    "RoutingResult",
    "BatchRoutingResult",
    "BRSMN",
    "inject_messages",
    "deliver_final_switch",
]

ENGINES = ("reference", "fast")


def inject_messages(
    assignment: MulticastAssignment,
    mode: str = "oracle",
    payloads: Optional[Sequence] = None,
) -> List[Optional[Message]]:
    """Build the input message frame of a routing pass.

    Args:
        assignment: the multicast assignment to realise.
        mode: ``"oracle"`` or ``"selfrouting"``; the latter attaches
            each message's SEQ tag stream.
        payloads: optional per-input payloads (default: ``"pkt<i>"``).

    Returns:
        A list of ``n`` messages (``None`` for idle inputs).
    """
    n = assignment.n
    frame: List[Optional[Message]] = []
    for i, dests in enumerate(assignment.destinations):
        if not dests:
            frame.append(None)
            continue
        payload = payloads[i] if payloads is not None else f"pkt{i}"
        msg = Message(source=i, destinations=dests, payload=payload)
        if mode == "selfrouting":
            msg = msg.with_stream(TagTree.from_destinations(n, dests).to_sequence())
        frame.append(msg)
    return frame


def deliver_final_switch(
    messages: Sequence[Optional[Message]],
    base: int,
    mode: str = "oracle",
    *,
    trace: Optional[Trace] = None,
) -> Tuple[List[Optional[Message]], SwitchSetting]:
    """Deliver through one last-level ``2 x 2`` switch.

    The 2x2 BRSMN base case: two inputs, two outputs (absolute
    addresses ``base`` and ``base + 1``).  Realising a unicast or
    multicast here is "straightforward" (paper Section 2): route by the
    final address bit, broadcasting when a message wants both outputs.

    Returns:
        ``(outputs, setting)`` where ``outputs[k]`` is the message
        delivered to absolute output ``base + k``.

    Raises:
        BlockingError-like RoutingInvariantError: if both inputs demand
            the same output (impossible for a valid assignment — the
            upstream BSNs guarantee at most one message per half).
    """
    if len(messages) != 2:
        raise InvalidAssignmentError("final switch takes exactly 2 messages")
    outputs: List[Optional[Message]] = [None, None]
    setting = SwitchSetting.PARALLEL
    for port, msg in enumerate(messages):
        if msg is None:
            continue
        if mode == "selfrouting":
            if msg.tag_stream is None or len(msg.tag_stream) != 1:
                raise RoutingInvariantError(
                    f"final-switch message from input {msg.source} has a "
                    f"malformed residual stream {msg.tag_stream!r}"
                )
            tag = msg.tag_stream[0]
        else:
            tag = tag_of_destinations(msg.destinations, base + 1)
        wants = []
        if tag in (Tag.ZERO, Tag.ALPHA):
            wants.append(0)
        if tag in (Tag.ONE, Tag.ALPHA):
            wants.append(1)
        if not wants:
            raise RoutingInvariantError(
                f"final-switch message from input {msg.source} carries tag {tag}"
            )
        for k in wants:
            if outputs[k] is not None:
                raise RoutingInvariantError(
                    f"output {base + k} demanded by two messages "
                    f"(sources {outputs[k].source} and {msg.source})"
                )
            outputs[k] = msg
        if tag is Tag.ALPHA:
            setting = (
                SwitchSetting.UPPER_BCAST if port == 0 else SwitchSetting.LOWER_BCAST
            )
        elif (tag is Tag.ONE) != (port == 1):
            setting = SwitchSetting.CROSS
    if trace is not None:
        in_cells = tuple(
            Cell(Tag.EPS) if m is None else Cell(Tag.ZERO, data=m) for m in messages
        )
        out_cells = tuple(
            Cell(Tag.EPS) if m is None else Cell(Tag.ZERO, data=m) for m in outputs
        )
        trace.record_stage(2, base, (setting,), in_cells, out_cells)
    return outputs, setting


@dataclass
class RoutingResult:
    """Outcome of routing one multicast assignment.

    Attributes:
        assignment: the assignment that was routed.
        outputs: ``outputs[o]`` is the message delivered to output
            ``o`` (``None`` if the output is unused).
        mode: the routing mode used.
        bsn_stats: one :class:`~repro.core.bsn.BsnFrameStats` per BSN
            frame traversed, outermost first (depth-first order on the
            reference engine, level order on the fast engine — the
            multiset is identical).
        final_switches: number of last-level 2x2 switches that fired.
        trace: optional full stage trace (present when requested).
        engine: which engine produced the result.
        plan_cache_hit: fast engine only — True when the routing plan
            came from the cache, False when it was compiled for this
            call, ``None`` on the reference engine.
        verification: the :class:`~repro.core.verification.VerificationReport`
            attached by :func:`~repro.core.routing.route_multicast`
            (``None`` when routing was called directly on the network).
        fault_casualties: when the network carries a
            :class:`~repro.faults.plan.FaultPlan`, one
            :class:`~repro.faults.injector.FaultHit` per fault that
            touched this pass's traffic (the engines produce the same
            multiset; traversal order differs).
    """

    assignment: MulticastAssignment
    outputs: List[Optional[Message]]
    mode: str
    bsn_stats: List[BsnFrameStats] = field(default_factory=list)
    final_switches: int = 0
    trace: Optional[Trace] = None
    engine: str = "reference"
    plan_cache_hit: Optional[bool] = None
    verification: Optional[object] = None
    fault_casualties: List = field(default_factory=list)

    @property
    def delivered(self) -> Dict[int, Message]:
        """Map of used output -> delivered message."""
        return {o: m for o, m in enumerate(self.outputs) if m is not None}

    @property
    def plan_cache_hits(self) -> int:
        """Frames served from the plan cache (0 on the reference engine).

        Both engines report the counter pair — the reference engine as
        zeros rather than omitting it — so session aggregators never
        need to special-case the engine.
        """
        return 1 if self.plan_cache_hit else 0

    @property
    def plan_cache_misses(self) -> int:
        """Frames that compiled a plan (0 on the reference engine)."""
        return 1 if self.plan_cache_hit is False else 0

    @property
    def total_splits(self) -> int:
        """Total alpha splits performed across all BSN frames."""
        return sum(st.splits for st in self.bsn_stats)

    @property
    def switch_ops(self) -> int:
        """2x2 switch applications, including the final delivery level."""
        return sum(st.switch_ops for st in self.bsn_stats) + self.final_switches


@dataclass
class BatchRoutingResult:
    """Outcome of routing one assignment under many payload frames.

    All frames share the assignment, so the routing plan — and with it
    every per-frame statistic — is identical across the batch; only the
    payloads differ.

    Attributes:
        assignment: the shared multicast assignment.
        frames: number of payload frames routed.
        payloads: ``(frames, n)`` array; ``payloads[f, o]`` is the
            payload delivered to output ``o`` in frame ``f``.  The
            dtype follows the input: numeric ndarrays stay numeric
            (idle outputs deliver 0), everything else is an object
            array with ``None`` on idle outputs.
        delivery_src: length-``n`` int array; ``delivery_src[o]`` is the
            input delivering to output ``o`` (-1 = idle), identical for
            every frame.
        mode: the routing mode recorded.
        engine: which engine produced the result.
        bsn_stats: per-BSN statistics of ONE frame (every frame incurs
            the same work).
        final_switches: last-level 2x2 switches fired per frame.
        plan_cache_hit: fast engine only — whether the shared plan came
            from the cache.
        fault_casualties: fault hits of the shared routing pass (every
            frame of the batch incurs the same ones).
    """

    assignment: MulticastAssignment
    frames: int
    payloads: "np.ndarray"
    delivery_src: "np.ndarray"
    mode: str
    engine: str = "reference"
    bsn_stats: List[BsnFrameStats] = field(default_factory=list)
    final_switches: int = 0
    plan_cache_hit: Optional[bool] = None
    fault_casualties: List = field(default_factory=list)

    @property
    def total_splits(self) -> int:
        """Alpha splits per frame (identical across the batch)."""
        return sum(st.splits for st in self.bsn_stats)

    @property
    def switch_ops(self) -> int:
        """2x2 switch applications per frame."""
        return sum(st.switch_ops for st in self.bsn_stats) + self.final_switches

    @property
    def plan_cache_hits(self) -> int:
        """Batches served from the plan cache (0 on the reference engine)."""
        return 1 if self.plan_cache_hit else 0

    @property
    def plan_cache_misses(self) -> int:
        """Batches that compiled a plan (0 on the reference engine)."""
        return 1 if self.plan_cache_hit is False else 0

    def frame_outputs(self, f: int) -> List:
        """Per-output delivered payloads of frame ``f`` as a list."""
        return list(self.payloads[f])


class BRSMN:
    """An ``n x n`` binary radix sorting multicast network.

    The object is stateless across frames and cheap to construct; the
    recursive BSN structure is materialised lazily per size (all
    same-size sub-BSNs share one :class:`BinarySplittingNetwork`
    instance, which is pure logic).

    Args:
        n: a :class:`~repro.core.config.NetworkConfig` (must be
            unrolled), or a bare network size (power of two, >= 2).
        plan_cache: fast engine only — a
            :class:`~repro.core.fastplan.PlanCache` (or thread-safe
            :class:`~repro.parallel.plan_cache.ConcurrentPlanCache`) to
            share across networks (default: a private cache sized by
            the config's ``plan_cache_size``, wired to the config's
            observer; concurrent when the config enables workers or
            compile-ahead).
        observer: optional :class:`~repro.obs.events.Observer`
            (overrides the config's).
    """

    def __init__(self, n, plan_cache=None, observer=None):
        cfg = _resolve_config(n, observer=observer)
        if cfg.implementation != "unrolled":
            raise ValueError(
                "BRSMN is the unrolled implementation; use build_network "
                "for implementation='feedback'"
            )
        self.m = check_network_size(cfg.n)
        self.n = cfg.n
        self.engine = cfg.engine
        self.observer = cfg.observer
        self._frames_emitted = 0
        self._bsns: Dict[int, BinarySplittingNetwork] = {}
        # An empty plan is normalised away so the healthy path is
        # bit-identical (and pays nothing) whether the caller passed
        # fault_plan=None or FaultPlan.empty(n).
        if cfg.fault_plan is not None and not cfg.fault_plan.is_empty:
            from ..faults.injector import FaultInjector  # deferred: cycle

            self.fault_plan = cfg.fault_plan
            self._injector = FaultInjector(cfg.fault_plan)
        else:
            self.fault_plan = None
            self._injector = None
        self.workers = cfg.workers
        self.executor = cfg.executor
        self.compile_ahead = cfg.compile_ahead
        self.pool = None
        self.pipeline = None
        self._sharded = None
        self._proc_pool = None
        parallel = cfg.engine == "fast" and (
            cfg.workers > 1 or cfg.compile_ahead > 0
        )
        if cfg.engine == "fast" or plan_cache is not None:
            if parallel:
                # Deferred: repro.parallel imports core.fastplan.
                from ..parallel import (
                    CompileAheadPipeline,
                    ConcurrentPlanCache,
                    ShardedBatchRouter,
                    WorkerPool,
                )

                self.plan_cache = (
                    plan_cache
                    if plan_cache is not None
                    else ConcurrentPlanCache(
                        maxsize=cfg.plan_cache_size, observer=cfg.observer
                    )
                )
                self.pool = WorkerPool(cfg.workers, observer=cfg.observer)
                if cfg.workers > 1:
                    if cfg.executor == "process":
                        from ..parallel.process import (
                            ProcessShardRouter,
                            ProcessWorkerPool,
                        )

                        # The thread pool stays for compile-ahead (plan
                        # compilation needs the parent's cache anyway);
                        # only payload sharding crosses into processes.
                        self._proc_pool = ProcessWorkerPool(
                            cfg.workers, observer=cfg.observer
                        )
                        self._sharded = ProcessShardRouter(
                            self._proc_pool, observer=cfg.observer
                        )
                    else:
                        self._sharded = ShardedBatchRouter(
                            self.pool, observer=cfg.observer
                        )
                if cfg.compile_ahead > 0:
                    from .fastplan import compile_frame_plan  # deferred

                    fault_plan = self.fault_plan
                    self.pipeline = CompileAheadPipeline(
                        self.plan_cache,
                        self.pool,
                        depth=cfg.compile_ahead,
                        compile_fn=(
                            compile_frame_plan
                            if fault_plan is None
                            else (
                                lambda a: compile_frame_plan(
                                    a, fault_plan=fault_plan
                                )
                            )
                        ),
                        extra_key=(
                            fault_plan.fingerprint()
                            if fault_plan is not None
                            else ""
                        ),
                        observer=cfg.observer,
                    )
            else:
                from .fastplan import PlanCache  # deferred: import cycle

                self.plan_cache = (
                    plan_cache
                    if plan_cache is not None
                    else PlanCache(
                        maxsize=cfg.plan_cache_size, observer=cfg.observer
                    )
                )
        else:
            self.plan_cache = None

    def _bsn(self, size: int) -> BinarySplittingNetwork:
        if size not in self._bsns:
            self._bsns[size] = BinarySplittingNetwork(size)
        return self._bsns[size]

    # -- structural properties (Section 7.4) ---------------------------
    @property
    def switch_count(self) -> int:
        """Total 2x2 switches of the unrolled network.

        Level ``j`` (sizes ``n_j = n / 2^{j-1}``) contributes
        ``2^{j-1}`` BSNs of ``n_j log2(n_j)`` switches each, and the
        last level contributes ``n/2`` delivery switches; the total is
        ``Theta(n log^2 n)``.
        """
        total = 0
        size = self.n
        blocks = 1
        while size > 2:
            total += blocks * self._bsn(size).switch_count
            blocks *= 2
            size //= 2
        total += blocks  # n/2 final 2x2 switches
        return total

    @property
    def depth(self) -> int:
        """Switch stages on an input-output path: ``Theta(log^2 n)``.

        ``sum_j 2 log2(n_j)`` over BSN levels plus the final switch.
        """
        total = 0
        size = self.n
        while size > 2:
            total += 2 * (size.bit_length() - 1)
            size //= 2
        return total + 1

    # -- routing --------------------------------------------------------
    def route(
        self,
        assignment: MulticastAssignment,
        mode: str = "oracle",
        payloads: Optional[Sequence] = None,
        *,
        collect_trace: bool = False,
    ) -> RoutingResult:
        """Route one multicast assignment; return the delivery result.

        Args:
            assignment: the multicast assignment (must match ``n``).
            mode: ``"oracle"`` or ``"selfrouting"``.
            payloads: optional per-input payloads.
            collect_trace: record every merging stage (costly; used by
                the renderer and the figure benches).
        """
        if assignment.n != self.n:
            raise InvalidAssignmentError(
                f"assignment size {assignment.n} != network size {self.n}"
            )
        if mode not in ("oracle", "selfrouting"):
            raise ValueError(f"unknown routing mode {mode!r}")
        obs = self.observer
        emit = obs is not None and obs.enabled
        if emit:
            t0, fid = self._emit_frame_start(obs, assignment, mode, 1)
        if self.engine == "fast":
            if collect_trace:
                raise ValueError(
                    "collect_trace requires engine='reference' (the fast "
                    "engine routes by compiled gathers, not switch stages)"
                )
            result = self._route_fast(
                assignment,
                mode,
                payloads,
                observer=obs if emit else None,
                frame_id=fid if emit else -1,
            )
        else:
            frame = inject_messages(assignment, mode, payloads)
            trace = (
                Trace(label=f"BRSMN(n={self.n}, mode={mode})")
                if collect_trace
                else None
            )
            result = RoutingResult(
                assignment=assignment, outputs=[], mode=mode, trace=trace
            )
            prof: Optional[Dict[int, List[int]]] = {} if emit else None
            result.outputs = self._route(
                frame, 0, self.n, mode, result, trace, prof
            )
            if self._injector is not None:
                result.outputs = self._injector.scrub(result.outputs)
            if emit:
                self._emit_level_spans(obs, fid, prof)
        if emit:
            if result.fault_casualties:
                self._emit_fault_events(obs, fid, result.fault_casualties)
            self._emit_frame_done(obs, fid, t0, result, 1)
        return result

    # -- observability emission (pay-for-what-you-use) ------------------
    def _emit_frame_start(self, obs, assignment, mode, frames):
        """Emit ``FrameStart``; returns ``(t0_ns, frame_id)``."""
        t0 = perf_counter_ns()
        fid = self._frames_emitted
        self._frames_emitted += 1
        obs.on_frame_start(
            FrameStart(
                frame_id=fid,
                n=self.n,
                engine=self.engine,
                mode=mode,
                frames=frames,
                active_inputs=len(assignment.active_inputs),
                fanout=assignment.total_fanout,
                t_ns=t0,
            )
        )
        return t0, fid

    def _emit_level_spans(self, obs, fid, prof):
        """Emit one ``LevelSpan`` per recursion level (reference engine)."""
        for size in sorted(prof, reverse=True):
            ns, splits, ops, blocks = prof[size]
            stage = "deliver" if size == 2 else "bsn"
            obs.on_level(
                LevelSpan(
                    frame_id=fid,
                    level=self.m - (size.bit_length() - 1) + 1,
                    size=size,
                    blocks=blocks,
                    splits=splits,
                    switch_ops=ops,
                    stage_ns={stage: ns},
                    duration_ns=ns,
                    engine="reference",
                )
            )

    def _emit_fault_events(self, obs, fid, hits):
        """Emit one ``injected`` :class:`FaultEvent` per fault hit."""
        t = perf_counter_ns()
        attempt = self._injector.attempt if self._injector is not None else 0
        for hit in hits:
            obs.on_fault(
                FaultEvent(
                    action="injected",
                    kind=hit.fault.kind.value,
                    level=hit.fault.level,
                    index=hit.fault.index,
                    frame_id=fid,
                    attempt=attempt,
                    terminals=tuple(hit.outputs),
                    t_ns=t,
                )
            )

    def _emit_frame_done(self, obs, fid, t0, result, frames):
        """Emit ``FrameDone`` for a finished (batch) routing call."""
        t1 = perf_counter_ns()
        if isinstance(result, BatchRoutingResult):
            deliveries = int((result.delivery_src >= 0).sum())
        else:
            deliveries = sum(1 for o in result.outputs if o is not None)
        obs.on_frame_done(
            FrameDone(
                frame_id=fid,
                deliveries=deliveries,
                frames=frames,
                splits=result.total_splits,
                switch_ops=result.switch_ops,
                duration_ns=t1 - t0,
                cache_hit=result.plan_cache_hit,
                t_ns=t1,
            )
        )

    def _plan(self, assignment: MulticastAssignment, observer=None, frame_id=-1):
        """Fetch (or compile) the routing plan; returns ``(plan, hit)``.

        When an enabled observer is attached, a cache miss compiles
        with per-level profiling spans tagged with ``frame_id``; when a
        fault plan is attached, its consequences are compiled into the
        plan and the cache key carries the plan fingerprint so faulted
        plans never collide with healthy ones.
        """
        if observer is None and self.fault_plan is None:
            return self.plan_cache.get(assignment)
        from .fastplan import compile_frame_plan  # deferred, as above

        fault_plan = self.fault_plan
        return self.plan_cache.get(
            assignment,
            compile_fn=lambda a: compile_frame_plan(
                a, observer=observer, frame_id=frame_id, fault_plan=fault_plan
            ),
            extra_key=fault_plan.fingerprint() if fault_plan is not None else "",
        )

    def _route_fast(
        self,
        assignment: MulticastAssignment,
        mode: str,
        payloads: Optional[Sequence],
        observer=None,
        frame_id: int = -1,
    ) -> RoutingResult:
        plan, hit = self._plan(assignment, observer, frame_id)
        if payloads is None:
            payloads = [f"pkt{i}" for i in range(self.n)]
        attempt = self._injector.attempt if self._injector is not None else 0
        delivered = plan.apply(payloads, attempt)
        casualties = plan.casualties(attempt) if plan.has_faults else frozenset()
        outputs: List[Optional[Message]] = [
            None
            if src < 0 or o in casualties
            else Message(source=src, destinations=frozenset({o}), payload=delivered[o])
            for o, src in enumerate(plan.delivery_src.tolist())
        ]
        return RoutingResult(
            assignment=assignment,
            outputs=outputs,
            mode=mode,
            bsn_stats=list(plan.bsn_stats),
            final_switches=plan.final_switches,
            engine="fast",
            plan_cache_hit=hit,
            fault_casualties=self._plan_hits(plan, attempt),
        )

    def _plan_hits(self, plan, attempt: int) -> List:
        """Normalise a compiled plan's fault hits to ``FaultHit`` objects."""
        if not plan.has_faults:
            return []
        from ..faults.injector import FaultHit  # deferred: cycle

        return [
            FaultHit(fault=fault, outputs=outputs)
            for fault, outputs in list(plan.fault_hits) + plan.flaky_hits(attempt)
        ]

    def prefetch(self, assignment: MulticastAssignment) -> bool:
        """Warm the plan cache for an upcoming assignment, off-thread.

        A no-op (returns False) unless the network was configured with
        ``compile_ahead > 0``; otherwise delegates to the
        :class:`~repro.parallel.pipeline.CompileAheadPipeline` — see
        its :meth:`~repro.parallel.pipeline.CompileAheadPipeline.prefetch`
        for the enqueue/drop semantics.
        """
        if self.pipeline is None:
            return False
        return self.pipeline.prefetch(assignment)

    def close(self) -> None:
        """Drain pending prefetches and stop the worker pools.

        Idempotent, and a no-op on non-parallel configurations; a later
        routing call restarts the pools transparently, so ``close`` is
        a courtesy for prompt teardown, not a lifecycle obligation.
        Both shutdowns run in ``finally`` clauses so a raising pipeline
        drain can never leak executor threads — or, with
        ``executor="process"``, worker processes.
        """
        try:
            if self.pipeline is not None:
                self.pipeline.drain()
        finally:
            try:
                if self.pool is not None:
                    self.pool.shutdown()
            finally:
                if self._proc_pool is not None:
                    self._proc_pool.shutdown()

    def route_batch(
        self,
        assignment: MulticastAssignment,
        payload_matrix,
        mode: str = "oracle",
        budget=None,
    ) -> BatchRoutingResult:
        """Route many payload frames sharing one assignment.

        On the fast engine the whole batch is one fancy-indexing gather
        through the compiled plan — sharded across the worker pool when
        the network is configured with ``workers > 1`` — and on the
        reference engine the frames are routed sequentially (the
        baseline the batch path is benchmarked against).

        Args:
            assignment: the shared multicast assignment.
            payload_matrix: ``(batch, n)`` array-like of per-input
                payloads, one row per frame.  A *numeric* ndarray keeps
                its dtype end to end (idle outputs deliver 0, and the
                gather kernels release the GIL, which is what lets
                worker threads scale on multicore hosts); any other
                input is routed as an object matrix with ``None`` on
                idle outputs, exactly as before.
            budget: optional
                :class:`~repro.resilience.budget.DeadlineBudget`
                bounding the sharded path's worker waits — a shard
                unfinished when it expires is routed inline, so the
                batch still returns complete deliveries.

        Returns:
            A :class:`BatchRoutingResult`.
        """
        if assignment.n != self.n:
            raise InvalidAssignmentError(
                f"assignment size {assignment.n} != network size {self.n}"
            )
        if (
            isinstance(payload_matrix, np.ndarray)
            and payload_matrix.dtype != object
        ):
            mat = payload_matrix
        else:
            mat = np.asarray(payload_matrix, dtype=object)
        if mat.ndim != 2 or mat.shape[1] != self.n:
            raise InvalidAssignmentError(
                f"expected a (batch, {self.n}) payload matrix, got shape {mat.shape}"
            )
        if self.engine == "fast":
            obs = self.observer
            emit = obs is not None and obs.enabled
            if emit:
                t0, fid = self._emit_frame_start(
                    obs, assignment, mode, mat.shape[0]
                )
            plan, hit = self._plan(
                assignment,
                obs if emit else None,
                fid if emit else -1,
            )
            attempt = self._injector.attempt if self._injector is not None else 0
            delivery_src = plan.delivery_src.copy()
            if plan.has_faults:
                casualties = plan.casualties(attempt)
                if casualties:
                    delivery_src[sorted(casualties)] = -1
            if self._sharded is not None:
                delivered = self._sharded.apply(plan, mat, attempt, budget=budget)
            else:
                delivered = plan.apply_batch(mat, attempt)
            result = BatchRoutingResult(
                assignment=assignment,
                frames=mat.shape[0],
                payloads=delivered,
                delivery_src=delivery_src,
                mode=mode,
                engine="fast",
                bsn_stats=list(plan.bsn_stats),
                final_switches=plan.final_switches,
                plan_cache_hit=hit,
                fault_casualties=self._plan_hits(plan, attempt),
            )
            if emit:
                if result.fault_casualties:
                    self._emit_fault_events(obs, fid, result.fault_casualties)
                self._emit_frame_done(obs, fid, t0, result, mat.shape[0])
            return result
        delivery_src = np.full(self.n, -1, dtype=np.int64)
        idle_fill = None if mat.dtype == object else mat.dtype.type(0)
        out = np.full(mat.shape, idle_fill, dtype=mat.dtype)
        first: Optional[RoutingResult] = None
        for f in range(mat.shape[0]):
            result = self.route(assignment, mode=mode, payloads=list(mat[f]))
            if first is None:
                first = result
                for o, msg in enumerate(result.outputs):
                    if msg is not None:
                        delivery_src[o] = msg.source
            for o, msg in enumerate(result.outputs):
                if msg is not None:
                    out[f, o] = msg.payload
        return BatchRoutingResult(
            assignment=assignment,
            frames=mat.shape[0],
            payloads=out,
            delivery_src=delivery_src,
            mode=mode,
            engine="reference",
            bsn_stats=list(first.bsn_stats) if first is not None else [],
            final_switches=first.final_switches if first is not None else 0,
            fault_casualties=(
                list(first.fault_casualties) if first is not None else []
            ),
        )

    def _route(
        self,
        messages: List[Optional[Message]],
        base: int,
        size: int,
        mode: str,
        result: RoutingResult,
        trace: Optional[Trace],
        prof: Optional[Dict[int, List[int]]] = None,
    ) -> List[Optional[Message]]:
        injector = self._injector
        if size == 2:
            if prof is not None:
                t = perf_counter_ns()
            outputs, _setting = deliver_final_switch(
                messages, base, mode, trace=trace
            )
            result.final_switches += 1
            if prof is not None:
                rec = prof.setdefault(2, [0, 0, 0, 0])
                rec[0] += perf_counter_ns() - t
                rec[2] += 1  # one switch op per delivery switch
                rec[3] += 1
            if injector is not None and injector.has_level(self.m):
                result.fault_casualties.extend(
                    injector.apply_plane(self.m, base, outputs, delivery=True)
                )
            return outputs
        if prof is not None:
            t = perf_counter_ns()
        upper, lower, stats = self._bsn(size).route_messages(
            messages, base, mode, trace=trace
        )
        if prof is not None:
            rec = prof.setdefault(size, [0, 0, 0, 0])
            rec[0] += perf_counter_ns() - t
            rec[1] += stats.splits
            rec[2] += stats.switch_ops
            rec[3] += 1
        result.bsn_stats.append(stats)
        half = size // 2
        level = self.m - (size.bit_length() - 1) + 1
        if injector is not None and injector.has_level(level):
            combined = upper + lower
            result.fault_casualties.extend(
                injector.apply_plane(level, base, combined)
            )
            upper, lower = combined[:half], combined[half:]
        out_up = self._route(upper, base, half, mode, result, trace, prof)
        out_lo = self._route(lower, base + half, half, mode, result, trace, prof)
        return out_up + out_lo
