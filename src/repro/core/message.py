"""Messages: the payloads routed through multicast networks.

A :class:`Message` is what one network input injects during a routing
frame.  While cells (:mod:`repro.rbn.cells`) are the RBN-layer view —
a routing tag plus opaque data — the message is the end-to-end object:
it knows its source, its *remaining* destination set (which shrinks as
BSN levels split it), and optionally the self-routing tag stream that
replaces destination knowledge in the paper's hardware
(``mode="selfrouting"``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, FrozenSet, Optional, Tuple

from ..errors import InvalidAssignmentError

__all__ = ["Message"]


@dataclass(frozen=True)
class Message:
    """One multicast message in flight.

    Attributes:
        source: originating network input.
        destinations: the *remaining* absolute destination set — the
            original ``I_i`` at injection, a subset of it after splits.
        payload: user data carried verbatim to every destination.
        tag_stream: in self-routing mode, the remaining routing-tag
            sequence (paper Section 7.1); ``None`` in oracle mode.
    """

    source: int
    destinations: FrozenSet[int]
    payload: Any = None
    tag_stream: Optional[Tuple] = None

    def __post_init__(self) -> None:
        if not self.destinations:
            raise InvalidAssignmentError("a message must have >= 1 destination")
        object.__setattr__(self, "destinations", frozenset(self.destinations))

    def split_at(self, midpoint: int) -> tuple:
        """Split by an address midpoint into (upper-half, lower-half) parts.

        Returns a pair of messages (either may be ``None``) whose
        destination sets are the subsets below/above ``midpoint``.  The
        tag stream, if any, is *not* split here — the BSN layer splits
        streams by the interleaving rule (see
        :func:`repro.core.tagtree.split_stream`).
        """
        lo = frozenset(d for d in self.destinations if d < midpoint)
        hi = frozenset(d for d in self.destinations if d >= midpoint)
        upper = replace(self, destinations=lo) if lo else None
        lower = replace(self, destinations=hi) if hi else None
        return upper, lower

    def with_stream(self, stream: Optional[Tuple]) -> "Message":
        """Return a copy carrying the given remaining tag stream."""
        return replace(self, tag_stream=None if stream is None else tuple(stream))

    def single_destination(self) -> int:
        """The unique destination (valid only when fully resolved)."""
        if len(self.destinations) != 1:
            raise InvalidAssignmentError(
                f"message from input {self.source} still has "
                f"{len(self.destinations)} destinations"
            )
        return next(iter(self.destinations))
