"""Call admission and frame scheduling for conflicting multicast requests.

A multicast *assignment* (Section 2) requires disjoint destination sets
and one message per input — but a real switch receives *requests* that
conflict: two calls may target the same output port, and one input may
have several calls queued.  The paper's network routes any one valid
frame; turning a request batch into a minimal sequence of valid frames
is the admission-control problem this module solves:

* :class:`Request` — one multicast call (source, destination set).
* :func:`conflicts` — two requests conflict iff they share the source
  input or any destination output.
* :func:`schedule_frames` — partition requests into frames (valid
  assignments), greedily:

  - ``"first_fit"`` — in arrival order, place each request into the
    first frame it does not conflict with;
  - ``"largest_first"`` — sort by fanout descending first (classic
    greedy colouring heuristic; never worse than first-fit on the
    frame-count lower bound and usually better on skewed batches).

  Frame scheduling is interval-graph colouring in disguise; greedy
  colouring needs at most ``max_degree + 1`` frames and at least
  ``max_multiplicity`` (the most-demanded single port), both reported.
* :func:`route_requests` — schedule and route everything through a
  network, returning per-request delivery records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import InvalidAssignmentError
from ..rbn.permutations import check_network_size
from .config import NetworkConfig
from .multicast import MulticastAssignment
from .routing import build_network
from .verification import verify_result

__all__ = [
    "Request",
    "conflicts",
    "frame_lower_bound",
    "schedule_frames",
    "ScheduleOutcome",
    "route_requests",
]


@dataclass(frozen=True)
class Request:
    """One multicast call request.

    Attributes:
        source: requesting input port.
        destinations: requested output ports (non-empty).
        payload: opaque user data delivered to each destination.
        priority: admission class — under overload the
            :class:`~repro.resilience.gate.AdmissionGate` sheds
            ``priority <= 0`` requests first; ``priority > 0`` requests
            survive soft shedding and may draw on the token reserve.
    """

    source: int
    destinations: FrozenSet[int]
    payload: object = None
    priority: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "destinations", frozenset(self.destinations))
        if not self.destinations:
            raise InvalidAssignmentError("a request needs >= 1 destination")

    @property
    def fanout(self) -> int:
        """Number of requested destinations."""
        return len(self.destinations)


def conflicts(a: Request, b: Request) -> bool:
    """True iff the two requests cannot share a frame.

    They conflict when they claim the same source input (an input
    injects one message per frame) or any common destination output
    (an output hears one message per frame).
    """
    return a.source == b.source or bool(a.destinations & b.destinations)


def frame_lower_bound(requests: Sequence[Request]) -> int:
    """A lower bound on the frames any schedule needs.

    The most-demanded single port — input or output — must appear in a
    distinct frame per request touching it.
    """
    load: Dict[Tuple[str, int], int] = {}
    for r in requests:
        load[("in", r.source)] = load.get(("in", r.source), 0) + 1
        for d in r.destinations:
            load[("out", d)] = load.get(("out", d), 0) + 1
    return max(load.values(), default=0)


@dataclass
class ScheduleOutcome:
    """Result of scheduling one request batch.

    Attributes:
        n: network size.
        frames: the valid assignments, in transmission order.
        placement: request index -> frame index.
        lower_bound: the port-multiplicity lower bound.
    """

    n: int
    frames: List[MulticastAssignment] = field(default_factory=list)
    placement: Dict[int, int] = field(default_factory=dict)
    lower_bound: int = 0

    @property
    def frame_count(self) -> int:
        """Frames used by this schedule."""
        return len(self.frames)

    @property
    def optimal(self) -> bool:
        """True when the schedule meets the lower bound."""
        return self.frame_count == self.lower_bound


def schedule_frames(
    n: int,
    requests: Sequence[Request],
    policy: str = "largest_first",
) -> ScheduleOutcome:
    """Partition a request batch into valid multicast frames.

    Args:
        n: network size (power of two).
        requests: the batch; destinations must lie in ``[0, n)``.
        policy: ``"first_fit"`` or ``"largest_first"``.

    Returns:
        The frames (each a valid :class:`MulticastAssignment`) plus the
        placement map and the lower bound for quality assessment.

    Raises:
        InvalidAssignmentError: on out-of-range ports.
        ValueError: on an unknown policy.
    """
    check_network_size(n)
    for r in requests:
        if not 0 <= r.source < n:
            raise InvalidAssignmentError(f"source {r.source} out of range")
        for d in r.destinations:
            if not 0 <= d < n:
                raise InvalidAssignmentError(f"destination {d} out of range")

    if policy == "first_fit":
        order = list(range(len(requests)))
    elif policy == "largest_first":
        order = sorted(
            range(len(requests)), key=lambda i: -requests[i].fanout
        )
    else:
        raise ValueError(f"unknown policy {policy!r}")

    # per frame: used sources and used outputs
    frame_sources: List[set] = []
    frame_outputs: List[set] = []
    frame_members: List[List[int]] = []
    placement: Dict[int, int] = {}
    for idx in order:
        r = requests[idx]
        for f in range(len(frame_members)):
            if r.source not in frame_sources[f] and not (
                r.destinations & frame_outputs[f]
            ):
                break
        else:
            f = len(frame_members)
            frame_sources.append(set())
            frame_outputs.append(set())
            frame_members.append([])
        frame_sources[f].add(r.source)
        frame_outputs[f] |= r.destinations
        frame_members[f].append(idx)
        placement[idx] = f

    frames = []
    for members in frame_members:
        dests: List[Optional[List[int]]] = [None] * n
        for idx in members:
            dests[requests[idx].source] = sorted(requests[idx].destinations)
        frames.append(MulticastAssignment(n, dests))
    return ScheduleOutcome(
        n=n,
        frames=frames,
        placement=placement,
        lower_bound=frame_lower_bound(requests),
    )


def route_requests(
    n: int,
    requests: Sequence[Request],
    *,
    policy: str = "largest_first",
    implementation: str = "unrolled",
    mode: str = "selfrouting",
) -> Tuple[ScheduleOutcome, List[Dict[int, object]]]:
    """Schedule a batch and route every frame through a real network.

    Returns:
        ``(schedule, deliveries)`` where ``deliveries[k]`` maps each
        output used in frame ``k`` to the payload delivered there.
        Every request is verified to have reached exactly its
        destination set in its assigned frame.

    Raises:
        RoutingInvariantError: if any frame fails verification
            (impossible for the BRSMN on valid frames — this is the
            safety net).
    """
    schedule = schedule_frames(n, requests, policy)
    network = build_network(NetworkConfig(n, implementation=implementation))
    deliveries: List[Dict[int, object]] = []
    for k, frame in enumerate(schedule.frames):
        payloads = [None] * n
        for idx, f in schedule.placement.items():
            if f == k:
                payloads[requests[idx].source] = requests[idx].payload
        result = network.route(frame, mode=mode, payloads=payloads)
        report = verify_result(result)
        if not report.ok:
            from ..errors import RoutingInvariantError

            raise RoutingInvariantError(
                f"frame {k} failed: " + "; ".join(report.violations)
            )
        deliveries.append(
            {o: m.payload for o, m in result.delivered.items()}
        )
    return schedule, deliveries
