"""The multicast assignment model of paper Section 2.

A *multicast assignment* for an ``n x n`` network is a family
``{I_0, I_1, ..., I_{n-1}}`` where ``I_i`` is the *destination set* of
input ``i``: the subset of outputs input ``i``'s message must reach.
The sets must be pairwise disjoint (an output hears at most one input)
but need not cover all outputs.  A *permutation assignment* is the
special case where every ``|I_i| <= 1``.

The paper's running example (Section 2, Fig. 2) is the 8x8 assignment::

    { {0,1}, {}, {3,4,7}, {2}, {}, {}, {}, {5,6} }

exposed here as :func:`paper_example_assignment`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Union

from ..errors import InvalidAssignmentError
from ..rbn.permutations import check_network_size

__all__ = ["MulticastAssignment", "paper_example_assignment"]

DestinationsLike = Union[Iterable[int], None]


@dataclass(frozen=True)
class MulticastAssignment:
    """An immutable, validated multicast assignment.

    Attributes:
        n: network size (power of two).
        destinations: tuple of ``n`` frozensets; ``destinations[i]`` is
            ``I_i``.
    """

    n: int
    destinations: tuple

    def __init__(self, n: int, destinations: Sequence[DestinationsLike]):
        check_network_size(n)
        if len(destinations) != n:
            raise InvalidAssignmentError(
                f"expected {n} destination sets, got {len(destinations)}"
            )
        sets: List[FrozenSet[int]] = []
        seen: set = set()
        for i, dests in enumerate(destinations):
            ds = frozenset(dests) if dests is not None else frozenset()
            for d in ds:
                if not isinstance(d, int) or not 0 <= d < n:
                    raise InvalidAssignmentError(
                        f"input {i}: destination {d!r} out of range [0, {n})"
                    )
                if d in seen:
                    raise InvalidAssignmentError(
                        f"output {d} appears in more than one destination set"
                    )
                seen.add(d)
            sets.append(ds)
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "destinations", tuple(sets))

    # -- constructors -------------------------------------------------
    @classmethod
    def from_dict(cls, n: int, mapping: Mapping[int, Iterable[int]]) -> "MulticastAssignment":
        """Build from a sparse ``{input: destinations}`` mapping."""
        dests: List[DestinationsLike] = [None] * n
        for i, ds in mapping.items():
            if not 0 <= i < n:
                raise InvalidAssignmentError(f"input {i} out of range [0, {n})")
            dests[i] = ds
        return cls(n, dests)

    @classmethod
    def from_permutation(cls, perm: Sequence[int]) -> "MulticastAssignment":
        """Build the (full or partial) permutation assignment ``i -> perm[i]``.

        ``perm[i]`` may be ``None`` for an idle input.
        """
        n = len(perm)
        return cls(
            n,
            [None if p is None else (p,) for p in perm],
        )

    @classmethod
    def broadcast(cls, n: int, source: int = 0) -> "MulticastAssignment":
        """The full broadcast: one input reaches every output."""
        dests: List[DestinationsLike] = [None] * n
        dests[source] = range(n)
        return cls(n, dests)

    @classmethod
    def identity(cls, n: int) -> "MulticastAssignment":
        """The identity permutation ``i -> i``."""
        return cls.from_permutation(list(range(n)))

    @classmethod
    def empty(cls, n: int) -> "MulticastAssignment":
        """The empty assignment: every input idle."""
        return cls(n, [None] * n)

    # -- queries ------------------------------------------------------
    def __iter__(self) -> Iterator[FrozenSet[int]]:
        return iter(self.destinations)

    def __getitem__(self, i: int) -> FrozenSet[int]:
        return self.destinations[i]

    @property
    def active_inputs(self) -> List[int]:
        """Inputs with non-empty destination sets."""
        return [i for i, ds in enumerate(self.destinations) if ds]

    @property
    def used_outputs(self) -> FrozenSet[int]:
        """Union of all destination sets."""
        out: set = set()
        for ds in self.destinations:
            out |= ds
        return frozenset(out)

    @property
    def total_fanout(self) -> int:
        """Sum of destination-set sizes (= number of deliveries)."""
        return sum(len(ds) for ds in self.destinations)

    @property
    def max_fanout(self) -> int:
        """Largest destination-set size."""
        return max((len(ds) for ds in self.destinations), default=0)

    @property
    def is_permutation(self) -> bool:
        """True when every destination set has at most one element."""
        return all(len(ds) <= 1 for ds in self.destinations)

    @property
    def load(self) -> float:
        """Fraction of outputs receiving a message."""
        return self.total_fanout / self.n

    def inverse_map(self) -> Dict[int, int]:
        """Map each used output to its (unique) source input."""
        inv: Dict[int, int] = {}
        for i, ds in enumerate(self.destinations):
            for d in ds:
                inv[d] = i
        return inv

    def restrict(self, lo: int, hi: int) -> "MulticastAssignment":
        """Project onto the output window ``[lo, hi)`` re-based to 0.

        Inputs keep their indices modulo the window size only if they
        fall inside the window — this helper exists for tests that
        compare against half-size subproblems and requires
        ``hi - lo`` to be a power of two.
        """
        size = hi - lo
        dests: List[Optional[List[int]]] = [None] * size
        slot = 0
        for ds in self.destinations:
            clipped = sorted(d - lo for d in ds if lo <= d < hi)
            if clipped:
                if slot >= size:
                    raise InvalidAssignmentError(
                        "window overloaded: more sources than slots"
                    )
                dests[slot] = clipped
                slot += 1
        return MulticastAssignment(size, dests)

    def to_binary_strings(self) -> List[List[str]]:
        """Destination sets as binary address strings (paper Section 2)."""
        m = self.n.bit_length() - 1
        return [
            [format(d, f"0{m}b") for d in sorted(ds)] for ds in self.destinations
        ]

    def __str__(self) -> str:
        body = ", ".join(
            "{" + ",".join(map(str, sorted(ds))) + "}" if ds else "{}"
            for ds in self.destinations
        )
        return f"MulticastAssignment(n={self.n}, [{body}])"


def paper_example_assignment() -> MulticastAssignment:
    """The 8x8 worked example of paper Section 2 / Fig. 2."""
    return MulticastAssignment(
        8, [{0, 1}, None, {3, 4, 7}, {2}, None, None, None, {5, 6}]
    )
