"""End-to-end routing plans: a whole BRSMN pass as composed gathers.

The reference :class:`~repro.core.brsmn.BRSMN` simulates every 2x2
switch of every BSN level in interpreted Python — ``O(n log^2 n)``
switch visits per frame.  This module compiles the *same* recursive
routing into array form:

* :func:`compile_level_gather` runs one BRSMN recursion level — ``2^k``
  side-by-side BSNs of size ``n / 2^k`` — as a batch: the vectorised
  scatter kernel (:mod:`repro.rbn.fast_scatter`) composed with the
  vectorised epsilon-dividing + bit-sorting kernels
  (:mod:`repro.rbn.fast`) yields one flat ``(src, role)`` gather for
  the whole level;
* :func:`compile_frame_plan` chains the levels.  It tracks, per output
  address, the current *position* of the message copy that will deliver
  there (``owner``) and, per position, the original input feeding it
  (``origin``) — both plain integer arrays updated by gathers — and
  needs no per-message Python at all.  The result is a
  :class:`FramePlan` whose ``delivery_src[o]`` is the input index
  delivered to output ``o``;
* :class:`FramePlan` applies a compiled plan to any payload vector — or
  to a whole ``(batch, n)`` payload matrix, routing many frames that
  share an assignment in one fancy-indexing gather;
* :class:`PlanCache` memoises compiled plans under the canonical
  assignment fingerprint
  (:func:`repro.core.serialization.assignment_fingerprint`), with
  hit/miss counters, because real traffic — hotspots, conference
  sessions, replicated writes — repeats assignments far more often than
  it invents new ones.

The compiled plan is *derived from the paper's own algorithms* (Tables
3-6 vectorised), not from the assignment's inverse map, so the fast
engine exercises the same mathematics as the reference engine; the two
are property-tested delivery-identical in
``tests/core/test_fast_engine.py``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InvalidAssignmentError, RoutingInvariantError
from ..obs.events import CacheEvent, LevelSpan
from ..rbn.fast import fast_divide_epsilons_batch, fast_sort_permutation_batch
from ..rbn.fast_scatter import (
    CODE_ALPHA,
    CODE_EPS,
    CODE_ONE,
    CODE_ZERO,
    fast_scatter_gather_batch,
)
from ..rbn.permutations import check_network_size
from .bsn import BsnFrameStats
from .multicast import MulticastAssignment
from .serialization import assignment_fingerprint

__all__ = [
    "compile_level_gather",
    "compile_frame_plan",
    "FramePlan",
    "PlanCache",
]


def compile_level_gather(
    codes: np.ndarray, stage_ns: Optional[Dict[str, int]] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Compile one BRSMN level (a batch of BSNs) into a flat gather.

    Args:
        codes: ``(blocks, size)`` matrix of scatter tag codes — each row
            is one BSN's input frame at this recursion level.
        stage_ns: optional profiling dict — when given, wall-clock
            nanoseconds of the ``scatter`` and ``quasisort`` stages are
            added under those keys (``perf_counter_ns`` spans).

    Returns:
        ``(src, role)`` flat arrays over the row-major layout: output
        position ``p`` of the level takes the cell at position
        ``src[p]``; ``role`` is 0 for unicast moves, 1/2 for the
        tag-0/tag-1 copy of a split alpha (see
        :class:`~repro.rbn.fast_scatter.ScatterGather`).

    Raises:
        RoutingInvariantError: if a block violates the BSN input
            constraint (paper eq. (2)).
    """
    codes = np.asarray(codes, dtype=np.int64)
    blocks, size = codes.shape
    half = size // 2
    n0 = (codes == CODE_ZERO).sum(axis=1)
    n1 = (codes == CODE_ONE).sum(axis=1)
    na = (codes == CODE_ALPHA).sum(axis=1)
    if np.any(n0 + na > half) or np.any(n1 + na > half):
        bad = int(np.argmax((n0 + na > half) | (n1 + na > half)))
        raise RoutingInvariantError(
            "BSN input constraint (eq. 2) violated: "
            f"n0={int(n0[bad])}, n1={int(n1[bad])}, na={int(na[bad])}, "
            f"n/2={half} (block {bad})"
        )

    # Scatter pass (Theorem 2): eliminate every alpha, s = 0 per block.
    t = perf_counter_ns() if stage_ns is not None else 0
    scat = fast_scatter_gather_batch(codes, 0)
    scat_codes = scat.output_codes(codes)
    if stage_ns is not None:
        now = perf_counter_ns()
        stage_ns["scatter"] = stage_ns.get("scatter", 0) + (now - t)
        t = now

    # Quasisort pass (Section 5.2) on the scatter outputs: re-encode for
    # the quasisort kernels ({0, 1, EPS} -> {0, 1, 2}), divide epsilons,
    # then ascending bit sort to C(n/2, n/2) over the one-population.
    quasi = np.where(scat_codes == CODE_EPS, 2, scat_codes).reshape(blocks, size)
    divided = fast_divide_epsilons_batch(quasi)
    one_mask = (divided == 1) | (divided == 4)
    perm_local = fast_sort_permutation_batch(one_mask.astype(np.int64), half)
    offsets = (np.arange(blocks, dtype=np.int64) * size)[:, None]
    perm = (perm_local + offsets).reshape(blocks * size)
    if stage_ns is not None:
        stage_ns["quasisort"] = stage_ns.get("quasisort", 0) + (
            perf_counter_ns() - t
        )

    # Compose: quasisort permutes the scatter outputs.
    return scat.src[perm], scat.role[perm]


@dataclass(frozen=True)
class FramePlan:
    """A compiled end-to-end routing plan for one multicast assignment.

    When compiled under a :class:`~repro.faults.plan.FaultPlan`, the
    plan also carries the fault consequences: structural perturbations
    (stuck-crossed cells) are already folded into ``delivery_src``,
    deterministic payload losses (dead cells) are listed in
    ``lost_outputs``, and probabilistic losses (flaky links) are kept as
    *exposure* — which outputs ride which flaky cell — so
    :meth:`casualties` can sample them per routing attempt without
    recompiling.

    Attributes:
        n: network size.
        delivery_src: int array — ``delivery_src[o]`` is the input index
            whose message the network delivers to output ``o``, or -1
            for an idle output.
        bsn_stats: per-BSN frame statistics in level order (outermost
            level first, blocks top-to-bottom within a level); the same
            multiset as the reference engine's depth-first list.
        final_switches: last-level 2x2 switches fired (= n/2).
        lost_outputs: outputs whose payload a dead cell destroys on
            every attempt.
        flaky_exposure: ``(fault, port0_outputs, port1_outputs)``
            triples — outputs riding each flaky cell's two links.
        fault_hits: ``(fault, outputs)`` pairs of the structural faults
            (stuck / dead) that touched this assignment's traffic.
    """

    n: int
    delivery_src: np.ndarray
    bsn_stats: Tuple[BsnFrameStats, ...] = ()
    final_switches: int = 0
    lost_outputs: Tuple[int, ...] = ()
    flaky_exposure: Tuple[Tuple[object, Tuple[int, ...], Tuple[int, ...]], ...] = ()
    fault_hits: Tuple[Tuple[object, Tuple[int, ...]], ...] = ()

    @property
    def total_splits(self) -> int:
        """Total alpha splits across all BSN levels."""
        return sum(st.splits for st in self.bsn_stats)

    @property
    def has_faults(self) -> bool:
        """True when the plan was compiled under a non-empty fault plan
        that touched this assignment's traffic."""
        return bool(self.lost_outputs or self.flaky_exposure or self.fault_hits)

    def casualties(self, attempt: int = 0) -> frozenset:
        """Outputs whose payload is lost on the given routing attempt.

        Dead-cell losses are constant; flaky-link losses are sampled
        deterministically per ``(fault, attempt)`` — the same stream the
        reference engine draws from, so both engines silence exactly
        the same outputs.
        """
        if not self.lost_outputs and not self.flaky_exposure:
            return frozenset()
        dropped = set(self.lost_outputs)
        for fault, port0, port1 in self.flaky_exposure:
            drop0, drop1 = fault.drop_mask(attempt)
            if drop0:
                dropped.update(port0)
            if drop1:
                dropped.update(port1)
        return frozenset(dropped)

    def flaky_hits(self, attempt: int = 0) -> List[Tuple[object, Tuple[int, ...]]]:
        """The flaky faults that dropped traffic on this attempt."""
        hits: List[Tuple[object, Tuple[int, ...]]] = []
        for fault, port0, port1 in self.flaky_exposure:
            drop0, drop1 = fault.drop_mask(attempt)
            dropped = (port0 if drop0 else ()) + (port1 if drop1 else ())
            if dropped:
                hits.append((fault, tuple(sorted(dropped))))
        return hits

    def apply(self, payloads: Sequence, attempt: int = 0) -> List:
        """Route one payload frame; returns the per-output payloads.

        Args:
            payloads: length-``n`` sequence, ``payloads[i]`` being input
                ``i``'s payload.
            attempt: routing attempt number (selects the flaky-link
                drops of a faulted plan; irrelevant otherwise).

        Returns:
            A list where entry ``o`` is the delivered payload (``None``
            for idle outputs and fault casualties).
        """
        if len(payloads) != self.n:
            raise InvalidAssignmentError(
                f"expected {self.n} payloads, got {len(payloads)}"
            )
        out = [
            None if s < 0 else payloads[s]
            for s in self.delivery_src.tolist()
        ]
        if self.lost_outputs or self.flaky_exposure:
            for o in self.casualties(attempt):
                out[o] = None
        return out

    def apply_batch(self, payload_matrix, attempt: int = 0) -> np.ndarray:
        """Route a whole ``(batch, n)`` payload matrix in one gather.

        Two payload representations are supported:

        * an *object* matrix (also what any non-ndarray input is
          coerced to) — idle outputs and fault casualties deliver
          ``None``, matching :meth:`apply`;
        * a *numeric* ndarray (any non-object dtype) — the gather runs
          as :func:`numpy.take`, which releases the GIL for simple
          dtypes, so the sharded batch router
          (:mod:`repro.parallel.shard`) scales across threads; idle
          outputs and casualties deliver the dtype's zero (there is no
          ``None`` in a numeric array).  The result keeps the input
          dtype.

        Args:
            payload_matrix: ``(batch, n)`` array-like; row ``f`` holds
                frame ``f``'s per-input payloads.
            attempt: routing attempt number (flaky-link sampling; the
                whole batch shares one attempt).

        Returns:
            A ``(batch, n)`` array of delivered payloads, same dtype
            discipline as above.
        """
        if isinstance(payload_matrix, np.ndarray):
            mat = payload_matrix
        else:
            mat = np.asarray(payload_matrix, dtype=object)
        if mat.ndim != 2 or mat.shape[1] != self.n:
            raise InvalidAssignmentError(
                f"expected a (batch, {self.n}) payload matrix, got shape {mat.shape}"
            )
        idle = self.delivery_src < 0
        if mat.dtype == object:
            out = mat[:, np.maximum(self.delivery_src, 0)]
            fill = None
        else:
            out = np.take(mat, np.maximum(self.delivery_src, 0), axis=1)
            fill = mat.dtype.type(0)
        if idle.any():
            out[:, idle] = fill
        if self.lost_outputs or self.flaky_exposure:
            dropped = self.casualties(attempt)
            if dropped:
                out[:, sorted(dropped)] = fill
        return out


def compile_frame_plan(
    assignment: MulticastAssignment,
    observer=None,
    frame_id: int = -1,
    fault_plan=None,
) -> FramePlan:
    """Compile the full recursive BRSMN routing of one assignment.

    Runs every recursion level through :func:`compile_level_gather`,
    following each message copy by position (``owner``) and provenance
    (``origin``) arrays, exactly as the unrolled network would move it.

    Args:
        assignment: the multicast assignment to compile.
        observer: optional enabled :class:`~repro.obs.events.Observer` —
            when given, each recursion level emits a
            :class:`~repro.obs.events.LevelSpan` with per-stage
            ``perf_counter_ns`` spans (``tag`` / ``scatter`` /
            ``quasisort`` / ``gather``) plus the level's split and
            switch-operation counts.
        frame_id: frame id to tag emitted spans with.
        fault_plan: optional :class:`~repro.faults.plan.FaultPlan` —
            when non-empty, each fault plane is folded into the compiled
            plan right after its recursion level: stuck-crossed cells
            permute the tracking arrays (so ``delivery_src`` lands
            where the broken fabric actually delivers), dead cells
            contribute ``lost_outputs``, flaky cells contribute
            ``flaky_exposure``.  An empty plan compiles the identical
            healthy plan.

    Raises:
        RoutingInvariantError: if any level's input populations violate
            the paper's invariants (impossible for a valid assignment).
    """
    n = assignment.n
    m = check_network_size(n)
    emit = observer is not None and observer.enabled
    inject = fault_plan is not None and not fault_plan.is_empty
    fault_state = (
        {"lost": np.zeros(n, dtype=bool), "exposure": [], "hits": []}
        if inject
        else None
    )

    # owner[o]: current position of the copy that will deliver output o.
    owner = np.full(n, -1, dtype=np.int64)
    for i, dests in enumerate(assignment.destinations):
        for d in dests:
            owner[d] = i
    # origin[p]: original input of the message copy at position p.
    origin = np.where(owner_positions_active(assignment, n), np.arange(n), -1)

    stats: List[BsnFrameStats] = []
    outputs_idx = np.arange(n, dtype=np.int64)
    size = n
    while size > 2:
        half = size // 2
        blocks = n // size
        if emit:
            stage_ns: Dict[str, int] = {}
            t_level = t_stage = perf_counter_ns()

        # ---- tag each position from the outputs it still owns.
        active = owner >= 0
        own_pos = owner[active]
        upper_half = ((outputs_idx[active] // half) % 2) == 0
        up_cnt = np.zeros(n, dtype=np.int64)
        lo_cnt = np.zeros(n, dtype=np.int64)
        np.add.at(up_cnt, own_pos[upper_half], 1)
        np.add.at(lo_cnt, own_pos[~upper_half], 1)
        codes = np.full(n, CODE_EPS, dtype=np.int64)
        codes[(up_cnt > 0) & (lo_cnt == 0)] = CODE_ZERO
        codes[(up_cnt == 0) & (lo_cnt > 0)] = CODE_ONE
        codes[(up_cnt > 0) & (lo_cnt > 0)] = CODE_ALPHA
        codes2d = codes.reshape(blocks, size)

        # ---- per-BSN statistics (assignment-determined, so part of
        # the compiled plan, not recomputed per payload frame).
        m_blk = size.bit_length() - 1
        n0 = (codes2d == CODE_ZERO).sum(axis=1)
        n1 = (codes2d == CODE_ONE).sum(axis=1)
        na = (codes2d == CODE_ALPHA).sum(axis=1)
        ne = (codes2d == CODE_EPS).sum(axis=1)
        for b in range(blocks):
            stats.append(
                BsnFrameStats(
                    size=size,
                    input_counts={
                        "n0": int(n0[b]),
                        "n1": int(n1[b]),
                        "na": int(na[b]),
                        "ne": int(ne[b]),
                    },
                    splits=int(na[b]),
                    switch_ops=2 * half * m_blk,
                )
            )

        if emit:
            now = perf_counter_ns()
            stage_ns["tag"] = now - t_stage
            t_stage = now

        # ---- route the level and advance the tracking arrays.
        src, role = compile_level_gather(codes2d, stage_ns if emit else None)
        if emit:
            t_stage = perf_counter_ns()
        positions = outputs_idx
        inv_zero = np.full(n, -1, dtype=np.int64)
        inv_one = np.full(n, -1, dtype=np.int64)
        took_zero = role != 2
        took_one = role != 1
        inv_zero[src[took_zero]] = positions[took_zero]
        inv_one[src[took_one]] = positions[took_one]

        origin = origin[src]
        safe_owner = np.maximum(owner, 0)
        upper_out = ((outputs_idx // half) % 2) == 0
        new_owner = np.where(upper_out, inv_zero[safe_owner], inv_one[safe_owner])
        owner = np.where(owner >= 0, new_owner, -1)
        if np.any((owner < 0) & (np.asarray(assignment_used_mask(assignment, n)))):
            raise RoutingInvariantError(
                "fast plan lost track of a delivery while compiling"
            )
        if inject:
            _fold_plane_faults(
                fault_plan,
                m - (size.bit_length() - 1) + 1,
                owner,
                origin,
                fault_state,
            )
        if emit:
            now = perf_counter_ns()
            stage_ns["gather"] = now - t_stage
            observer.on_level(
                LevelSpan(
                    frame_id=frame_id,
                    level=m - (size.bit_length() - 1) + 1,
                    size=size,
                    blocks=blocks,
                    splits=int(na.sum()),
                    switch_ops=int(blocks * 2 * half * m_blk),
                    stage_ns=stage_ns,
                    duration_ns=now - t_level,
                    engine="fast",
                )
            )
        size = half

    delivery_src = np.where(owner >= 0, origin[np.maximum(owner, 0)], -1)
    lost_outputs: Tuple[int, ...] = ()
    flaky_exposure: Tuple = ()
    fault_hits: Tuple = ()
    if inject:
        delivery_src = _fold_delivery_faults(
            fault_plan, m, delivery_src, fault_state
        )
        lost_outputs = tuple(np.nonzero(fault_state["lost"])[0].tolist())
        flaky_exposure = tuple(fault_state["exposure"])
        fault_hits = tuple(fault_state["hits"])
    return FramePlan(
        n=n,
        delivery_src=delivery_src,
        bsn_stats=tuple(stats),
        final_switches=n // 2,
        lost_outputs=lost_outputs,
        flaky_exposure=flaky_exposure,
        fault_hits=fault_hits,
    )


def _fold_plane_faults(fault_plan, level, owner, origin, state) -> None:
    """Fold one inner fault plane into the compile-time tracking arrays.

    Positions carry a live message copy exactly when they own at least
    one output, so presence and affected sets are read straight off the
    ``owner`` array — the same sets the reference injector derives from
    the in-flight messages' destination sets.  ``owner`` / ``origin``
    are mutated in place (a stuck-crossed cell swaps its two link
    positions); losses and exposure accumulate in ``state``.
    """
    for fault in fault_plan.at_level(level):
        p, q = fault.positions
        port0 = np.nonzero(owner == p)[0]
        port1 = np.nonzero(owner == q)[0]
        if port0.size == 0 and port1.size == 0:
            continue
        kind = fault.kind
        if kind == "stuck_at":
            if fault.stuck_setting != 1:
                continue
            origin[[p, q]] = origin[[q, p]]
            owner[port0] = q
            owner[port1] = p
            affected = tuple(sorted(port0.tolist() + port1.tolist()))
            state["hits"].append((fault, affected))
        elif kind == "dead_switch":
            affected = tuple(sorted(port0.tolist() + port1.tolist()))
            state["lost"][list(affected)] = True
            state["hits"].append((fault, affected))
        else:  # flaky_link: record exposure, sample per attempt later.
            state["exposure"].append(
                (fault, tuple(port0.tolist()), tuple(port1.tolist()))
            )


def _fold_delivery_faults(fault_plan, m, delivery_src, state) -> np.ndarray:
    """Fold plane ``m`` (the output links) into a finished plan.

    Stuck-crossed delivery cells permute the delivered contents, so
    everything recorded at inner planes — lost outputs, flaky exposure —
    is remapped through the same (involutive) permutation; dead and
    flaky delivery cells then act on the final output addresses.
    """
    faults = fault_plan.at_level(m)
    if not faults:
        return delivery_src
    n = delivery_src.shape[0]
    dperm = np.arange(n, dtype=np.int64)
    for fault in faults:
        if fault.kind == "stuck_at" and fault.stuck_setting == 1:
            p, q = fault.positions
            if delivery_src[p] < 0 and delivery_src[q] < 0:
                continue
            dperm[[p, q]] = dperm[[q, p]]
            affected = tuple(
                pos for pos in (p, q) if delivery_src[pos] >= 0
            )
            state["hits"].append((fault, affected))
    delivery_src = delivery_src[dperm]
    state["lost"] = state["lost"][dperm]
    # A cell only swaps within its own pair, so dperm[o] is both where
    # output o's content went and where o's new content came from.
    state["exposure"] = [
        (
            f,
            tuple(int(dperm[o]) for o in port0),
            tuple(int(dperm[o]) for o in port1),
        )
        for f, port0, port1 in state["exposure"]
    ]
    for fault in faults:
        p, q = fault.positions
        if fault.kind == "dead_switch":
            affected = tuple(
                pos for pos in (p, q) if delivery_src[pos] >= 0
            )
            if affected:
                state["lost"][list(affected)] = True
                state["hits"].append((fault, affected))
        elif fault.kind == "flaky_link":
            port0 = (p,) if delivery_src[p] >= 0 else ()
            port1 = (q,) if delivery_src[q] >= 0 else ()
            if port0 or port1:
                state["exposure"].append((fault, port0, port1))
    return delivery_src


def owner_positions_active(assignment: MulticastAssignment, n: int) -> np.ndarray:
    """Boolean mask of inputs that inject a message (helper)."""
    mask = np.zeros(n, dtype=bool)
    for i in assignment.active_inputs:
        mask[i] = True
    return mask


def assignment_used_mask(assignment: MulticastAssignment, n: int) -> np.ndarray:
    """Boolean mask of outputs claimed by the assignment (helper)."""
    mask = np.zeros(n, dtype=bool)
    for o in assignment.used_outputs:
        mask[o] = True
    return mask


@dataclass
class PlanCache:
    """An LRU cache of compiled :class:`FramePlan` objects.

    Keyed on the canonical assignment fingerprint
    (:func:`repro.core.serialization.assignment_fingerprint`), so two
    structurally identical assignments share one compiled plan no
    matter how they were constructed.

    The cache is thread-safe: the hit/miss counters and the LRU map are
    only touched under one internal mutex, and
    :class:`~repro.obs.events.CacheEvent` emission happens *outside*
    the critical section — the event payloads (sizes included) are
    snapshotted under the lock, then delivered in that deterministic
    order, so a slow observer can never stall (or deadlock with)
    another routing thread.  Compilation also runs outside the lock;
    concurrent misses on the same key may therefore compile twice here
    (first insert wins, both callers get the same retained plan) — the
    multi-worker engine's
    :class:`~repro.parallel.plan_cache.ConcurrentPlanCache` adds
    single-flight deduplication on top for exactly that case.

    Attributes:
        maxsize: maximum retained plans (least-recently-used eviction).
        hits: lookups answered from the cache.
        misses: lookups that had to compile.
        observer: optional :class:`~repro.obs.events.Observer` receiving
            a :class:`~repro.obs.events.CacheEvent` per hit, miss,
            eviction and clear.
    """

    maxsize: int = 256
    hits: int = 0
    misses: int = 0
    observer: Optional[object] = None
    _plans: "OrderedDict[str, FramePlan]" = field(default_factory=OrderedDict)
    # Each entry's source assignment, retained for warm-restart
    # snapshots: fingerprints are one-way hashes, so without the
    # assignment a snapshot could name cached plans but never rebuild
    # them (see repro.resilience.snapshot).
    _assignments: Dict[str, MulticastAssignment] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @staticmethod
    def make_key(assignment: MulticastAssignment, extra_key: str = "") -> str:
        """The cache key of an assignment (+ optional compiler suffix)."""
        key = assignment_fingerprint(assignment)
        return f"{key}@{extra_key}" if extra_key else key

    def _emit(self, events) -> None:
        """Deliver snapshotted ``(kind, key, size)`` events, in order."""
        obs = self.observer
        if obs is None or not obs.enabled or not events:
            return
        for kind, key, size in events:
            obs.on_cache_event(
                CacheEvent(
                    kind=kind, key=key, size=size, t_ns=perf_counter_ns()
                )
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    @property
    def coalesced(self) -> int:
        """Misses served by another thread's in-flight compile (always
        0 here; the concurrent subclass counts real coalescing)."""
        return 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def contains(
        self, assignment: MulticastAssignment, extra_key: str = ""
    ) -> bool:
        """True when the assignment's plan is cached (no LRU refresh,
        no counter or event side effects) — the compile-ahead
        pipeline's cheap pre-check."""
        key = self.make_key(assignment, extra_key)
        with self._lock:
            return key in self._plans

    def get(
        self,
        assignment: MulticastAssignment,
        compile_fn: Callable[[MulticastAssignment], FramePlan] = compile_frame_plan,
        extra_key: str = "",
    ) -> Tuple[FramePlan, bool]:
        """Fetch (or compile and memoise) the plan for an assignment.

        Args:
            assignment: the assignment to look up.
            compile_fn: compiler invoked on a miss.
            extra_key: optional key suffix for compilers whose output
                depends on more than the assignment (e.g. a fault-plan
                fingerprint) — keeps such plans from colliding with the
                healthy ones.

        Returns:
            ``(plan, hit)`` — ``hit`` is True when the plan came from
            the cache.
        """
        key = self.make_key(assignment, extra_key)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                events = [("hit", key, len(self._plans))]
            else:
                self.misses += 1
                events = [("miss", key, len(self._plans))]
        self._emit(events)
        if plan is not None:
            return plan, True
        plan = compile_fn(assignment)
        events = []
        with self._lock:
            raced = self._plans.get(key)
            if raced is not None:
                # Another thread compiled and inserted first; keep its
                # plan so every caller shares one object.
                plan = raced
                self._plans.move_to_end(key)
            else:
                self._plans[key] = plan
                self._assignments[key] = assignment
                while len(self._plans) > self.maxsize:
                    evicted, _ = self._plans.popitem(last=False)
                    self._assignments.pop(evicted, None)
                    events.append(("evict", evicted, len(self._plans)))
        self._emit(events)
        return plan, False

    def snapshot_assignments(self) -> List[MulticastAssignment]:
        """The cached entries' source assignments, LRU order (oldest
        first) — the payload of a warm-restart snapshot
        (:class:`~repro.resilience.snapshot.FabricSnapshot`)."""
        with self._lock:
            return [
                self._assignments[key]
                for key in self._plans
                if key in self._assignments
            ]

    def clear(self) -> None:
        """Drop every cached plan and reset the counters."""
        with self._lock:
            self._plans.clear()
            self._assignments.clear()
            self.hits = 0
            self.misses = 0
            events = [("clear", "", 0)]
        self._emit(events)
