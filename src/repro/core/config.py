"""The one network-construction configuration object.

Before this module existed, ``build_network``, :class:`BRSMN`,
:class:`MulticastFabric`, ``route_multicast`` and
:class:`QueueingSimulator` each grew their own drifting combination of
``implementation=`` / ``engine=`` string kwargs — and new construction
options (an observer, a plan-cache size) would have had to be threaded
through five signatures.  :class:`NetworkConfig` replaces the combos:
every constructor accepts either a bare port count (all defaults) or
one config object.

The legacy kwarg forms were deprecated in favour of the config object
and have now been **removed** — see ``docs/migration_v1.md`` for the
old → new spellings.  Variations on a config are spelled
:meth:`NetworkConfig.derive`, which revalidates the result and names
the offending field on any error.

Example::

    from repro import MulticastFabric, NetworkConfig
    from repro.obs import MetricsObserver

    cfg = NetworkConfig(256, engine="fast", plan_cache_size=512,
                        observer=MetricsObserver())
    fabric = MulticastFabric(cfg)          # or cfg.build() for a bare network
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Optional

from ..rbn.permutations import check_network_size

__all__ = ["NetworkConfig"]

IMPLEMENTATIONS = ("unrolled", "feedback")
ENGINES = ("reference", "fast")
EXECUTORS = ("thread", "process")


@dataclass(frozen=True)
class NetworkConfig:
    """Everything needed to construct a multicast network.

    Attributes:
        n: network size (power of two, >= 2).
        implementation: ``"unrolled"`` (full :class:`~repro.core.brsmn.BRSMN`,
            cost ``O(n log^2 n)``, single-pass) or ``"feedback"``
            (hardware-reusing :class:`~repro.core.feedback.FeedbackBRSMN`,
            cost ``O(n log n)``, ``2 log n - 1`` passes).
        engine: ``"reference"`` (per-switch simulation, traceable) or
            ``"fast"`` (compiled NumPy routing plans; unrolled only).
        plan_cache_size: fast engine — maximum compiled plans retained
            by the LRU :class:`~repro.core.fastplan.PlanCache`.
        workers: fast engine — size of the routing worker pool.  At 1
            (the default) everything runs on the calling thread; above
            1 the network routes payload batches through a
            :class:`~repro.parallel.shard.ShardedBatchRouter` and
            memoises plans in a thread-safe
            :class:`~repro.parallel.plan_cache.ConcurrentPlanCache`
            with single-flight compile deduplication.
        executor: fast engine — backend the sharded batch router runs
            on when ``workers > 1``.  ``"thread"`` (the default) shards
            on a :class:`~repro.parallel.workers.WorkerPool` of threads
            with zero-copy views; ``"process"`` shards on a
            :class:`~repro.parallel.process.ProcessShardRouter` pool of
            worker *processes* — numeric payload matrices travel
            through ``multiprocessing.shared_memory`` and object-dtype
            batches as pickled chunks, so CPython-bound routing scales
            past one core.  See ``docs/executors.md`` for the decision
            table and the determinism/crash contract (identical for
            both backends).
        compile_ahead: fast engine — depth of the
            :class:`~repro.parallel.pipeline.CompileAheadPipeline`
            prefetch queue (0 disables it).  Session facades with
            lookahead (:meth:`~repro.core.fabric.MulticastFabric.run`,
            the queueing simulator) then compile upcoming frames' plans
            on the worker pool while the current frame routes.
        observer: optional :class:`~repro.obs.events.Observer` receiving
            frame lifecycle events, per-level profiling spans and
            plan-cache events (unrolled implementation).
        fault_plan: optional :class:`~repro.faults.plan.FaultPlan` —
            when given (and non-empty), the constructed network injects
            the described stuck-at / dead-switch / flaky-link faults,
            and the session facades (fabric, queueing) run the
            self-healing layer.  An empty plan is bit-identical to no
            plan.  Unrolled implementation only.
        deadline_ms: optional per-frame wall-clock budget in
            milliseconds — the session facades then carry a
            :class:`~repro.resilience.budget.DeadlineBudget` through
            healing retries and sharded-batch waits, so serving stops
            (and the frame is accounted) when the budget is spent.
        admission: optional
            :class:`~repro.resilience.gate.AdmissionPolicy` — the
            session facades then run an
            :class:`~repro.resilience.gate.AdmissionGate` in front of
            the network, shedding lowest-priority frames first under
            overload.
        breaker: optional
            :class:`~repro.resilience.breaker.BreakerPolicy` — fabric
            sessions with a fault plan then run a
            :class:`~repro.resilience.breaker.CircuitBreaker` over the
            primary plane, short-circuiting it to the standby instead
            of burning retries once it trips.
        control: optional
            :class:`~repro.control.policy.ControlPolicy` — the session
            facades then run a
            :class:`~repro.control.plane.ControlPlane` that retunes
            the admission rate (AIMD), compile-ahead depth, shard
            worker target and retry backoff from the observed event
            stream, one deterministic tick per submission / slot.
        snapshot_path: optional filesystem path —
            :meth:`~repro.core.fabric.MulticastFabric.close` then
            writes a :class:`~repro.resilience.snapshot.FabricSnapshot`
            there, and a fabric constructed with the same path
            warm-restores from it (cached plans recompile, health and
            breaker state carry over).  A missing file is a cold
            start, not an error.
    """

    n: int
    implementation: str = "unrolled"
    engine: str = "reference"
    plan_cache_size: int = 256
    workers: int = 1
    executor: str = "thread"
    compile_ahead: int = 0
    observer: Optional[object] = field(default=None, compare=False)
    fault_plan: Optional[object] = None
    deadline_ms: Optional[float] = None
    admission: Optional[object] = None
    breaker: Optional[object] = None
    control: Optional[object] = None
    snapshot_path: Optional[str] = None

    def __post_init__(self):
        check_network_size(self.n)
        if self.implementation not in IMPLEMENTATIONS:
            raise ValueError(
                f"unknown implementation {self.implementation!r} "
                f"(expected one of {IMPLEMENTATIONS})"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r} (expected one of {ENGINES})"
            )
        if self.implementation == "feedback" and self.engine != "reference":
            raise ValueError(
                "engine='fast' requires implementation='unrolled' "
                "(the feedback network is a hardware-reuse simulation)"
            )
        if self.plan_cache_size < 1:
            raise ValueError(
                f"plan_cache_size must be >= 1, got {self.plan_cache_size}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.compile_ahead < 0:
            raise ValueError(
                f"compile_ahead must be >= 0, got {self.compile_ahead}"
            )
        if (self.workers > 1 or self.compile_ahead > 0) and self.engine != "fast":
            raise ValueError(
                "workers > 1 / compile_ahead > 0 require engine='fast' "
                "(the reference engine is a per-switch teaching "
                "simulation; parallelising it would only obscure it)"
            )
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r} "
                f"(expected one of {EXECUTORS})"
            )
        if self.executor == "process" and self.engine != "fast":
            raise ValueError(
                "executor='process' requires engine='fast' (only "
                "compiled routing plans travel pickle-safely to worker "
                "processes; the reference engine stays in-process)"
            )
        if self.fault_plan is not None:
            # Duck-typed on purpose: importing repro.faults here would
            # create a core <-> faults import cycle.
            plan_n = getattr(self.fault_plan, "n", None)
            if plan_n != self.n:
                raise ValueError(
                    f"fault_plan is for n={plan_n}, but the config is for "
                    f"n={self.n}"
                )
            if self.implementation == "feedback":
                raise ValueError(
                    "fault injection requires implementation='unrolled' "
                    "(the feedback network time-multiplexes one physical "
                    "BSN, so it has no per-level fault planes)"
                )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be > 0 (or None), got {self.deadline_ms}"
            )
        # Duck-typed like fault_plan: importing repro.resilience here
        # would create a core <-> resilience import cycle.
        if self.admission is not None and not hasattr(self.admission, "rate"):
            raise ValueError(
                "admission must be an AdmissionPolicy-like object "
                f"(with a 'rate'), got {type(self.admission).__name__}"
            )
        if self.breaker is not None and not hasattr(
            self.breaker, "failure_threshold"
        ):
            raise ValueError(
                "breaker must be a BreakerPolicy-like object (with a "
                f"'failure_threshold'), got {type(self.breaker).__name__}"
            )
        # Duck-typed like admission/breaker: importing repro.control
        # here would create a core <-> control import cycle.
        if self.control is not None and not hasattr(
            self.control, "tick_frames"
        ):
            raise ValueError(
                "control must be a ControlPolicy-like object (with a "
                f"'tick_frames'), got {type(self.control).__name__}"
            )
        if self.snapshot_path is not None and not isinstance(
            self.snapshot_path, str
        ):
            raise ValueError(
                "snapshot_path must be a filesystem path string (or "
                f"None), got {type(self.snapshot_path).__name__}"
            )

    def with_observer(self, observer) -> "NetworkConfig":
        """A copy of this config with a different observer attached."""
        return replace(self, observer=observer)

    def derive(self, **overrides) -> "NetworkConfig":
        """A revalidated copy of this config with fields replaced.

        The ergonomic way to vary a frozen config::

            base = NetworkConfig(256, engine="fast")
            tuned = base.derive(workers=4, compile_ahead=2)

        Args:
            **overrides: any :class:`NetworkConfig` field.  Unknown
                names raise a :class:`ValueError` listing the valid
                fields; invalid values fail the same validation as the
                constructor, naming the offending field and range.

        Returns:
            a new frozen :class:`NetworkConfig`; ``self`` is untouched.
        """
        valid = {f.name for f in fields(self)}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise ValueError(
                f"unknown NetworkConfig field(s) {', '.join(unknown)} "
                f"(valid fields: {', '.join(sorted(valid))})"
            )
        return replace(self, **overrides)

    def build(self):
        """Construct the configured network (see ``build_network``)."""
        from .routing import build_network  # local: routing imports config

        return build_network(self)


_UNSET = object()


def _resolve_config(n_or_config, *, observer=_UNSET) -> NetworkConfig:
    """Normalise ``n | NetworkConfig`` to one validated config.

    Shared by every constructor that accepts the config object.  A bare
    port count means "all defaults"; an ``observer`` kwarg overrides
    ``config.observer`` (session facades use it to splice their own
    composites in front of the caller's).
    """
    if isinstance(n_or_config, NetworkConfig):
        cfg = n_or_config
    else:
        cfg = NetworkConfig(n_or_config)
    if observer is not _UNSET and observer is not None:
        cfg = cfg.with_observer(observer)
    return cfg
