"""Core layer: the paper's primary contribution.

This subpackage assembles the RBN substrate into the binary radix
sorting multicast network:

* the multicast model (:mod:`~repro.core.multicast`,
  :mod:`~repro.core.message`);
* routing tags, tag trees and the SEQ wire format
  (:mod:`~repro.core.tags`, :mod:`~repro.core.tagtree`);
* the binary splitting network (:mod:`~repro.core.bsn`);
* the full BRSMN (:mod:`~repro.core.brsmn`) and its feedback
  implementation (:mod:`~repro.core.feedback`);
* delivery verification (:mod:`~repro.core.verification`) and the
  one-call API (:mod:`~repro.core.routing`).
"""

from .admission import (
    Request,
    ScheduleOutcome,
    conflicts,
    frame_lower_bound,
    route_requests,
    schedule_frames,
)
from .arrivals import (
    Arrival,
    QueueingReport,
    QueueingSimulator,
    poisson_arrivals,
)
from .brsmn import (
    BRSMN,
    BatchRoutingResult,
    RoutingResult,
    deliver_final_switch,
    inject_messages,
)
from .bsn import BinarySplittingNetwork, BsnFrameStats, make_bsn_cells
from .config import NetworkConfig
from .fabric import FabricStats, MulticastFabric
from .fastplan import FramePlan, PlanCache, compile_frame_plan, compile_level_gather
from .feedback import FeedbackBRSMN, FeedbackRoutingResult, PassRecord
from .message import Message
from .multicast import MulticastAssignment, paper_example_assignment
from .pipeline_sim import (
    SegmentStats,
    StreamReport,
    find_min_period,
    simulate_stream,
)
from .routing import (
    build_network,
    route_multicast,
    route_resilient,
)
from .tags import (
    Tag,
    decode_tag,
    encode_tag,
    format_tag_string,
    parse_tag_string,
)
from .tagtree import (
    TagTree,
    TagTreeNode,
    merge_sequences,
    order_sequence,
    split_stream,
    tag_of_destinations,
)
from .verification import (
    VerificationReport,
    verify_delivery,
    verify_edge_disjoint,
    verify_result,
)

__all__ = [
    "Arrival",
    "QueueingReport",
    "QueueingSimulator",
    "poisson_arrivals",
    "Request",
    "ScheduleOutcome",
    "conflicts",
    "frame_lower_bound",
    "route_requests",
    "schedule_frames",
    "BRSMN",
    "BatchRoutingResult",
    "RoutingResult",
    "deliver_final_switch",
    "inject_messages",
    "BinarySplittingNetwork",
    "BsnFrameStats",
    "make_bsn_cells",
    "NetworkConfig",
    "FabricStats",
    "MulticastFabric",
    "FramePlan",
    "PlanCache",
    "compile_frame_plan",
    "compile_level_gather",
    "FeedbackBRSMN",
    "FeedbackRoutingResult",
    "PassRecord",
    "Message",
    "MulticastAssignment",
    "paper_example_assignment",
    "SegmentStats",
    "StreamReport",
    "find_min_period",
    "simulate_stream",
    "build_network",
    "route_multicast",
    "route_resilient",
    "Tag",
    "decode_tag",
    "encode_tag",
    "format_tag_string",
    "parse_tag_string",
    "TagTree",
    "TagTreeNode",
    "merge_sequences",
    "order_sequence",
    "split_stream",
    "tag_of_destinations",
    "VerificationReport",
    "verify_delivery",
    "verify_edge_disjoint",
    "verify_result",
]
