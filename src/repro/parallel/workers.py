"""Bounded worker pool with busy accounting and observability.

:class:`WorkerPool` is a thin, instrumented wrapper around
:class:`concurrent.futures.ThreadPoolExecutor`.  Threads are the
default vehicle because the fast engine's hot loops are NumPy gather
kernels, and ``np.take`` on numeric dtypes releases the GIL for the
duration of the copy, so shards genuinely overlap on multicore hosts
while plans, payload views and the output matrix are shared zero-copy.
Workloads the GIL *does* serialise — object-dtype payloads, healing
verify loops — scale through the process twin instead
(``NetworkConfig(executor="process")``,
:class:`~repro.parallel.process.ProcessWorkerPool`); see
``docs/executors.md`` for the decision table.

Every task emits a pair of :class:`~repro.obs.events.ParallelEvent`
samples (``start`` / ``done``) carrying the pool size, the busy-worker
count and the compile-ahead queue depth, which
:class:`~repro.obs.metrics_observer.MetricsObserver` folds into the
``repro_parallel_*`` metric families.  With no observer (or a disabled
one) a task pays two lock-protected counter bumps and nothing else.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from time import perf_counter_ns
from typing import Callable, Optional

from ..obs.events import ParallelEvent

__all__ = ["WorkerPool"]


class WorkerPool:
    """A lazily-started, instrumented thread pool of fixed size.

    Args:
        workers: pool size (>= 1).  A 1-worker pool is valid — the
            sharded router then routes inline and only compile-ahead
            uses the thread.
        observer: optional :class:`~repro.obs.events.Observer`
            receiving ``start`` / ``done``
            :class:`~repro.obs.events.ParallelEvent` samples.

    The underlying executor is created on first :meth:`submit`, so
    configuring ``workers=4`` costs nothing until parallel work is
    actually dispatched.  :attr:`depth_fn` may be pointed at a queue
    depth source (the compile-ahead pipeline registers its pending
    count) so emitted events carry the current prefetch backlog.
    """

    def __init__(self, workers: int, observer: Optional[object] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.observer = observer
        self.depth_fn: Optional[Callable[[], int]] = None
        self._lock = threading.Lock()
        self._busy = 0
        self._executor: Optional[ThreadPoolExecutor] = None

    @property
    def busy(self) -> int:
        """Tasks currently executing (the utilisation numerator)."""
        with self._lock:
            return self._busy

    def _depth(self) -> int:
        fn = self.depth_fn
        return fn() if fn is not None else 0

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-worker",
                )
            return self._executor

    def submit(self, kind: str, fn: Callable, *args, **kwargs) -> Future:
        """Dispatch ``fn(*args, **kwargs)`` to the pool.

        Args:
            kind: task label for observability (``"shard"`` or
                ``"compile"``); becomes the ``kind`` label of
                ``repro_parallel_tasks_total``.

        Returns:
            the task's :class:`~concurrent.futures.Future`; exceptions
            propagate through ``result()`` as usual.
        """
        return self._ensure_executor().submit(self._run, kind, fn, args, kwargs)

    def _run(self, kind: str, fn: Callable, args, kwargs):
        obs = self.observer
        emit = obs is not None and obs.enabled
        with self._lock:
            self._busy += 1
            busy = self._busy
        if emit:
            obs.on_parallel(
                ParallelEvent(
                    action="start",
                    kind=kind,
                    workers=self.workers,
                    busy=busy,
                    queue_depth=self._depth(),
                    t_ns=perf_counter_ns(),
                )
            )
        try:
            return fn(*args, **kwargs)
        finally:
            with self._lock:
                self._busy -= 1
                busy = self._busy
            if emit:
                obs.on_parallel(
                    ParallelEvent(
                        action="done",
                        kind=kind,
                        workers=self.workers,
                        busy=busy,
                        queue_depth=self._depth(),
                        t_ns=perf_counter_ns(),
                    )
                )

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool.  Idempotent; a later :meth:`submit` restarts it."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
