"""A thread-safe plan cache: lock-striped LRU + single-flight compiles.

The base :class:`~repro.core.fastplan.PlanCache` is safe under one
coarse mutex, but a multi-worker router hits it from every thread, and
its weakness under concurrency is the *miss storm*: ``W`` workers cold
on the same hot assignment would compile the same
:class:`~repro.core.fastplan.FramePlan` ``W`` times (compilation is the
expensive step — ~7.5x the routing it produces at ``n = 1024``).  This
module fixes both ends:

* **lock striping** — the key space is partitioned over independent
  stripes (each its own mutex + LRU segment), so threads touching
  different assignments never contend on one lock;
* **single-flight deduplication** — a miss registers an in-flight
  future under the stripe lock before compiling *outside* it;
  concurrent misses on the same key find the future, are counted as
  *coalesced*, and wait for the leader's result instead of compiling
  again.  Duplicate concurrent misses therefore compile exactly once.

Event emission follows the base cache's discipline: payloads are
snapshotted inside the critical section and delivered outside it, in
that order, with the extra ``kind="coalesced"``
:class:`~repro.obs.events.CacheEvent` for piggybacked lookups.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from time import perf_counter_ns
from typing import Callable, Dict, List, Optional, Tuple

from ..core.fastplan import FramePlan, PlanCache, compile_frame_plan
from ..core.multicast import MulticastAssignment
from ..obs.events import CacheEvent

__all__ = ["ConcurrentPlanCache"]


class _Stripe:
    """One independent cache segment: mutex, LRU map, in-flight table."""

    __slots__ = (
        "lock", "plans", "assignments", "inflight", "hits", "misses",
        "coalesced",
    )

    def __init__(self):
        self.lock = threading.Lock()
        self.plans: "OrderedDict[str, FramePlan]" = OrderedDict()
        # Source assignment per cached key, for warm-restart snapshots
        # (fingerprints alone cannot rebuild a plan).
        self.assignments: Dict[str, MulticastAssignment] = {}
        self.inflight: Dict[str, Future] = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0


class ConcurrentPlanCache:
    """Lock-striped LRU of compiled plans with single-flight compiles.

    Drop-in for :class:`~repro.core.fastplan.PlanCache` (same ``get`` /
    ``contains`` / ``clear`` surface, same cache keys via
    :meth:`make_key`), used by :class:`~repro.core.brsmn.BRSMN`
    whenever the config enables workers or compile-ahead.

    Capacity is partitioned per stripe (``ceil(maxsize / stripes)``
    plans each), so eviction is LRU *within a stripe* — the standard
    striped-LRU trade: a globally exact LRU would reintroduce the
    single lock the stripes exist to avoid.  Fault-plan variants share
    their assignment's fingerprint prefix (``fingerprint@plan``) and
    therefore the stripe of the healthy plan, but remain distinct keys:
    concurrent eviction can never make a faulted lookup observe a
    healthy plan or vice versa.

    Args:
        maxsize: total retained plans across all stripes.
        observer: optional :class:`~repro.obs.events.Observer`
            receiving a :class:`~repro.obs.events.CacheEvent` per hit /
            miss / coalesced wait / eviction / clear.
        stripes: independent lock-striped segments (>= 1).
    """

    make_key = staticmethod(PlanCache.make_key)

    def __init__(
        self,
        maxsize: int = 256,
        observer: Optional[object] = None,
        stripes: int = 8,
    ):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if stripes < 1:
            raise ValueError(f"stripes must be >= 1, got {stripes}")
        self.maxsize = maxsize
        self.observer = observer
        self._stripes: Tuple[_Stripe, ...] = tuple(
            _Stripe() for _ in range(min(stripes, maxsize))
        )
        self._quota = -(-maxsize // len(self._stripes))  # ceil division

    # -- bookkeeping ----------------------------------------------------
    def _stripe(self, key: str) -> _Stripe:
        """The stripe owning ``key`` (stable within a process)."""
        return self._stripes[hash(key) % len(self._stripes)]

    def _size(self) -> int:
        """Total cached plans (lock-free sum; ``len(dict)`` is atomic)."""
        return sum(len(s.plans) for s in self._stripes)

    def __len__(self) -> int:
        return self._size()

    @property
    def stripe_count(self) -> int:
        """Number of independent lock-striped segments."""
        return len(self._stripes)

    @property
    def hits(self) -> int:
        """Lookups answered from a stripe's LRU segment."""
        return sum(s.hits for s in self._stripes)

    @property
    def misses(self) -> int:
        """Lookups that became the compiling leader."""
        return sum(s.misses for s in self._stripes)

    @property
    def coalesced(self) -> int:
        """Lookups that waited on another thread's in-flight compile."""
        return sum(s.coalesced for s in self._stripes)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without compiling (hits plus
        coalesced waits over all lookups)."""
        hits = self.hits + self.coalesced
        total = hits + self.misses
        return hits / total if total else 0.0

    def _emit(self, events: List[Tuple[str, str, int]]) -> None:
        obs = self.observer
        if obs is None or not obs.enabled or not events:
            return
        for kind, key, size in events:
            obs.on_cache_event(
                CacheEvent(
                    kind=kind, key=key, size=size, t_ns=perf_counter_ns()
                )
            )

    # -- the cache protocol ---------------------------------------------
    def contains(
        self, assignment: MulticastAssignment, extra_key: str = ""
    ) -> bool:
        """True when the plan is cached *or already compiling* (no LRU
        refresh, no counters) — in-flight counts because a prefetch
        scheduled on top of it would only coalesce, not help."""
        key = self.make_key(assignment, extra_key)
        stripe = self._stripe(key)
        with stripe.lock:
            return key in stripe.plans or key in stripe.inflight

    def get(
        self,
        assignment: MulticastAssignment,
        compile_fn: Callable[[MulticastAssignment], FramePlan] = compile_frame_plan,
        extra_key: str = "",
    ) -> Tuple[FramePlan, bool]:
        """Fetch — or compile exactly once and memoise — a plan.

        Concurrent misses on the same key elect one *leader* (the first
        to register the in-flight future); everyone else waits on the
        future and returns the leader's plan with ``hit=True`` (they
        did not pay a compile).  If the leader's ``compile_fn`` raises,
        every waiter re-raises that exception and the key is left
        uncached, so a later lookup retries.

        Returns:
            ``(plan, hit)`` — ``hit`` is True when the plan came from
            the cache or from a coalesced wait.
        """
        key = self.make_key(assignment, extra_key)
        stripe = self._stripe(key)
        with stripe.lock:
            plan = stripe.plans.get(key)
            if plan is not None:
                stripe.hits += 1
                stripe.plans.move_to_end(key)
                events = [("hit", key, self._size())]
                future = None
                leader = False
            else:
                future = stripe.inflight.get(key)
                if future is not None:
                    stripe.coalesced += 1
                    events = [("coalesced", key, self._size())]
                    leader = False
                else:
                    future = stripe.inflight[key] = Future()
                    stripe.misses += 1
                    events = [("miss", key, self._size())]
                    leader = True
        self._emit(events)
        if plan is not None:
            return plan, True
        if not leader:
            return future.result(), True

        try:
            plan = compile_fn(assignment)
        except BaseException as exc:
            with stripe.lock:
                stripe.inflight.pop(key, None)
            future.set_exception(exc)
            raise
        events = []
        with stripe.lock:
            stripe.plans[key] = plan
            stripe.assignments[key] = assignment
            stripe.inflight.pop(key, None)
            while len(stripe.plans) > self._quota:
                evicted, _ = stripe.plans.popitem(last=False)
                stripe.assignments.pop(evicted, None)
                events.append(("evict", evicted, self._size()))
        future.set_result(plan)
        self._emit(events)
        return plan, False

    def snapshot_assignments(self) -> List[MulticastAssignment]:
        """The cached entries' source assignments, stripe by stripe in
        each stripe's LRU order — the payload of a warm-restart
        snapshot (:class:`~repro.resilience.snapshot.FabricSnapshot`)."""
        assignments: List[MulticastAssignment] = []
        for stripe in self._stripes:
            with stripe.lock:
                assignments.extend(
                    stripe.assignments[key]
                    for key in stripe.plans
                    if key in stripe.assignments
                )
        return assignments

    def clear(self) -> None:
        """Drop every cached plan and reset the counters.

        In-flight compiles are *not* cancelled — their leaders insert
        when they finish (a clear-during-compile keeping the freshest
        plan is the least surprising outcome) — but their waiters keep
        their futures, so nobody deadlocks.
        """
        for stripe in self._stripes:  # consistent order; no nesting
            with stripe.lock:
                stripe.plans.clear()
                stripe.assignments.clear()
                stripe.hits = 0
                stripe.misses = 0
                stripe.coalesced = 0
        self._emit([("clear", "", 0)])
