"""Deterministic row-sharding of batched frame routing.

A compiled :class:`~repro.core.fastplan.FramePlan` routes a whole
``(batch, n)`` payload matrix with a couple of gathers; the batch axis
is embarrassingly parallel because every row is an independent frame.
:class:`ShardedBatchRouter` exploits exactly that: it splits the batch
into contiguous row ranges, routes each range on a
:class:`~repro.parallel.workers.WorkerPool` thread against *views* of
the input (zero copies — NumPy basic slicing), and writes each shard's
result into a disjoint slice of one preallocated output matrix.

Determinism is structural, not scheduled: shard boundaries are a pure
function of ``(batch, workers)`` (:func:`shard_bounds`), each shard
owns a disjoint output range, and the caller blocks until every shard
completes — so the merged matrix is bit-identical to the single-thread
result regardless of which worker finishes first.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.fastplan import FramePlan
from .workers import WorkerPool

__all__ = ["ShardedBatchRouter", "shard_bounds"]


def shard_bounds(batch: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``batch`` rows into at most ``workers`` contiguous ranges.

    Pure and deterministic: ``min(workers, batch)`` shards, sizes
    differing by at most one row, larger shards first.  ``batch == 0``
    yields no shards.

    >>> shard_bounds(10, 4)
    [(0, 3), (3, 6), (6, 8), (8, 10)]
    """
    if batch < 0:
        raise ValueError(f"batch must be >= 0, got {batch}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    shards = min(workers, batch)
    if shards == 0:
        return []
    base, extra = divmod(batch, shards)
    bounds = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ShardedBatchRouter:
    """Route payload batches across a worker pool, merging deterministically.

    Args:
        pool: the :class:`~repro.parallel.workers.WorkerPool` shards run
            on.  The submitting thread always routes the *last* shard
            inline — it would otherwise idle while waiting, and on a
            single-core host that keeps the sharded path within noise
            of the sequential one.
    """

    def __init__(self, pool: WorkerPool):
        self.pool = pool

    def apply(
        self,
        plan: FramePlan,
        payload_matrix: np.ndarray,
        attempt: int = 0,
    ) -> np.ndarray:
        """Equivalent of ``plan.apply_batch(payload_matrix, attempt)``.

        The matrix is sharded along axis 0; dtype semantics (object
        vs. numeric fill) are the plan's own, because every shard *is*
        an ``apply_batch`` call on a row-slice view.

        Returns:
            the ``(batch, n)`` delivered matrix, bit-identical to the
            sequential call.
        """
        mat = payload_matrix
        if not isinstance(mat, np.ndarray):
            mat = np.asarray(mat, dtype=object)
        bounds = shard_bounds(mat.shape[0], self.pool.workers)
        if len(bounds) <= 1:
            return plan.apply_batch(mat, attempt)
        out = np.empty(mat.shape, dtype=mat.dtype)
        futures = [
            self.pool.submit("shard", self._shard, plan, mat, out, lo, hi, attempt)
            for lo, hi in bounds[:-1]
        ]
        lo, hi = bounds[-1]
        self._shard(plan, mat, out, lo, hi, attempt)
        for future in futures:
            future.result()  # propagate the first shard failure
        return out

    @staticmethod
    def _shard(
        plan: FramePlan,
        mat: np.ndarray,
        out: np.ndarray,
        lo: int,
        hi: int,
        attempt: int,
    ) -> None:
        out[lo:hi] = plan.apply_batch(mat[lo:hi], attempt)
