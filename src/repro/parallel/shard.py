"""Deterministic, crash-safe row-sharding of batched frame routing.

A compiled :class:`~repro.core.fastplan.FramePlan` routes a whole
``(batch, n)`` payload matrix with a couple of gathers; the batch axis
is embarrassingly parallel because every row is an independent frame.
:class:`ShardedBatchRouter` exploits exactly that: it splits the batch
into contiguous row ranges, routes each range on a
:class:`~repro.parallel.workers.WorkerPool` thread against *views* of
the input (zero copies — NumPy basic slicing), and writes each shard's
result into a disjoint slice of one preallocated output matrix.

Determinism is structural, not scheduled: shard boundaries are a pure
function of ``(batch, workers)`` (:func:`shard_bounds`), each shard
owns a disjoint output range, and the caller blocks until every shard
completes — so the merged matrix is bit-identical to the single-thread
result regardless of which worker finishes first.

Worker failures never lose a slice.  A shard task that dies (its
future carries an exception, or the executor was shut down under it)
is requeued on the pool exactly once; if the requeue also fails, the
submitting thread routes that shard inline — so ``route_batch`` always
returns complete, correct deliveries, and only a *deterministically*
poisoned plan (one that fails inline too) propagates an exception.  An
optional :class:`~repro.resilience.budget.DeadlineBudget` bounds every
future wait the same way: a shard that has not finished within the
budget is computed inline (the worker, if it ever runs, writes the
same bytes to the same disjoint slice, so the race is benign).
"""

from __future__ import annotations

import math
from concurrent.futures import TimeoutError as FuturesTimeoutError
from time import perf_counter_ns
from typing import List, Optional, Tuple

import numpy as np

from ..core.fastplan import FramePlan
from ..obs.events import ResilienceEvent
from .workers import WorkerPool

__all__ = ["ShardedBatchRouter", "shard_bounds"]


def shard_bounds(batch: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``batch`` rows into at most ``workers`` contiguous ranges.

    Pure and deterministic: ``min(workers, batch)`` shards, sizes
    differing by at most one row, larger shards first.  ``batch == 0``
    yields no shards.

    >>> shard_bounds(10, 4)
    [(0, 3), (3, 6), (6, 8), (8, 10)]
    """
    if batch < 0:
        raise ValueError(f"batch must be >= 0, got {batch}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    shards = min(workers, batch)
    if shards == 0:
        return []
    base, extra = divmod(batch, shards)
    bounds = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ShardedBatchRouter:
    """Route payload batches across a worker pool, merging deterministically.

    Args:
        pool: the :class:`~repro.parallel.workers.WorkerPool` shards run
            on.  The submitting thread always routes the *last* shard
            inline — it would otherwise idle while waiting, and on a
            single-core host that keeps the sharded path within noise
            of the sequential one.
        observer: optional :class:`~repro.obs.events.Observer`
            receiving ``shard_requeued`` / ``shard_inline``
            :class:`~repro.obs.events.ResilienceEvent` samples when a
            crashed or deadline-stranded shard is recovered.

    Attributes:
        requeues: crashed shard tasks *actually* resubmitted to the
            pool — a crash whose resubmission fails (executor shut down
            under it) counts only as an inline fallback, and the shard
            the submitting thread routes inline by design (the last
            one) never emits any resilience event.
        inline_fallbacks: shards ultimately routed on the submitting
            thread (requeue also failed, executor dead, or deadline
            spent waiting).
    """

    def __init__(self, pool: WorkerPool, observer: Optional[object] = None):
        self.pool = pool
        self.observer = observer
        self.requeues = 0
        self.inline_fallbacks = 0
        self.worker_target: Optional[int] = None

    def set_worker_target(self, target: Optional[int]) -> None:
        """Cap how many pool workers shard fan-out may use (the control
        plane's actuator hook).

        The pool's threads stay provisioned; the target only bounds the
        shard count :meth:`apply` computes, so scaling down cuts merge
        and wake-up overhead without touching thread lifecycle.  `None`
        restores the full pool.
        """
        if target is not None and target < 1:
            raise ValueError(f"worker_target must be >= 1, got {target}")
        self.worker_target = target

    @property
    def effective_workers(self) -> int:
        """Workers shard fan-out will actually use on the next batch."""
        if self.worker_target is None:
            return self.pool.workers
        return min(self.worker_target, self.pool.workers)

    def apply(
        self,
        plan: FramePlan,
        payload_matrix: np.ndarray,
        attempt: int = 0,
        budget=None,
    ) -> np.ndarray:
        """Equivalent of ``plan.apply_batch(payload_matrix, attempt)``.

        The matrix is sharded along axis 0; dtype semantics (object
        vs. numeric fill) are the plan's own, because every shard *is*
        an ``apply_batch`` call on a row-slice view.

        Args:
            plan: the compiled routing plan shared by every row.
            payload_matrix: the ``(batch, n)`` payload matrix.
            attempt: routing attempt number (fault sampling key).
            budget: optional
                :class:`~repro.resilience.budget.DeadlineBudget`; a
                shard still unfinished when it expires is computed
                inline instead of waited on, so the call returns
                complete deliveries without ever hanging.

        Returns:
            the ``(batch, n)`` delivered matrix, bit-identical to the
            sequential call.
        """
        mat = payload_matrix
        if not isinstance(mat, np.ndarray):
            mat = np.asarray(mat, dtype=object)
        bounds = shard_bounds(mat.shape[0], self.effective_workers)
        if len(bounds) <= 1:
            return plan.apply_batch(mat, attempt)
        out = np.empty(mat.shape, dtype=mat.dtype)
        tasks = [
            (lo, hi, self._submit(plan, mat, out, lo, hi, attempt))
            for lo, hi in bounds[:-1]
        ]
        lo, hi = bounds[-1]
        self._shard(plan, mat, out, lo, hi, attempt)
        for lo, hi, future in tasks:
            self._collect(plan, mat, out, lo, hi, attempt, future, budget)
        return out

    def _submit(self, plan, mat, out, lo, hi, attempt):
        """Dispatch one shard; ``None`` when the executor is dead
        (shut down concurrently) — the collector then routes inline."""
        try:
            return self.pool.submit(
                "shard", self._shard, plan, mat, out, lo, hi, attempt
            )
        except RuntimeError:
            return None

    def _collect(self, plan, mat, out, lo, hi, attempt, future, budget):
        """Await one shard, recovering crashes and deadline overruns.

        Recovery ladder: a dead submission or an expired wait routes
        inline; a crashed task is requeued exactly once, and a second
        crash routes inline — where a deterministic error (a poisoned
        plan) still propagates, by design: availability never trumps
        correctness.
        """
        requeued = False
        while True:
            if future is None:
                self._inline(plan, mat, out, lo, hi, attempt)
                return
            timeout = None
            if budget is not None and not budget.unlimited:
                timeout = budget.remaining_s
                if math.isinf(timeout):
                    timeout = None
            try:
                future.result(timeout=timeout)
                return
            except FuturesTimeoutError:
                # Deadline spent waiting.  Compute the slice inline:
                # the stranded worker, if it ever runs, writes the
                # identical bytes to the same disjoint range.
                self._inline(plan, mat, out, lo, hi, attempt)
                return
            except Exception:
                if requeued:
                    self._inline(plan, mat, out, lo, hi, attempt)
                    return
                requeued = True
                future = self._submit(plan, mat, out, lo, hi, attempt)
                if future is None:
                    # The executor died between the crash and the
                    # resubmission: nothing was requeued, so no
                    # ``shard_requeued`` event — the next loop pass
                    # routes inline (emitting ``shard_inline`` only).
                    continue
                self.requeues += 1
                self._emit("shard_requeued", hi - lo)

    def _inline(self, plan, mat, out, lo, hi, attempt) -> None:
        """Route one shard on the submitting thread (the last resort —
        and the guarantee that a batch always completes)."""
        self.inline_fallbacks += 1
        self._emit("shard_inline", hi - lo)
        self._shard(plan, mat, out, lo, hi, attempt)

    def _emit(self, action: str, frames: int) -> None:
        obs = self.observer
        if obs is None or not obs.enabled:
            return
        obs.on_resilience(
            ResilienceEvent(action=action, frames=frames, t_ns=perf_counter_ns())
        )

    @staticmethod
    def _shard(
        plan: FramePlan,
        mat: np.ndarray,
        out: np.ndarray,
        lo: int,
        hi: int,
        attempt: int,
    ) -> None:
        out[lo:hi] = plan.apply_batch(mat[lo:hi], attempt)
