"""Compile-ahead pipeline: overlap plan compilation with routing.

Compiling a :class:`~repro.core.fastplan.FramePlan` costs several
milliseconds at large ``n`` — roughly 7.5x the batched routing it then
performs — so a cold assignment stalls the submitting thread for the
length of a compile.  :class:`CompileAheadPipeline` hides that stall:
callers that can see upcoming work (the fabric's run-loop lookahead,
the queueing simulator's next-slot backlog) :meth:`prefetch` the
assignments about to be routed, and the compile happens on a
:class:`~repro.parallel.workers.WorkerPool` thread while the submitting
thread routes already-warm frames.  By the time the cold frame is up,
its plan is cached — or at worst in flight, in which case the routing
thread's own lookup *coalesces* onto the prefetch instead of compiling
(the :class:`~repro.parallel.plan_cache.ConcurrentPlanCache`
single-flight guarantee makes the race benign in both directions).

The queue is bounded by ``depth``: a prefetch beyond it is *dropped*,
never queued — lookahead is an optimisation, and an unbounded compile
backlog would steal workers from routing shards.  Drops are observable
(``action="drop"`` :class:`~repro.obs.events.ParallelEvent`), and the
pending count is exported as ``repro_parallel_compile_queue_depth``.
"""

from __future__ import annotations

import threading
from concurrent.futures import wait
from time import perf_counter_ns
from typing import Callable, Optional, Set

from ..core.fastplan import FramePlan, compile_frame_plan
from ..core.multicast import MulticastAssignment
from ..obs.events import ParallelEvent
from .plan_cache import ConcurrentPlanCache
from .workers import WorkerPool

__all__ = ["CompileAheadPipeline"]


class CompileAheadPipeline:
    """Bounded prefetch queue warming a plan cache on pool threads.

    Args:
        cache: the shared plan cache prefetches compile into — a
            :class:`~repro.parallel.plan_cache.ConcurrentPlanCache`
            (or anything with its ``get`` / ``contains`` surface).
        pool: worker pool compiles run on (shared with shard routing).
        depth: maximum prefetches pending at once (>= 1); further
            prefetches are dropped until one completes.
        compile_fn: plan compiler, passed through to ``cache.get``.
        extra_key: cache-key suffix, e.g. an active fault plan's
            ``fingerprint()`` — must match what the router will use at
            lookup time or the prefetch warms the wrong entry.
        observer: optional observer for ``enqueue`` / ``drop`` events.

    The pipeline registers its pending count as the pool's
    ``depth_fn`` so every worker event carries the current backlog.
    """

    def __init__(
        self,
        cache: ConcurrentPlanCache,
        pool: WorkerPool,
        depth: int = 2,
        compile_fn: Callable[[MulticastAssignment], FramePlan] = compile_frame_plan,
        extra_key: str = "",
        observer: Optional[object] = None,
    ):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.cache = cache
        self.pool = pool
        self.depth = depth
        self.compile_fn = compile_fn
        self.extra_key = extra_key
        self.observer = observer
        self._lock = threading.Lock()
        self._pending = 0
        self._futures: Set[object] = set()
        self.prefetches = 0
        self.drops = 0
        if pool.depth_fn is None:
            pool.depth_fn = self.queue_depth_fn

    # -- introspection ---------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Prefetches currently pending (queued or compiling)."""
        with self._lock:
            return self._pending

    def queue_depth_fn(self) -> int:
        """Lock-free depth read for hot-path event payloads."""
        return self._pending

    def set_depth(self, depth: int) -> None:
        """Resize the prefetch bound mid-flight (the control plane's
        actuator hook).

        Shrinking never cancels in-flight compiles — it only tightens
        the admission test future :meth:`prefetch` calls run against.
        """
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        with self._lock:
            self.depth = depth

    def _emit(self, action: str) -> None:
        obs = self.observer
        if obs is None or not obs.enabled:
            return
        obs.on_parallel(
            ParallelEvent(
                action=action,
                kind="compile",
                workers=self.pool.workers,
                busy=self.pool.busy,
                queue_depth=self._pending,
                t_ns=perf_counter_ns(),
            )
        )

    # -- the pipeline ----------------------------------------------------
    def prefetch(self, assignment: MulticastAssignment) -> bool:
        """Schedule a background compile of ``assignment``'s plan.

        Returns:
            True when a compile task was enqueued; False when the plan
            is already cached / in flight (nothing to do) or the queue
            is full (dropped, counted, observable).
        """
        if self.cache.contains(assignment, self.extra_key):
            return False
        with self._lock:
            if self._pending >= self.depth:
                self.drops += 1
                drop = True
            else:
                self._pending += 1
                self.prefetches += 1
                drop = False
        if drop:
            self._emit("drop")
            return False
        self._emit("enqueue")
        future = self.pool.submit("compile", self._compile, assignment)
        with self._lock:
            self._futures.add(future)
        future.add_done_callback(self._discard)
        return True

    def _discard(self, future) -> None:
        with self._lock:
            self._futures.discard(future)

    def _compile(self, assignment: MulticastAssignment) -> None:
        try:
            self.cache.get(assignment, self.compile_fn, self.extra_key)
        finally:
            with self._lock:
                self._pending -= 1

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every scheduled prefetch has finished.

        Prefetch failures are swallowed here — a failed *prefetch*
        must never sink the run; the routing thread's own ``get`` will
        re-raise the compile error if the assignment is truly invalid.
        """
        with self._lock:
            futures = list(self._futures)
            self._futures.clear()
        if futures:
            wait(futures, timeout=timeout)
