"""Multiprocess shard routing: shared-memory payloads, pickle-safe plans.

The threaded :class:`~repro.parallel.shard.ShardedBatchRouter` scales
exactly as far as the GIL lets it: numeric gathers (``np.take``)
release the GIL and overlap, but object-dtype payloads — and every
CPython-bound bookkeeping stage around them — serialise on one core.
This module is the past-the-GIL backend behind
``NetworkConfig(executor="process")``:

* **Payload transport.**  Numeric matrices are placed in
  ``multiprocessing.shared_memory`` — workers route *views* of the
  shared input into disjoint row ranges of a shared output, so the
  payload bytes cross the process boundary zero-copy, exactly like the
  threaded path's NumPy views.  Object-dtype matrices cannot live in
  flat shared memory, so their shards travel as pickled chunks; the
  pickling is the price of finally running ``mat[:, gather]`` on more
  than one core.
* **Plan transport.**  Compiled :class:`~repro.core.fastplan.FramePlan`
  objects carry fault objects and per-BSN statistics that have no
  business crossing a pickle boundary per shard.  A
  :class:`PlanEnvelope` ships only what routing needs — a content
  fingerprint, ``delivery_src`` and the attempt's pre-sampled casualty
  set — and workers memoise the materialised plan in a process-local
  LRU.  Once every worker has plausibly seen a plan, the parent ships
  *slim* envelopes (fingerprint only); a worker whose cache misses
  answers with a sentinel and the parent re-ships the arrays
  (recompile-on-miss, never a wrong answer).
* **Resilience.**  The crash contract is the threaded router's,
  verbatim: a worker process that dies mid-shard is requeued exactly
  once (respawning the broken pool), and a second failure routes the
  shard inline on the submitting thread — so batches always complete,
  bit-identical to the sequential gather.  The same
  ``shard_requeued`` / ``shard_inline``
  :class:`~repro.obs.events.ResilienceEvent` samples are emitted, plus
  :class:`~repro.obs.events.ProcessEvent` samples
  (``repro_parallel_proc_*`` metric families) for the process-specific
  machinery: task lifecycle, envelope shipments, shared-memory bytes
  and pool respawns.

Determinism is structural, exactly as in the threaded router: shard
bounds are a pure function of ``(batch, workers)``, every shard owns a
disjoint output range, and a worker routes its rows through the *same*
``FramePlan.apply_batch`` code path the sequential call uses — the
envelope pre-folds the attempt's casualties into ``lost_outputs``, so
``apply_batch(chunk, 0)`` in the worker computes the identical bytes.
See ``docs/executors.md`` for the full decision table and lifecycle.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import threading
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import shared_memory
from time import perf_counter_ns
from typing import Callable, Optional, Tuple

import numpy as np

from ..core.fastplan import FramePlan
from ..obs.events import ProcessEvent, ResilienceEvent
from .shard import shard_bounds

__all__ = ["PlanEnvelope", "ProcessShardRouter", "ProcessWorkerPool"]


@dataclass(frozen=True)
class PlanEnvelope:
    """A pickle-safe routing plan, ready to cross a process boundary.

    A full envelope carries the plan's ``delivery_src`` gather and the
    routing attempt's pre-sampled casualty set (``dropped``) next to a
    content fingerprint (``key``); a *slim* envelope carries the
    fingerprint alone and relies on the worker's local cache.  Fault
    objects, BSN statistics and observers never travel — workers need
    none of them to route payload rows.

    Attributes:
        key: content fingerprint — SHA-1 of the ``delivery_src`` bytes
            plus the sorted casualty set, so the same assignment routed
            on a different attempt (different flaky drops) gets a
            different key.
        n: network size.
        delivery_src: the gather array, or ``None`` in a slim envelope.
        dropped: sorted casualty outputs, or ``None`` in a slim
            envelope.
    """

    key: str
    n: int
    delivery_src: Optional[np.ndarray] = None
    dropped: Optional[Tuple[int, ...]] = None

    @property
    def slim(self) -> bool:
        """True when only the fingerprint travels."""
        return self.delivery_src is None

    @classmethod
    def from_plan(cls, plan: FramePlan, attempt: int = 0) -> "PlanEnvelope":
        """Wrap a compiled plan for one routing attempt.

        The attempt's flaky-link drops are sampled *here*, in the
        parent — the whole batch shares one attempt, so the casualty
        set is a constant of the envelope and workers never see the
        fault objects (whose ``drop_mask`` closures are exactly the
        state a pickle boundary should not carry).
        """
        dropped = tuple(sorted(plan.casualties(attempt)))
        digest = hashlib.sha1(
            np.ascontiguousarray(plan.delivery_src).tobytes()
        ).hexdigest()
        key = f"{digest}@{','.join(map(str, dropped))}" if dropped else digest
        return cls(
            key=key,
            n=plan.n,
            delivery_src=np.asarray(plan.delivery_src, dtype=np.int64),
            dropped=dropped,
        )

    def thin(self) -> "PlanEnvelope":
        """The slim (fingerprint-only) form of this envelope."""
        return PlanEnvelope(key=self.key, n=self.n)

    def materialise(self) -> FramePlan:
        """Rebuild a routable :class:`FramePlan` from a full envelope.

        The casualties are already folded into ``lost_outputs``, so
        ``apply_batch(chunk, 0)`` on the materialised plan computes
        bytes identical to ``apply_batch(chunk, attempt)`` on the
        original — same code path, same fill discipline.
        """
        if self.slim:
            raise ValueError("cannot materialise a slim PlanEnvelope")
        return FramePlan(
            n=self.n,
            delivery_src=np.asarray(self.delivery_src, dtype=np.int64),
            lost_outputs=tuple(self.dropped),
        )


# ---------------------------------------------------------------------------
# Worker-process side.  Everything below the parent ships to must be
# module-level (picklable by reference) and free of parent state.

_PLAN_CACHE_CAP = 64
_MISS = "__plan_envelope_miss__"
_OK = "__shard_ok__"

# Process-local plan cache: envelope key -> materialised FramePlan.
_worker_plans: "OrderedDict[str, FramePlan]" = OrderedDict()

# Test seam: when set (inherited over fork, or installed by an
# initializer), workers call it with (lo, hi) before routing — tests
# use it to crash or poison a specific shard task deterministically.
_CRASH_HOOK: Optional[Callable[[int, int], None]] = None

# Whether this process shares the parent's resource-tracker process.
# Fork-started workers inherit the parent's tracker (and this flag,
# set True before forking): attaching a segment is then an idempotent
# re-registration and must NOT be unregistered, or the parent's own
# registration disappears with it.  Spawn-started workers re-import
# this module (flag stays False) and run their own tracker, which
# would unlink the parent's segment on worker exit — there the attach
# must be unregistered.
_TRACKER_SHARED = False


def _resolve_plan(envelope: PlanEnvelope) -> Optional[FramePlan]:
    """The worker's plan lookup: local cache, else materialise, else miss."""
    plan = _worker_plans.get(envelope.key)
    if plan is not None:
        _worker_plans.move_to_end(envelope.key)
        return plan
    if envelope.slim:
        return None
    plan = envelope.materialise()
    _worker_plans[envelope.key] = plan
    while len(_worker_plans) > _PLAN_CACHE_CAP:
        _worker_plans.popitem(last=False)
    return plan


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without adopting its lifetime.

    ``SharedMemory(name=...)`` registers the segment with this
    process's resource tracker; when that tracker is the worker's own
    (spawn start method) it would unlink the *parent's* segment on
    worker exit, so the attach is unregistered — ownership stays where
    it belongs (the parent creates, the parent unlinks).  A fork-shared
    tracker (see ``_TRACKER_SHARED``) needs no correction.
    """
    shm = shared_memory.SharedMemory(name=name)
    if not _TRACKER_SHARED:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm


def _route_shard_shm(
    envelope: PlanEnvelope,
    in_name: str,
    out_name: str,
    shape: Tuple[int, int],
    dtype_str: str,
    lo: int,
    hi: int,
):
    """Route rows ``[lo, hi)`` of a shared-memory numeric matrix.

    Returns ``_OK`` (the result is already in the shared output) or
    ``_MISS`` when a slim envelope found no cached plan.
    """
    if _CRASH_HOOK is not None:
        _CRASH_HOOK(lo, hi)
    plan = _resolve_plan(envelope)
    if plan is None:
        return _MISS
    in_shm = _attach(in_name)
    out_shm = _attach(out_name)
    try:
        dtype = np.dtype(dtype_str)
        mat = np.ndarray(shape, dtype=dtype, buffer=in_shm.buf)
        out = np.ndarray(shape, dtype=dtype, buffer=out_shm.buf)
        out[lo:hi] = plan.apply_batch(mat[lo:hi], 0)
        del mat, out
    finally:
        for shm in (in_shm, out_shm):
            try:
                shm.close()
            except BufferError:  # a view outlived an exception path
                pass
    return _OK


def _route_shard_pickled(envelope: PlanEnvelope, chunk, lo: int, hi: int):
    """Route one pickled (object-dtype) chunk; returns the routed chunk
    or ``_MISS`` when a slim envelope found no cached plan."""
    if _CRASH_HOOK is not None:
        _CRASH_HOOK(lo, hi)
    plan = _resolve_plan(envelope)
    if plan is None:
        return _MISS
    return plan.apply_batch(chunk, 0)


# ---------------------------------------------------------------------------
# Parent side.


class ProcessWorkerPool:
    """A lazily-started, instrumented process pool of fixed size.

    The process twin of :class:`~repro.parallel.workers.WorkerPool`:
    same lazy start, same idempotent/restartable :meth:`shutdown`, same
    busy accounting — but emitting
    :class:`~repro.obs.events.ProcessEvent` samples (observers stay in
    the parent; nothing observational crosses the pickle boundary).
    The ``fork`` start method is preferred where available (workers
    inherit the imported modules instead of re-importing them), with
    the platform default as fallback; worker entry points are
    module-level either way.

    Attributes:
        workers: configured pool size.
        respawns: times the pool was recreated after a worker process
            died (a :class:`BrokenProcessPool` poisons the whole
            executor, so recovery is respawn-and-resubmit).
    """

    def __init__(self, workers: int, observer: Optional[object] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.observer = observer
        self.respawns = 0
        self._lock = threading.Lock()
        self._busy = 0
        self._executor: Optional[ProcessPoolExecutor] = None

    @property
    def busy(self) -> int:
        """Shard tasks currently in flight on the pool."""
        with self._lock:
            return self._busy

    @staticmethod
    def _context():
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                ctx = self._context()
                if ctx.get_start_method() == "fork":
                    # Start the tracker before forking so every worker
                    # inherits it (and the flag telling _attach so).
                    from multiprocessing import resource_tracker

                    resource_tracker.ensure_running()
                    global _TRACKER_SHARED
                    _TRACKER_SHARED = True
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=ctx
                )
            return self._executor

    def submit(self, kind: str, fn: Callable, *args) -> Future:
        """Dispatch ``fn(*args)`` to a worker process.

        Raises whatever the executor raises — a dead executor raises
        :class:`RuntimeError`, a crashed pool
        :class:`BrokenProcessPool`; the router turns those into inline
        fallback and respawn-and-resubmit respectively.
        """
        future = self._ensure_executor().submit(fn, *args)
        with self._lock:
            self._busy += 1
            busy = self._busy
        self._emit("start", kind, busy)
        future.add_done_callback(self._make_done_callback(kind))
        return future

    def _make_done_callback(self, kind: str):
        def _done(_future) -> None:
            with self._lock:
                self._busy -= 1
                busy = self._busy
            self._emit("done", kind, busy)

        return _done

    def respawn(self) -> None:
        """Replace a broken executor with a fresh one (crash recovery)."""
        with self._lock:
            executor, self._executor = self._executor, None
            self.respawns += 1
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        self._emit("respawn", "", self.busy)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool without leaking processes.  Idempotent; a
        later :meth:`submit` restarts it (mirroring ``WorkerPool``)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    def _emit(self, action: str, kind: str, busy: int, nbytes: int = 0) -> None:
        obs = self.observer
        if obs is None or not obs.enabled:
            return
        obs.on_process(
            ProcessEvent(
                action=action,
                kind=kind,
                workers=self.workers,
                busy=busy,
                bytes=nbytes,
                t_ns=perf_counter_ns(),
            )
        )

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class ProcessShardRouter:
    """Route payload batches across worker *processes*, merging
    deterministically — the ``executor="process"`` twin of
    :class:`~repro.parallel.shard.ShardedBatchRouter`, same ``apply``
    signature, same control-plane actuator surface
    (:meth:`set_worker_target` / :attr:`effective_workers` /
    ``pool.workers``), same crash contract.

    Args:
        pool: the :class:`ProcessWorkerPool` shards run on.  The
            submitting thread always routes the last shard inline.
        observer: optional :class:`~repro.obs.events.Observer`
            receiving the shared ``shard_requeued`` / ``shard_inline``
            :class:`~repro.obs.events.ResilienceEvent` samples plus
            process-specific :class:`~repro.obs.events.ProcessEvent`
            samples (envelopes, shared-memory bytes).

    Attributes:
        requeues: crashed shard tasks actually resubmitted to the pool
            (after respawning it when the crash broke the executor).
        inline_fallbacks: shards ultimately routed on the submitting
            thread (requeue also failed, executor dead, or deadline
            spent waiting).
    """

    # Full-envelope shipments remembered per plan key; beyond this many
    # distinct keys the oldest bookkeeping is dropped (a re-ship then
    # costs one redundant full envelope, never a wrong answer).
    _SENDS_CAP = 256

    def __init__(self, pool: ProcessWorkerPool, observer: Optional[object] = None):
        self.pool = pool
        self.observer = observer
        self.requeues = 0
        self.inline_fallbacks = 0
        self.worker_target: Optional[int] = None
        self._envelope_sends: "OrderedDict[str, int]" = OrderedDict()

    def set_worker_target(self, target: Optional[int]) -> None:
        """Cap how many pool workers shard fan-out may use (the control
        plane's actuator hook — identical semantics to the threaded
        router: processes stay provisioned, only fan-out shrinks)."""
        if target is not None and target < 1:
            raise ValueError(f"worker_target must be >= 1, got {target}")
        self.worker_target = target

    @property
    def effective_workers(self) -> int:
        """Workers shard fan-out will actually use on the next batch."""
        if self.worker_target is None:
            return self.pool.workers
        return min(self.worker_target, self.pool.workers)

    def close(self) -> None:
        """Tear the process pool down without leaking processes."""
        self.pool.shutdown()

    # -- the batch entry point -----------------------------------------
    def apply(
        self,
        plan: FramePlan,
        payload_matrix: np.ndarray,
        attempt: int = 0,
        budget=None,
    ) -> np.ndarray:
        """Equivalent of ``plan.apply_batch(payload_matrix, attempt)``.

        Numeric matrices shard through shared memory (zero-copy views);
        object matrices shard as pickled chunks.  Either way the merged
        result is bit-identical to the sequential call — workers run
        the same ``apply_batch`` against a plan whose casualties were
        pre-sampled for this attempt.
        """
        mat = payload_matrix
        if not isinstance(mat, np.ndarray):
            mat = np.asarray(mat, dtype=object)
        bounds = shard_bounds(mat.shape[0], self.effective_workers)
        if len(bounds) <= 1:
            return plan.apply_batch(mat, attempt)
        envelope = PlanEnvelope.from_plan(plan, attempt)
        if mat.dtype == object:
            return self._apply_pickled(plan, envelope, mat, attempt, bounds, budget)
        return self._apply_shm(plan, envelope, mat, attempt, bounds, budget)

    # -- shared-memory numeric path ------------------------------------
    def _apply_shm(self, plan, envelope, mat, attempt, bounds, budget):
        mat = np.ascontiguousarray(mat)
        in_shm = shared_memory.SharedMemory(create=True, size=mat.nbytes)
        out_shm = shared_memory.SharedMemory(create=True, size=mat.nbytes)
        try:
            in_view = np.ndarray(mat.shape, dtype=mat.dtype, buffer=in_shm.buf)
            in_view[:] = mat
            out_view = np.ndarray(mat.shape, dtype=mat.dtype, buffer=out_shm.buf)
            self._emit_proc("shm", "shard_shm", nbytes=2 * mat.nbytes)
            names = (in_shm.name, out_shm.name, mat.shape, mat.dtype.str)

            def submit(lo, hi, force_full=False):
                env = self._ship(envelope, force_full)
                return self._dispatch(
                    "shard_shm", _route_shard_shm, env, *names, lo, hi
                )

            tasks = [(lo, hi, submit(lo, hi)) for lo, hi in bounds[:-1]]
            last_lo, last_hi = bounds[-1]
            out_view[last_lo:last_hi] = plan.apply_batch(
                mat[last_lo:last_hi], attempt
            )
            for lo, hi, future in tasks:
                self._collect(
                    future,
                    redo=lambda lo=lo, hi=hi: submit(lo, hi, force_full=True),
                    inline=lambda lo=lo, hi=hi: out_view.__setitem__(
                        slice(lo, hi), plan.apply_batch(mat[lo:hi], attempt)
                    ),
                    on_result=None,
                    budget=budget,
                    frames=hi - lo,
                )
            result = np.array(out_view, copy=True)
            del in_view, out_view
        finally:
            for shm in (in_shm, out_shm):
                try:
                    shm.close()
                except BufferError:  # a view survived an exception path
                    pass
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
        return result

    # -- pickled object-dtype path -------------------------------------
    def _apply_pickled(self, plan, envelope, mat, attempt, bounds, budget):
        out = np.empty(mat.shape, dtype=object)

        def submit(lo, hi, force_full=False):
            env = self._ship(envelope, force_full)
            return self._dispatch(
                "shard_pickled", _route_shard_pickled, env, mat[lo:hi], lo, hi
            )

        tasks = [(lo, hi, submit(lo, hi)) for lo, hi in bounds[:-1]]
        last_lo, last_hi = bounds[-1]
        out[last_lo:last_hi] = plan.apply_batch(mat[last_lo:last_hi], attempt)
        for lo, hi, future in tasks:
            self._collect(
                future,
                redo=lambda lo=lo, hi=hi: submit(lo, hi, force_full=True),
                inline=lambda lo=lo, hi=hi: out.__setitem__(
                    slice(lo, hi), plan.apply_batch(mat[lo:hi], attempt)
                ),
                on_result=lambda chunk, lo=lo, hi=hi: out.__setitem__(
                    slice(lo, hi), chunk
                ),
                budget=budget,
                frames=hi - lo,
            )
        return out

    # -- dispatch / recovery machinery ---------------------------------
    def _ship(self, envelope: PlanEnvelope, force_full: bool) -> PlanEnvelope:
        """Decide full vs slim shipment for this task's plan.

        Full envelopes go out until every worker has plausibly cached
        the plan (one shipment per pool worker); after that only the
        fingerprint travels.  A respawned pool starts cold, so the
        bookkeeping resets with it (see :meth:`_dispatch`).
        """
        sends = self._envelope_sends.get(envelope.key, 0)
        if not force_full and sends >= self.pool.workers:
            self._emit_proc("envelope", "slim")
            return envelope.thin()
        self._envelope_sends[envelope.key] = sends + 1
        self._envelope_sends.move_to_end(envelope.key)
        while len(self._envelope_sends) > self._SENDS_CAP:
            self._envelope_sends.popitem(last=False)
        self._emit_proc("envelope", "full")
        return envelope

    def _dispatch(self, kind, fn, *args):
        """Submit one task; respawn-and-retry a broken pool once;
        ``None`` when the executor is dead (shut down) — the collector
        then routes inline."""
        try:
            return self.pool.submit(kind, fn, *args)
        except BrokenProcessPool:
            self.pool.respawn()
            self._envelope_sends.clear()
            try:
                return self.pool.submit(kind, fn, *args)
            except RuntimeError:
                return None
        except RuntimeError:
            return None

    def _collect(self, future, redo, inline, on_result, budget, frames):
        """Await one shard, recovering crashes, envelope misses and
        deadline overruns.

        Recovery ladder (the threaded router's, plus the envelope
        protocol): a dead submission or an expired wait routes inline;
        a slim-envelope cache miss re-ships the arrays (not a failure,
        so not a requeue); a crashed task is requeued exactly once —
        respawning the pool when the crash broke it — and a second
        crash routes inline, where a deterministic error still
        propagates (availability never trumps correctness).  As in the
        threaded router, a requeue is only counted/emitted when the
        resubmission actually lands on the pool.
        """
        requeued = False
        while True:
            if future is None:
                self._inline(inline, frames)
                return
            timeout = None
            if budget is not None and not budget.unlimited:
                timeout = budget.remaining_s
                if math.isinf(timeout):
                    timeout = None
            try:
                result = future.result(timeout=timeout)
            except FuturesTimeoutError:
                self._inline(inline, frames)
                return
            except Exception:
                if requeued:
                    self._inline(inline, frames)
                    return
                requeued = True
                future = redo()
                if future is None:
                    continue
                self.requeues += 1
                self._emit_res("shard_requeued", frames)
                continue
            if isinstance(result, str) and result == _MISS:
                self._emit_proc("envelope", "miss")
                future = redo()
                continue
            if on_result is not None:
                on_result(result)
            return

    def _inline(self, inline, frames: int) -> None:
        self.inline_fallbacks += 1
        self._emit_res("shard_inline", frames)
        inline()

    def _emit_res(self, action: str, frames: int) -> None:
        obs = self.observer
        if obs is None or not obs.enabled:
            return
        obs.on_resilience(
            ResilienceEvent(action=action, frames=frames, t_ns=perf_counter_ns())
        )

    def _emit_proc(self, action: str, kind: str, nbytes: int = 0) -> None:
        obs = self.observer
        if obs is None or not obs.enabled:
            return
        obs.on_process(
            ProcessEvent(
                action=action,
                kind=kind,
                workers=self.pool.workers,
                busy=self.pool.busy,
                bytes=nbytes,
                t_ns=perf_counter_ns(),
            )
        )
