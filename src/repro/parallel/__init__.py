"""Multi-worker throughput engine for the fast routing path.

The paper's BRSMN is a *parallel* fabric — every recursion level routes
all of its blocks simultaneously — and the compiled fast engine
(:mod:`repro.core.fastplan`) already turned one frame into a handful of
NumPy gathers.  What remained serial was the *service* around it: one
thread compiled plans, routed batches and fed the fabric.  This
subpackage scales that service across a worker pool:

* :class:`~repro.parallel.plan_cache.ConcurrentPlanCache` — a
  lock-striped LRU plan cache with **single-flight compile
  deduplication**: concurrent misses on the same assignment
  fingerprint compile exactly once, every other thread waits on the
  in-flight future and is counted as *coalesced*;
* :class:`~repro.parallel.workers.WorkerPool` — a bounded executor
  with busy-worker accounting, emitting
  :class:`~repro.obs.events.ParallelEvent` samples so worker
  utilisation is observable like everything else;
* :class:`~repro.parallel.shard.ShardedBatchRouter` — splits a
  ``(batch, n)`` payload matrix into contiguous zero-copy row shards,
  routes each shard on the pool, and merges the results
  deterministically (shard boundaries depend only on the batch shape
  and worker count, never on timing);
* :class:`~repro.parallel.pipeline.CompileAheadPipeline` — overlaps
  :class:`~repro.core.fastplan.FramePlan` compilation with routing of
  already-compiled frames: a bounded prefetch queue fed by
  :meth:`~repro.core.fabric.MulticastFabric.run` lookahead (and the
  queueing simulator's next-slot packing) warms the cache on pool
  threads while the submitting thread routes;
* :class:`~repro.parallel.process.ProcessShardRouter` /
  :class:`~repro.parallel.process.ProcessWorkerPool` — the
  ``executor="process"`` backend: the same deterministic sharding
  across worker *processes*, numeric payloads in
  ``multiprocessing.shared_memory``, compiled plans shipped as
  pickle-safe :class:`~repro.parallel.process.PlanEnvelope` objects
  with a worker-local cache — the path past the GIL for object-dtype
  batches and CPython-bound stages.

Everything is configured through
:class:`~repro.core.config.NetworkConfig` — ``workers=`` sizes the
pool, ``executor=`` picks threads or processes, ``compile_ahead=``
bounds the prefetch queue — and threaded through
:class:`~repro.core.brsmn.BRSMN`,
:class:`~repro.core.fabric.MulticastFabric`,
:class:`~repro.core.arrivals.QueueingSimulator` and the
``repro stats --workers N [--executor process]`` CLI.  See
``docs/performance.md`` for tuning guidance (including why the NumPy
gather kernels scale across *threads* despite the GIL) and
``docs/executors.md`` for the thread-vs-process decision table.
"""

from .plan_cache import ConcurrentPlanCache
from .pipeline import CompileAheadPipeline
from .process import PlanEnvelope, ProcessShardRouter, ProcessWorkerPool
from .shard import ShardedBatchRouter, shard_bounds
from .workers import WorkerPool

__all__ = [
    "CompileAheadPipeline",
    "ConcurrentPlanCache",
    "PlanEnvelope",
    "ProcessShardRouter",
    "ProcessWorkerPool",
    "ShardedBatchRouter",
    "WorkerPool",
    "shard_bounds",
]
