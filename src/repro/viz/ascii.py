"""ASCII rendering of assignments, frames and traces.

The paper explains the design through worked figures (Fig. 2's 8x8
routing, Fig. 4b's scatter-then-quasisort tag flow).  These renderers
regenerate such views as plain text: the figure benches print them, and
debugging a misroute is vastly easier with the stage-by-stage tag
picture in front of you.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.multicast import MulticastAssignment
from ..core.tags import TAG_SYMBOLS
from ..rbn.cells import Cell
from ..rbn.switches import SwitchSetting
from ..rbn.trace import StageRecord, Trace

__all__ = [
    "format_cells",
    "format_settings",
    "render_stage",
    "render_trace",
    "render_assignment",
    "render_delivery",
    "split_rbn_passes",
    "render_pass_grid",
]

_SETTING_SYMBOLS = {
    SwitchSetting.PARALLEL: "=",
    SwitchSetting.CROSS: "x",
    SwitchSetting.UPPER_BCAST: "^",
    SwitchSetting.LOWER_BCAST: "v",
}


def format_cells(cells: Sequence[Cell]) -> str:
    """One-character-per-link tag string (``0 1 a e``; ``z/w`` dummies)."""
    return "".join(TAG_SYMBOLS[c.tag] for c in cells)


def format_settings(settings: Sequence[SwitchSetting]) -> str:
    """One-character-per-switch settings string (``= x ^ v``)."""
    return "".join(_SETTING_SYMBOLS[s] for s in settings)


def render_stage(record: StageRecord) -> str:
    """Render one merging-stage record as a single line."""
    return (
        f"merge n={record.size:<4d} @{record.offset:<4d} "
        f"in={format_cells(record.inputs)} "
        f"set={format_settings(record.settings)} "
        f"out={format_cells(record.outputs)}"
    )


def render_trace(trace: Trace, max_stages: Optional[int] = None) -> str:
    """Render a whole trace, one line per stage, in application order.

    Args:
        trace: the recorded trace.
        max_stages: truncate long traces (``None`` = render all).
    """
    lines: List[str] = [f"trace: {trace.label or '(unlabelled)'}"]
    stages = trace.stages if max_stages is None else trace.stages[:max_stages]
    for rec in stages:
        lines.append("  " + render_stage(rec))
    if max_stages is not None and len(trace.stages) > max_stages:
        lines.append(f"  ... ({len(trace.stages) - max_stages} more stages)")
    return "\n".join(lines)


def render_assignment(assignment: MulticastAssignment) -> str:
    """Render an assignment as an input -> destinations table."""
    m = assignment.n.bit_length() - 1
    lines = [f"multicast assignment, n={assignment.n}:"]
    for i, dests in enumerate(assignment.destinations):
        if dests:
            bits = ", ".join(format(d, f"0{m}b") for d in sorted(dests))
            lines.append(
                f"  input {i}: -> {sorted(dests)}  (binary: {bits})"
            )
    if not assignment.active_inputs:
        lines.append("  (empty)")
    return "\n".join(lines)


def split_rbn_passes(trace: Trace, width: int) -> List[List[StageRecord]]:
    """Split a trace into full-width RBN passes.

    A pass over ``width`` terminals starting at offset 0 ends with its
    outermost (size = ``width``) merge; records after it belong to the
    next pass.  Works for traces of repeated full-width passes (e.g. a
    BSN: scatter pass then quasisort pass); sub-width records (deeper
    BRSMN levels) terminate the splitting.

    Returns:
        One list of records per complete pass, in order.
    """
    passes: List[List[StageRecord]] = []
    current: List[StageRecord] = []
    for rec in trace.stages:
        if rec.offset >= width:
            break
        current.append(rec)
        if rec.size == width and rec.offset == 0:
            passes.append(current)
            current = []
    return passes


def render_pass_grid(records: Sequence[StageRecord], width: int) -> str:
    """Render one full-width RBN pass as a terminals-by-stages grid.

    Each row is one terminal; columns show the tag on that terminal's
    link at the pass inputs and after each physical stage — the Fig. 4b
    view of how tags move through an RBN.

    Args:
        records: the records of exactly one pass (see
            :func:`split_rbn_passes`).
        width: pass width ``n`` (a power of two).
    """
    m = width.bit_length() - 1
    # columns[k][t]: tag symbol at terminal t after stage k (0 = inputs)
    columns: List[List[str]] = [["?"] * width for _ in range(m + 1)]
    by_stage = {}
    for rec in records:
        k = rec.size.bit_length() - 1
        by_stage.setdefault(k, []).append(rec)
    if sorted(by_stage) != list(range(1, m + 1)):
        raise ValueError(
            f"records do not form one complete pass of width {width}"
        )
    for rec in by_stage[1]:
        for pos, cell in enumerate(rec.inputs):
            columns[0][rec.offset + pos] = TAG_SYMBOLS[cell.tag]
    for k in range(1, m + 1):
        for rec in by_stage[k]:
            for pos, cell in enumerate(rec.outputs):
                columns[k][rec.offset + pos] = TAG_SYMBOLS[cell.tag]
    header = "terminal  in  " + "  ".join(f"s{k}" for k in range(1, m + 1))
    lines = [header, "-" * len(header)]
    for t in range(width):
        lines.append(
            f"{t:8d}  {columns[0][t]:2s}  "
            + "  ".join(f"{columns[k][t]:2s}" for k in range(1, m + 1))
        )
    return "\n".join(lines)


def render_delivery(outputs: Sequence) -> str:
    """Render a delivered frame as an output <- source table."""
    lines = ["deliveries:"]
    for o, msg in enumerate(outputs):
        if msg is not None:
            lines.append(f"  output {o} <- input {msg.source} ({msg.payload!r})")
    if len(lines) == 1:
        lines.append("  (none)")
    return "\n".join(lines)
