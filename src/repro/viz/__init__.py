"""Text rendering of networks and routing frames (figure regeneration)."""

from .ascii import (
    format_cells,
    format_settings,
    render_assignment,
    render_delivery,
    render_pass_grid,
    render_stage,
    render_trace,
    split_rbn_passes,
)
from .gantt import render_gantt

__all__ = [
    "format_cells",
    "format_settings",
    "render_assignment",
    "render_delivery",
    "render_gantt",
    "render_pass_grid",
    "render_stage",
    "render_trace",
    "split_rbn_passes",
]
