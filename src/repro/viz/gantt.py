"""ASCII Gantt rendering for frame schedules.

Turns a :class:`~repro.hardware.schedule.FrameSchedule` into a
proportional bar chart — one row per activity, bar length scaled to the
activity's duration — so the routing-vs-datapath balance and the
level-by-level shrinkage are visible at a glance:

.. code-block:: text

    L1 routing   |##############################................| 70
    L1 datapath  |####..........................................| 10
    ...

Used by the Section 7.3 bench artefact and the VoD example.
"""

from __future__ import annotations

from typing import List

from ..hardware.schedule import FrameSchedule

__all__ = ["render_gantt"]

_BAR = {"routing": "#", "datapath": "="}


def render_gantt(schedule: FrameSchedule, width: int = 60) -> str:
    """Render a frame schedule as proportional ASCII bars.

    Args:
        schedule: the computed timeline.
        width: character width of the time axis.

    Returns:
        One row per activity: the bar starts at the activity's start
        time and spans its duration, both scaled to ``width`` columns;
        ``#`` marks routing, ``=`` datapath.
    """
    total = schedule.total_time
    if total <= 0:
        return f"frame schedule, n = {schedule.n}: (empty)"
    lines: List[str] = [
        f"frame schedule, n = {schedule.n} "
        f"(1 column ~ {total / width:.1f} gate delays)"
    ]
    label_w = max(
        len(f"L{e.level} {e.kind}") for e in schedule.entries
    )
    for e in schedule.entries:
        start_col = min(round(e.start / total * width), width - 1)
        end_col = min(max(start_col + 1, round(e.end / total * width)), width)
        bar = (
            " " * start_col
            + _BAR[e.kind] * (end_col - start_col)
            + " " * (width - end_col)
        )
        label = f"L{e.level} {e.kind}".ljust(label_w)
        lines.append(f"  {label} |{bar}| {e.duration}")
    lines.append(
        f"  total {schedule.total_time} gate delays "
        f"(routing {schedule.routing_time}, datapath {schedule.datapath_time})"
    )
    return "\n".join(lines)
