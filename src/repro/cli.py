"""Command-line interface: route, inspect and reproduce from the shell.

Usage (after ``pip install -e .``)::

    python -m repro route --n 8 --assign '{"0":[0,1],"2":[3,4,7],"3":[2],"7":[5,6]}'
    python -m repro route --n 8 --example --trace
    python -m repro stats --n 64 --frames 200 --engine fast --metrics-out metrics.json
    python -m repro stats --n 256 --frames 500 --workers 4 --compile-ahead 2
    python -m repro stats --n 256 --frames 500 --workers 4 --executor process
    python -m repro chaos --n 32 --frames 100 --faults 2 --seed 7
    python -m repro chaos --n 64 --overload --arrival-rate 2.0 --deadline-ms 50
    python -m repro chaos --n 64 --overload --adaptive --seed 7 \\
        --workers 4 --control-log decisions.json --summary-out summary.json
    python -m repro tags --n 8 --dests 3,4,7
    python -m repro structure --n 64
    python -m repro table2 --sizes 8,64,512
    python -m repro schedule --n 32

Subcommands:

* ``route`` — route one multicast assignment (JSON mapping of input ->
  destinations, or ``--example`` for the paper's Fig. 2 assignment)
  through the chosen implementation/engine; prints the verified
  delivery map, optionally the stage trace.
* ``stats`` — run an *observed* session over a workload: attaches a
  metrics + tracing observer, prints session statistics and a
  per-level profile, and exports the metrics registry as JSON
  (``--metrics-out``) and/or Prometheus text (``--prom-out``).
* ``chaos`` — run a seeded fault-injection campaign: a random
  :class:`~repro.faults.plan.FaultPlan` is injected, every frame is
  routed through the self-healing fabric, and the campaign reports
  delivered / recovered / lost terminal counts plus plane health.
  With ``--overload``, the campaign instead drives a Poisson arrival
  stream at a multiple of service capacity through the queueing
  simulator with an admission gate and per-slot deadline, reporting
  the full admitted / shed / delivered / recovered / lost accounting.
  ``--adaptive`` runs the closed-loop control plane over the campaign
  (AIMD admission rate and priority reserve, worker target); its
  decision log replays bit-identically for a given seed and can be
  exported with ``--control-log``.
* ``tags`` — print a destination set's tag tree SEQ (Section 7.1).
* ``structure`` — print a network's structural audit (switches, depth,
  per-level composition).
* ``table2`` — print the paper's Table 2 with measured values.
* ``schedule`` — print the feedback network's frame timing schedule.

The CLI is intentionally thin: each subcommand calls the same public
API the library exposes, so it doubles as executable documentation.

Exit codes (the contract scripts and CI rely on):

* ``0`` — success: routing verified, campaign fully served.
* ``1`` — verification or reproduction failure (``route``, ``report``).
* ``2`` — usage or I/O error (bad arguments, unreadable input,
  unwritable output path).
* ``3`` — degraded ``chaos`` campaign: terminals were lost (or
  requests abandoned under ``--overload``) after the retry budget.
  The campaign itself ran to completion — distinguish this from
  ``2``, which means it never ran.  Deliberately *shed* requests do
  not trigger ``3``: shedding is the admission gate doing its job.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .analysis.tables import format_table
from .baselines.models import PAPER_TABLE2
from .core.config import NetworkConfig
from .core.multicast import MulticastAssignment, paper_example_assignment
from .core.routing import build_network, route_multicast
from .core.tagtree import TagTree
from .core.tags import format_tag_string
from .hardware.cost import CostModel
from .hardware.schedule import build_frame_schedule
from .hardware.timing import TimingModel
from .viz.ascii import render_assignment, render_delivery, render_trace

__all__ = ["main", "build_parser"]


def _write_text(path: str, text: str) -> Optional[str]:
    """Write an output file, creating parent directories as needed.

    Returns ``None`` on success, or a clean one-line error message
    (instead of letting ``open`` raise a traceback at the user) when
    the path cannot be written.
    """
    try:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w") as fh:
            fh.write(text)
    except OSError as exc:
        return f"cannot write {path}: {exc}"
    return None


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Self-routing multicast network (BRSMN) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_route = sub.add_parser("route", help="route one multicast assignment")
    p_route.add_argument("--n", type=int, required=True, help="network size")
    p_route.add_argument(
        "--assign",
        type=str,
        default=None,
        help='JSON mapping of input -> destination list, e.g. \'{"0":[1,2]}\'',
    )
    p_route.add_argument(
        "--example",
        action="store_true",
        help="use the paper's Fig. 2 example assignment (n must be 8)",
    )
    p_route.add_argument(
        "--file",
        type=str,
        default=None,
        help="read the assignment from a JSON file "
        "(see repro.core.serialization for the format)",
    )
    p_route.add_argument(
        "--save",
        type=str,
        default=None,
        help="write the routing result to a JSON file",
    )
    p_route.add_argument(
        "--implementation",
        choices=("unrolled", "feedback"),
        default="unrolled",
    )
    p_route.add_argument(
        "--engine",
        choices=("reference", "fast"),
        default="reference",
        help="routing engine (fast = compiled NumPy gather plans)",
    )
    p_route.add_argument(
        "--mode", choices=("selfrouting", "oracle"), default="selfrouting"
    )
    p_route.add_argument(
        "--trace", action="store_true", help="print the stage-by-stage trace"
    )

    p_stats = sub.add_parser(
        "stats",
        help="run an observed workload session and export metrics",
    )
    p_stats.add_argument("--n", type=int, required=True, help="network size")
    p_stats.add_argument(
        "--frames", type=int, default=64, help="frames to route"
    )
    p_stats.add_argument(
        "--workload",
        choices=("hotspot", "random", "suite"),
        default="hotspot",
        help="frame generator (hotspot repeats assignments -> cache hits)",
    )
    p_stats.add_argument(
        "--engine", choices=("reference", "fast"), default="fast"
    )
    p_stats.add_argument(
        "--mode", choices=("selfrouting", "oracle"), default="selfrouting"
    )
    p_stats.add_argument("--seed", type=int, default=0)
    p_stats.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker-pool size for the fast engine (1 = single-threaded)",
    )
    p_stats.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="sharding backend for --workers > 1: thread (zero-copy "
        "views, default) or process (shared-memory shards that scale "
        "CPython-bound routing past one core)",
    )
    p_stats.add_argument(
        "--compile-ahead",
        type=int,
        default=0,
        help="compile-ahead prefetch depth (0 = off); the session run "
        "loop then warms upcoming frames' plans on the worker pool",
    )
    p_stats.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="write the metrics registry as JSON to this file",
    )
    p_stats.add_argument(
        "--prom-out",
        type=str,
        default=None,
        help="write the metrics in Prometheus text format to this file",
    )
    p_stats.add_argument(
        "--no-profile",
        action="store_true",
        help="skip the per-level profile table",
    )

    p_chaos = sub.add_parser(
        "chaos",
        help="run a seeded fault-injection campaign with self-healing",
    )
    p_chaos.add_argument("--n", type=int, required=True, help="network size")
    p_chaos.add_argument(
        "--frames", type=int, default=64, help="frames to route"
    )
    p_chaos.add_argument(
        "--faults",
        type=int,
        default=2,
        help="faulty cells to place (seeded; see repro.faults.FaultPlan)",
    )
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--engine", choices=("reference", "fast"), default="fast"
    )
    p_chaos.add_argument(
        "--retries",
        type=int,
        default=3,
        help="healing retry budget per frame",
    )
    p_chaos.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="write the metrics registry as JSON to this file",
    )
    p_chaos.add_argument(
        "--overload",
        action="store_true",
        help="overload campaign: Poisson arrivals above capacity through "
        "the queueing simulator with admission control and deadlines "
        "(--frames then sets the arrival horizon in slots)",
    )
    p_chaos.add_argument(
        "--arrival-rate",
        type=float,
        default=2.0,
        help="overload: mean arrivals per slot (capacity is ~1 frame/slot)",
    )
    p_chaos.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-slot healing deadline in milliseconds (default: none)",
    )
    p_chaos.add_argument(
        "--admit-rate",
        type=float,
        default=1.5,
        help="overload: admission token refill per slot",
    )
    p_chaos.add_argument(
        "--admit-burst",
        type=float,
        default=8.0,
        help="overload: admission token bucket capacity",
    )
    p_chaos.add_argument(
        "--soft-watermark",
        type=float,
        default=16.0,
        help="overload: backlog depth shedding priority<=0 requests",
    )
    p_chaos.add_argument(
        "--hard-watermark",
        type=float,
        default=32.0,
        help="overload: backlog depth shedding every request",
    )
    p_chaos.add_argument(
        "--high-priority",
        type=float,
        default=0.25,
        help="overload: fraction of arrivals carrying priority 1",
    )
    p_chaos.add_argument(
        "--workers",
        type=int,
        default=1,
        help="overload: worker-pool size for the fast engine",
    )
    p_chaos.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="overload: sharding backend for --workers > 1 (thread or "
        "process; see docs/executors.md)",
    )
    p_chaos.add_argument(
        "--adaptive",
        action="store_true",
        help="overload: run the closed-loop control plane (AIMD "
        "admission rate, priority reserve, worker target) over the "
        "campaign instead of the static gate policy",
    )
    p_chaos.add_argument(
        "--control-log",
        type=str,
        default=None,
        help="overload: write the control plane's decision log as JSON "
        "to this file (requires --adaptive)",
    )
    p_chaos.add_argument(
        "--summary-out",
        type=str,
        default=None,
        help="overload: write the campaign summary (goodput, "
        "per-priority sheds, losses) as JSON to this file",
    )

    p_cluster = sub.add_parser(
        "cluster",
        help="run a seeded multi-replica cluster campaign "
        "(plan-affinity routing, kills, rolling restarts)",
    )
    p_cluster.add_argument(
        "--n", type=int, required=True, help="network size (per replica)"
    )
    p_cluster.add_argument(
        "--replicas", type=int, default=2, help="fabric replicas"
    )
    p_cluster.add_argument(
        "--frames", type=int, default=64, help="frames to route"
    )
    p_cluster.add_argument("--seed", type=int, default=0)
    p_cluster.add_argument(
        "--placement-seed",
        type=int,
        default=None,
        help="rendezvous placement seed (default: --seed)",
    )
    p_cluster.add_argument(
        "--engine", choices=("reference", "fast"), default="fast"
    )
    p_cluster.add_argument(
        "--distinct",
        type=int,
        default=8,
        help="distinct assignments cycled through the campaign (plan "
        "affinity keeps each one's compiled plan on its home replica)",
    )
    p_cluster.add_argument(
        "--faults",
        type=int,
        default=0,
        help="faulty cells per replica plane (seeded; deterministic "
        "kinds only, so replay and replica count cannot change results)",
    )
    p_cluster.add_argument(
        "--kill-replica",
        action="append",
        default=[],
        metavar="I@FRAME",
        help="crash replica I while frame FRAME is in flight "
        "(repeatable; its frame requeues once to a sibling)",
    )
    p_cluster.add_argument(
        "--rolling-restart",
        action="store_true",
        help="run a rolling restart campaign: each replica drains, "
        "snapshots, warm-restores and re-admits, spread over the run",
    )
    p_cluster.add_argument(
        "--drain-frames",
        type=int,
        default=4,
        help="rolling restart: drain window in cluster submissions",
    )
    p_cluster.add_argument(
        "--admit-rate",
        type=float,
        default=None,
        help="per-replica admission token refill per submit (e.g. 0.5 "
        "models 2x load: half the placements shed at their home gate "
        "and spill over; default: no admission gate)",
    )
    p_cluster.add_argument(
        "--admit-burst",
        type=float,
        default=4.0,
        help="per-replica admission token bucket capacity",
    )
    p_cluster.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        help="write the metrics registry as JSON to this file",
    )
    p_cluster.add_argument(
        "--summary-out",
        type=str,
        default=None,
        help="write the replay-deterministic campaign summary as JSON "
        "to this file (two identically-seeded runs are byte-identical)",
    )

    p_tags = sub.add_parser("tags", help="print a multicast's SEQ tag string")
    p_tags.add_argument("--n", type=int, required=True)
    p_tags.add_argument(
        "--dests", type=str, required=True, help="comma-separated outputs"
    )

    p_struct = sub.add_parser("structure", help="network structural audit")
    p_struct.add_argument("--n", type=int, required=True)

    p_t2 = sub.add_parser("table2", help="reproduce the paper's Table 2")
    p_t2.add_argument(
        "--sizes", type=str, default="8,64,512", help="comma-separated sizes"
    )

    p_sched = sub.add_parser("schedule", help="feedback frame timing schedule")
    p_sched.add_argument("--n", type=int, required=True)

    sub.add_parser(
        "report",
        help="recompute every paper claim and print the pass/fail report",
    )
    return parser


def _cmd_route(args) -> int:
    if args.example:
        if args.n != 8:
            print("--example requires --n 8", file=sys.stderr)
            return 2
        assignment = paper_example_assignment()
    elif args.file is not None:
        from .core.serialization import assignment_from_json
        from .errors import InvalidAssignmentError

        try:
            with open(args.file) as fh:
                assignment = assignment_from_json(fh.read())
        except (OSError, InvalidAssignmentError) as exc:
            print(f"bad --file: {exc}", file=sys.stderr)
            return 2
        if assignment.n != args.n:
            print(
                f"file is for n={assignment.n}, but --n {args.n} given",
                file=sys.stderr,
            )
            return 2
    elif args.assign is not None:
        try:
            raw = json.loads(args.assign)
            mapping = {int(k): [int(d) for d in v] for k, v in raw.items()}
            assignment = MulticastAssignment.from_dict(args.n, mapping)
        except (ValueError, KeyError) as exc:
            print(f"bad --assign: {exc}", file=sys.stderr)
            return 2
    else:
        print("provide --assign, --file or --example", file=sys.stderr)
        return 2

    if args.trace and args.engine == "fast":
        print("--trace requires --engine reference", file=sys.stderr)
        return 2
    cfg = NetworkConfig(
        args.n, implementation=args.implementation, engine=args.engine
    )
    result = route_multicast(
        cfg,
        assignment,
        mode=args.mode,
        collect_trace=args.trace,
        strict=False,
    )
    report = result.verification
    if args.save is not None:
        from .core.serialization import result_to_json

        err = _write_text(args.save, result_to_json(result) + "\n")
        if err is not None:
            print(err, file=sys.stderr)
            return 2
        print(f"result written to {args.save}")
    print(render_assignment(assignment))
    print()
    if args.trace and result.trace is not None:
        print(render_trace(result.trace))
        print()
    print(render_delivery(result.outputs))
    print()
    if report.ok:
        print(f"verified: {report.deliveries} deliveries, no blocking")
        print(
            f"alpha splits: {result.total_splits}, "
            f"switch operations: {result.switch_ops}"
        )
        return 0
    print("VERIFICATION FAILED:")
    for v in report.violations:
        print(f"  {v}")
    return 1


def _stats_frames(args):
    """Generate the frame sequence for ``repro stats``."""
    if args.workload == "hotspot":
        from .workloads.hotspot import hotspot_session

        return hotspot_session(args.n, frames=args.frames, seed=args.seed)
    if args.workload == "random":
        from .workloads.random_assignments import random_multicast

        return [
            random_multicast(args.n, seed=args.seed + i)
            for i in range(args.frames)
        ]
    from .workloads.random_assignments import assignment_suite

    suite = assignment_suite(args.n, seed=args.seed)
    return [suite[i % len(suite)] for i in range(args.frames)]


def _cmd_stats(args) -> int:
    from .core.fabric import MulticastFabric
    from .obs import CompositeObserver, MetricsObserver, TracingObserver

    if (args.workers > 1 or args.compile_ahead > 0) and args.engine != "fast":
        print(
            "--workers/--compile-ahead require --engine fast",
            file=sys.stderr,
        )
        return 2
    if args.executor == "process" and args.engine != "fast":
        print("--executor process requires --engine fast", file=sys.stderr)
        return 2
    metrics = MetricsObserver()
    tracing = TracingObserver()
    cfg = NetworkConfig(
        args.n,
        engine=args.engine,
        workers=args.workers,
        executor=args.executor,
        compile_ahead=args.compile_ahead,
        observer=CompositeObserver(metrics, tracing),
    )
    fabric = MulticastFabric(cfg, mode=args.mode)
    try:
        stats = fabric.run(_stats_frames(args))
    finally:
        fabric.close()

    print(f"session: n={args.n} engine={args.engine} workload={args.workload}")
    print(
        f"frames {stats.frames}, deliveries {stats.deliveries}, "
        f"mean fanout {stats.mean_fanout:.2f}"
    )
    print(
        f"alpha splits {stats.splits}, switch operations {stats.switch_ops}"
    )
    if args.engine == "fast":
        print(
            f"plan cache: {stats.plan_cache_hits} hits, "
            f"{stats.plan_cache_misses} misses "
            f"({stats.plan_cache_hit_rate:.0%} hit rate)"
        )
    if args.workers > 1 or args.compile_ahead > 0:
        cache = fabric.network.plan_cache
        pipeline = fabric.network.pipeline
        line = (
            f"parallel: {args.workers} workers ({args.executor}), "
            f"{getattr(cache, 'coalesced', 0)} coalesced compiles"
        )
        if pipeline is not None:
            line += (
                f", {pipeline.prefetches} prefetches "
                f"({pipeline.drops} dropped at depth {args.compile_ahead})"
            )
        print(line)
    if not args.no_profile:
        rows = _profile_rows(tracing)
        if rows:
            print()
            print("per-level profile (all frames):")
            print(
                format_table(
                    ["level", "size", "frames", "splits", "ops", "total", "stages"],
                    rows,
                )
            )
    return _export_metrics(args, metrics)


def _export_metrics(args, metrics) -> int:
    """Write ``--metrics-out`` / ``--prom-out`` files, if requested."""
    if args.metrics_out is not None:
        err = _write_text(args.metrics_out, metrics.registry.to_json() + "\n")
        if err is not None:
            print(err, file=sys.stderr)
            return 2
        print(f"\nmetrics JSON written to {args.metrics_out}")
    if getattr(args, "prom_out", None) is not None:
        err = _write_text(
            args.prom_out, metrics.registry.to_prometheus_text()
        )
        if err is not None:
            print(err, file=sys.stderr)
            return 2
        print(f"Prometheus text written to {args.prom_out}")
    return 0


def _profile_rows(tracing) -> list:
    """Aggregate a tracing observer's level spans into table rows."""
    agg = {}
    for tl in tracing.timelines():
        for span in tl.levels:
            row = agg.setdefault(
                span.level, {"size": span.size, "frames": 0, "splits": 0,
                             "ops": 0, "ns": 0, "stages": {}}
            )
            row["frames"] += 1
            row["splits"] += span.splits
            row["ops"] += span.switch_ops
            row["ns"] += span.duration_ns
            for stage, ns in span.stage_ns.items():
                row["stages"][stage] = row["stages"].get(stage, 0) + ns
    rows = []
    for level in sorted(agg):
        row = agg[level]
        stages = " ".join(
            f"{stage}={ns / 1e6:.2f}ms"
            for stage, ns in sorted(row["stages"].items())
        )
        rows.append(
            [
                level,
                row["size"],
                row["frames"],
                row["splits"],
                row["ops"],
                f"{row['ns'] / 1e6:.2f}ms",
                stages,
            ]
        )
    return rows


def _cmd_chaos(args) -> int:
    from .core.fabric import MulticastFabric
    from .faults import FaultPlan, RetryPolicy
    from .obs import MetricsObserver
    from .workloads.random_assignments import random_multicast

    if args.overload:
        return _cmd_chaos_overload(args)
    plan = FaultPlan.random(args.n, faults=args.faults, seed=args.seed)
    metrics = MetricsObserver()
    cfg = NetworkConfig(
        args.n, engine=args.engine, fault_plan=plan, observer=metrics
    )
    fabric = MulticastFabric(
        cfg, retry_policy=RetryPolicy(max_retries=args.retries)
    )

    print(
        f"chaos campaign: n={args.n} frames={args.frames} "
        f"faults={args.faults} seed={args.seed} engine={args.engine}"
    )
    print()
    print("fault plan:")
    print(
        format_table(
            ["plane", "cell", "links", "kind", "detail"],
            [
                [
                    f.level,
                    f.index,
                    f"{f.positions[0]},{f.positions[1]}",
                    f.kind.value,
                    (
                        f"stuck {'crossed' if f.stuck_setting else 'parallel'}"
                        if f.kind.value == "stuck_at"
                        else f"drop_rate={f.drop_rate}"
                        if f.kind.value == "flaky_link"
                        else "payloads lost"
                    ),
                ]
                for f in plan.faults
            ],
        )
    )
    print()

    delivered = recovered = lost = 0
    for i in range(args.frames):
        assignment = random_multicast(args.n, seed=args.seed + 1 + i)
        result = fabric.submit(assignment)
        terminals = assignment.total_fanout
        if hasattr(result, "outcomes"):  # DegradedResult (primary plane)
            recovered += len(result.recovered)
            lost += len(result.lost)
            delivered += terminals - len(result.recovered) - len(result.lost)
        else:  # RoutingResult (standby plane, fault-free)
            delivered += terminals
    stats = fabric.stats
    print(
        f"frames: {stats.frames} routed, {stats.degraded_frames} degraded, "
        f"{stats.lost_frames} with losses, "
        f"{stats.standby_frames} served by standby"
    )
    print(
        f"terminals: {delivered} delivered, {recovered} recovered, "
        f"{lost} lost"
    )
    print(
        f"plane: {stats.quarantines} quarantines, "
        f"final state {fabric.health.state.value}"
    )
    rc = _export_metrics(args, metrics)
    if rc == 0 and lost > 0:
        return 3
    return rc


def _cmd_chaos_overload(args) -> int:
    """The ``chaos --overload`` campaign: arrivals above capacity.

    Drives a seeded Poisson stream at ``--arrival-rate`` requests per
    slot (service capacity is one packed frame per slot) through a
    fault-injected :class:`~repro.core.arrivals.QueueingSimulator`
    carrying an admission gate and an optional per-slot deadline, then
    prints the complete accounting: every generated request ends in
    exactly one of delivered / recovered / shed / lost.
    """
    from .control import ControlPolicy
    from .core.arrivals import QueueingSimulator, poisson_arrivals
    from .faults import FaultPlan, RetryPolicy
    from .obs import MetricsObserver
    from .resilience import AdmissionPolicy

    if args.control_log is not None and not args.adaptive:
        print("--control-log requires --adaptive", file=sys.stderr)
        return 2
    if args.workers > 1 and args.engine != "fast":
        print("--workers requires --engine fast", file=sys.stderr)
        return 2
    if args.executor == "process" and args.engine != "fast":
        print("--executor process requires --engine fast", file=sys.stderr)
        return 2
    metrics = MetricsObserver()
    try:
        plan = FaultPlan.random(args.n, faults=args.faults, seed=args.seed)
        admission = AdmissionPolicy(
            rate=args.admit_rate,
            burst=args.admit_burst,
            soft_watermark=args.soft_watermark,
            hard_watermark=args.hard_watermark,
        )
        control = None
        if args.adaptive:
            # The AIMD loop may raise the refill rate up to twice the
            # static gate's, and bank a priority reserve below the
            # bucket's capacity — the static campaign is the floor, not
            # the ceiling.
            control = ControlPolicy(
                rate_floor=min(0.5, args.admit_rate),
                rate_ceiling=2.0 * args.admit_rate,
                reserve_max=max(0.0, args.admit_burst - 1.0),
                backlog_high=args.soft_watermark,
                backlog_low=max(1.0, args.soft_watermark / 4.0),
            )
        cfg = NetworkConfig(
            args.n,
            engine=args.engine,
            workers=args.workers,
            executor=args.executor,
            fault_plan=plan,
            observer=metrics,
            admission=admission,
            deadline_ms=args.deadline_ms,
            control=control,
        )
        sim = QueueingSimulator(
            cfg, retry_policy=RetryPolicy(max_retries=args.retries)
        )
        arrivals = poisson_arrivals(
            args.n,
            rate=args.arrival_rate,
            slots=args.frames,
            seed=args.seed + 1,
            high_priority_fraction=args.high_priority,
        )
    except ValueError as exc:
        print(f"bad overload campaign parameters: {exc}", file=sys.stderr)
        return 2
    print(
        f"overload campaign: n={args.n} slots={args.frames} "
        f"arrival_rate={args.arrival_rate} faults={args.faults} "
        f"seed={args.seed} engine={args.engine}"
    )
    print(
        f"admission: rate={args.admit_rate}/slot burst={args.admit_burst} "
        f"watermarks={args.soft_watermark}/{args.hard_watermark}"
        + (
            f", deadline={args.deadline_ms}ms"
            if args.deadline_ms is not None
            else ""
        )
        + (" [adaptive]" if args.adaptive else "")
    )
    print()
    try:
        report = sim.run(arrivals)
    finally:
        sim.close()
    generated = len(arrivals)
    delivered = report.served - report.recovered
    lost = report.abandoned
    shed_high = sum(
        c for p, c in sim.gate.shed_by_priority.items() if p > 0
    )
    shed_low = report.shed - shed_high
    print(
        f"requests: {generated} generated, {report.shed} shed at admission"
    )
    print(
        f"outcomes: {delivered} delivered, {report.recovered} recovered "
        f"(after requeue), {report.shed} shed, {lost} lost"
    )
    print(
        f"sheds by priority: {shed_high} high-priority, "
        f"{shed_low} best-effort"
    )
    accounted = delivered + report.recovered + report.shed + lost
    print(
        f"accounting: {accounted}/{generated} requests accounted "
        f"({'complete' if accounted == generated else 'INCOMPLETE'})"
    )
    print(
        f"latency: {report.slots_run} slots run, "
        f"mean wait {report.mean_wait:.2f} slots, "
        f"peak backlog {report.peak_backlog}, "
        f"p95 serve {report.p95_serve_ms:.2f} ms"
    )
    if sim.control is not None:
        decisions = sim.control.decision_log()
        final = sim.gate.policy
        print(
            f"control: {sim.control.tick_count} ticks, "
            f"{len(decisions)} adjustments, final gate "
            f"rate={final.rate:.2f} reserve={final.reserve:.2f}"
        )
        if args.control_log is not None:
            try:
                sim.control.export_decision_log(args.control_log)
            except OSError as exc:
                print(
                    f"cannot write {args.control_log}: {exc}",
                    file=sys.stderr,
                )
                return 2
            print(f"control decision log written to {args.control_log}")
    if args.summary_out is not None:
        summary = {
            "n": args.n,
            "seed": args.seed,
            "adaptive": args.adaptive,
            "arrival_rate": args.arrival_rate,
            "generated": generated,
            "goodput": report.served,
            "delivered": delivered,
            "recovered": report.recovered,
            "shed": report.shed,
            "shed_high": shed_high,
            "shed_low": shed_low,
            "lost": lost,
            "slots_run": report.slots_run,
            "decisions": (
                len(sim.control.decision_log())
                if sim.control is not None
                else 0
            ),
        }
        err = _write_text(
            args.summary_out,
            json.dumps(summary, indent=2, sort_keys=True) + "\n",
        )
        if err is not None:
            print(err, file=sys.stderr)
            return 2
        print(f"campaign summary written to {args.summary_out}")
    rc = _export_metrics(args, metrics)
    if rc == 0 and (lost > 0 or accounted != generated):
        return 3
    return rc


def _cmd_cluster(args) -> int:
    """The ``cluster`` campaign: K replicas, kills, rolling restarts.

    Routes a seeded frame sequence (``--distinct`` recurring
    assignments, so plan affinity is visible in the hit rate) through a
    :class:`~repro.cluster.FabricCluster`, with optional scheduled
    replica kills, a rolling restart campaign, and per-replica
    admission gates.  Same exit-code contract as ``chaos``: 0 on a
    clean campaign, 2 on bad parameters, 3 when admitted frames were
    lost or the accounting is incomplete (shed frames are accounted,
    never exit 3 by themselves).
    """
    from .cluster import ClusterConfig, FabricCluster
    from .faults import FaultKind, FaultPlan
    from .obs import MetricsObserver
    from .resilience import AdmissionPolicy
    from .workloads.random_assignments import random_multicast

    kills = []
    for spec in args.kill_replica:
        try:
            replica_s, frame_s = spec.split("@", 1)
            kills.append((int(replica_s), int(frame_s)))
        except ValueError:
            print(
                f"bad --kill-replica {spec!r}: expected I@FRAME",
                file=sys.stderr,
            )
            return 2
    placement_seed = (
        args.seed if args.placement_seed is None else args.placement_seed
    )
    metrics = MetricsObserver()
    try:
        plan = None
        if args.faults > 0:
            # Deterministic fault kinds only: flaky-link drop masks are
            # attempt-indexed (per-plane state), which would make the
            # outcome depend on how frames spread over replicas.
            plan = FaultPlan.random(
                args.n,
                faults=args.faults,
                seed=args.seed,
                kinds=[FaultKind.STUCK_AT, FaultKind.DEAD_SWITCH],
            )
        admission = None
        if args.admit_rate is not None:
            admission = AdmissionPolicy(
                rate=args.admit_rate, burst=args.admit_burst
            )
        cfg = NetworkConfig(
            args.n,
            engine=args.engine,
            fault_plan=plan,
            observer=metrics,
            admission=admission,
        )
        cluster = FabricCluster(
            ClusterConfig(
                replicas=args.replicas,
                network=cfg,
                placement_seed=placement_seed,
                drain_frames=args.drain_frames,
            )
        )
    except (TypeError, ValueError) as exc:
        print(f"bad cluster campaign parameters: {exc}", file=sys.stderr)
        return 2
    print(
        f"cluster campaign: n={args.n} replicas={args.replicas} "
        f"frames={args.frames} seed={args.seed} "
        f"placement_seed={placement_seed} engine={args.engine}"
        + (f" faults={args.faults}" if args.faults else "")
        + (
            f" admit_rate={args.admit_rate}"
            if args.admit_rate is not None
            else ""
        )
    )
    restart = None
    try:
        for replica, frame in kills:
            cluster.kill_replica(replica, at_frame=frame)
        if args.rolling_restart:
            restart = cluster.rolling_restart()
            restart.plan_campaign(args.frames)
    except ValueError as exc:
        print(f"bad cluster campaign schedule: {exc}", file=sys.stderr)
        cluster.close()
        return 2
    distinct = max(1, args.distinct)
    try:
        for i in range(args.frames):
            assignment = random_multicast(
                args.n, seed=args.seed + 1 + (i % distinct)
            )
            cluster.submit(assignment)
        if restart is not None:
            restart.flush()
        up_count = cluster.up_count
        summary = dict(cluster.summary())
    finally:
        cluster.close()
    stats = cluster.stats
    generated = args.frames
    accounted = stats.frames + stats.shed_frames
    print()
    print(
        f"frames: {stats.frames} served, {stats.shed_frames} shed, "
        f"{stats.requeues} requeued after a kill, "
        f"{stats.spillovers} spilled over"
    )
    print(
        f"terminals: {stats.deliveries} delivered, "
        f"{stats.recovered_terminals} recovered, "
        f"{stats.lost_terminals} lost"
    )
    print(
        f"plans: {stats.plan_cache_hits} hits, "
        f"{stats.plan_cache_misses} misses "
        f"(hit rate {stats.plan_cache_hit_rate:.2f})"
    )
    print(
        f"lifecycle: {stats.kills} kills, {stats.restarts} restarts, "
        f"{up_count}/{args.replicas} replicas up"
    )
    print(
        f"accounting: {accounted}/{generated} frames accounted "
        f"({'complete' if accounted == generated else 'INCOMPLETE'})"
    )
    if args.summary_out is not None:
        summary["seed"] = args.seed
        summary["generated"] = generated
        err = _write_text(
            args.summary_out,
            json.dumps(summary, indent=2, sort_keys=True) + "\n",
        )
        if err is not None:
            print(err, file=sys.stderr)
            return 2
        print(f"campaign summary written to {args.summary_out}")
    rc = _export_metrics(args, metrics)
    if rc == 0 and (stats.lost_frames > 0 or accounted != generated):
        return 3
    return rc


def _cmd_tags(args) -> int:
    dests = [int(d) for d in args.dests.split(",") if d.strip() != ""]
    tree = TagTree.from_destinations(args.n, dests)
    tree.validate()
    seq = tree.to_sequence()
    print(f"destinations : {sorted(dests)}")
    m = args.n.bit_length() - 1
    print(f"binary       : {', '.join(format(d, f'0{m}b') for d in sorted(dests))}")
    print(f"SEQ ({len(seq):3d} tags): {format_tag_string(seq)}")
    return 0


def _cmd_structure(args) -> int:
    n = args.n
    net = build_network(n)
    fb = build_network(NetworkConfig(n, implementation="feedback"))
    cm = CostModel()
    rows = []
    size, blocks, level = n, 1, 1
    while size > 2:
        rows.append([level, f"{blocks} x BSN({size})", blocks * 2 * (size // 2) * (size.bit_length() - 1)])
        blocks *= 2
        size //= 2
        level += 1
    rows.append([level, f"{blocks} x 2x2 switch", blocks])
    print(format_table(["level", "components", "switches"], rows))
    print()
    print(f"unrolled: {net.switch_count} switches, depth {net.depth} stages")
    print(
        f"feedback: {fb.switch_count} switches "
        f"({net.switch_count / fb.switch_count:.2f}x cheaper), "
        f"{fb.pass_count} passes"
    )
    print(f"gates (cost model): unrolled {cm.brsmn_gates(n)}, feedback {cm.feedback_gates(n)}")
    return 0


def _cmd_table2(args) -> int:
    sizes = [int(s) for s in args.sizes.split(",")]
    print("paper Table 2:")
    print(
        format_table(
            ["network", "cost", "depth", "routing time"],
            [
                [r["network"], r["cost"], r["depth"], r["routing_time"]]
                for r in PAPER_TABLE2
            ],
        )
    )
    print()
    cm = CostModel()
    tm = TimingModel()
    print("measured (this implementation):")
    print(
        format_table(
            ["n", "gates (new)", "gates (feedback)", "depth", "routing time"],
            [
                [
                    n,
                    cm.brsmn_gates(n),
                    cm.feedback_gates(n),
                    cm.brsmn_depth(n),
                    tm.brsmn_routing_time(n),
                ]
                for n in sizes
            ],
        )
    )
    return 0


def _cmd_schedule(args) -> int:
    print(build_frame_schedule(args.n).render())
    return 0


def _cmd_report(_args) -> int:
    from .analysis.report import reproduction_report

    report = reproduction_report()
    print(report.render())
    return 0 if report.ok else 1


_COMMANDS = {
    "route": _cmd_route,
    "stats": _cmd_stats,
    "chaos": _cmd_chaos,
    "cluster": _cmd_cluster,
    "tags": _cmd_tags,
    "structure": _cmd_structure,
    "table2": _cmd_table2,
    "schedule": _cmd_schedule,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
