"""Sliding-window signal aggregation for the control plane.

:class:`SignalAggregator` is an :class:`~repro.obs.events.Observer`
that folds the routing stack's event stream into per-tick buckets and
exposes the last ``window_ticks`` of them as one immutable
:class:`SignalWindow` — the *only* input the controllers
(:mod:`repro.control.controllers`) ever see.

Determinism is the design constraint.  A seeded campaign must replay
to a bit-identical decision log, so the window separates its fields
into two classes:

* **decision signals** — event counts incremented on the submitting
  thread (admission decisions, healing retries, lost terminals,
  deadline expiries) plus values the control plane samples
  synchronously at tick time (queue depth, compile-ahead
  prefetch/drop counters, breaker state).  These are pure functions of
  the seed and the arrival trace.
* **advisory signals** — wall-clock serve latency and plan-cache
  hit/miss counts.  Cache events can arrive from worker threads at
  scheduler-dependent times and latency is wall-clock by definition,
  so controllers MUST NOT consume them; they ride along for
  observability (the ``repro_control_*`` gauges and debugging) only.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from ..obs.events import (
    CacheEvent,
    FaultEvent,
    FrameDone,
    Observer,
    ResilienceEvent,
)

__all__ = ["SignalWindow", "SignalAggregator"]


@dataclass(frozen=True)
class SignalWindow:
    """Immutable signal summary over the last ``window_ticks`` ticks.

    Attributes:
        ticks: control ticks summarised (< ``window_ticks`` during
            warm-up).
        frames: payload frames routed in the window.
        admitted_high: priority > 0 frames admitted by the gate.
        admitted_low: priority <= 0 frames admitted.
        shed_high: priority > 0 frames shed — the signal the AIMD loop
            exists to drive to zero.
        shed_low: priority <= 0 frames shed.
        retries: healing repair passes started.
        lost_terminals: terminals abandoned after the retry budget.
        deadline_expired: healing loops cut short by a deadline budget.
        queue_depth: backlog depth sampled at the most recent tick.
        prefetches: compile-ahead prefetches accepted in the window
            (sampled from the pipeline's caller-thread counters).
        prefetch_drops: compile-ahead prefetches dropped (queue full).
        breaker_half_open: True when the circuit breaker was HALF_OPEN
            at the most recent tick.
        cache_hits: advisory — plan-cache hits observed (may include
            worker-thread events; NOT a decision signal).
        cache_misses: advisory — plan-cache misses observed.
        serve_ns: advisory — wall-clock routing nanoseconds observed.
            Excluded from every controller decision and from the
            exported decision log, by design: it is the one
            non-deterministic field.
    """

    ticks: int = 0
    frames: int = 0
    admitted_high: int = 0
    admitted_low: int = 0
    shed_high: int = 0
    shed_low: int = 0
    retries: int = 0
    lost_terminals: int = 0
    deadline_expired: int = 0
    queue_depth: int = 0
    prefetches: int = 0
    prefetch_drops: int = 0
    breaker_half_open: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    serve_ns: int = 0

    @property
    def shed(self) -> int:
        """Total frames shed in the window (all priority classes)."""
        return self.shed_high + self.shed_low

    @property
    def admitted(self) -> int:
        """Total frames admitted in the window."""
        return self.admitted_high + self.admitted_low

    @property
    def drop_rate(self) -> float:
        """Prefetch drop fraction over the window (0.0 when idle)."""
        attempts = self.prefetches + self.prefetch_drops
        return self.prefetch_drops / attempts if attempts else 0.0


class _Bucket:
    """One tick's mutable accumulators (reset every tick)."""

    __slots__ = (
        "frames", "admitted_high", "admitted_low", "shed_high", "shed_low",
        "retries", "lost_terminals", "deadline_expired", "queue_depth",
        "prefetches", "prefetch_drops", "breaker_half_open",
        "cache_hits", "cache_misses", "serve_ns",
    )

    def __init__(self):
        self.frames = 0
        self.admitted_high = 0
        self.admitted_low = 0
        self.shed_high = 0
        self.shed_low = 0
        self.retries = 0
        self.lost_terminals = 0
        self.deadline_expired = 0
        self.queue_depth = 0
        self.prefetches = 0
        self.prefetch_drops = 0
        self.breaker_half_open = False
        self.cache_hits = 0
        self.cache_misses = 0
        self.serve_ns = 0


class SignalAggregator(Observer):
    """Fold the observer event stream into per-tick signal buckets.

    Args:
        window_ticks: buckets retained in the sliding window.

    The aggregator is attached by the control plane as one leg of a
    :class:`~repro.obs.events.CompositeObserver` in front of whatever
    observer the caller configured, so it sees every event the metrics
    and tracing observers see.  Handlers take a lock because cache and
    parallel events can arrive from pool threads; the *decision*
    signals are only ever written by the submitting thread, which is
    what keeps the windows replayable.
    """

    def __init__(self, window_ticks: int = 4):
        if window_ticks < 1:
            raise ValueError(
                f"window_ticks must be >= 1, got {window_ticks}"
            )
        self._lock = threading.Lock()
        self._current = _Bucket()
        self._buckets: deque = deque(maxlen=window_ticks)

    # -- event handlers (fold into the current bucket) -------------------
    def on_frame_done(self, event: FrameDone) -> None:
        """Count routed frames; accumulate advisory wall-clock time."""
        with self._lock:
            self._current.frames += event.frames
            self._current.serve_ns += event.duration_ns

    def on_resilience(self, event: ResilienceEvent) -> None:
        """Count admission decisions and deadline expiries."""
        with self._lock:
            cur = self._current
            if event.action == "admitted":
                if event.priority > 0:
                    cur.admitted_high += 1
                else:
                    cur.admitted_low += 1
            elif event.action == "shed":
                if event.priority > 0:
                    cur.shed_high += 1
                else:
                    cur.shed_low += 1
            elif event.action == "deadline_expired":
                cur.deadline_expired += event.frames

    def on_fault(self, event: FaultEvent) -> None:
        """Count healing retries and abandoned terminals."""
        with self._lock:
            if event.action == "retry":
                self._current.retries += 1
            elif event.action == "lost":
                self._current.lost_terminals += len(event.terminals)

    def on_cache_event(self, event: CacheEvent) -> None:
        """Advisory plan-cache accounting (never a decision input)."""
        with self._lock:
            if event.kind == "hit":
                self._current.cache_hits += 1
            elif event.kind == "miss":
                self._current.cache_misses += 1

    # -- tick boundary ---------------------------------------------------
    def close_tick(
        self,
        queue_depth: int = 0,
        prefetches: int = 0,
        prefetch_drops: int = 0,
        breaker_half_open: bool = False,
    ) -> None:
        """Seal the current bucket with tick-time samples; start a new one.

        Called by the control plane once per tick, on the submitting
        thread, with the values it sampled synchronously: the owner's
        backlog depth, the compile-ahead pipeline's cumulative
        prefetch/drop *deltas* since the previous tick, and whether the
        breaker is currently HALF_OPEN.
        """
        with self._lock:
            cur = self._current
            cur.queue_depth = queue_depth
            cur.prefetches = prefetches
            cur.prefetch_drops = prefetch_drops
            cur.breaker_half_open = breaker_half_open
            self._buckets.append(cur)
            self._current = _Bucket()

    def window(self) -> SignalWindow:
        """The closed buckets summarised as one :class:`SignalWindow`.

        Counts are summed over the window; ``queue_depth`` and
        ``breaker_half_open`` carry the most recent tick's sample (they
        are levels, not flows).
        """
        with self._lock:
            buckets = list(self._buckets)
        if not buckets:
            return SignalWindow()
        last = buckets[-1]
        return SignalWindow(
            ticks=len(buckets),
            frames=sum(b.frames for b in buckets),
            admitted_high=sum(b.admitted_high for b in buckets),
            admitted_low=sum(b.admitted_low for b in buckets),
            shed_high=sum(b.shed_high for b in buckets),
            shed_low=sum(b.shed_low for b in buckets),
            retries=sum(b.retries for b in buckets),
            lost_terminals=sum(b.lost_terminals for b in buckets),
            deadline_expired=sum(b.deadline_expired for b in buckets),
            queue_depth=last.queue_depth,
            prefetches=sum(b.prefetches for b in buckets),
            prefetch_drops=sum(b.prefetch_drops for b in buckets),
            breaker_half_open=last.breaker_half_open,
            cache_hits=sum(b.cache_hits for b in buckets),
            cache_misses=sum(b.cache_misses for b in buckets),
            serve_ns=sum(b.serve_ns for b in buckets),
        )
