"""The control plane: one tick loop binding signals to actuators.

:class:`ControlPlane` is the only stateful, side-effecting piece of
:mod:`repro.control`.  It owns the
:class:`~repro.control.signals.SignalAggregator` (spliced into the
owner's observer chain so it sees every event), drives the pure
controllers of :mod:`repro.control.controllers` once per tick, and
applies whatever actions they return to the actuators it was bound to:

======================  ==========================================
controller              actuator
======================  ==========================================
``admission``           :meth:`AdmissionGate.update_policy`
                        (``rate``, ``reserve``)
``compile_ahead``       :meth:`CompileAheadPipeline.set_depth`
``workers``             :meth:`ShardedBatchRouter.set_worker_target`
``backoff``             a ``retry_setter`` callback receiving
                        ``RetryPolicy.scaled(scale)``
======================  ==========================================

Every adjustment is appended to an in-memory **decision log** — tick
number, controller, parameter, old/new value, reason, and nothing
else.  Wall-clock timestamps are deliberately excluded: the log is a
pure function of the seed and the arrival trace, so three runs of the
same campaign produce byte-identical exports
(:meth:`ControlPlane.export_decision_log`).  The same adjustments are
emitted as :class:`~repro.obs.events.ControlEvent`\\ s (which *do*
carry ``t_ns``, for tracing) into the ``repro_control_*`` metric
families.
"""

from __future__ import annotations

import json
import math
import os
from time import perf_counter_ns
from typing import Callable, Dict, List, Optional

from ..obs.events import ControlEvent
from .controllers import (
    AdmissionState,
    BackoffState,
    CompileAheadState,
    WorkerState,
    admission_step,
    backoff_step,
    compile_ahead_step,
    worker_step,
)
from .policy import ControlPolicy
from .signals import SignalAggregator

__all__ = ["ControlPlane"]

_LOG_FORMAT_VERSION = 1


class ControlPlane:
    """Tick-driven closed-loop tuner for the serving stack.

    Args:
        policy: the :class:`~repro.control.policy.ControlPolicy`
            envelope (default: ``ControlPolicy()``).
        observer: optional :class:`~repro.obs.events.Observer`
            receiving :class:`~repro.obs.events.ControlEvent` samples
            (the owner's configured observer — the plane's own signal
            aggregator is separate and always on).

    Lifecycle: the owner (fabric or simulator) constructs the plane,
    splices :attr:`signals` in front of its observer, :meth:`bind`\\ s
    whichever actuators it built, then calls :meth:`maybe_tick` once
    per service opportunity (submission / slot) on the submitting
    thread.  Only bound actuators are controlled; everything else is
    left alone — a fabric without workers simply never runs the worker
    loop.
    """

    def __init__(
        self,
        policy: Optional[ControlPolicy] = None,
        observer: Optional[object] = None,
    ):
        self.policy = policy if policy is not None else ControlPolicy()
        self.signals = SignalAggregator(self.policy.window_ticks)
        self.observer = observer
        self.tick_count = 0
        self._events_since_tick = 0
        self._decisions: List[Dict[str, object]] = []
        # Actuators (None until bind()).
        self._gate = None
        self._pipeline = None
        self._router = None
        self._breaker = None
        self._retry_base = None
        self._retry_setter: Optional[Callable] = None
        # Controller states (None until the matching actuator binds).
        self._admission: Optional[AdmissionState] = None
        self._compile_ahead: Optional[CompileAheadState] = None
        self._workers: Optional[WorkerState] = None
        self._backoff: Optional[BackoffState] = None
        # Cumulative pipeline counters at the previous tick, for deltas.
        self._prev_prefetches = 0
        self._prev_drops = 0

    # -- wiring ----------------------------------------------------------
    def bind(
        self,
        gate=None,
        pipeline=None,
        router=None,
        breaker=None,
        retry_policy=None,
        retry_setter: Optional[Callable] = None,
    ) -> None:
        """Attach the actuators this plane controls.

        Args:
            gate: an :class:`~repro.resilience.gate.AdmissionGate`; its
                current policy seeds the AIMD state.
            pipeline: a
                :class:`~repro.parallel.pipeline.CompileAheadPipeline`;
                its current depth and counters seed the depth loop.
            router: a
                :class:`~repro.parallel.shard.ShardedBatchRouter`; its
                pool size becomes both the initial target and the hard
                maximum.
            breaker: a
                :class:`~repro.resilience.breaker.CircuitBreaker`
                sampled (never driven) for HALF_OPEN at tick time.
            retry_policy: the base
                :class:`~repro.faults.healing.RetryPolicy` backoff
                scaling starts from.
            retry_setter: callback receiving the scaled policy whenever
                the backoff loop changes scale.

        May be called more than once; each call overwrites only the
        actuators it names.
        """
        if gate is not None:
            self._gate = gate
            burst = gate.policy.burst
            cap = burst - 1.0 if math.isfinite(burst) else math.inf
            self._admission = AdmissionState(
                rate=gate.policy.rate,
                reserve=gate.policy.reserve,
                reserve_cap=cap,
            )
        if pipeline is not None:
            self._pipeline = pipeline
            self._compile_ahead = CompileAheadState(depth=pipeline.depth)
            self._prev_prefetches = pipeline.prefetches
            self._prev_drops = pipeline.drops
        if router is not None:
            self._router = router
            self._workers = WorkerState(
                target=router.effective_workers, maximum=router.pool.workers
            )
        if breaker is not None:
            self._breaker = breaker
        if retry_policy is not None:
            self._retry_base = retry_policy
        if retry_setter is not None:
            self._retry_setter = retry_setter
        if self._retry_base is not None and self._retry_setter is not None:
            if self._backoff is None:
                self._backoff = BackoffState(scale=1.0)

    # -- the tick loop ---------------------------------------------------
    def maybe_tick(self, queue_depth: int = 0) -> bool:
        """Count one owner event; fire :meth:`tick` every ``tick_frames``.

        Returns True when a tick fired.  Called on the submitting
        thread once per fabric submission / simulator slot, with the
        backlog depth the owner observes at that moment.
        """
        self._events_since_tick += 1
        if self._events_since_tick < self.policy.tick_frames:
            return False
        self._events_since_tick = 0
        self.tick(queue_depth)
        return True

    def tick(self, queue_depth: int = 0) -> None:
        """Run one control tick: sample, window, decide, actuate.

        Tick-time samples are taken synchronously on the calling
        thread — the compile-ahead pipeline's cumulative counters as
        deltas since the previous tick, and the breaker state — so the
        resulting window, and therefore every decision, is replayable.
        """
        prefetches = drops = 0
        if self._pipeline is not None:
            prefetches = self._pipeline.prefetches - self._prev_prefetches
            drops = self._pipeline.drops - self._prev_drops
            self._prev_prefetches = self._pipeline.prefetches
            self._prev_drops = self._pipeline.drops
        half_open = (
            self._breaker is not None and self._breaker.state == "half_open"
        )
        self.signals.close_tick(
            queue_depth=queue_depth,
            prefetches=prefetches,
            prefetch_drops=drops,
            breaker_half_open=half_open,
        )
        window = self.signals.window()
        self.tick_count += 1
        self._emit(ControlEvent(action="tick", tick=self.tick_count))

        if self._admission is not None:
            self._admission, actions = admission_step(
                self.policy, window, self._admission
            )
            if actions:
                self._gate.update_policy(
                    rate=self._admission.rate, reserve=self._admission.reserve
                )
                self._record(actions)
        if self._compile_ahead is not None:
            self._compile_ahead, actions = compile_ahead_step(
                self.policy, window, self._compile_ahead
            )
            if actions:
                self._pipeline.set_depth(self._compile_ahead.depth)
                self._record(actions)
        if self._workers is not None:
            self._workers, actions = worker_step(
                self.policy, window, self._workers
            )
            if actions:
                self._router.set_worker_target(self._workers.target)
                self._record(actions)
        if self._backoff is not None:
            self._backoff, actions = backoff_step(
                self.policy, window, self._backoff
            )
            if actions:
                self._retry_setter(self._retry_base.scaled(self._backoff.scale))
                self._record(actions)

    def _record(self, actions) -> None:
        """Append actions to the decision log and emit adjust events."""
        for a in actions:
            self._decisions.append(
                {
                    "tick": self.tick_count,
                    "controller": a.controller,
                    "parameter": a.parameter,
                    "old": a.old,
                    "new": a.new,
                    "reason": a.reason,
                }
            )
            self._emit(
                ControlEvent(
                    action="adjust",
                    controller=a.controller,
                    parameter=a.parameter,
                    old=float(a.old),
                    new=float(a.new),
                    reason=a.reason,
                    tick=self.tick_count,
                )
            )

    def _emit(self, event: ControlEvent) -> None:
        obs = self.observer
        if obs is None or not obs.enabled:
            return
        if event.t_ns == 0:
            event = ControlEvent(
                action=event.action,
                controller=event.controller,
                parameter=event.parameter,
                old=event.old,
                new=event.new,
                reason=event.reason,
                tick=event.tick,
                t_ns=perf_counter_ns(),
            )
        obs.on_control(event)

    # -- the decision log ------------------------------------------------
    def decision_log(self) -> List[Dict[str, object]]:
        """The adjustments made so far, oldest first (a copy).

        Each entry carries ``tick`` / ``controller`` / ``parameter`` /
        ``old`` / ``new`` / ``reason`` and no wall-clock field, so the
        log of a seeded campaign is bit-identical across runs.
        """
        return [dict(d) for d in self._decisions]

    def export_decision_log(self, path: str) -> None:
        """Write the decision log as deterministic JSON to ``path``.

        Parent directories are created; the payload carries a format
        version, the tick count, and the decisions in order.  Running
        the same seeded campaign three times produces three identical
        files — that is the replay guarantee the determinism tests pin.
        """
        payload = {
            "version": _LOG_FORMAT_VERSION,
            "ticks": self.tick_count,
            "decisions": self.decision_log(),
        }
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
