"""The one control-plane configuration object.

:class:`ControlPolicy` bounds every closed-loop adjustment the control
plane (:mod:`repro.control.plane`) is allowed to make.  The controllers
themselves are pure functions; the policy is the *envelope* they act
within — AIMD floor/ceiling on the admission refill rate, min/max on
the compile-ahead depth and worker target, and the backoff scale used
while the circuit breaker is probing.

Every bound is validated at construction, and every validation error
names the offending field and its accepted range, so a mistyped
campaign fails at config time with an actionable message rather than
mid-run with a drifting controller.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ControlPolicy"]


@dataclass(frozen=True)
class ControlPolicy:
    """Bounds and cadence of the adaptive control plane.

    Attributes:
        tick_frames: owner events (fabric submissions / simulator
            slots) per control tick.  1 re-evaluates every slot; larger
            values trade responsiveness for lower decision churn.
        window_ticks: control ticks in the sliding signal window the
            controllers consume.
        rate_floor: lowest admission refill rate the AIMD loop may set.
        rate_ceiling: highest admission refill rate it may set.
        rate_increase: additive rate increase applied when the window
            shows high-priority sheds (the gate is starving traffic it
            should carry) or spare capacity.
        rate_decrease: multiplicative factor (in ``(0, 1]``) applied to
            the rate when the backlog crosses ``backlog_high`` —
            classic AIMD: probe up gently, back off hard.
        reserve_step: additive bump of the gate's priority token
            reserve when high-priority frames were shed for lack of
            tokens.
        reserve_max: cap on the adapted reserve (must stay below the
            gate's burst or best-effort traffic starves entirely).
        backlog_high: queue depth at/above which the loop backs off
            (multiplicative decrease, worker scale-up).
        backlog_low: queue depth at/below which the system is
            considered drained (probing up is safe, workers may scale
            down).
        depth_min: smallest compile-ahead prefetch depth the loop may
            set.
        depth_max: largest compile-ahead prefetch depth it may set.
        drop_threshold: prefetch drop rate (drops / attempts over the
            window, in ``[0, 1]``) above which the compile-ahead depth
            grows.
        worker_min: smallest shard worker target the loop may set.
        half_open_backoff_scale: factor (>= 1) applied to healing
            retry backoff while the circuit breaker is HALF_OPEN, so
            probe traffic paces itself instead of hammering a
            recovering plane.
    """

    tick_frames: int = 1
    window_ticks: int = 4
    rate_floor: float = 0.5
    rate_ceiling: float = 8.0
    rate_increase: float = 0.25
    rate_decrease: float = 0.5
    reserve_step: float = 0.5
    reserve_max: float = 4.0
    backlog_high: float = 24.0
    backlog_low: float = 4.0
    depth_min: int = 1
    depth_max: int = 8
    drop_threshold: float = 0.25
    worker_min: int = 1
    half_open_backoff_scale: float = 2.0

    def __post_init__(self):
        if self.tick_frames < 1:
            raise ValueError(
                f"tick_frames must be >= 1, got {self.tick_frames}"
            )
        if self.window_ticks < 1:
            raise ValueError(
                f"window_ticks must be >= 1, got {self.window_ticks}"
            )
        if self.rate_floor <= 0:
            raise ValueError(
                f"rate_floor must be > 0, got {self.rate_floor}"
            )
        if self.rate_ceiling < self.rate_floor:
            raise ValueError(
                f"rate_ceiling ({self.rate_ceiling}) must be >= "
                f"rate_floor ({self.rate_floor})"
            )
        if self.rate_increase < 0:
            raise ValueError(
                f"rate_increase must be >= 0, got {self.rate_increase}"
            )
        if not 0.0 < self.rate_decrease <= 1.0:
            raise ValueError(
                f"rate_decrease must be in (0, 1], got {self.rate_decrease}"
            )
        if self.reserve_step < 0:
            raise ValueError(
                f"reserve_step must be >= 0, got {self.reserve_step}"
            )
        if self.reserve_max < 0:
            raise ValueError(
                f"reserve_max must be >= 0, got {self.reserve_max}"
            )
        if self.backlog_high < 0:
            raise ValueError(
                f"backlog_high must be >= 0, got {self.backlog_high}"
            )
        if self.backlog_low < 0:
            raise ValueError(
                f"backlog_low must be >= 0, got {self.backlog_low}"
            )
        if self.backlog_high < self.backlog_low:
            raise ValueError(
                f"backlog_high ({self.backlog_high}) must be >= "
                f"backlog_low ({self.backlog_low})"
            )
        if self.depth_min < 1:
            raise ValueError(
                f"depth_min must be >= 1, got {self.depth_min}"
            )
        if self.depth_max < self.depth_min:
            raise ValueError(
                f"depth_max ({self.depth_max}) must be >= "
                f"depth_min ({self.depth_min})"
            )
        if not 0.0 <= self.drop_threshold <= 1.0:
            raise ValueError(
                f"drop_threshold must be in [0, 1], got {self.drop_threshold}"
            )
        if self.worker_min < 1:
            raise ValueError(
                f"worker_min must be >= 1, got {self.worker_min}"
            )
        if self.half_open_backoff_scale < 1.0:
            raise ValueError(
                "half_open_backoff_scale must be >= 1, got "
                f"{self.half_open_backoff_scale}"
            )
