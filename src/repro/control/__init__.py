"""Adaptive control plane: closed-loop tuning of the serving stack.

PR 5 left the resilience knobs static — a fixed admission refill rate,
a fixed compile-ahead depth, a fixed worker count.  This package closes
the loop: a deterministic, tick-driven control plane watches the
observer event stream and retunes those knobs while a campaign runs,
so provisioning follows load instead of guessing it.

The pieces, smallest to largest:

* :class:`~repro.control.policy.ControlPolicy` — the frozen envelope
  every adjustment must stay within (AIMD floor/ceiling, depth and
  worker bounds, tick cadence).
* :class:`~repro.control.signals.SignalAggregator` /
  :class:`~repro.control.signals.SignalWindow` — an observer folding
  the event stream into a sliding window of per-tick signal buckets.
* :mod:`~repro.control.controllers` — pure
  ``(policy, signals, state) -> (state, actions)`` functions: AIMD
  admission, compile-ahead depth, worker target, breaker-aware backoff.
* :class:`~repro.control.plane.ControlPlane` — the tick loop that
  wires windows to controllers to actuators, logs every decision, and
  emits :class:`~repro.obs.events.ControlEvent` samples into the
  ``repro_control_*`` metric families.

Determinism is the contract: controllers consume only signals that are
pure functions of the seed and the arrival trace (caller-thread event
counts, tick-time samples), so the decision log of a seeded campaign
replays bit-identically — including under fault and worker-crash
injection.  Enable it with
``NetworkConfig(control=ControlPolicy(...))`` or
``repro chaos --overload --adaptive``.
"""

from .controllers import (
    AdmissionState,
    BackoffState,
    CompileAheadState,
    ControlAction,
    WorkerState,
    admission_step,
    backoff_step,
    compile_ahead_step,
    worker_step,
)
from .plane import ControlPlane
from .policy import ControlPolicy
from .signals import SignalAggregator, SignalWindow

__all__ = [
    "ControlPolicy",
    "ControlPlane",
    "SignalAggregator",
    "SignalWindow",
    "ControlAction",
    "AdmissionState",
    "CompileAheadState",
    "WorkerState",
    "BackoffState",
    "admission_step",
    "compile_ahead_step",
    "worker_step",
    "backoff_step",
]
